// Observability subsystem tests: metrics registry semantics (including the
// multi-threaded hot path), exporter formats (Prometheus golden file,
// Chrome-trace JSON schema, SBDO binary roundtrip), and the instrumentation
// contracts of the pipeline and the runtime engine — warm-vs-cold registry
// equality and bit-exact outputs with instrumentation disabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <unistd.h>

#include "core/emit_cpp.hpp"
#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "suite/models.hpp"

namespace fs = std::filesystem;
using namespace sbd;
using namespace sbd::codegen;

namespace {

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("sbd_obs_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

// ------------------------------------------------------- minimal JSON parser
//
// Just enough JSON to validate exporter output structurally: objects,
// arrays, strings (with the escapes our exporters emit), numbers, bools,
// null. Throws std::runtime_error on malformed input, which is itself part
// of what the schema tests assert against.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;

    bool is_object() const { return std::holds_alternative<JsonObject>(v); }
    bool is_array() const { return std::holds_alternative<JsonArray>(v); }
    bool is_string() const { return std::holds_alternative<std::string>(v); }
    bool is_number() const { return std::holds_alternative<double>(v); }
    const JsonObject& obj() const { return std::get<JsonObject>(v); }
    const JsonArray& arr() const { return std::get<JsonArray>(v); }
    const std::string& str() const { return std::get<std::string>(v); }
    double num() const { return std::get<double>(v); }
    const JsonValue& at(const std::string& key) const { return obj().at(key); }
    bool has(const std::string& key) const { return is_object() && obj().count(key) != 0; }
};

struct JsonParser {
    const std::string& text;
    std::size_t pos = 0;

    [[noreturn]] void fail(const char* what) const {
        throw std::runtime_error("json: " + std::string(what) + " at offset " +
                                 std::to_string(pos));
    }
    void skip_ws() {
        while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    char peek() {
        if (pos >= text.size()) fail("unexpected end");
        return text[pos];
    }
    void expect(char c) {
        if (peek() != c) fail("unexpected character");
        ++pos;
    }

    JsonValue parse() {
        skip_ws();
        const JsonValue v = parse_value();
        skip_ws();
        if (pos != text.size()) fail("trailing content");
        return v;
    }

    JsonValue parse_value() {
        skip_ws();
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return JsonValue{parse_string()};
        case 't':
            if (text.compare(pos, 4, "true") != 0) fail("bad literal");
            pos += 4;
            return JsonValue{true};
        case 'f':
            if (text.compare(pos, 5, "false") != 0) fail("bad literal");
            pos += 5;
            return JsonValue{false};
        case 'n':
            if (text.compare(pos, 4, "null") != 0) fail("bad literal");
            pos += 4;
            return JsonValue{nullptr};
        default: return JsonValue{parse_number()};
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonObject out;
        skip_ws();
        if (peek() == '}') return ++pos, JsonValue{std::move(out)};
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            out.emplace(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return JsonValue{std::move(out)};
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonArray out;
        skip_ws();
        if (peek() == ']') return ++pos, JsonValue{std::move(out)};
        for (;;) {
            out.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return JsonValue{std::move(out)};
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= text.size()) fail("unterminated string");
            const char c = text[pos++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size()) fail("bad escape");
            const char e = text[pos++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos + 4 > text.size()) fail("bad \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
                    else fail("bad \\u digit");
                }
                out += cp < 0x80 ? static_cast<char>(cp) : '?'; // exporters only escape ASCII
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    double parse_number() {
        const std::size_t start = pos;
        if (peek() == '-') ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-'))
            ++pos;
        if (pos == start) fail("expected number");
        return std::stod(text.substr(start, pos - start));
    }
};

JsonValue parse_json(const std::string& text) { return JsonParser{text}.parse(); }

std::uint64_t counter_value(const obs::Snapshot& snap, const std::string& name,
                            const obs::Labels& labels = {}) {
    const obs::Sample* s = snap.find(name, labels);
    return s == nullptr ? 0 : s->value;
}

std::int64_t gauge_value(const obs::Snapshot& snap, const std::string& name) {
    const obs::Sample* s = snap.find(name);
    return s == nullptr ? 0 : s->gauge;
}

} // namespace

// --------------------------------------------------------- registry semantics

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("c_total", "help");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    obs::Gauge g = reg.gauge("g");
    g.set(7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);

    obs::Histogram h = reg.histogram("h_ns", {10, 100, 1000});
    h.observe(5);
    h.observe(50);
    h.observe(500);
    h.observe(5000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 5555u);

    const obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 3u);
    const obs::Sample* hs = snap.find("h_ns");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->buckets, (std::vector<std::uint64_t>{1, 1, 1, 1}));
    EXPECT_EQ(hs->value, 4u);
    EXPECT_EQ(hs->sum, 5555u);
}

TEST(MetricsRegistry, RegistrationIsIdempotentAndLabelOrderCanonical) {
    obs::MetricsRegistry reg;
    obs::Counter a = reg.counter("x_total", "", {{"b", "2"}, {"a", "1"}});
    obs::Counter b = reg.counter("x_total", "", {{"a", "1"}, {"b", "2"}});
    a.inc(3);
    b.inc(4);
    EXPECT_EQ(a.value(), 7u); // same cell
    EXPECT_EQ(reg.size(), 1u);

    // Distinct labels = distinct series under the same name.
    obs::Counter c = reg.counter("x_total", "", {{"a", "9"}});
    c.inc();
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(a.value(), 7u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
    obs::MetricsRegistry reg;
    (void)reg.counter("m");
    EXPECT_THROW((void)reg.gauge("m"), std::logic_error);
    EXPECT_THROW((void)reg.histogram("m", {1, 2}), std::logic_error);
}

TEST(MetricsRegistry, BadHistogramBoundsThrow) {
    obs::MetricsRegistry reg;
    EXPECT_THROW((void)reg.histogram("h1", {}), std::invalid_argument);
    EXPECT_THROW((void)reg.histogram("h2", {10, 10}), std::invalid_argument);
    EXPECT_THROW((void)reg.histogram("h3", {10, 5}), std::invalid_argument);
}

TEST(MetricsRegistry, DetachedHandlesAreNoOps) {
    obs::Counter c = obs::counter_in(nullptr, "nope");
    obs::Gauge g = obs::gauge_in(nullptr, "nope");
    obs::Histogram h = obs::histogram_in(nullptr, "nope", {1, 2});
    c.inc(5);
    g.set(5);
    h.observe(5);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_FALSE(static_cast<bool>(c));
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_FALSE(static_cast<bool>(h));
}

TEST(MetricsRegistry, ExponentialBoundsShapeAndSaturation) {
    const auto b = obs::exponential_bounds(250, 4.0, 5);
    EXPECT_EQ(b, (std::vector<std::uint64_t>{250, 1000, 4000, 16000, 64000}));
    // Saturating growth stops instead of emitting non-increasing bounds.
    const auto s = obs::exponential_bounds(1ull << 62, 4.0, 8);
    EXPECT_LT(s.size(), 8u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_THROW((void)obs::exponential_bounds(0, 4.0, 3), std::invalid_argument);
}

/// The multi-threaded hot path: concurrent increments on shared handles,
/// concurrent registration of the same series, snapshots taken mid-flight.
/// Run under TSan in CI; the final counts also prove no increment is lost.
TEST(MetricsRegistry, ConcurrentIncrementsAndSnapshotsAreExact) {
    obs::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 50000;
    std::vector<std::thread> team;
    team.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        team.emplace_back([&reg, t] {
            // Each thread registers its own handles — exercises the
            // idempotent find_or_create path under contention.
            obs::Counter c = reg.counter("stress_total");
            obs::Gauge g = reg.gauge("stress_depth");
            obs::Histogram h = reg.histogram("stress_ns", {100, 10000});
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                c.inc();
                h.observe(i % 200);
                if (i % 1024 == 0) g.set(static_cast<std::int64_t>(t));
                if (i % 8192 == 0) (void)reg.snapshot();
            }
        });
    for (auto& th : team) th.join();

    const obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(counter_value(snap, "stress_total"), kThreads * kPerThread);
    const obs::Sample* h = snap.find("stress_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->value, kThreads * kPerThread);
}

// ------------------------------------------------------------------ exporters

namespace {

/// The fixed registry behind the Prometheus golden file.
void fill_demo_registry(obs::MetricsRegistry& reg) {
    reg.counter("demo_requests_total", "requests served", {{"tool", "sbdc"}}).inc(3);
    reg.counter("demo_requests_total", "requests served", {{"tool", "sbd-run"}}).inc(5);
    reg.gauge("demo_queue_depth", "queue depth").set(-2);
    obs::Histogram h = reg.histogram("demo_latency_ns", {100, 1000, 10000}, "request latency");
    h.observe(50);
    h.observe(500);
    h.observe(5000);
    h.observe(50000);
}

} // namespace

TEST(Exporters, PrometheusMatchesGoldenFile) {
    obs::MetricsRegistry reg;
    fill_demo_registry(reg);
    const std::string got = obs::to_prometheus(reg.snapshot());

    std::ifstream f(std::string(SBD_OBS_DIR) + "/metrics_golden.prom", std::ios::binary);
    ASSERT_TRUE(f) << "golden file missing";
    std::stringstream want;
    want << f.rdbuf();
    EXPECT_EQ(got, want.str());
}

TEST(Exporters, JsonDumpParsesAndRoundTripsValues) {
    obs::MetricsRegistry reg;
    fill_demo_registry(reg);
    const JsonValue doc = parse_json(obs::to_json(reg.snapshot()));
    ASSERT_TRUE(doc.is_object());
    const JsonArray& metrics = doc.at("metrics").arr();
    ASSERT_EQ(metrics.size(), 4u); // histogram + gauge + 2 counter series
    for (const JsonValue& m : metrics) {
        ASSERT_TRUE(m.has("name"));
        ASSERT_TRUE(m.has("kind"));
        const std::string kind = m.at("kind").str();
        if (kind == "counter" || kind == "gauge") {
            EXPECT_TRUE(m.at("value").is_number());
        } else {
            ASSERT_EQ(kind, "histogram");
            EXPECT_EQ(m.at("count").num(), 4.0);
            EXPECT_EQ(m.at("sum").num(), 55550.0);
            EXPECT_EQ(m.at("buckets").arr().size(), 4u); // 3 bounds + Inf
        }
    }
}

TEST(Exporters, TableListsEverySeries) {
    obs::MetricsRegistry reg;
    fill_demo_registry(reg);
    const std::string table = obs::to_table(reg.snapshot());
    EXPECT_NE(table.find("demo_requests_total{tool=\"sbdc\"}"), std::string::npos);
    EXPECT_NE(table.find("demo_queue_depth"), std::string::npos);
    EXPECT_NE(table.find("count=4 sum=55550"), std::string::npos);
}

TEST(Exporters, MetricsFileFormatFollowsExtensionAndOverride) {
    TempDir dir;
    obs::MetricsRegistry reg;
    fill_demo_registry(reg);
    const obs::Snapshot snap = reg.snapshot();

    const auto read = [](const fs::path& p) {
        std::ifstream f(p, std::ios::binary);
        std::stringstream ss;
        ss << f.rdbuf();
        return ss.str();
    };
    ASSERT_TRUE(obs::write_metrics_file(snap, (dir.path / "m.json").string()));
    EXPECT_NO_THROW((void)parse_json(read(dir.path / "m.json")));
    ASSERT_TRUE(obs::write_metrics_file(snap, (dir.path / "m.prom").string()));
    EXPECT_NE(read(dir.path / "m.prom").find("# TYPE"), std::string::npos);
    // Explicit format wins over the extension.
    ASSERT_TRUE(obs::write_metrics_file(snap, (dir.path / "m2.json").string(), "table"));
    EXPECT_NE(read(dir.path / "m2.json").find("metric"), std::string::npos);
    EXPECT_FALSE(obs::write_metrics_file(snap, (dir.path / "m3").string(), "xml"));
}

// ----------------------------------------------------------------- trace spans

TEST(TraceSpans, NoCollectorMeansNoRecording) {
    ASSERT_EQ(obs::TraceCollector::active(), nullptr);
    { obs::TraceSpan span("orphan", "test"); } // must be a safe no-op
    obs::TraceCollector col;
    EXPECT_TRUE(col.drain().empty());
}

TEST(TraceSpans, NestedSpansRecordDepthAndOrder) {
    obs::TraceCollector col;
    col.install();
    {
        obs::TraceSpan outer("outer", "test", "o");
        obs::TraceSpan inner("inner", "test", "i");
    }
    col.uninstall();
    const std::vector<obs::SpanEvent> events = col.drain();
    ASSERT_EQ(events.size(), 2u);
    // Sorted by start time: outer opened first.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].depth, 0u);
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].depth, 1u);
    EXPECT_LE(events[0].start_ns, events[1].start_ns);
    EXPECT_GE(events[0].start_ns + events[0].dur_ns, events[1].start_ns + events[1].dur_ns);
}

TEST(TraceSpans, RingOverflowDropsAndCounts) {
    obs::TraceCollector col(8);
    col.install();
    for (int i = 0; i < 20; ++i) obs::TraceSpan span("s", "test");
    col.uninstall();
    EXPECT_EQ(col.dropped(), 12u);
    EXPECT_EQ(col.drain().size(), 8u);
}

TEST(TraceSpans, ThreadsGetDistinctRings) {
    obs::TraceCollector col;
    col.install();
    std::thread other([] { obs::TraceSpan span("worker", "test"); });
    other.join();
    { obs::TraceSpan span("main", "test"); }
    col.uninstall();
    const auto events = col.drain();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceSpans, ChromeTraceJsonValidatesAgainstSchema) {
    obs::TraceCollector col;
    col.install();
    {
        obs::TraceSpan a("phase-a", "compile", "Block\"quoted\"");
        obs::TraceSpan b("phase-b", "compile");
    }
    col.uninstall();
    const std::string json = obs::to_chrome_trace(col.drain());

    const JsonValue doc = parse_json(json);
    ASSERT_TRUE(doc.is_object());
    ASSERT_TRUE(doc.has("traceEvents"));
    EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
    const JsonArray& events = doc.at("traceEvents").arr();
    ASSERT_EQ(events.size(), 2u);
    for (const JsonValue& e : events) {
        // Trace Event Format: complete events need name/cat/ph/ts/dur/pid/tid.
        EXPECT_TRUE(e.at("name").is_string());
        EXPECT_TRUE(e.at("cat").is_string());
        EXPECT_EQ(e.at("ph").str(), "X");
        EXPECT_TRUE(e.at("ts").is_number());
        EXPECT_TRUE(e.at("dur").is_number());
        EXPECT_GE(e.at("dur").num(), 0.0);
        EXPECT_TRUE(e.at("pid").is_number());
        EXPECT_TRUE(e.at("tid").is_number());
        EXPECT_TRUE(e.at("args").is_object());
        EXPECT_TRUE(e.at("args").has("depth"));
    }
    EXPECT_EQ(events[0].at("args").at("detail").str(), "Block\"quoted\"");
}

TEST(TraceSpans, BinaryFormatRoundTripsAndRejectsCorruption) {
    std::vector<obs::SpanEvent> events(3);
    events[0] = {"alpha", "detail-0", "catA", 100, 50, 0, 0};
    events[1] = {"beta", "", "catB", 120, 10, 1, 1};
    events[2] = {"gamma", "detail-2", "catA", 200, 1, 0, 2};

    const std::vector<std::uint8_t> buf = obs::serialize_spans(events);
    const std::vector<obs::SpanEvent> back = obs::deserialize_spans(buf);
    ASSERT_EQ(back.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].name, events[i].name);
        EXPECT_EQ(back[i].detail, events[i].detail);
        EXPECT_EQ(back[i].cat, events[i].cat);
        EXPECT_EQ(back[i].start_ns, events[i].start_ns);
        EXPECT_EQ(back[i].dur_ns, events[i].dur_ns);
        EXPECT_EQ(back[i].tid, events[i].tid);
        EXPECT_EQ(back[i].depth, events[i].depth);
    }

    std::vector<std::uint8_t> truncated(buf.begin(), buf.end() - 3);
    EXPECT_THROW((void)obs::deserialize_spans(truncated), std::runtime_error);
    std::vector<std::uint8_t> bad_magic = buf;
    bad_magic[0] = 'X';
    EXPECT_THROW((void)obs::deserialize_spans(bad_magic), std::runtime_error);
    std::vector<std::uint8_t> bad_version = buf;
    bad_version[4] = 99;
    EXPECT_THROW((void)obs::deserialize_spans(bad_version), std::runtime_error);
    std::vector<std::uint8_t> trailing = buf;
    trailing.push_back(0);
    EXPECT_THROW((void)obs::deserialize_spans(trailing), std::runtime_error);
}

// --------------------------------------------- pipeline + cache instrumentation

TEST(PipelineObs, StatsViewEqualsRegistrySeries) {
    obs::MetricsRegistry reg;
    PipelineOptions popts;
    popts.method = Method::Dynamic;
    popts.metrics = &reg;
    Pipeline pipeline(popts);
    (void)pipeline.compile(suite::fuel_controller());

    const PipelineStats stats = pipeline.stats();
    const obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(stats.macro_compiles, counter_value(snap, "sbd_pipeline_macro_compiles_total"));
    EXPECT_EQ(stats.macro_reuses, counter_value(snap, "sbd_pipeline_macro_reuses_total"));
    EXPECT_EQ(stats.atomic_profiles, counter_value(snap, "sbd_pipeline_atomic_profiles_total"));
    EXPECT_EQ(stats.mem_misses, counter_value(snap, "sbd_cache_mem_misses_total"));
    EXPECT_EQ(stats.total_ns,
              counter_value(snap, "sbd_pipeline_phase_ns_total", {{"phase", "total"}}));
    EXPECT_GT(stats.macro_compiles, 0u);
    EXPECT_GT(stats.total_ns, 0u);
    // Per-block task latency histogram saw every macro task.
    const obs::Sample* task = snap.find("sbd_pipeline_task_ns");
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->value, stats.macro_compiles + stats.macro_reuses);
}

TEST(PipelineObs, OwnedRegistryKeepsStatsWorkingWithoutInjection) {
    Pipeline pipeline{PipelineOptions{}};
    (void)pipeline.compile(suite::thermostat());
    EXPECT_GT(pipeline.stats().macro_compiles, 0u);
    ASSERT_NE(pipeline.metrics(), nullptr);
    EXPECT_GT(pipeline.metrics()->snapshot().samples.size(), 0u);
}

/// The SAT-stats replay invariant, observed through the registry: a warm
/// (fully cached) compile must report byte-identical SAT counters and
/// gauges to the cold compile that populated the cache.
TEST(PipelineObs, WarmRunReportsIdenticalSatSeriesToColdRun) {
    TempDir dir;
    const auto root = suite::fuel_controller();

    const auto run = [&](obs::MetricsRegistry& reg) {
        PipelineOptions popts;
        popts.method = Method::DisjointSat; // does real SAT work
        popts.cache_dir = (dir.path / "cache").string();
        popts.metrics = &reg;
        Pipeline p(popts);
        (void)p.compile(root);
        return p.stats();
    };

    obs::MetricsRegistry cold_reg, warm_reg;
    const PipelineStats cold = run(cold_reg);
    const PipelineStats warm = run(warm_reg);
    ASSERT_GT(cold.macro_compiles, 0u);
    ASSERT_EQ(warm.macro_compiles, 0u); // fully warm
    EXPECT_EQ(warm.macro_reuses, cold.macro_compiles + cold.macro_reuses);

    const obs::Snapshot cs = cold_reg.snapshot();
    const obs::Snapshot ws = warm_reg.snapshot();
    ASSERT_GT(counter_value(cs, "sbd_sat_iterations_total"), 0u);
    for (const char* name : {"sbd_sat_iterations_total", "sbd_sat_conflicts_total",
                             "sbd_sat_decisions_total", "sbd_sat_propagations_total"})
        EXPECT_EQ(counter_value(ws, name), counter_value(cs, name)) << name;
    for (const char* name : {"sbd_sat_first_k", "sbd_sat_final_k", "sbd_sat_vars",
                             "sbd_sat_clauses"})
        EXPECT_EQ(gauge_value(ws, name), gauge_value(cs, name)) << name;
}

TEST(PipelineObs, InstrumentedCompileIsBitExactToUninstrumented) {
    const auto root = suite::fuel_controller();
    obs::MetricsRegistry reg;
    obs::TraceCollector col;
    col.install();
    PipelineOptions with;
    with.method = Method::Dynamic;
    with.metrics = &reg;
    const std::string instrumented = emit_cpp(Pipeline(with).compile(root));
    col.uninstall();
    const std::string plain = emit_cpp(Pipeline(PipelineOptions{}).compile(root));
    EXPECT_EQ(instrumented, plain);
    EXPECT_FALSE(col.drain().empty());
}

TEST(CacheObs, DiskCountersRecordStoreLoadAndCorruptionRecovery) {
    TempDir dir;
    const auto root = suite::thermostat();
    const std::string cache_dir = (dir.path / "cache").string();

    const auto compile_once = [&](obs::MetricsRegistry& reg) {
        PipelineOptions popts;
        popts.cache_dir = cache_dir;
        popts.metrics = &reg;
        (void)Pipeline(popts).compile(root);
    };

    obs::MetricsRegistry cold;
    compile_once(cold);
    const obs::Snapshot cs = cold.snapshot();
    EXPECT_GT(counter_value(cs, "sbd_cache_disk_stores_total"), 0u);
    EXPECT_GT(counter_value(cs, "sbd_cache_disk_ns_total"), 0u);

    obs::MetricsRegistry warm;
    compile_once(warm);
    EXPECT_GT(counter_value(warm.snapshot(), "sbd_cache_disk_hits_total"), 0u);

    // Corrupt every record: the next run must count a reject per file and
    // still succeed (recovery = recompute + re-store).
    std::size_t corrupted = 0;
    for (const auto& entry : fs::directory_iterator(cache_dir)) {
        std::ofstream f(entry.path(), std::ios::binary | std::ios::trunc);
        f << "garbage";
        ++corrupted;
    }
    ASSERT_GT(corrupted, 0u);
    obs::MetricsRegistry healed;
    compile_once(healed);
    const obs::Snapshot hs = healed.snapshot();
    EXPECT_EQ(counter_value(hs, "sbd_cache_disk_rejects_total"), corrupted);
    EXPECT_EQ(counter_value(hs, "sbd_cache_disk_stores_total"), corrupted);
}

// ----------------------------------------------------- engine instrumentation

TEST(EngineObs, TickAndStepSeriesMatchWorkDone) {
    const auto root = suite::thermostat();
    const CompiledSystem sys = Pipeline(PipelineOptions{}).compile(root);

    obs::MetricsRegistry reg;
    runtime::EngineConfig cfg;
    cfg.capacity = 64;
    cfg.threads = 2;
    cfg.metrics = &reg;
    cfg.step_sample = 4;
    runtime::Engine engine(sys, root, cfg);
    const auto ids = engine.create(48);
    ASSERT_EQ(ids.size(), 48u);
    engine.tick(10);

    const obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(counter_value(snap, "sbd_engine_ticks_total"), 10u);
    EXPECT_EQ(counter_value(snap, "sbd_engine_steps_total"), 480u);
    EXPECT_EQ(gauge_value(snap, "sbd_engine_pool_live"), 48);
    EXPECT_EQ(gauge_value(snap, "sbd_engine_pool_capacity"), 64);
    const obs::Sample* tick_ns = snap.find("sbd_engine_tick_ns");
    ASSERT_NE(tick_ns, nullptr);
    EXPECT_EQ(tick_ns->value, 10u);
    // 1-in-4 sampling over 48 live slots = 12 samples per tick, by index,
    // independent of how chunks were distributed across the two threads.
    const obs::Sample* step_ns = snap.find("sbd_engine_step_ns");
    ASSERT_NE(step_ns, nullptr);
    EXPECT_EQ(step_ns->value, 120u);
}

TEST(EngineObs, DisabledMetricsAreBitExactAndUnregistered) {
    const auto root = suite::fuel_controller();
    const CompiledSystem sys = Pipeline(PipelineOptions{}).compile(root);

    const auto run = [&](obs::MetricsRegistry* reg) {
        runtime::EngineConfig cfg;
        cfg.capacity = 16;
        cfg.threads = 2;
        cfg.metrics = reg;
        runtime::Engine engine(sys, root, cfg);
        const auto ids = engine.create(16);
        std::vector<runtime::LcgInputSource> sources;
        for (std::size_t i = 0; i < ids.size(); ++i) sources.emplace_back(7 + i);
        std::vector<double> out;
        for (int t = 0; t < 25; ++t) {
            for (std::size_t i = 0; i < ids.size(); ++i)
                sources[i].fill(engine.pool().inputs(ids[i]));
            engine.tick();
            for (const auto id : ids)
                for (const double v : engine.pool().outputs(id)) out.push_back(v);
        }
        return out;
    };

    obs::MetricsRegistry reg;
    const std::vector<double> with = run(&reg);
    const std::vector<double> without = run(nullptr);
    ASSERT_EQ(with.size(), without.size());
    for (std::size_t i = 0; i < with.size(); ++i) {
        // Bit-exact, not approximately equal.
        EXPECT_EQ(std::memcmp(&with[i], &without[i], sizeof(double)), 0) << "at " << i;
    }
    EXPECT_GT(counter_value(reg.snapshot(), "sbd_engine_ticks_total"), 0u);
}
