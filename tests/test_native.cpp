// The native AOT backend's gate: everything the interpreter can run, the
// compiled-and-dlopen'ed module must run bit-identically.
//
//  - Demo suite x all 6 clustering methods x 64 instants, default flags
//    (exactly what ships).
//  - 500 seeded fuzzed hierarchies (random, deep-shared-with-clones,
//    triggered), sharded so ctest -j spreads the compiles.
//  - The state-layout contract: snapshots restore across backends.
//  - Error parity: validation messages are identical by construction;
//    opaque models are rejected by both backends with their own codes.
//  - Artifact-store healing: a corrupted .so is rebuilt, never fatal.
//  - Byte-pinned emit_cpp goldens for two shipped models, so emitter
//    drift fails loudly here instead of surfacing as a miscompile.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "core/compiler.hpp"
#include "core/emit_cpp.hpp"
#include "core/exec.hpp"
#include "native/native.hpp"
#include "sbd/text_format.hpp"
#include "suite/models.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

constexpr Method kAllMethods[] = {Method::Monolithic,  Method::StepGet,
                                  Method::Dynamic,     Method::DisjointSat,
                                  Method::DisjointGreedy, Method::Singletons};

std::string method_id(Method m) {
    std::string s = to_string(m);
    for (char& c : s)
        if (c == '-') c = '_';
    return s;
}

/// Shared artifact store for the whole test binary; stable across runs so a
/// warm cache skips every compile (what CI's warm pass measures).
const std::string& store_dir() {
    static const std::string dir = [] {
        const auto d = std::filesystem::temp_directory_path() / "sbd-native-test";
        std::filesystem::create_directories(d);
        return d.string();
    }();
    return dir;
}

std::shared_ptr<const Executable> build_native(const CompiledSystem& sys, BlockPtr root,
                                               Method method,
                                               const std::string& extra_flags = "",
                                               const std::string& cache_dir = "") {
    BackendConfig cfg;
    cfg.backend = Backend::Native;
    cfg.method = method;
    cfg.cache_dir = cache_dir.empty() ? store_dir() : cache_dir;
    cfg.extra_flags = extra_flags;
    return native::make_native_executable(sys, root, cfg);
}

void expect_rows_bit_equal(std::span<const double> a, std::span<const double> b,
                           const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    if (!a.empty())
        ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
            << what << ": outputs diverge bitwise";
}

/// The differential core: drive interpreter and native module with the same
/// deterministic inputs and require bitwise-identical outputs every instant,
/// plus bitwise-identical state snapshots at a few checkpoints.
void expect_native_matches_interp(const std::shared_ptr<const MacroBlock>& block,
                                  Method method, std::size_t instants, std::uint64_t seed,
                                  const std::string& extra_flags = "") {
    const CompiledSystem sys = compile_hierarchy(block, method);
    InterpInstance interp(sys, block);
    const auto exe = build_native(sys, block, method, extra_flags);
    const std::unique_ptr<Instance> nat = exe->instantiate();
    ASSERT_STREQ(exe->backend_name(), "native");
    ASSERT_EQ(interp.state_size(), nat->state_size())
        << block->type_name() << ": state-layout contract broken";

    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-4.0, 4.0);
    std::vector<double> in(block->num_inputs());
    std::vector<double> out_i(block->num_outputs()), out_n(block->num_outputs());
    for (std::size_t t = 0; t < instants; ++t) {
        for (double& v : in) v = dist(rng);
        interp.step_instant_into(in, out_i);
        nat->step_instant_into(in, out_n);
        const std::string ctx = block->type_name() + " method=" + to_string(method) +
                                " seed=" + std::to_string(seed) + " t=" + std::to_string(t);
        expect_rows_bit_equal(out_i, out_n, ctx);
        if (t % 16 == 7) {
            std::vector<double> si, sn;
            interp.save_state(si);
            nat->save_state(sn);
            expect_rows_bit_equal(si, sn, ctx + " (state snapshot)");
        }
    }
}

// ------------------------------------------- demo suite, all six methods

class DemoSuiteDifferential : public ::testing::TestWithParam<Method> {};

TEST_P(DemoSuiteDifferential, NativeBitExactOverDemoSuite) {
    const Method method = GetParam();
    for (const auto& model : suite::demo_suite()) {
        const auto m = std::static_pointer_cast<const MacroBlock>(model.block);
        try {
            expect_native_matches_interp(m, method, 64, 0xD1FF + m->num_inputs());
        } catch (const SdgCycleError&) {
            // Rejection happens in compile_hierarchy, before either backend
            // exists — parity on this path is structural.
            EXPECT_TRUE(method == Method::Monolithic || method == Method::StepGet)
                << model.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DemoSuiteDifferential, ::testing::ValuesIn(kAllMethods),
                         [](const auto& info) { return method_id(info.param); });

// ------------------------------------------------- fuzzed hierarchies
//
// 500 seeded diagrams total, compiled -O0 to keep the host compiler fast.
// Sharded by TEST_P index so gtest_discover_tests turns every shard into
// its own ctest entry and `ctest -j` spreads the compiles.

constexpr std::size_t kFuzzPerShard = 50;

class FuzzRandom : public ::testing::TestWithParam<std::size_t> {};

/// 300 random hierarchies; the method rotates with the seed so every method
/// sees structural variety.
TEST_P(FuzzRandom, NativeBitExactOnRandomHierarchies) {
    const std::size_t base = GetParam() * kFuzzPerShard;
    for (std::size_t i = 0; i < kFuzzPerShard; ++i) {
        const std::uint64_t seed = 1000 + base + i;
        std::mt19937_64 rng(seed);
        suite::RandomModelParams p;
        p.depth = 2;
        p.subs_per_level = 3;
        p.macro_probability = 0.4;
        const auto m = suite::random_model(rng, p);
        const Method method = kAllMethods[(base + i) % 6];
        try {
            expect_native_matches_interp(m, method, 16, seed, "-O0");
        } catch (const SdgCycleError&) {
            EXPECT_TRUE(method == Method::Monolithic || method == Method::StepGet)
                << "seed=" << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, FuzzRandom, ::testing::Range<std::size_t>(0, 6));

class FuzzDeepShared : public ::testing::TestWithParam<std::size_t> {};

/// 100 deep shared-type hierarchies with structural clones: exponential
/// instance trees over few distinct compilations, the artifact-store and
/// sub-instance-layout stress shape.
TEST_P(FuzzDeepShared, NativeBitExactOnDeepSharedHierarchies) {
    const std::size_t base = GetParam() * kFuzzPerShard;
    for (std::size_t i = 0; i < kFuzzPerShard; ++i) {
        const std::uint64_t seed = 7000 + base + i;
        std::mt19937_64 rng(seed);
        suite::DeepModelParams p;
        p.levels = 4;
        p.types_per_level = 2;
        p.subs_per_macro = 3;
        p.clone_probability = 0.3;
        const auto m = suite::random_deep_model(rng, p);
        const Method method = kAllMethods[2 + (base + i) % 4]; // never-rejected methods
        expect_native_matches_interp(m, method, 16, seed, "-O0");
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, FuzzDeepShared, ::testing::Range<std::size_t>(0, 2));

class FuzzTriggered : public ::testing::TestWithParam<std::size_t> {};

/// 100 hierarchies with triggered sub-blocks (fire iff trigger >= 0.5, hold
/// otherwise): the guard-counter and held-output state must agree bitwise.
TEST_P(FuzzTriggered, NativeBitExactOnTriggeredHierarchies) {
    const std::size_t base = GetParam() * kFuzzPerShard;
    for (std::size_t i = 0; i < kFuzzPerShard; ++i) {
        const std::uint64_t seed = 9000 + base + i;
        std::mt19937_64 rng(seed);
        suite::RandomModelParams p;
        p.depth = 2;
        p.subs_per_level = 3;
        p.trigger_probability = 0.5;
        const auto m = suite::random_model(rng, p);
        const Method method = kAllMethods[2 + (base + i) % 4];
        expect_native_matches_interp(m, method, 16, seed, "-O0");
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, FuzzTriggered, ::testing::Range<std::size_t>(0, 2));

// ------------------------------------------------ state-layout contract

TEST(StateContract, SnapshotsRestoreAcrossBackends) {
    const auto m = suite::fuel_controller();
    const CompiledSystem sys = compile_hierarchy(m, Method::Dynamic);
    InterpInstance interp(sys, m);
    const auto exe = build_native(sys, m, Method::Dynamic);
    const std::unique_ptr<Instance> nat = exe->instantiate();

    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> dist(-4.0, 4.0);
    std::vector<double> in(m->num_inputs());
    std::vector<double> out_i(m->num_outputs()), out_n(m->num_outputs());

    // Warm up only the interpreter, snapshot it into the native instance,
    // then require both to continue bit-identically — and symmetrically.
    for (std::size_t t = 0; t < 20; ++t) {
        for (double& v : in) v = dist(rng);
        interp.step_instant_into(in, out_i);
    }
    std::vector<double> blob;
    interp.save_state(blob);
    ASSERT_EQ(nat->restore_state(blob), blob.size());
    for (std::size_t t = 0; t < 20; ++t) {
        for (double& v : in) v = dist(rng);
        interp.step_instant_into(in, out_i);
        nat->step_instant_into(in, out_n);
        expect_rows_bit_equal(out_i, out_n, "interp->native restore t=" + std::to_string(t));
    }

    blob.clear();
    nat->save_state(blob);
    InterpInstance fresh(sys, m);
    ASSERT_EQ(fresh.restore_state(blob), blob.size());
    for (std::size_t t = 0; t < 20; ++t) {
        for (double& v : in) v = dist(rng);
        fresh.step_instant_into(in, out_i);
        nat->step_instant_into(in, out_n);
        expect_rows_bit_equal(out_i, out_n, "native->interp restore t=" + std::to_string(t));
    }
}

// ------------------------------------------------------- error parity

template <typename F> std::string thrown_what(F&& f) {
    try {
        f();
    } catch (const std::exception& e) {
        return e.what();
    }
    return "";
}

TEST(ErrorParity, ValidationMessagesAreIdenticalAcrossBackends) {
    const auto m = suite::counter_limited();
    const CompiledSystem sys = compile_hierarchy(m, Method::Dynamic);
    InterpInstance interp(sys, m);
    const auto exe = build_native(sys, m, Method::Dynamic);
    const std::unique_ptr<Instance> nat = exe->instantiate();

    const std::vector<double> junk(16, 0.0);
    const auto wrong_args = [&](Instance& inst) {
        return thrown_what([&] {
            inst.call(0, std::span<const double>(junk.data(),
                                                 inst.profile().functions[0].reads.size() + 1));
        });
    };
    const auto wrong_inputs = [&](Instance& inst) {
        return thrown_what(
            [&] { inst.step_instant(std::span<const double>(junk.data(), m->num_inputs() + 3)); });
    };
    const auto short_blob = [&](Instance& inst) {
        return thrown_what(
            [&] { inst.restore_state(std::span<const double>(junk.data(), 0)); });
    };

    EXPECT_FALSE(wrong_args(interp).empty());
    EXPECT_EQ(wrong_args(interp), wrong_args(*nat));
    EXPECT_FALSE(wrong_inputs(interp).empty());
    EXPECT_EQ(wrong_inputs(interp), wrong_inputs(*nat));
    EXPECT_FALSE(short_blob(interp).empty());
    EXPECT_EQ(short_blob(interp), short_blob(*nat));
}

TEST(ErrorParity, OpaqueModelsRejectedByBothBackends) {
    const auto file = text::parse_sbd_file(std::string(SBD_MODELS_DIR) +
                                           "/vendor_integration.sbd");
    const CompiledSystem sys = compile_hierarchy(file.root, Method::Dynamic);
    // Interpreter: rejected when the instance is constructed.
    EXPECT_THROW(InterpInstance(sys, file.root), std::logic_error);
    // Native: rejected when the module is emitted, with the coded error the
    // tools map to exit 9.
    try {
        build_native(sys, file.root, Method::Dynamic);
        FAIL() << "opaque model must not build natively";
    } catch (const BackendError& e) {
        EXPECT_EQ(e.code(), BackendError::Code::EmitFailed);
    }
}

TEST(ErrorParity, MissingCompilerIsACodedError) {
    const auto m = suite::counter_limited();
    const CompiledSystem sys = compile_hierarchy(m, Method::Dynamic);
    BackendConfig cfg;
    cfg.backend = Backend::Native;
    cfg.cache_dir = store_dir();
    cfg.compiler = "/nonexistent/definitely-not-a-compiler";
    try {
        native::make_native_executable(sys, m, cfg);
        FAIL() << "missing compiler must not succeed";
    } catch (const BackendError& e) {
        EXPECT_EQ(e.code(), BackendError::Code::NoCompiler);
    }
}

// ----------------------------------------------- artifact-store healing

TEST(ArtifactStore, CorruptedArtifactIsRebuiltNotFatal) {
    namespace fs = std::filesystem;
    const auto m = suite::thermostat();
    const CompiledSystem sys = compile_hierarchy(m, Method::Dynamic);

    const fs::path dir_a = fs::temp_directory_path() / "sbd-native-test-corrupt-a";
    const fs::path dir_b = fs::temp_directory_path() / "sbd-native-test-corrupt-b";
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
    fs::create_directories(dir_b);

    const auto exe_a = build_native(sys, m, Method::Dynamic, "", dir_a.string());
    const native::BuildInfo* info = native::build_info(*exe_a);
    ASSERT_NE(info, nullptr);
    ASSERT_TRUE(fs::exists(info->artifact_path));

    // Plant a corrupted artifact at the exact path the store will probe
    // (same content key, different directory — so the in-process build memo
    // cannot mask the reload).
    const fs::path corrupted = dir_b / fs::path(info->artifact_path).filename();
    std::ofstream(corrupted, std::ios::binary) << "this is not a shared object";

    const auto exe_b = build_native(sys, m, Method::Dynamic, "", dir_b.string());
    const native::BuildInfo* info_b = native::build_info(*exe_b);
    ASSERT_NE(info_b, nullptr);
    EXPECT_FALSE(info_b->cache_hit);

    // And the healed module still matches the interpreter.
    InterpInstance interp(sys, m);
    const std::unique_ptr<Instance> nat = exe_b->instantiate();
    std::vector<double> in(m->num_inputs(), 1.0);
    std::vector<double> out_i(m->num_outputs()), out_n(m->num_outputs());
    for (std::size_t t = 0; t < 8; ++t) {
        interp.step_instant_into(in, out_i);
        nat->step_instant_into(in, out_n);
        expect_rows_bit_equal(out_i, out_n, "healed artifact t=" + std::to_string(t));
    }
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
}

TEST(ArtifactStore, SecondBuildIsACacheHit) {
    namespace fs = std::filesystem;
    const auto m = suite::gear_logic();
    const CompiledSystem sys = compile_hierarchy(m, Method::Singletons);
    const fs::path dir = fs::temp_directory_path() / "sbd-native-test-warm";
    fs::remove_all(dir);

    const auto cold = build_native(sys, m, Method::Singletons, "-O1", dir.string());
    const native::BuildInfo* cold_info = native::build_info(*cold);
    ASSERT_NE(cold_info, nullptr);
    EXPECT_FALSE(cold_info->cache_hit);
    EXPECT_GT(cold_info->tu_bytes, 0u);
    EXPECT_GT(cold_info->so_bytes, 0u);

    // Same key from the same process: served from the build memo.
    const auto warm = build_native(sys, m, Method::Singletons, "-O1", dir.string());
    const native::BuildInfo* warm_info = native::build_info(*warm);
    ASSERT_NE(warm_info, nullptr);
    EXPECT_TRUE(warm_info->cache_hit);
    EXPECT_EQ(warm_info->artifact_path, cold_info->artifact_path);
    fs::remove_all(dir);
}

// ------------------------------------------------- emit_cpp golden files

std::string read_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << "missing golden file " << path
                             << " (regenerate with sbdc --emit cpp)";
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void expect_matches_golden(const std::string& model_file, Method method,
                           const std::string& golden_file) {
    const auto file = text::parse_sbd_file(std::string(SBD_MODELS_DIR) + "/" + model_file);
    const CompiledSystem sys = compile_hierarchy(file.root, method);
    const std::string emitted = emit_cpp(sys);
    const std::string golden = read_file(std::string(SBD_NATIVE_DIR) + "/" + golden_file);
    // Byte-pinned on purpose: any emitter change must consciously touch the
    // golden, because silent drift here is a silent native-backend change.
    EXPECT_EQ(emitted, golden) << "emit_cpp drifted from " << golden_file;
}

TEST(EmitCppGolden, Figure3Dynamic) {
    expect_matches_golden("figure3.sbd", Method::Dynamic, "figure3_dynamic.golden.cpp");
}

TEST(EmitCppGolden, ThermostatDisjointGreedy) {
    expect_matches_golden("thermostat.sbd", Method::DisjointGreedy,
                          "thermostat_disjoint_greedy.golden.cpp");
}

} // namespace
