#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "sbd/library.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;
using sbd::testing::expect_equivalent;
using sbd::testing::random_trace;

const Method kAllMethods[] = {Method::Monolithic,  Method::StepGet,
                              Method::Dynamic,     Method::DisjointSat,
                              Method::DisjointGreedy, Method::Singletons};

std::string method_id(Method m) {
    std::string s = to_string(m);
    for (char& c : s)
        if (c == '-') c = '_';
    return s;
}

// ------------------------------------------------- equivalence, figures

struct EquivCase {
    const char* name;
    std::shared_ptr<const MacroBlock> (*build)();
};

class FigureEquivalence : public ::testing::TestWithParam<Method> {};

TEST_P(FigureEquivalence, Figure1) {
    const auto p = suite::figure1_p();
    expect_equivalent(p, GetParam(), random_trace(p->num_inputs(), 40, 1));
}

TEST_P(FigureEquivalence, Figure3) {
    const auto p = suite::figure3_p();
    expect_equivalent(p, GetParam(), random_trace(p->num_inputs(), 40, 2));
}

TEST_P(FigureEquivalence, Figure4Chain) {
    for (const std::size_t n : {1u, 2u, 5u, 9u}) {
        const auto p = suite::figure4_chain(n);
        expect_equivalent(p, GetParam(), random_trace(p->num_inputs(), 30, 3 + n));
    }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, FigureEquivalence, ::testing::ValuesIn(kAllMethods),
                         [](const auto& info) { return method_id(info.param); });

// --------------------------------------------- equivalence, model suite

struct SuiteCase {
    std::string model;
    Method method;
};

class SuiteEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, Method>> {};

TEST_P(SuiteEquivalence, GeneratedCodeMatchesReferenceSimulator) {
    const auto models = suite::demo_suite();
    const auto& model = models.at(std::get<0>(GetParam()));
    const Method method = std::get<1>(GetParam());
    const auto& m = std::static_pointer_cast<const MacroBlock>(model.block);
    // Monolithic / step-get may legitimately be rejected if an inner macro
    // profile's false dependencies close a cycle at an upper level.
    try {
        expect_equivalent(m, method, random_trace(m->num_inputs(), 60, 97));
    } catch (const SdgCycleError&) {
        EXPECT_TRUE(method == Method::Monolithic || method == Method::StepGet)
            << model.name << ": maximal-reusability methods must never be rejected"
            << " on a flattenable-acyclic model";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SuiteEquivalence,
    ::testing::Combine(::testing::Range<std::size_t>(0, 12), ::testing::ValuesIn(kAllMethods)),
    [](const auto& info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_" +
               method_id(std::get<1>(info.param));
    });

// -------------------------------------------------- call-order freedom

void all_orders(std::vector<std::size_t> fns,
                const std::vector<std::pair<std::size_t, std::size_t>>& pdg,
                std::vector<std::vector<std::size_t>>& out) {
    std::sort(fns.begin(), fns.end());
    do {
        std::vector<std::size_t> pos(fns.size());
        for (std::size_t i = 0; i < fns.size(); ++i) pos[fns[i]] = i;
        bool ok = true;
        for (const auto& [a, b] : pdg)
            if (pos[a] >= pos[b]) ok = false;
        if (ok) out.push_back(fns);
    } while (std::next_permutation(fns.begin(), fns.end()));
}

TEST(CallOrder, EveryPdgLinearizationGivesTheSameTrace) {
    // Figure 4 with n=3: two independent get functions; both orders legal.
    const auto p = suite::figure4_chain(3);
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const Profile& prof = sys.at(*p).profile;
    std::vector<std::size_t> fns(prof.functions.size());
    for (std::size_t i = 0; i < fns.size(); ++i) fns[i] = i;
    std::vector<std::vector<std::size_t>> orders;
    all_orders(fns, prof.pdg_edges, orders);
    ASSERT_GE(orders.size(), 2u);

    const auto trace = random_trace(p->num_inputs(), 25, 7);
    const auto expected = sim::simulate(*p, trace);
    for (const auto& order : orders) {
        InterpInstance inst(sys, p);
        for (std::size_t t = 0; t < trace.size(); ++t) {
            const auto got = inst.step_instant_ordered(trace[t], order);
            for (std::size_t o = 0; o < got.size(); ++o)
                ASSERT_DOUBLE_EQ(got[o], expected[t][o]);
        }
    }
}

TEST(CallOrder, PdgViolationIsRejected) {
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    InterpInstance inst(sys, p);
    // PDG says get (0) before step (1); the reverse order must throw.
    const std::size_t bad[] = {1, 0};
    EXPECT_THROW((void)inst.step_instant_ordered(std::vector<double>{1.0}, bad),
                 std::invalid_argument);
}

// ----------------------------------------------------------- lifecycle

TEST(Instance, InitResetsAllState) {
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    InterpInstance inst(sys, p);
    const auto trace = random_trace(1, 10, 13);
    std::vector<std::vector<double>> first;
    for (const auto& in : trace) first.push_back(inst.step_instant(in));
    inst.init();
    for (std::size_t t = 0; t < trace.size(); ++t)
        EXPECT_EQ(inst.step_instant(trace[t]), first[t]) << t;
}

TEST(Instance, GuardCountersResetWithInit) {
    const auto p = suite::figure4_chain(3);
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    InterpInstance inst(sys, p);
    const auto trace = random_trace(3, 6, 17);
    std::vector<std::vector<double>> first;
    for (const auto& in : trace) first.push_back(inst.step_instant(in));
    inst.init();
    for (std::size_t t = 0; t < trace.size(); ++t)
        EXPECT_EQ(inst.step_instant(trace[t]), first[t]) << t;
}

TEST(Instance, WrongArityThrows) {
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    InterpInstance inst(sys, p);
    EXPECT_THROW((void)inst.step_instant(std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)inst.call(0, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Instance, SharedChainFiresExactlyOncePerInstant) {
    // With the dynamic method on Figure 4, calling both get functions must
    // fire the chain once: a Moore-free chain of gains is idempotent-unsafe
    // only through state, so insert a fir2 (non-Moore, stateful) into the
    // chain via the shared_chain model and check the whole trace.
    const auto m = suite::shared_chain_sensor(5);
    expect_equivalent(m, Method::Dynamic, random_trace(m->num_inputs(), 50, 23));
}

// Embedding: generated profiles compose across levels.
TEST(Instance, EmbeddedFigure3RunsInsideFeedbackContext) {
    const auto p = suite::figure3_p();
    const auto ctx = suite::figure2_context(suite::figure1_p());
    expect_equivalent(ctx, Method::Dynamic, random_trace(ctx->num_inputs(), 40, 29));
    const auto fb = suite::feedback_context(p, 0, 0);
    expect_equivalent(fb, Method::Dynamic, random_trace(fb->num_inputs(), 40, 31));
}

} // namespace
