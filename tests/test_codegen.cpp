#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/exec.hpp"
#include "sbd/library.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

TEST(Codegen, Figure3ProfileAndCodeMatchPaper) {
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const CompiledBlock& cb = sys.at(*p);
    const Profile& prof = cb.profile;
    ASSERT_EQ(prof.functions.size(), 2u);
    // get(): reads nothing (U is Moore), returns P_out.
    EXPECT_EQ(prof.functions[0].name, "get");
    EXPECT_TRUE(prof.functions[0].reads.empty());
    EXPECT_EQ(prof.functions[0].writes, (std::vector<std::size_t>{0}));
    // step(P_in): reads the input, returns nothing.
    EXPECT_EQ(prof.functions[1].name, "step");
    EXPECT_EQ(prof.functions[1].reads, (std::vector<std::size_t>{0}));
    EXPECT_TRUE(prof.functions[1].writes.empty());
    // PDG: P.step depends on P.get (paper Figure 3, bottom right).
    ASSERT_EQ(prof.pdg_edges.size(), 1u);
    EXPECT_EQ(prof.pdg_edges[0], (std::pair<std::size_t, std::size_t>{0, 1}));
    EXPECT_TRUE(prof.sequential);

    const std::string code = cb.code->to_pseudocode();
    // The paper's generated bodies: get calls U.get then A.step; step calls
    // C.step then U.step.
    EXPECT_NE(code.find("U.get()"), std::string::npos);
    EXPECT_NE(code.find("A.step(U_y)"), std::string::npos);
    EXPECT_NE(code.find("C.step(P_in)"), std::string::npos);
    EXPECT_NE(code.find("U.step(C_y)"), std::string::npos);
    // No guard counters: clusters are disjoint here.
    EXPECT_EQ(code.find("mod"), std::string::npos);
}

TEST(Codegen, Figure4DynamicUsesGuardCounters) {
    const auto p = suite::figure4_chain(4);
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const CodeUnit& code = *sys.at(*p).code;
    ASSERT_EQ(code.functions.size(), 2u);
    ASSERT_EQ(code.counter_mods.size(), 1u);
    EXPECT_EQ(code.counter_mods[0], 2); // the paper's modulo-2 counter
    const std::string text = code.to_pseudocode();
    EXPECT_NE(text.find("if (c0 == 0)"), std::string::npos);
    EXPECT_NE(text.find("c0 := (c0 + 1) mod 2"), std::string::npos);
    // Both functions replicate the chain; the bump appears in each.
    std::size_t bumps = 0;
    for (std::size_t pos = 0; (pos = text.find("mod 2", pos)) != std::string::npos; ++pos)
        ++bumps;
    EXPECT_EQ(bumps, 2u);
}

TEST(Codegen, Figure4DisjointHasNoCountersAndSmallerCode) {
    const auto p = suite::figure4_chain(8);
    const auto dyn = compile_hierarchy(p, Method::Dynamic);
    const auto dis = compile_hierarchy(p, Method::DisjointSat);
    const CodeUnit& dyn_code = *dyn.at(*p).code;
    const CodeUnit& dis_code = *dis.at(*p).code;
    EXPECT_TRUE(dis_code.counter_mods.empty());
    EXPECT_FALSE(dyn_code.counter_mods.empty());
    // Section 5: the disjoint code is smaller (no replicated chain) and
    // avoids the counter.
    EXPECT_LT(dis_code.line_count(), dyn_code.line_count());
    EXPECT_LT(dis_code.call_count(), dyn_code.call_count());
    // Dynamic replicates the chain in both functions: 8 extra calls.
    EXPECT_EQ(dyn_code.call_count() - dis_code.call_count(), 8u);
}

TEST(Codegen, MonolithicSingleStepFunction) {
    const auto p = suite::figure1_p();
    const auto sys = compile_hierarchy(p, Method::Monolithic);
    const Profile& prof = sys.at(*p).profile;
    ASSERT_EQ(prof.functions.size(), 1u);
    EXPECT_EQ(prof.functions[0].name, "step");
    EXPECT_EQ(prof.functions[0].reads, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(prof.functions[0].writes, (std::vector<std::size_t>{0, 1}));
    EXPECT_TRUE(prof.pdg_edges.empty());
}

TEST(Codegen, PassThroughEmitsAssignment) {
    auto m = std::make_shared<MacroBlock>("PT", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y", "z"});
    m->add_sub("G", lib::gain(2.0));
    m->connect("x", "G.u");
    m->connect("G.y", "y");
    m->connect("x", "z");
    const auto sys = compile_hierarchy(std::static_pointer_cast<const Block>(m),
                                       Method::Dynamic);
    const std::string code = sys.at(*m).code->to_pseudocode();
    EXPECT_NE(code.find("pass_z := x"), std::string::npos);
    // Executing it: z mirrors x, y doubles it.
    InterpInstance inst(sys, m);
    const auto out = inst.step_instant(std::vector<double>{3.0});
    EXPECT_EQ(out[0], 6.0);
    EXPECT_EQ(out[1], 3.0);
}

TEST(Codegen, SequentialSubsListedForInit) {
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const CodeUnit& code = *sys.at(*p).code;
    ASSERT_EQ(code.sequential_subs.size(), 1u);
    EXPECT_EQ(p->sub(code.sequential_subs[0]).name, "U");
}

TEST(Codegen, GeneratedFunctionNamesAreStable) {
    const auto p = suite::figure1_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const Profile& prof = sys.at(*p).profile;
    ASSERT_EQ(prof.functions.size(), 2u);
    EXPECT_EQ(prof.functions[0].name, "get1");
    EXPECT_EQ(prof.functions[1].name, "get2");
}

TEST(Codegen, LineCountCountsEveryStatementOnce) {
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const CodeUnit& code = *sys.at(*p).code;
    // get: sig + U.get + A.step + return + close = 5; step: sig + C.step +
    // U.step + close = 4.
    EXPECT_EQ(code.line_count(), 9u);
}

TEST(Codegen, RejectsNonBackwardClosedSharedCluster) {
    // Hand-build an invalid overlapping clustering: a shared node whose
    // producer is missing from one cluster must be rejected (guard-counter
    // invariant).
    const auto p = suite::figure4_chain(2);
    std::vector<Profile> profiles;
    std::vector<const Profile*> ptrs;
    for (std::size_t s = 0; s < p->num_subs(); ++s)
        profiles.push_back(atomic_profile(static_cast<const AtomicBlock&>(*p->sub(s).type)));
    for (const auto& pr : profiles) ptrs.push_back(&pr);
    const Sdg sdg = build_sdg(*p, ptrs);

    // Find the chain nodes A1 -> A2(split) and outputs' nodes B, C.
    Clustering bad;
    bad.method = Method::Dynamic;
    const auto a1 = sdg.internal_nodes[0];
    const auto a2 = sdg.internal_nodes[1];
    const auto b = sdg.internal_nodes[2];
    const auto c = sdg.internal_nodes[3];
    // a2 shared, but cluster 2 lacks its producer a1.
    bad.clusters = {{a1, a2, b}, {a2, c}};
    EXPECT_THROW((void)generate_code(*p, ptrs, sdg, bad), std::logic_error);
}

TEST(Codegen, HierarchicalCompilationSharesBlockTypes) {
    // The same block type used twice is compiled once.
    auto m = std::make_shared<MacroBlock>("Twice", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    const auto inner = suite::figure3_p();
    m->add_sub("P1", inner);
    m->add_sub("P2", inner);
    m->connect("x", "P1.P_in");
    m->connect("P1.P_out", "P2.P_in");
    m->connect("P2.P_out", "y");
    const auto sys = compile_hierarchy(std::static_pointer_cast<const Block>(m),
                                       Method::Dynamic);
    // order: atomic blocks of P (3) + P + Twice = 5 entries.
    EXPECT_EQ(sys.order().size(), 5u);
    EXPECT_EQ(sys.total_functions(), 2u + 2u); // P has 2, Twice has 2
}

TEST(Codegen, TotalsAggregateOverHierarchy) {
    const auto model = suite::fuel_controller();
    const auto sys = compile_hierarchy(model, Method::Dynamic);
    EXPECT_GT(sys.total_lines(), 20u);
    EXPECT_GT(sys.total_functions(), 4u);
}

TEST(Codegen, PseudocodeShowsSignatureAndReturns) {
    const auto p = suite::figure1_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const std::string code = sys.at(*p).code->to_pseudocode();
    EXPECT_NE(code.find("P_fig1.get1(x1) returns (y1)"), std::string::npos);
    EXPECT_NE(code.find("P_fig1.get2(x1, x2) returns (y2)"), std::string::npos);
    EXPECT_NE(code.find("return (B_y);"), std::string::npos);
}

} // namespace
