#include <gtest/gtest.h>

#include <cmath>

#include "sbd/flatten.hpp"
#include "sbd/library.hpp"
#include "sim/simulator.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;

std::shared_ptr<MacroBlock> wrap_single(const BlockPtr& b, const std::string& name) {
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < b->num_inputs(); ++i) ins.push_back(b->input_name(i));
    for (std::size_t o = 0; o < b->num_outputs(); ++o) outs.push_back("o_" + b->output_name(o));
    auto m = std::make_shared<MacroBlock>(name, ins, outs);
    const auto s = m->add_sub("B", b);
    for (std::size_t i = 0; i < b->num_inputs(); ++i)
        m->connect(Endpoint{Endpoint::Kind::MacroInput, -1, static_cast<std::int32_t>(i)},
                   Endpoint{Endpoint::Kind::SubInput, s, static_cast<std::int32_t>(i)});
    for (std::size_t o = 0; o < b->num_outputs(); ++o)
        m->connect(Endpoint{Endpoint::Kind::SubOutput, s, static_cast<std::int32_t>(o)},
                   Endpoint{Endpoint::Kind::MacroOutput, -1, static_cast<std::int32_t>(o)});
    return m;
}

std::vector<double> run1(const BlockPtr& b, const std::vector<std::vector<double>>& trace) {
    std::vector<double> out;
    for (const auto& row : sim::simulate(*wrap_single(b, "W"), trace)) out.push_back(row[0]);
    return out;
}

TEST(AtomicSemantics, GainSumProduct) {
    EXPECT_EQ(run1(lib::gain(2.5), {{4.0}}), std::vector<double>{10.0});
    EXPECT_EQ(run1(lib::sum("+-"), {{7.0, 3.0}}), std::vector<double>{4.0});
    EXPECT_EQ(run1(lib::product(2), {{6.0, 7.0}}), std::vector<double>{42.0});
}

TEST(AtomicSemantics, UnitDelayShiftsByOne) {
    const auto out = run1(lib::unit_delay(9.0), {{1.0}, {2.0}, {3.0}});
    EXPECT_EQ(out, (std::vector<double>{9.0, 1.0, 2.0}));
}

TEST(AtomicSemantics, IntegratorAccumulates) {
    const auto out = run1(lib::integrator(0.5, 1.0), {{2.0}, {2.0}, {2.0}});
    EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(AtomicSemantics, Fir2UsesCurrentAndPreviousInput) {
    // y(k) = 2 x(k) + 3 x(k-1), x(-1) = 0.
    const auto out = run1(lib::fir2(2.0, 3.0), {{1.0}, {10.0}, {100.0}});
    EXPECT_EQ(out, (std::vector<double>{2.0, 23.0, 230.0}));
}

TEST(AtomicSemantics, SaturationClamps) {
    const auto out = run1(lib::saturation(-1.0, 1.0), {{-5.0}, {0.25}, {2.0}});
    EXPECT_EQ(out, (std::vector<double>{-1.0, 0.25, 1.0}));
}

TEST(AtomicSemantics, SwitchSelects) {
    const auto out = run1(lib::switch_block(0.5), {{1.0, 1.0, 2.0}, {1.0, 0.0, 2.0}});
    EXPECT_EQ(out, (std::vector<double>{1.0, 2.0}));
}

TEST(AtomicSemantics, RelationalAndLogic) {
    EXPECT_EQ(run1(lib::relational("<"), {{1.0, 2.0}, {2.0, 1.0}}),
              (std::vector<double>{1.0, 0.0}));
    EXPECT_EQ(run1(lib::logic("AND", 2), {{1.0, 1.0}, {1.0, 0.0}}),
              (std::vector<double>{1.0, 0.0}));
    EXPECT_EQ(run1(lib::logic("NOT"), {{0.0}}), std::vector<double>{1.0});
    EXPECT_EQ(run1(lib::logic("XOR", 2), {{1.0, 1.0}, {0.0, 1.0}}),
              (std::vector<double>{0.0, 1.0}));
}

TEST(AtomicSemantics, Lookup1dInterpolatesAndClamps) {
    const auto lut = lib::lookup1d({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
    const auto out = run1(lut, {{-1.0}, {0.5}, {1.5}, {3.0}});
    EXPECT_EQ(out, (std::vector<double>{0.0, 5.0, 25.0, 40.0}));
}

TEST(AtomicSemantics, MovingAverage) {
    const auto out = run1(lib::moving_average(3), {{3.0}, {6.0}, {9.0}, {12.0}});
    EXPECT_EQ(out, (std::vector<double>{1.0, 3.0, 6.0, 9.0}));
}

TEST(AtomicSemantics, CounterCountsEnabledInstants) {
    const auto out = run1(lib::counter(), {{1.0}, {1.0}, {0.0}, {1.0}});
    EXPECT_EQ(out, (std::vector<double>{0.0, 1.0, 2.0, 2.0}));
}

TEST(AtomicSemantics, SampleHoldLatchesOnTrigger) {
    const auto out =
        run1(lib::sample_hold(5.0), {{1.0, 0.0}, {2.0, 1.0}, {3.0, 0.0}, {4.0, 1.0}});
    EXPECT_EQ(out, (std::vector<double>{5.0, 5.0, 2.0, 2.0}));
}

TEST(AtomicSemantics, DeadZone) {
    const auto out = run1(lib::dead_zone(-1.0, 1.0), {{-3.0}, {0.5}, {2.5}});
    EXPECT_EQ(out, (std::vector<double>{-2.0, 0.0, 1.5}));
}

TEST(Simulator, RequiresFlatDiagram) {
    const auto nested = wrap_single(sbd::suite::figure3_p(), "Outer");
    EXPECT_THROW(sim::Simulator s(nested), ModelError);
    EXPECT_NO_THROW(sim::Simulator s(flatten(*nested)));
}

TEST(Simulator, Figure3IsADelayedScaledSignal) {
    // P of Figure 3: out = 3 * delay(0.5 * in).
    const auto p = sbd::suite::figure3_p();
    const auto out = sim::simulate(*p, {{2.0}, {4.0}, {6.0}});
    EXPECT_EQ(out[0][0], 0.0);
    EXPECT_EQ(out[1][0], 3.0);
    EXPECT_EQ(out[2][0], 6.0);
}

TEST(Simulator, DelayFeedbackLoopAccumulates) {
    // y = g(0.5 * delay(y) ) ... build: D holds y, G = 0.5*D + 1 via sum with
    // constant: y(k) = 0.5*y(k-1) + 1.
    auto m = std::make_shared<MacroBlock>("Acc", std::vector<std::string>{},
                                          std::vector<std::string>{"y"});
    m->add_sub("D", lib::unit_delay(0.0));
    m->add_sub("Half", lib::gain(0.5));
    m->add_sub("One", lib::constant(1.0));
    m->add_sub("Add", lib::sum("++"));
    m->connect("D.y", "Half.u");
    m->connect("Half.y", "Add.u1");
    m->connect("One.y", "Add.u2");
    m->connect("Add.y", "D.u");
    m->connect("Add.y", "y");
    const auto out = sim::simulate(*m, {{}, {}, {}, {}});
    EXPECT_EQ(out[0][0], 1.0);
    EXPECT_EQ(out[1][0], 1.5);
    EXPECT_EQ(out[2][0], 1.75);
    EXPECT_EQ(out[3][0], 1.875);
}

TEST(Simulator, ResetRestoresInitialState) {
    sim::Simulator s(flatten(*wrap_single(lib::integrator(1.0, 0.0), "W")));
    (void)s.step(std::vector<double>{5.0});
    (void)s.step(std::vector<double>{5.0});
    EXPECT_EQ(s.instant(), 2u);
    s.reset();
    EXPECT_EQ(s.instant(), 0u);
    const auto out = s.step(std::vector<double>{1.0});
    EXPECT_EQ(out[0], 0.0);
}

TEST(Simulator, WrongInputArityThrows) {
    sim::Simulator s(flatten(*wrap_single(lib::gain(1.0), "W")));
    EXPECT_THROW((void)s.step(std::vector<double>{1.0, 2.0}), ModelError);
}

TEST(Simulator, ThermostatRegulatesAroundSetpoint) {
    const auto t = sbd::suite::thermostat();
    std::vector<std::vector<double>> trace(2000, {20.0, 5.0});
    const auto out = sim::simulate(*t, trace);
    // After settling, temperature stays within the hysteresis band.
    for (std::size_t k = 1500; k < out.size(); ++k) {
        EXPECT_GT(out[k][0], 17.5) << k;
        EXPECT_LT(out[k][0], 22.5) << k;
        EXPECT_TRUE(out[k][1] == 0.0 || out[k][1] == 1.0);
    }
}

TEST(Simulator, CruiseControlConvergesToSetpoint) {
    const auto c = sbd::suite::pi_cruise();
    std::vector<std::vector<double>> trace(8000, {30.0});
    const auto out = sim::simulate(*c, trace);
    EXPECT_NEAR(out.back()[0], 30.0, 1.0);
}

TEST(Simulator, GearLogicStaysInRange) {
    const auto g = sbd::suite::gear_logic();
    std::vector<std::vector<double>> trace;
    for (int k = 0; k < 300; ++k)
        trace.push_back({std::fabs(std::sin(k * 0.02)) * 70.0, 30.0});
    for (const auto& row : sim::simulate(*g, trace)) {
        EXPECT_GE(row[0], 1.0);
        EXPECT_LE(row[0], 5.0);
    }
}

TEST(Simulator, SuiteModelsRunWithoutNaN) {
    for (const auto& model : sbd::suite::demo_suite()) {
        const auto& m = static_cast<const MacroBlock&>(*model.block);
        std::vector<std::vector<double>> trace(50, std::vector<double>(m.num_inputs(), 0.75));
        for (const auto& row : sim::simulate(m, trace))
            for (const double v : row) EXPECT_TRUE(std::isfinite(v)) << model.name;
    }
}

} // namespace
