#include <gtest/gtest.h>

#include <random>

#include "core/clustering.hpp"
#include "core/compiler.hpp"
#include "core/methods.hpp"
#include "sat/solver.hpp"
#include "sbd/library.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"
#include "suite/npred.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

Sdg sdg_of(const MacroBlock& m, std::vector<Profile>& storage) {
    storage.clear();
    std::vector<const Profile*> ptrs;
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        storage.push_back(atomic_profile(static_cast<const AtomicBlock&>(*m.sub(s).type)));
    for (const auto& p : storage) ptrs.push_back(&p);
    return build_sdg(m, ptrs);
}

// ---------------------------------------------------------------- figures

TEST(Dynamic, Figure3TwoClustersMatchingPaper) {
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_dynamic(sdg);
    ASSERT_EQ(c.num_clusters(), 2u);
    // get cluster: {U.get, A.step};  step cluster: {C.step, U.step}.
    EXPECT_EQ(c.clusters[0].size(), 2u);
    EXPECT_EQ(c.clusters[1].size(), 2u);
    EXPECT_EQ(c.replicated_nodes(sdg), 0u);
    EXPECT_TRUE(c.is_partition(sdg));
    // PDG: step depends on get (cluster 0 before cluster 1).
    const auto pdg = cluster_pdg_edges(sdg, c);
    ASSERT_EQ(pdg.size(), 1u);
    EXPECT_EQ(pdg[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(Dynamic, Figure1TwoOverlappingClusters) {
    const auto p = suite::figure1_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_dynamic(sdg);
    // In(y1) = {x1} != In(y2) = {x1, x2}: two clusters sharing A.step.
    ASSERT_EQ(c.num_clusters(), 2u);
    EXPECT_EQ(c.replicated_nodes(sdg), 1u);
    EXPECT_FALSE(c.is_partition(sdg));
    EXPECT_TRUE(false_io_dependencies(sdg, c).empty());
}

TEST(Dynamic, Figure4TwoClustersSharingTheChain) {
    const std::size_t n = 6;
    const auto p = suite::figure4_chain(n);
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_dynamic(sdg);
    ASSERT_EQ(c.num_clusters(), 2u);
    // Both clusters contain the whole chain A1..An: n shared nodes.
    EXPECT_EQ(c.replicated_nodes(sdg), n);
    EXPECT_TRUE(false_io_dependencies(sdg, c).empty());
    // No PDG constraints between the two get functions (paper Figure 4c).
    EXPECT_TRUE(cluster_pdg_edges(sdg, c).empty());
}

TEST(DisjointSat, Figure4ThreeClustersNoReplication) {
    const std::size_t n = 6;
    const auto p = suite::figure4_chain(n);
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    SatClusterStats stats;
    const Clustering c = cluster_disjoint_sat(sdg, {}, &stats);
    ASSERT_EQ(c.num_clusters(), 3u); // paper Figure 4(d)
    EXPECT_EQ(c.replicated_nodes(sdg), 0u);
    EXPECT_TRUE(check_validity(sdg, c).valid());
    EXPECT_GE(stats.iterations, 1u);
    EXPECT_EQ(stats.final_k, 3u);
    // PDG of Figure 4(e): the chain cluster precedes both get clusters.
    const auto pdg = cluster_pdg_edges(sdg, c);
    EXPECT_EQ(pdg.size(), 2u);
}

TEST(DisjointSat, Figure3MatchesDynamicCount) {
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_disjoint_sat(sdg);
    EXPECT_EQ(c.num_clusters(), 2u);
    EXPECT_TRUE(check_validity(sdg, c).valid());
}

TEST(StepGet, AtMostTwoClustersAndLosesReusability) {
    const auto p = suite::figure1_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_stepget(sdg);
    ASSERT_EQ(c.num_clusters(), 1u); // all three nodes feed outputs
    // Single get computing both outputs adds the false dependency x2 -> y1.
    const auto added = false_io_dependencies(sdg, c);
    ASSERT_EQ(added.size(), 1u);
    EXPECT_EQ(added[0], (std::pair<std::size_t, std::size_t>{1, 0}));
}

TEST(StepGet, Figure3SplitsGetAndUpdate) {
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_stepget(sdg);
    ASSERT_EQ(c.num_clusters(), 2u);
    EXPECT_TRUE(false_io_dependencies(sdg, c).empty()); // here step-get suffices
}

TEST(Monolithic, SingleClusterAddsFalseDeps) {
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_monolithic(sdg);
    ASSERT_EQ(c.num_clusters(), 1u);
    // The paper's Section 4 example: P_in -> P_out false dependency.
    const auto added = false_io_dependencies(sdg, c);
    ASSERT_EQ(added.size(), 1u);
    EXPECT_EQ(added[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(Singletons, AlwaysValidAndFinest) {
    const auto p = suite::figure4_chain(4);
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const Clustering c = cluster_singletons(sdg);
    EXPECT_EQ(c.num_clusters(), sdg.internal_nodes.size());
    EXPECT_TRUE(check_validity(sdg, c).valid());
}

TEST(Dynamic, FoldsUpdateClusterWhenHarmless) {
    // x -> A -> B -> y and A also feeds a delay D whose output is unused
    // upstream: In(update) = {x} = In(y), so the update nodes fold into the
    // single get cluster and the dynamic method emits ONE function.
    auto m = std::make_shared<MacroBlock>("Fold", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("A", lib::gain(1.0));
    m->add_sub("B", lib::gain(2.0));
    m->add_sub("D", lib::unit_delay(0.0));
    m->connect("x", "A.u");
    m->connect("A.y", "B.u");
    m->connect("B.y", "y");
    m->connect("A.y", "D.u");
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*m, storage);
    EXPECT_EQ(cluster_dynamic(sdg).num_clusters(), 1u);
    EXPECT_EQ(cluster_dynamic(sdg, {.fold_update_into_get = false}).num_clusters(), 2u);
    EXPECT_TRUE(false_io_dependencies(sdg, cluster_dynamic(sdg)).empty());
}

// --------------------------------------------------- validity and lemmas

TEST(Validity, ChecksAllThreeConditions) {
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    // Not a partition: a node missing.
    Clustering missing;
    missing.clusters = {{sdg.internal_nodes[0]}};
    EXPECT_FALSE(check_validity(sdg, missing).partition);
    // The monolithic clustering is a partition but adds false deps.
    const auto mono = cluster_monolithic(sdg);
    const auto rep = check_validity(sdg, mono);
    EXPECT_TRUE(rep.partition);
    EXPECT_FALSE(rep.no_false_io);
    EXPECT_TRUE(rep.acyclic);
    EXPECT_FALSE(rep.valid());
}

TEST(Validity, DetectsCyclicQuotient) {
    // a -> b -> c with clustering {a,c},{b}: quotient has a 2-cycle.
    std::mt19937_64 rng(3);
    const Sdg sdg = suite::random_flat_sdg(rng, 1, 1, 3, 0.0);
    Sdg chain = sdg;
    chain.graph.add_edge(chain.internal_nodes[0], chain.internal_nodes[1]);
    chain.graph.add_edge(chain.internal_nodes[1], chain.internal_nodes[2]);
    Clustering c;
    c.clusters = {{chain.internal_nodes[0], chain.internal_nodes[2]},
                  {chain.internal_nodes[1]}};
    const auto rep = check_validity(chain, c);
    EXPECT_TRUE(rep.partition);
    EXPECT_FALSE(rep.acyclic);
}

TEST(Mergeability, Figure7GadgetClaims) {
    // Paper's Proposition 2 argument: in G_f, vertex nodes u, v are
    // mergeable iff (u,v) is an edge of G; edge nodes e'_u merge with
    // nothing.
    graph::Undirected g(3);
    g.add_edge(0, 1); // single edge (0,1); node 2 isolated
    const Sdg sdg = suite::reduction_sdg(g);
    // Layout: internal nodes 0,1,2 = vertices; 3,4 = e'_u, e'_v.
    const auto& in_ = sdg.internal_nodes;
    EXPECT_TRUE(mergeable(sdg, in_[0], in_[1]));  // adjacent
    EXPECT_FALSE(mergeable(sdg, in_[0], in_[2])); // not adjacent
    EXPECT_FALSE(mergeable(sdg, in_[1], in_[2]));
    for (const auto e : {in_[3], in_[4]})
        for (const auto other : in_)
            if (other != e) { EXPECT_FALSE(mergeable(sdg, e, other)); }
}

TEST(Mergeability, GraphEqualsOriginalPlusIsolatedEdgeNodes) {
    std::mt19937_64 rng(17);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int iter = 0; iter < 10; ++iter) {
        const std::size_t n = 3 + static_cast<std::size_t>(unit(rng) * 3);
        graph::Undirected g(n);
        for (std::size_t a = 0; a < n; ++a)
            for (std::size_t b = a + 1; b < n; ++b)
                if (unit(rng) < 0.5) g.add_edge(a, b);
        const Sdg sdg = suite::reduction_sdg(g);
        const graph::Undirected m = mergeability_graph(sdg);
        ASSERT_EQ(m.num_nodes(), n + 2 * g.num_edges());
        for (std::size_t a = 0; a < m.num_nodes(); ++a)
            for (std::size_t b = a + 1; b < m.num_nodes(); ++b) {
                const bool expected = a < n && b < n && g.has_edge(a, b);
                EXPECT_EQ(m.has_edge(a, b), expected) << a << "," << b;
            }
    }
}

TEST(Lemma1Refinement, SplittingAClusterPreservesAlmostValidity) {
    std::mt19937_64 rng(23);
    for (int iter = 0; iter < 20; ++iter) {
        const Sdg sdg = suite::random_flat_sdg(rng, 3, 3, 8, 0.2);
        const Clustering coarse = cluster_disjoint_greedy(sdg);
        // Split every splittable cluster in two; result must stay almost
        // valid (Lemma 1).
        Clustering fine;
        fine.method = coarse.method;
        for (const auto& cl : coarse.clusters) {
            if (cl.size() < 2) {
                fine.clusters.push_back(cl);
                continue;
            }
            const std::size_t half = cl.size() / 2;
            fine.clusters.emplace_back(cl.begin(), cl.begin() + half);
            fine.clusters.emplace_back(cl.begin() + half, cl.end());
        }
        EXPECT_TRUE(check_validity(sdg, fine).almost_valid());
    }
}

TEST(Lemma4Merge, EqualInOutClustersCanMerge) {
    std::mt19937_64 rng(29);
    for (int iter = 0; iter < 30; ++iter) {
        const Sdg sdg = suite::random_flat_sdg(rng, 3, 3, 7, 0.25);
        const Clustering c = cluster_singletons(sdg);
        // Find two singleton clusters with equal In/Out dependency sets in
        // the quotient and merge them: almost-validity must be preserved.
        const auto deps = exported_io_dependencies(sdg, c);
        // Compute In/Out per cluster via cones.
        for (std::size_t a = 0; a < c.clusters.size(); ++a) {
            for (std::size_t b = a + 1; b < c.clusters.size(); ++b) {
                const auto u = c.clusters[a][0], v = c.clusters[b][0];
                const auto in_u = sdg.graph.reaching_to(u);
                const auto in_v = sdg.graph.reaching_to(v);
                const auto out_u = sdg.graph.reachable_from(u);
                const auto out_v = sdg.graph.reachable_from(v);
                bool same = true;
                for (const auto i : sdg.input_nodes)
                    if (in_u.test(i) != in_v.test(i)) same = false;
                for (const auto o : sdg.output_nodes)
                    if (out_u.test(o) != out_v.test(o)) same = false;
                if (!same) continue;
                Clustering merged = c;
                merged.clusters[a].push_back(v);
                std::sort(merged.clusters[a].begin(), merged.clusters[a].end());
                merged.clusters.erase(merged.clusters.begin() +
                                      static_cast<std::ptrdiff_t>(b));
                EXPECT_TRUE(check_validity(sdg, merged).almost_valid());
            }
        }
        (void)deps;
    }
}

// ----------------------------------------------- optimality (SAT vs brute)

TEST(DisjointSat, MatchesBruteForceOnRandomSdgs) {
    std::mt19937_64 rng(31);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int iter = 0; iter < 30; ++iter) {
        const std::size_t internals = 3 + static_cast<std::size_t>(unit(rng) * 5);
        const Sdg sdg = suite::random_flat_sdg(rng, 2 + iter % 3, 2 + iter % 2, internals,
                                               0.15 + 0.2 * unit(rng));
        const Clustering best = brute_force_optimal_disjoint(sdg);
        const Clustering sat = cluster_disjoint_sat(sdg);
        EXPECT_EQ(sat.num_clusters(), best.num_clusters()) << "iter " << iter;
        EXPECT_TRUE(check_validity(sdg, sat).valid());
    }
}

TEST(DisjointSat, SymmetryBreakingDoesNotChangeOptimum) {
    std::mt19937_64 rng(37);
    for (int iter = 0; iter < 10; ++iter) {
        const Sdg sdg = suite::random_flat_sdg(rng, 3, 3, 7, 0.25);
        const auto with = cluster_disjoint_sat(sdg, {.sat_symmetry_breaking = true});
        const auto without = cluster_disjoint_sat(sdg, {.sat_symmetry_breaking = false});
        EXPECT_EQ(with.num_clusters(), without.num_clusters());
    }
}

TEST(DisjointSat, StartKOverrideStillOptimal) {
    const auto p = suite::figure4_chain(5);
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    SatClusterStats stats;
    const auto c = cluster_disjoint_sat(sdg, {.sat_start_k = 1}, &stats);
    EXPECT_EQ(c.num_clusters(), 3u);
    EXPECT_EQ(stats.first_k, 1u);
    EXPECT_EQ(stats.iterations, 3u);
}

// --------------------------------------------------- NP-reduction theorem

TEST(NpReduction, OptimalClustersEqualCliquePartitionPlusGadgets) {
    std::mt19937_64 rng(41);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int iter = 0; iter < 12; ++iter) {
        const std::size_t n = 3 + static_cast<std::size_t>(unit(rng) * 2); // 3..5 vertices
        graph::Undirected g(n);
        for (std::size_t a = 0; a < n; ++a)
            for (std::size_t b = a + 1; b < n; ++b)
                if (unit(rng) < 0.5) g.add_edge(a, b);
        std::size_t cliques = 0;
        g.min_clique_partition(&cliques);
        const Sdg sdg = suite::reduction_sdg(g);
        const Clustering sat = cluster_disjoint_sat(sdg);
        EXPECT_EQ(sat.num_clusters(), suite::reduction_expected_clusters(g, cliques))
            << "n=" << n << " |E|=" << g.num_edges();
        EXPECT_TRUE(check_validity(sdg, sat).valid());
    }
}

// ------------------------------------------------------------ method laws

struct MethodLawsCase {
    const char* name;
    std::uint64_t seed;
    std::size_t internals;
};

class MethodLaws : public ::testing::TestWithParam<MethodLawsCase> {};

TEST_P(MethodLaws, CountAndValidityOrderings) {
    std::mt19937_64 rng(GetParam().seed);
    const Sdg sdg = suite::random_flat_sdg(rng, 3, 4, GetParam().internals, 0.2);

    const Clustering dyn = cluster_dynamic(sdg);
    const Clustering sat = cluster_disjoint_sat(sdg);
    const Clustering greedy = cluster_disjoint_greedy(sdg);
    const Clustering fine = cluster_singletons(sdg);
    const Clustering sg = cluster_stepget(sdg);
    const Clustering mono = cluster_monolithic(sdg);

    // Maximal reusability where promised.
    EXPECT_TRUE(false_io_dependencies(sdg, dyn).empty());
    EXPECT_TRUE(check_validity(sdg, sat).valid());
    EXPECT_TRUE(check_validity(sdg, greedy).valid());
    EXPECT_TRUE(check_validity(sdg, fine).valid());

    // Modularity ordering: dynamic <= optimal disjoint <= greedy <= finest.
    EXPECT_LE(dyn.num_clusters(), sat.num_clusters());
    EXPECT_LE(sat.num_clusters(), greedy.num_clusters());
    EXPECT_LE(greedy.num_clusters(), fine.num_clusters());
    EXPECT_LE(mono.num_clusters(), 1u);
    EXPECT_LE(sg.num_clusters(), 2u);

    // The n+1 bound of the dynamic method.
    EXPECT_LE(dyn.num_clusters(), sdg.num_outputs() + 1);

    // Disjoint methods never replicate.
    EXPECT_EQ(sat.replicated_nodes(sdg), 0u);
    EXPECT_EQ(greedy.replicated_nodes(sdg), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomSdgs, MethodLaws,
                         ::testing::Values(MethodLawsCase{"small", 51, 5},
                                           MethodLawsCase{"mid", 52, 9},
                                           MethodLawsCase{"bigger", 53, 13},
                                           MethodLawsCase{"dense", 54, 11},
                                           MethodLawsCase{"wide", 55, 15}),
                         [](const auto& info) { return info.param.name; });

TEST(MethodLaws, SuiteModelsDynamicIsOptimalAmongDisjoint) {
    // On every suite model and at every level, #dynamic <= #disjoint-sat
    // (the paper's "disjoint clustering generally loses modularity").
    for (const auto& model : suite::demo_suite()) {
        const auto dyn_sys = compile_hierarchy(model.block, Method::Dynamic);
        const auto sat_sys = compile_hierarchy(model.block, Method::DisjointSat);
        for (const auto* b : dyn_sys.order()) {
            const auto& dcb = dyn_sys.at(*b);
            if (!dcb.clustering) continue;
            const auto& scb = sat_sys.at(*b);
            EXPECT_LE(dcb.clustering->num_clusters(), scb.clustering->num_clusters())
                << model.name << " block " << b->type_name();
            EXPECT_EQ(scb.clustering->replicated_nodes(*scb.sdg), 0u);
        }
    }
}

// ------------------------------------------------ F_k encoding / DIMACS

TEST(EncodeFk, SatisfiabilityTracksOptimum) {
    // F_k is UNSAT for every k below the optimum and SAT at the optimum
    // (Lemma 6 + the iterative procedure of Section 7), independently
    // re-checked by feeding the exported CNF to a fresh solver.
    const auto p = suite::figure4_chain(4);
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const std::size_t optimum = cluster_disjoint_sat(sdg).num_clusters();
    for (std::size_t k = 1; k <= optimum + 1; ++k) {
        const sat::Cnf cnf = encode_fk(sdg, k, {.sat_start_k = -1});
        sat::Solver solver;
        for (std::size_t v = 0; v < cnf.num_vars; ++v) solver.new_var();
        for (const auto& clause : cnf.clauses) solver.add_clause(clause);
        EXPECT_EQ(solver.solve(), k >= optimum) << "k=" << k;
    }
}

TEST(EncodeFk, DimacsRoundTripPreservesTheFormula) {
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const Sdg sdg = sdg_of(*p, storage);
    const sat::Cnf cnf = encode_fk(sdg, 2);
    const sat::Cnf back = sat::parse_dimacs_string(sat::to_dimacs(cnf));
    EXPECT_EQ(back.num_vars, cnf.num_vars);
    EXPECT_EQ(back.clauses, cnf.clauses);
}

TEST(EncodeFk, SymmetryBreakingPreservesSatisfiability) {
    std::mt19937_64 rng(61);
    for (int iter = 0; iter < 8; ++iter) {
        const Sdg sdg = suite::random_flat_sdg(rng, 3, 3, 6, 0.25);
        for (std::size_t k = 1; k <= 4; ++k) {
            const auto solve = [&](bool sym) {
                const sat::Cnf cnf = encode_fk(sdg, k, {.sat_symmetry_breaking = sym});
                sat::Solver solver;
                for (std::size_t v = 0; v < cnf.num_vars; ++v) solver.new_var();
                for (const auto& clause : cnf.clauses) solver.add_clause(clause);
                return solver.solve();
            };
            EXPECT_EQ(solve(true), solve(false)) << "k=" << k;
        }
    }
}

} // namespace
