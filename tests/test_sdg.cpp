#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/sdg.hpp"
#include "sbd/library.hpp"
#include "suite/figures.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

std::vector<const Profile*> atomic_profiles(const MacroBlock& m,
                                            std::vector<Profile>& storage) {
    storage.clear();
    storage.reserve(m.num_subs());
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        storage.push_back(atomic_profile(static_cast<const AtomicBlock&>(*m.sub(s).type)));
    std::vector<const Profile*> ptrs;
    for (const auto& p : storage) ptrs.push_back(&p);
    return ptrs;
}

TEST(Profile, AtomicCombinational) {
    const Profile p = atomic_profile(static_cast<const AtomicBlock&>(*lib::sum("++")));
    ASSERT_EQ(p.functions.size(), 1u);
    EXPECT_EQ(p.functions[0].name, "step");
    EXPECT_EQ(p.functions[0].reads, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(p.functions[0].writes, (std::vector<std::size_t>{0}));
    EXPECT_FALSE(p.sequential);
    EXPECT_TRUE(p.pdg_edges.empty());
}

TEST(Profile, AtomicMooreHasGetBeforeStep) {
    const Profile p = atomic_profile(static_cast<const AtomicBlock&>(*lib::unit_delay()));
    ASSERT_EQ(p.functions.size(), 2u);
    EXPECT_EQ(p.functions[0].name, "get");
    EXPECT_TRUE(p.functions[0].reads.empty());
    EXPECT_EQ(p.functions[0].writes, (std::vector<std::size_t>{0}));
    EXPECT_EQ(p.functions[1].name, "step");
    EXPECT_EQ(p.functions[1].reads, (std::vector<std::size_t>{0}));
    EXPECT_TRUE(p.functions[1].writes.empty());
    ASSERT_EQ(p.pdg_edges.size(), 1u);
    EXPECT_EQ(p.pdg_edges[0], (std::pair<std::size_t, std::size_t>{0, 1}));
    EXPECT_TRUE(p.sequential);
}

TEST(Profile, AtomicSequentialNonMooreSingleStep) {
    const Profile p = atomic_profile(static_cast<const AtomicBlock&>(*lib::fir2(1.0, 2.0)));
    ASSERT_EQ(p.functions.size(), 1u);
    EXPECT_TRUE(p.sequential);
    EXPECT_EQ(p.functions[0].reads.size(), 1u);
    EXPECT_EQ(p.functions[0].writes.size(), 1u);
}

TEST(Profile, WriterAndReaderLookups) {
    Profile p;
    p.functions.push_back({"f", {0, 2}, {1}});
    p.functions.push_back({"g", {1}, {0}});
    EXPECT_EQ(p.writer_of_output(1), 0);
    EXPECT_EQ(p.writer_of_output(0), 1);
    EXPECT_EQ(p.writer_of_output(5), -1);
    EXPECT_EQ(p.readers_of_input(1), (std::vector<std::size_t>{1}));
    EXPECT_EQ(p.readers_of_input(2), (std::vector<std::size_t>{0}));
}

TEST(Sdg, Figure3StructureMatchesPaper) {
    // SDG of Figure 3: P_in -> C.step -> U.step; U.get -> U.step (PDG);
    // U.get -> A.step -> P_out.
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const auto profiles = atomic_profiles(*p, storage);
    const Sdg sdg = build_sdg(*p, profiles);

    // Nodes: 1 input + 1 output + A.step + U.get + U.step + C.step.
    EXPECT_EQ(sdg.input_nodes.size(), 1u);
    EXPECT_EQ(sdg.output_nodes.size(), 1u);
    EXPECT_EQ(sdg.internal_nodes.size(), 4u);

    // Locate nodes by (sub, fn).
    const auto node_of = [&](std::int32_t sub, std::int32_t fn) -> graph::NodeId {
        for (const auto v : sdg.internal_nodes)
            if (sdg.nodes[v].sub == sub && sdg.nodes[v].fn == fn) return v;
        ADD_FAILURE() << "node not found";
        return 0;
    };
    const auto a_step = node_of(p->sub_index("A"), 0);
    const auto u_get = node_of(p->sub_index("U"), 0);
    const auto u_step = node_of(p->sub_index("U"), 1);
    const auto c_step = node_of(p->sub_index("C"), 0);

    EXPECT_TRUE(sdg.graph.has_edge(sdg.input_nodes[0], c_step));
    EXPECT_TRUE(sdg.graph.has_edge(c_step, u_step));
    EXPECT_TRUE(sdg.graph.has_edge(u_get, u_step)); // lifted PDG edge
    EXPECT_TRUE(sdg.graph.has_edge(u_get, a_step));
    EXPECT_TRUE(sdg.graph.has_edge(a_step, sdg.output_nodes[0]));
    EXPECT_FALSE(sdg.graph.has_edge(sdg.input_nodes[0], sdg.output_nodes[0]));
    EXPECT_EQ(sdg.graph.num_edges(), 5u);
}

TEST(Sdg, Figure3HasNoTrueIoDependency) {
    // U is Moore, so P_out does not depend on P_in within an instant.
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const Sdg sdg = build_sdg(*p, atomic_profiles(*p, storage));
    EXPECT_TRUE(sdg.io_dependencies().empty());
}

TEST(Sdg, Figure1IoDependencies) {
    const auto p = suite::figure1_p();
    std::vector<Profile> storage;
    const Sdg sdg = build_sdg(*p, atomic_profiles(*p, storage));
    // y1 <- x1; y2 <- x1, x2. No dependency x2 -> y1.
    const auto deps = sdg.io_dependencies();
    const std::vector<std::pair<std::size_t, std::size_t>> expected = {
        {0, 0}, {0, 1}, {1, 1}};
    EXPECT_EQ(deps, expected);
}

TEST(Sdg, PassThroughInsertsDummyNode) {
    auto m = std::make_shared<MacroBlock>("PT", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y", "z"});
    m->add_sub("G", lib::gain(2.0));
    m->connect("x", "G.u");
    m->connect("G.y", "y");
    m->connect("x", "z"); // direct feed-through
    std::vector<Profile> storage;
    const Sdg sdg = build_sdg(*m, atomic_profiles(*m, storage));
    ASSERT_EQ(sdg.internal_nodes.size(), 2u);
    bool has_pass = false;
    for (const auto v : sdg.internal_nodes)
        if (sdg.nodes[v].is_passthrough()) {
            has_pass = true;
            EXPECT_EQ(sdg.nodes[v].pt_input, 0);
            EXPECT_EQ(sdg.nodes[v].port, 1);
            // in -> dummy -> out, no direct in -> out edge.
            EXPECT_TRUE(sdg.graph.has_edge(sdg.input_nodes[0], v));
            EXPECT_TRUE(sdg.graph.has_edge(v, sdg.output_nodes[1]));
        }
    EXPECT_TRUE(has_pass);
    EXPECT_FALSE(sdg.graph.has_edge(sdg.input_nodes[0], sdg.output_nodes[1]));
}

TEST(Sdg, CyclicSdgRejected) {
    // Two combinational blocks in a tight loop: modular codegen must reject.
    auto m = std::make_shared<MacroBlock>("Cyc", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("G1", lib::sum("++"));
    m->add_sub("G2", lib::gain(1.0));
    m->connect("x", "G1.u1");
    m->connect("G2.y", "G1.u2");
    m->connect("G1.y", "G2.u");
    m->connect("G1.y", "y");
    std::vector<Profile> storage;
    const auto profiles = atomic_profiles(*m, storage);
    EXPECT_THROW((void)build_sdg(*m, profiles), SdgCycleError);
    bool cyclic = false;
    (void)build_sdg_unchecked(*m, profiles, &cyclic);
    EXPECT_TRUE(cyclic);
}

TEST(Sdg, SelfLoopOnCombinationalBlockRejected) {
    auto m = std::make_shared<MacroBlock>("SelfLoop", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("S", lib::sum("++"));
    m->connect("x", "S.u1");
    m->connect("S.y", "S.u2");
    m->connect("S.y", "y");
    std::vector<Profile> storage;
    const auto profiles = atomic_profiles(*m, storage);
    EXPECT_THROW((void)build_sdg(*m, profiles), SdgCycleError);
}

TEST(Sdg, MooreSelfLoopAccepted) {
    // delay fed by itself through its own output is fine: U.get -> U.step.
    auto m = std::make_shared<MacroBlock>("DelayLoop", std::vector<std::string>{},
                                          std::vector<std::string>{"y"});
    m->add_sub("D", lib::unit_delay(1.0));
    m->connect("D.y", "D.u");
    m->connect("D.y", "y");
    std::vector<Profile> storage;
    EXPECT_NO_THROW((void)build_sdg(*m, atomic_profiles(*m, storage)));
}

TEST(Sdg, LabelsAreHumanReadable) {
    const auto p = suite::figure3_p();
    std::vector<Profile> storage;
    const auto profiles = atomic_profiles(*p, storage);
    const Sdg sdg = build_sdg(*p, profiles);
    bool found = false;
    for (const auto v : sdg.internal_nodes)
        if (node_label(sdg, *p, profiles, v) == "U.get") found = true;
    EXPECT_TRUE(found);
}

TEST(Sdg, HierarchicalSdgUsesSubProfilesOnly) {
    // Compile Figure 3 and embed it: the parent SDG must have exactly one
    // node per interface function of P's profile, not per atomic block.
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const Profile& prof = sys.at(*p).profile;
    ASSERT_EQ(prof.functions.size(), 2u);

    const auto ctx = suite::feedback_context(p, 0, 0);
    const auto ctx_sys = compile_hierarchy(ctx, Method::Dynamic);
    const Sdg& sdg = *ctx_sys.at(*ctx).sdg;
    EXPECT_EQ(sdg.internal_nodes.size(), 2u); // P.get and P.step only
}

} // namespace
