// Live model upgrades: the structural diff, the migration planner, the
// incremental recompile, and the hot-swap machinery — gated by the PR's
// central differential: an upgrade applied in place to a running engine
// must be bit-identical, from the swap instant onward, to stopping,
// recompiling the new version from scratch, migrating saved snapshots and
// restarting. The gate runs over the demo suite under every clustering
// method, over both backends, and over seeded fuzzed version pairs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "native/native.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault.hpp"
#include "runtime/engine.hpp"
#include "sbd/library.hpp"
#include "sbd/text_format.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "suite/models.hpp"
#include "suite/random_models.hpp"
#include "upgrade/upgrade.hpp"

namespace {

using namespace sbd;
using codegen::Method;

std::uint64_t bits_of(double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, 8);
    return b;
}

constexpr Method kAllMethods[] = {Method::Monolithic,  Method::StepGet,
                                  Method::Dynamic,     Method::DisjointSat,
                                  Method::DisjointGreedy, Method::Singletons};

/// Shared native artifact store: stable across runs so warm CI passes skip
/// the external compiler (same policy as test_native).
const std::string& native_store() {
    static const std::string dir = [] {
        const auto d = std::filesystem::temp_directory_path() / "sbd-upgrade-native-test";
        std::filesystem::create_directories(d);
        return d.string();
    }();
    return dir;
}

// ---------------------------------------------------------------------------
// Version mutators: each takes a model and produces a plausible "v2" with
// the same root port interface (so live migration applies). They rebuild
// along the changed path only — siblings share the original sub objects,
// exactly like an editor touching one subsystem.

std::shared_ptr<MacroBlock> shell_of(const MacroBlock& m) {
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < m.num_inputs(); ++i) ins.push_back(m.input_name(i));
    for (std::size_t o = 0; o < m.num_outputs(); ++o) outs.push_back(m.output_name(o));
    return std::make_shared<MacroBlock>(m.type_name(), std::move(ins), std::move(outs));
}

std::shared_ptr<MacroBlock> rebuild(const MacroBlock& m) {
    auto c = shell_of(m);
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const auto& sub = m.sub(s);
        const auto id = c->add_sub(sub.name, sub.type);
        if (sub.trigger) c->set_trigger(id, *sub.trigger);
    }
    for (const Connection& conn : m.connections()) c->connect(conn.src, conn.dst);
    return c;
}

/// Appends a state-bearing sub fed from the first macro input (outputs may
/// dangle, inputs may not — so this is always well-formed) to the macro at
/// the end of `path`, rebuilding the spine above it.
BlockPtr with_added_state(const MacroBlock& m, double init) {
    auto c = rebuild(m);
    c->add_sub("UpgAdded", lib::unit_delay(init));
    c->connect(m.input_name(0), "UpgAdded.u");
    c->validate();
    return c;
}

/// Replaces the sub at `index` (which must be a macro) with a freshly built
/// Moore stand-in of the same port interface: every output is an integrator
/// of one input, so the replacement can never create an algebraic loop in
/// the parent no matter what the original's dependency structure was.
BlockPtr with_replaced_subtree(const MacroBlock& m, std::size_t index, double seed_val) {
    const auto& victim = static_cast<const MacroBlock&>(*m.sub(index).type);
    auto stand_in = shell_of(victim);
    for (std::size_t o = 0; o < victim.num_outputs(); ++o) {
        const std::string inst = "Upg" + std::to_string(o);
        stand_in->add_sub(inst, lib::integrator(0.1 + 0.05 * static_cast<double>(o),
                                                seed_val + static_cast<double>(o)));
        stand_in->connect(victim.input_name(o % victim.num_inputs()), inst + ".u");
        stand_in->connect(inst + ".y", victim.output_name(o));
    }
    stand_in->validate();

    auto c = shell_of(m);
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const auto& sub = m.sub(s);
        const auto id = c->add_sub(sub.name, s == index ? BlockPtr(stand_in) : sub.type);
        if (sub.trigger) c->set_trigger(id, *sub.trigger);
    }
    for (const Connection& conn : m.connections()) c->connect(conn.src, conn.dst);
    c->validate();
    return c;
}

/// Index of the first macro sub with at least one input and output, or
/// npos. Mutating a nested macro (not the root) is what exercises partial
/// subtree reuse.
std::size_t first_macro_sub(const MacroBlock& m) {
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        if (m.sub(s).type->is_atomic()) continue;
        const auto& sub = static_cast<const MacroBlock&>(*m.sub(s).type);
        if (sub.num_inputs() > 0 && sub.num_outputs() > 0) return s;
    }
    return static_cast<std::size_t>(-1);
}

/// The default "v2" of any model: replace one nested macro subtree if one
/// exists, otherwise add a state-bearing sub at the root.
BlockPtr mutate_model(const BlockPtr& root, double seed_val = 2.5) {
    const auto& m = static_cast<const MacroBlock&>(*root);
    const std::size_t idx = first_macro_sub(m);
    if (idx != static_cast<std::size_t>(-1))
        return with_replaced_subtree(m, idx, seed_val);
    return with_added_state(m, seed_val);
}

// ---------------------------------------------------------------------------
// The differential gate

void fill_inputs(runtime::Engine& eng, const std::vector<runtime::InstanceId>& ids,
                 std::vector<runtime::LcgInputSource>& src) {
    for (std::size_t i = 0; i < ids.size(); ++i) src[i].fill(eng.pool().inputs(ids[i]));
}

std::vector<double> read_outputs(runtime::Engine& eng,
                                 const std::vector<runtime::InstanceId>& ids) {
    std::vector<double> row;
    for (const runtime::InstanceId id : ids) {
        const auto out = eng.pool().outputs(id);
        row.insert(row.end(), out.begin(), out.end());
    }
    return row;
}

/// Path A: run `old_root` hot, rebind to `new_root` after `pre` instants
/// through the incremental-compile + prepare/commit machinery, keep going.
/// Path B: the same trajectory via stop-recompile-restart — fresh compiles
/// of both versions (cold cache), snapshots saved on vN and migrated into
/// fresh vN+1 instances. Every output from the swap instant onward must be
/// bit-identical, for every instance.
void expect_upgrade_differential(const BlockPtr& old_root, const BlockPtr& new_root,
                                 Method method, bool native, std::uint64_t seed,
                                 std::size_t instances = 3, std::size_t pre = 7,
                                 std::size_t post = 9) {
    const auto build_exec = [&](const codegen::CompiledSystem& sys, const BlockPtr& root)
        -> std::shared_ptr<const codegen::Executable> {
        if (!native) return nullptr;
        codegen::BackendConfig bc;
        bc.backend = codegen::Backend::Native;
        bc.method = method;
        bc.cache_dir = native_store();
        return native::make_native_executable(sys, root, bc);
    };

    // --- Path A: live upgrade through a shared profile cache.
    auto cache = std::make_shared<codegen::ProfileCache>(0);
    codegen::PipelineOptions popts;
    popts.method = method;
    codegen::Pipeline pa_old(popts, cache);
    const codegen::CompiledSystem a_old = pa_old.compile(old_root);

    runtime::EngineConfig ecfg;
    ecfg.capacity = instances;
    ecfg.executable = build_exec(a_old, old_root);
    runtime::Engine a(a_old, old_root, ecfg);
    const std::vector<runtime::InstanceId> a_ids = a.create(instances);
    std::vector<runtime::LcgInputSource> a_src;
    for (std::size_t i = 0; i < instances; ++i) a_src.emplace_back(seed + i);
    for (std::size_t t = 0; t < pre; ++t) {
        fill_inputs(a, a_ids, a_src);
        a.tick();
    }

    codegen::Pipeline pa_new(popts, cache);
    const codegen::CompiledSystem a_new = pa_new.compile(new_root);
    // The recompile is incremental exactly when the structural diff says
    // some subtree survived: flat models edited at the root reuse nothing.
    if (upgrade::diff_models(old_root, new_root).units_reused > 0)
        EXPECT_GT(pa_new.stats().macro_reuses, 0u)
            << "incremental recompile hit nothing in the shared cache";
    const upgrade::MigrationPlan plan_a =
        upgrade::plan_migration(a_old, old_root, a_new, new_root);
    ASSERT_FALSE(plan_a.drain_and_replace()) << plan_a.drain_reason();
    a.rebind(a_new, new_root, build_exec(a_new, new_root), plan_a);

    std::vector<std::vector<double>> a_rows;
    for (std::size_t t = 0; t < post; ++t) {
        fill_inputs(a, a_ids, a_src);
        a.tick();
        a_rows.push_back(read_outputs(a, a_ids));
    }

    // --- Path B: stop, recompile from scratch, migrate snapshots, restart.
    codegen::Pipeline pb_old(popts);
    const codegen::CompiledSystem b_old = pb_old.compile(old_root);
    runtime::EngineConfig bcfg;
    bcfg.capacity = instances;
    bcfg.executable = build_exec(b_old, old_root);
    runtime::Engine b1(b_old, old_root, bcfg);
    const std::vector<runtime::InstanceId> b1_ids = b1.create(instances);
    std::vector<runtime::LcgInputSource> b_src;
    for (std::size_t i = 0; i < instances; ++i) b_src.emplace_back(seed + i);
    for (std::size_t t = 0; t < pre; ++t) {
        fill_inputs(b1, b1_ids, b_src);
        b1.tick();
    }

    codegen::Pipeline pb_new(popts);
    const codegen::CompiledSystem b_new = pb_new.compile(new_root);
    const upgrade::MigrationPlan plan_b =
        upgrade::plan_migration(b_old, old_root, b_new, new_root);
    // Fingerprint-equal inputs must plan identically no matter which cache
    // compiled them.
    EXPECT_EQ(plan_a.to_json(), plan_b.to_json());

    runtime::EngineConfig b2cfg;
    b2cfg.capacity = instances;
    b2cfg.executable = build_exec(b_new, new_root);
    runtime::Engine b2(b_new, new_root, b2cfg);
    const std::vector<runtime::InstanceId> b2_ids = b2.create(instances);
    const std::size_t old_nin = b1.pool().num_inputs(), old_nout = b1.pool().num_outputs();
    const std::size_t new_nin = b2.pool().num_inputs(), new_nout = b2.pool().num_outputs();
    for (std::size_t i = 0; i < instances; ++i) {
        const std::vector<double> old_blob = b1.pool().snapshot_state(b1_ids[i]);
        std::vector<double> new_blob = b2.pool().snapshot_state(b2_ids[i]); // init values
        const std::size_t old_state = old_blob.size() - old_nin - old_nout;
        const std::size_t new_state = new_blob.size() - new_nin - new_nout;
        plan_b.migrate(std::span(old_blob).first(old_state),
                       std::span(old_blob).subspan(old_state, old_nin),
                       std::span(old_blob).subspan(old_state + old_nin, old_nout),
                       std::span(new_blob).first(new_state),
                       std::span(new_blob).subspan(new_state, new_nin),
                       std::span(new_blob).subspan(new_state + new_nin, new_nout));
        b2.pool().restore_state(b2_ids[i], new_blob);
    }

    for (std::size_t t = 0; t < post; ++t) {
        fill_inputs(b2, b2_ids, b_src);
        b2.tick();
        const std::vector<double> row = read_outputs(b2, b2_ids);
        ASSERT_EQ(row.size(), a_rows[t].size());
        for (std::size_t k = 0; k < row.size(); ++k)
            ASSERT_EQ(bits_of(a_rows[t][k]), bits_of(row[k]))
                << "upgraded-in-place diverged from stop-recompile-restart at post-swap "
                << "instant " << t << " value " << k << " (method " << to_string(method)
                << ", " << (native ? "native" : "interp") << ")";
    }
}

// ---------------------------------------------------------------------------
// Structural diff

TEST(UpgradeDiff, SelfDiffIsFullReuse) {
    const auto m = suite::thermostat();
    const upgrade::ModelDiff d = upgrade::diff_models(m, m);
    EXPECT_GT(d.units_total, 0u);
    EXPECT_EQ(d.units_reused, d.units_total);
    EXPECT_DOUBLE_EQ(d.reuse_ratio(), 1.0);
    for (const upgrade::DiffEntry& e : d.entries)
        EXPECT_EQ(e.change, upgrade::SubtreeChange::Unchanged) << e.path;
}

TEST(UpgradeDiff, CloneDiffsEqualToOriginal) {
    // A structural clone fingerprints identically: the diff must see no
    // change even though every node compares unequal by address.
    const auto m = suite::fuel_controller();
    const auto c = suite::clone_macro(*m);
    const upgrade::ModelDiff d = upgrade::diff_models(m, c);
    EXPECT_EQ(d.units_reused, d.units_total);
}

TEST(UpgradeDiff, SingleSubtreeEditChangesOnlyItsSpine) {
    const auto m = suite::thermostat();
    const std::size_t idx = first_macro_sub(*m);
    ASSERT_NE(idx, static_cast<std::size_t>(-1));
    const BlockPtr v2 = with_replaced_subtree(*m, idx, 3.0);
    const upgrade::ModelDiff d = upgrade::diff_models(m, v2);
    EXPECT_GT(d.units_reused, 0u) << "untouched sibling subtree was not recognized";
    EXPECT_LT(d.units_reused, d.units_total);
    // The frontier: the root changed (its sub list points at a new block),
    // the untouched sibling is reported unchanged.
    bool root_changed = false, sibling_unchanged = false;
    for (const upgrade::DiffEntry& e : d.entries) {
        if (e.path.empty()) root_changed = e.change == upgrade::SubtreeChange::Changed;
        if (!e.path.empty() && e.change == upgrade::SubtreeChange::Unchanged)
            sibling_unchanged = true;
    }
    EXPECT_TRUE(root_changed);
    EXPECT_TRUE(sibling_unchanged);
    EXPECT_FALSE(d.summary().empty());
    EXPECT_NE(d.to_json().find("\"units_total\""), std::string::npos);
}

TEST(UpgradeDiff, AddedAndRemovedSubtreesAreReported) {
    const auto m = suite::pi_cruise();
    const BlockPtr v2 = with_added_state(*m, 1.5);
    const upgrade::ModelDiff d = upgrade::diff_models(m, v2);
    bool added = false;
    for (const upgrade::DiffEntry& e : d.entries)
        if (e.change == upgrade::SubtreeChange::Added && e.path == "UpgAdded") added = true;
    EXPECT_TRUE(added);

    const upgrade::ModelDiff rd = upgrade::diff_models(v2, m);
    bool removed = false;
    for (const upgrade::DiffEntry& e : rd.entries)
        if (e.change == upgrade::SubtreeChange::Removed && e.path == "UpgAdded")
            removed = true;
    EXPECT_TRUE(removed);
}

// ---------------------------------------------------------------------------
// Migration planning

TEST(UpgradePlan, IdenticalVersionsCopyEverything) {
    const auto m = suite::thermostat();
    const auto c = suite::clone_macro(*m);
    const auto sys_old = codegen::compile_hierarchy(m, Method::Dynamic);
    const auto sys_new = codegen::compile_hierarchy(c, Method::Dynamic);
    const upgrade::MigrationPlan p = upgrade::plan_migration(sys_old, m, sys_new, c);
    EXPECT_FALSE(p.drain_and_replace());
    EXPECT_EQ(p.old_state_size(), p.new_state_size());
    EXPECT_EQ(p.copied(), p.new_state_size());
    EXPECT_EQ(p.initialized(), 0u);
    EXPECT_EQ(p.dropped(), 0u);
    ASSERT_EQ(p.rules().size(), 1u);
    EXPECT_EQ(p.rules()[0].kind, upgrade::RuleKind::CopySubtree);
    for (std::size_t i = 0; i < p.input_map().size(); ++i)
        EXPECT_EQ(p.input_map()[i], static_cast<std::int32_t>(i));
    for (std::size_t o = 0; o < p.output_map().size(); ++o)
        EXPECT_EQ(p.output_map()[o], static_cast<std::int32_t>(o));
    EXPECT_FALSE(p.summary().empty());
}

TEST(UpgradePlan, InterfaceChangeForcesDrain) {
    const auto m = suite::thermostat();
    auto renamed = std::make_shared<MacroBlock>(
        m->type_name(), std::vector<std::string>{"setpoint", "outside_temp"},
        std::vector<std::string>{"room_temp", "heater_is_on"}); // renamed output
    for (std::size_t s = 0; s < m->num_subs(); ++s)
        renamed->add_sub(m->sub(s).name, m->sub(s).type);
    for (const Connection& conn : m->connections()) renamed->connect(conn.src, conn.dst);
    renamed->validate();

    const auto sys_old = codegen::compile_hierarchy(m, Method::Dynamic);
    const auto sys_new = codegen::compile_hierarchy(renamed, Method::Dynamic);
    const upgrade::MigrationPlan p = upgrade::plan_migration(sys_old, m, sys_new, renamed);
    EXPECT_TRUE(p.drain_and_replace());
    EXPECT_FALSE(p.drain_reason().empty());
    EXPECT_EQ(p.copied(), 0u);

    // A drain plan migrates nothing: the new spans keep their init values.
    std::vector<double> old_state(p.old_state_size(), 7.0), old_in(2, 7.0), old_out(2, 7.0);
    std::vector<double> new_state(p.new_state_size(), 1.25), new_in(2, 0.0), new_out(2, 0.0);
    p.migrate(old_state, old_in, old_out, new_state, new_in, new_out);
    for (const double v : new_state) EXPECT_EQ(v, 1.25);
}

TEST(UpgradePlan, SpanSizeMismatchIsRejected) {
    const auto m = suite::thermostat();
    const auto c = suite::clone_macro(*m);
    const auto sys_old = codegen::compile_hierarchy(m, Method::Dynamic);
    const auto sys_new = codegen::compile_hierarchy(c, Method::Dynamic);
    const upgrade::MigrationPlan p = upgrade::plan_migration(sys_old, m, sys_new, c);
    std::vector<double> wrong(p.old_state_size() + 1), in(2), out(2);
    std::vector<double> ns(p.new_state_size()), ni(2), no(2);
    EXPECT_THROW(p.migrate(wrong, in, out, ns, ni, no), std::invalid_argument);
}

TEST(UpgradePlan, CarriedAndInitializedAccountingMatchesLayouts) {
    const auto m = suite::thermostat();
    const BlockPtr v2 = mutate_model(m);
    const auto sys_old = codegen::compile_hierarchy(m, Method::Dynamic);
    const auto sys_new = codegen::compile_hierarchy(v2, Method::Dynamic);
    const upgrade::MigrationPlan p = upgrade::plan_migration(sys_old, m, sys_new, v2);
    EXPECT_FALSE(p.drain_and_replace());
    EXPECT_GT(p.copied(), 0u);
    EXPECT_EQ(p.copied() + p.initialized(), p.new_state_size());
    EXPECT_EQ(p.copied() + p.dropped(), p.old_state_size());
    EXPECT_NE(p.to_json().find("\"rules\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Incremental recompile (compile_version)

TEST(UpgradeCompile, SharedCacheMakesRecompileIncremental) {
    const auto m = suite::thermostat();
    auto cache = std::make_shared<codegen::ProfileCache>(0);
    codegen::PipelineOptions popts;
    popts.method = Method::Dynamic;
    codegen::Pipeline boot(popts, cache);
    (void)boot.compile(m);

    upgrade::CompileContext ctx;
    ctx.method = Method::Dynamic;
    ctx.cache = cache;
    const upgrade::ModelVersion v =
        upgrade::compile_version(text::to_sbd(*m), ctx, 2);
    EXPECT_EQ(v.version, 2u);
    ASSERT_NE(v.sys, nullptr);
    ASSERT_NE(v.exec, nullptr);
    EXPECT_EQ(v.macro_compiles, 0u) << "identical version recompiled something";
    EXPECT_GT(v.macro_reuses, 0u);
    EXPECT_GT(v.compile_ns, 0u);
}

TEST(UpgradeCompile, CodedErrors) {
    upgrade::CompileContext ctx;
    ctx.method = Method::Dynamic;
    try {
        (void)upgrade::compile_version("block {", ctx, 2);
        FAIL() << "parse error not coded";
    } catch (const upgrade::UpgradeError& e) {
        EXPECT_EQ(e.code(), upgrade::UpgradeError::Code::Parse);
        EXPECT_STREQ(upgrade::to_string(e.code()), "parse");
    }
    // The thermostat has a false monolithic cycle: a coded Compile error.
    ctx.method = Method::Monolithic;
    try {
        (void)upgrade::compile_version(text::to_sbd(*suite::thermostat()), ctx, 2);
        FAIL() << "cycle rejection not coded";
    } catch (const upgrade::UpgradeError& e) {
        EXPECT_EQ(e.code(), upgrade::UpgradeError::Code::Compile);
    }
    // The deep-analysis load gate: a guaranteed division by zero is a
    // coded Analysis rejection, exactly like sbd-serve's boot gate.
    ctx.method = Method::Dynamic;
    const char* broken = "block Broken {\n"
                         "  inputs u\n  outputs y\n"
                         "  sub Zero Constant 0\n  sub D Div\n"
                         "  connect u D.u1\n  connect Zero.y D.u2\n"
                         "  connect D.y y\n}\n";
    try {
        (void)upgrade::compile_version(broken, ctx, 2);
        FAIL() << "deep-analysis gate not applied";
    } catch (const upgrade::UpgradeError& e) {
        EXPECT_EQ(e.code(), upgrade::UpgradeError::Code::Analysis);
    }
}

// ---------------------------------------------------------------------------
// The differential gate: demo suite x methods x backends

TEST(UpgradeDifferential, DemoSuiteAllMethodsInterp) {
    std::uint64_t seed = 90001;
    for (const suite::NamedModel& m : suite::demo_suite()) {
        const BlockPtr v2 = mutate_model(m.block);
        for (const Method method : kAllMethods) {
            try {
                expect_upgrade_differential(m.block, v2, method, /*native=*/false, seed++);
            } catch (const codegen::SdgCycleError&) {
                continue; // this method legitimately rejects the model
            }
            if (::testing::Test::HasFatalFailure())
                FAIL() << m.name << " under " << to_string(method);
        }
    }
}

TEST(UpgradeDifferential, DemoSubsetNative) {
    for (const auto& model : {suite::thermostat(), suite::counter_limited()})
        for (const Method method : {Method::Dynamic, Method::DisjointGreedy}) {
            expect_upgrade_differential(model, mutate_model(model), method,
                                        /*native=*/true, 91001);
            if (::testing::Test::HasFatalFailure())
                FAIL() << model->type_name() << " under " << to_string(method);
        }
}

TEST(UpgradeDifferential, FuzzedVersionPairs) {
    // >= 200 seeded (old, new) pairs: random hierarchies mutated by a
    // seeded choice of clone / subtree replacement / state addition, under
    // a seeded clustering method. Every pair must pass the full gate.
    constexpr std::size_t kPairs = 200;
    std::size_t ran = 0;
    for (std::size_t i = 0; i < kPairs; ++i) {
        std::mt19937_64 rng(0xABCD0000 + i);
        suite::RandomModelParams params;
        params.depth = 2 + i % 2;
        params.subs_per_level = 4;
        params.macro_probability = 0.5;
        const auto old_root = suite::random_model(rng, params);

        BlockPtr new_root;
        switch (i % 3) {
        case 0: new_root = std::const_pointer_cast<const MacroBlock>(
                    suite::clone_macro(*old_root));
                break;
        case 1: new_root = mutate_model(old_root, 1.0 + 0.25 * static_cast<double>(i % 7));
                break;
        default: new_root = with_added_state(*old_root, static_cast<double>(i % 5));
        }

        const Method method = kAllMethods[i % std::size(kAllMethods)];
        try {
            expect_upgrade_differential(old_root, new_root, method, /*native=*/false,
                                        0x5EED0000 + i, /*instances=*/2, /*pre=*/5,
                                        /*post=*/6);
        } catch (const codegen::SdgCycleError&) {
            // Rejected by this method: rerun under dynamic so every seed
            // still contributes a differential.
            expect_upgrade_differential(old_root, new_root, Method::Dynamic,
                                        /*native=*/false, 0x5EED0000 + i, 2, 5, 6);
        }
        if (::testing::Test::HasFatalFailure()) FAIL() << "seed " << i;
        ++ran;
    }
    EXPECT_EQ(ran, kPairs);
}

// ---------------------------------------------------------------------------
// Cross-version snapshot portability: a snapshot saved on vN restores —
// through the migration plan — into a vN+1 instance on *either* backend,
// bit-identically to the live hot swap. The cross-backend state-layout
// contract is what makes the mixed pairing legal.

TEST(UpgradeSnapshot, PortableAcrossVersionsAndBackends) {
    const auto m = suite::thermostat();
    const BlockPtr v2 = mutate_model(m);
    // interp-saved snapshot into a native v2 instance, and the reverse.
    struct Pairing { bool old_native, new_native; };
    for (const Pairing pair : {Pairing{false, true}, Pairing{true, false}}) {
        const auto sys_old = codegen::compile_hierarchy(m, Method::Dynamic);
        const auto sys_new = codegen::compile_hierarchy(v2, Method::Dynamic);
        const upgrade::MigrationPlan plan =
            upgrade::plan_migration(sys_old, m, sys_new, v2);
        ASSERT_FALSE(plan.drain_and_replace());

        const auto exec_for = [&](bool native, const codegen::CompiledSystem& sys,
                                  const BlockPtr& root)
            -> std::shared_ptr<const codegen::Executable> {
            if (!native) return nullptr;
            codegen::BackendConfig bc;
            bc.backend = codegen::Backend::Native;
            bc.method = Method::Dynamic;
            bc.cache_dir = native_store();
            return native::make_native_executable(sys, root, bc);
        };

        // Live path: old engine ticks, hot-rebinds to v2, ticks once more.
        runtime::EngineConfig cfg;
        cfg.capacity = 1;
        cfg.executable = exec_for(pair.old_native, sys_old, m);
        runtime::Engine live(sys_old, m, cfg);
        const auto live_id = live.create(1).front();
        runtime::LcgInputSource src(44);
        for (int t = 0; t < 6; ++t) {
            src.fill(live.pool().inputs(live_id));
            live.tick();
        }
        const std::vector<double> saved = live.pool().snapshot_state(live_id);
        live.rebind(sys_new, v2, exec_for(pair.new_native, sys_new, v2), plan);

        // Restore path: the saved vN snapshot migrated into a fresh vN+1
        // instance on the other backend.
        runtime::EngineConfig cfg2;
        cfg2.capacity = 1;
        cfg2.executable = exec_for(pair.new_native, sys_new, v2);
        runtime::Engine restored(sys_new, v2, cfg2);
        const auto rid = restored.create(1).front();
        std::vector<double> blob = restored.pool().snapshot_state(rid);
        const std::size_t old_nin = 2, old_nout = 2;
        const std::size_t old_state = saved.size() - old_nin - old_nout;
        const std::size_t new_nin = restored.pool().num_inputs();
        const std::size_t new_nout = restored.pool().num_outputs();
        const std::size_t new_state = blob.size() - new_nin - new_nout;
        plan.migrate(std::span(saved).first(old_state),
                     std::span(saved).subspan(old_state, old_nin),
                     std::span(saved).subspan(old_state + old_nin, old_nout),
                     std::span(blob).first(new_state),
                     std::span(blob).subspan(new_state, new_nin),
                     std::span(blob).subspan(new_state + new_nin, new_nout));
        restored.pool().restore_state(rid, blob);

        // Identical continuations from identical migrated state.
        runtime::LcgInputSource src2 = src;
        for (int t = 0; t < 5; ++t) {
            src.fill(live.pool().inputs(live_id));
            src2.fill(restored.pool().inputs(rid));
            live.tick();
            restored.tick();
            const auto lo = live.pool().outputs(live_id);
            const auto ro = restored.pool().outputs(rid);
            ASSERT_EQ(lo.size(), ro.size());
            for (std::size_t k = 0; k < lo.size(); ++k)
                ASSERT_EQ(bits_of(lo[k]), bits_of(ro[k]))
                    << "t=" << t << " k=" << k << " old_native=" << pair.old_native;
        }
    }
}

// The same portability contract must survive slot recycling: snapshots
// taken from an upgraded interp engine whose pool has been churned
// (create/destroy/create, so slots were reused and generations bumped)
// restore into a native engine with a *different* churn history, and the
// two continue bit-identically. Slot indices and generations are pool
// bookkeeping — none of it may leak into the state blob.
TEST(UpgradeSnapshot, PortableUnderSlotChurnAcrossBackends) {
    const auto m = suite::thermostat();
    const BlockPtr v2 = mutate_model(m);
    const auto sys_old = codegen::compile_hierarchy(m, Method::Dynamic);
    const auto sys_new = codegen::compile_hierarchy(v2, Method::Dynamic);
    const upgrade::MigrationPlan plan = upgrade::plan_migration(sys_old, m, sys_new, v2);
    ASSERT_FALSE(plan.drain_and_replace());

    codegen::BackendConfig bc;
    bc.backend = codegen::Backend::Native;
    bc.method = Method::Dynamic;
    bc.cache_dir = native_store();
    const auto native_exec = native::make_native_executable(sys_new, v2, bc);

    // Interp engine on v1: churn the pool so live slots are recycled ones,
    // then run, then hot-swap to v2, then churn and run again.
    runtime::EngineConfig cfg;
    cfg.capacity = 8;
    runtime::Engine live(sys_old, m, cfg);
    auto ids = live.create(6);
    live.destroy(ids[1]);
    live.destroy(ids[3]);
    live.destroy(ids[4]);
    ids = {ids[0], ids[2], ids[5], live.create(), live.create()}; // reused slots
    std::vector<runtime::LcgInputSource> srcs;
    for (std::size_t i = 0; i < ids.size(); ++i) srcs.emplace_back(900 + 7 * i);
    for (int t = 0; t < 6; ++t) {
        for (std::size_t i = 0; i < ids.size(); ++i) srcs[i].fill(live.pool().inputs(ids[i]));
        live.tick();
    }
    live.rebind(sys_new, v2, nullptr, plan);
    live.destroy(ids.back());
    ids.back() = live.create(); // recycle once more, post-upgrade
    for (int t = 0; t < 3; ++t) {
        for (std::size_t i = 0; i < ids.size(); ++i) srcs[i].fill(live.pool().inputs(ids[i]));
        live.tick();
    }

    // Native engine on v2 with a different slot history; restore each
    // upgraded snapshot into it (same version — no migration this time).
    runtime::EngineConfig ncfg;
    ncfg.capacity = 8;
    ncfg.executable = native_exec;
    runtime::Engine restored(sys_new, v2, ncfg);
    const auto scratch = restored.create(4);
    for (const auto id : scratch) restored.destroy(id);
    std::vector<runtime::InstanceId> rids = restored.create(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        restored.pool().restore_state(rids[i], live.pool().snapshot_state(ids[i]));

    // Identical continuations, instance by instance, bit for bit.
    std::vector<runtime::LcgInputSource> srcs2 = srcs;
    for (int t = 0; t < 5; ++t) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            srcs[i].fill(live.pool().inputs(ids[i]));
            srcs2[i].fill(restored.pool().inputs(rids[i]));
        }
        live.tick();
        restored.tick();
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const auto lo = live.pool().outputs(ids[i]);
            const auto ro = restored.pool().outputs(rids[i]);
            ASSERT_EQ(lo.size(), ro.size());
            for (std::size_t k = 0; k < lo.size(); ++k)
                ASSERT_EQ(bits_of(lo[k]), bits_of(ro[k])) << "t=" << t << " i=" << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Serving: UPGRADE_MODEL end to end

class UpgradeServeFixture : public ::testing::Test {
protected:
    void start(bool with_upgrade = true, serve::ServerConfig cfg = {}) {
        model_ = suite::thermostat();
        cache_ = std::make_shared<codegen::ProfileCache>(0);
        codegen::PipelineOptions popts;
        popts.method = Method::Dynamic;
        codegen::Pipeline pipeline(popts, cache_);
        sys_ = pipeline.compile(model_);
        cfg.endpoint = serve::Endpoint::parse("tcp:127.0.0.1:0");
        if (cfg.shards == 1 && cfg.shard_capacity == 1024) {
            cfg.shards = 2;
            cfg.shard_capacity = 8;
        }
        if (with_upgrade) {
            upgrade::CompileContext ctx;
            ctx.method = Method::Dynamic;
            ctx.cache = cache_;
            cfg.upgrade = std::move(ctx);
        }
        server_ = std::make_unique<serve::Server>(sys_, model_, cfg);
        server_->start();
    }
    serve::Client connect() { return serve::Client::connect(server_->endpoint()); }

    BlockPtr model_;
    std::shared_ptr<codegen::ProfileCache> cache_;
    codegen::CompiledSystem sys_;
    std::unique_ptr<serve::Server> server_;
};

TEST_F(UpgradeServeFixture, LiveUpgradeCarriesStateAndReportsReuse) {
    start();
    serve::Client c = connect();
    const auto handles = c.create_instances(1, 4);
    c.tick(1, 5);
    const std::vector<double> before = c.read_outputs(1, handles);

    const BlockPtr v2 = mutate_model(model_);
    const serve::UpgradeResult r = c.upgrade_model(
        0, text::to_sbd(static_cast<const MacroBlock&>(*v2)));
    EXPECT_EQ(r.version, 2u);
    EXPECT_EQ(server_->model_version(), 2u);
    EXPECT_GT(r.units_reused, 0u);
    EXPECT_GT(r.units_total, r.units_reused);
    EXPECT_FALSE(r.drained);
    EXPECT_GT(r.state_copied, 0u);
    EXPECT_GT(r.swap_ns, 0u);
    EXPECT_GT(r.reuse_ratio(), 0.0);

    // Handles survive the swap (slot numbering and generations are
    // preserved); the served outputs keep flowing on the new version.
    c.tick(1, 3);
    const std::vector<double> after = c.read_outputs(1, handles);
    EXPECT_EQ(after.size(), before.size());
    c.destroy_instances(1, handles);
}

TEST_F(UpgradeServeFixture, UpgradeMatchesDirectEngineFromSwapInstantOn) {
    start();
    serve::Client c = connect();
    const auto handles = c.create_instances(1, 2);
    c.tick(1, 4);

    // Reference: a direct engine on v1, migrated by the same plan semantics
    // (zero inputs on both sides, so trajectories are comparable).
    codegen::PipelineOptions popts;
    popts.method = Method::Dynamic;
    codegen::Pipeline p(popts);
    const codegen::CompiledSystem ref_old = p.compile(model_);
    runtime::EngineConfig ecfg;
    ecfg.capacity = 2;
    runtime::Engine ref(ref_old, model_, ecfg);
    const auto rids = ref.create(2);
    ref.tick(4);

    const BlockPtr v2 = mutate_model(model_);
    (void)c.upgrade_model(0, text::to_sbd(static_cast<const MacroBlock&>(*v2)));

    codegen::Pipeline p2(popts);
    const codegen::CompiledSystem ref_new = p2.compile(v2);
    const upgrade::MigrationPlan plan =
        upgrade::plan_migration(ref_old, model_, ref_new, v2);
    ref.rebind(ref_new, v2, nullptr, plan);

    c.tick(1, 3);
    ref.tick(3);
    const std::vector<double> got = c.read_outputs(1, handles);
    const std::size_t nout = ref.pool().num_outputs();
    ASSERT_EQ(got.size(), 2 * nout);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t o = 0; o < nout; ++o)
            ASSERT_EQ(bits_of(got[i * nout + o]), bits_of(ref.pool().outputs(rids[i])[o]))
                << "served post-swap instant diverged (instance " << i << ")";
}

TEST_F(UpgradeServeFixture, DisabledServerRejectsCoded) {
    start(/*with_upgrade=*/false);
    serve::Client c = connect();
    try {
        (void)c.upgrade_model(0, text::to_sbd(static_cast<const MacroBlock&>(*model_)));
        FAIL() << "upgrade on a disabled server was not rejected";
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), serve::Err::UpgradeRejected);
    }
    EXPECT_EQ(server_->model_version(), 1u);
}

TEST_F(UpgradeServeFixture, BadVersionsAreRejectedWithoutTouchingState) {
    start();
    serve::Client c = connect();
    const auto handles = c.create_instances(1, 2);
    c.tick(1, 3);
    const std::vector<double> before = c.read_outputs(1, handles);

    for (const char* bad : {"block {", // parse error
                            "block B {\n inputs u\n outputs y\n sub Z Constant 0\n"
                            " sub D Div\n connect u D.u1\n connect Z.y D.u2\n"
                            " connect D.y y\n}"}) { // deep-analysis reject
        try {
            (void)c.upgrade_model(0, bad);
            FAIL() << "bad version accepted: " << bad;
        } catch (const serve::ServeError& e) {
            EXPECT_EQ(e.code(), serve::Err::UpgradeRejected);
        }
    }
    EXPECT_EQ(server_->model_version(), 1u);
    const std::vector<double> after = c.read_outputs(1, handles);
    for (std::size_t k = 0; k < before.size(); ++k)
        ASSERT_EQ(bits_of(before[k]), bits_of(after[k]))
            << "rejected upgrade touched live state";
}

TEST_F(UpgradeServeFixture, DrainRequiresExplicitOptIn) {
    start();
    serve::Client c = connect();
    const auto handles = c.create_instances(1, 2);
    c.tick(1, 4);

    // v2 renames an output: state continuity is meaningless, so the plan
    // demands drain-and-replace.
    const auto& m = static_cast<const MacroBlock&>(*model_);
    auto renamed = std::make_shared<MacroBlock>(
        m.type_name(), std::vector<std::string>{"setpoint", "outside_temp"},
        std::vector<std::string>{"room_temp", "heater_is_on"});
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        renamed->add_sub(m.sub(s).name, m.sub(s).type);
    for (const Connection& conn : m.connections()) renamed->connect(conn.src, conn.dst);
    renamed->validate();
    const std::string source = text::to_sbd(*renamed);

    try {
        (void)c.upgrade_model(0, source, /*allow_drain=*/false);
        FAIL() << "drain-and-replace applied without opt-in";
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), serve::Err::UpgradeRejected);
    }
    EXPECT_EQ(server_->model_version(), 1u);

    const serve::UpgradeResult r = c.upgrade_model(0, source, /*allow_drain=*/true);
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.state_copied, 0u);
    EXPECT_EQ(server_->model_version(), 2u);
    // Drained instances restarted from init: outputs are back to zeros.
    for (const double v : c.read_outputs(1, handles)) EXPECT_EQ(v, 0.0);
}

TEST_F(UpgradeServeFixture, InjectedUpgradeFaultIsCodedAndLeavesStateAlone) {
    start();
    serve::Client c = connect();
    const auto handles = c.create_instances(1, 2);
    c.tick(1, 3);
    const std::vector<double> before = c.read_outputs(1, handles);
    const std::string source = text::to_sbd(static_cast<const MacroBlock&>(*model_));
    {
        resilience::ScopedFaultPlan plan(
            resilience::FaultPlan::parse("seed=7;serve.upgrade=nth:1"));
        try {
            (void)c.upgrade_model(0, source);
            FAIL() << "upgrade fault was not injected";
        } catch (const serve::ServeError& e) {
            EXPECT_EQ(e.code(), serve::Err::FaultInjected);
        }
    }
    EXPECT_EQ(server_->model_version(), 1u);
    const std::vector<double> untouched = c.read_outputs(1, handles);
    for (std::size_t k = 0; k < before.size(); ++k)
        ASSERT_EQ(bits_of(before[k]), bits_of(untouched[k]));
    // The fault consumed, the same request now lands.
    const serve::UpgradeResult r = c.upgrade_model(0, source);
    EXPECT_EQ(r.version, 2u);
}

TEST_F(UpgradeServeFixture, UpgradeUnderConcurrentTrafficNeverTears) {
    serve::ServerConfig cfg;
    cfg.shards = 2;
    cfg.shard_capacity = 32;
    start(true, cfg);

    constexpr std::size_t kTenants = 3;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> okc{0}, coded{0}, torn{0};
    std::vector<std::thread> threads;
    const std::size_t nout =
        static_cast<const MacroBlock&>(*model_).num_outputs();
    for (std::size_t t = 0; t < kTenants; ++t)
        threads.emplace_back([&, t] {
            serve::Client c = connect();
            const auto h = c.create_instances(t + 1, 2);
            while (!stop.load(std::memory_order_relaxed)) {
                try {
                    c.tick(t + 1, 1);
                    const std::vector<double> out = c.read_outputs(t + 1, h);
                    if (out.size() != 2 * nout) torn.fetch_add(1);
                    okc.fetch_add(1);
                } catch (const serve::ServeError&) {
                    coded.fetch_add(1);
                }
            }
        });

    // A burst of upgrades races the traffic: v2, v3, ... each swap lands at
    // an instant boundary under the exclusive lock.
    serve::Client control = connect();
    const auto& m = static_cast<const MacroBlock&>(*model_);
    std::uint64_t applied = 0;
    for (int round = 0; round < 6; ++round) {
        const BlockPtr next = round % 2 == 0
                                  ? mutate_model(std::static_pointer_cast<const MacroBlock>(
                                                     model_),
                                                 2.0 + round)
                                  : BlockPtr(suite::clone_macro(m));
        const serve::UpgradeResult r =
            control.upgrade_model(0, text::to_sbd(static_cast<const MacroBlock&>(*next)));
        EXPECT_EQ(r.version, 2u + applied);
        ++applied;
    }
    stop.store(true);
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(applied, 6u);
    EXPECT_EQ(server_->model_version(), 7u);
    EXPECT_EQ(torn.load(), 0u) << "a reader observed a torn output row";
    EXPECT_GT(okc.load(), 0u);
    // The server is still healthy and serving the final version.
    serve::Client probe = connect();
    const auto h = probe.create_instances(99, 1);
    probe.tick(99, 1);
    EXPECT_EQ(probe.read_outputs(99, h).size(), nout);
}

TEST_F(UpgradeServeFixture, UpgradeMetricsAreExported) {
    obs::MetricsRegistry registry;
    serve::ServerConfig cfg;
    cfg.metrics = &registry;
    start(true, cfg);
    serve::Client c = connect();
    (void)c.create_instances(1, 2);
    c.tick(1, 2);
    const BlockPtr v2 = mutate_model(model_);
    (void)c.upgrade_model(0, text::to_sbd(static_cast<const MacroBlock&>(*v2)));
    try {
        (void)c.upgrade_model(0, "block {");
    } catch (const serve::ServeError&) {
    }

    const obs::Snapshot snap = registry.snapshot();
    const auto counter = [&](const char* name) {
        const obs::Sample* s = snap.find(name);
        return s == nullptr ? std::uint64_t(0) : s->value;
    };
    EXPECT_EQ(counter("sbd_upgrade_applied_total"), 1u);
    EXPECT_EQ(counter("sbd_upgrade_rejected_total"), 1u);
    EXPECT_GT(counter("sbd_upgrade_units_reused_total"), 0u);
    EXPECT_GT(counter("sbd_upgrade_units_compiled_total"), 0u);
    const obs::Sample* swap = snap.find("sbd_upgrade_swap_ns");
    ASSERT_NE(swap, nullptr);
    EXPECT_EQ(swap->value, 1u); // one observation
    const obs::Sample* version = snap.find("sbd_upgrade_model_version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->gauge, 2);
    const obs::Sample* reqs =
        snap.find("sbd_serve_requests_total", {{"op", "UPGRADE_MODEL"}});
    ASSERT_NE(reqs, nullptr);
    EXPECT_EQ(reqs->value, 2u);
}

} // namespace
