// Tests for interface-only (opaque) blocks: the paper's IP scenario — a
// macro block is compiled against sub-block *profiles* with zero knowledge
// of their internals, which opaque blocks enforce by construction.

#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/exec.hpp"
#include "core/reuse.hpp"
#include "sbd/library.hpp"
#include "sbd/opaque.hpp"
#include "sbd/text_format.hpp"
#include "core/emit_cpp.hpp"
#include "sbd/flatten.hpp"
#include "sim/simulator.hpp"
#include "suite/figures.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

/// An opaque stand-in for the paper's Figure 3 block P: get() -> P_out,
/// step(P_in), get before step, Moore-sequential.
BlockPtr opaque_fig3_profile() {
    return std::make_shared<OpaqueBlock>(
        "VendorP", std::vector<std::string>{"P_in"}, std::vector<std::string>{"P_out"},
        BlockClass::MooreSequential,
        std::vector<OpaqueBlock::Function>{{"get", {}, {0}}, {"step", {0}, {}}},
        std::vector<std::pair<std::size_t, std::size_t>>{{0, 1}});
}

TEST(Opaque, ConstructionValidation) {
    using Fn = OpaqueBlock::Function;
    // Output with no writer.
    EXPECT_THROW(OpaqueBlock("B", {"a"}, {"y"}, BlockClass::Combinational,
                             {Fn{"f", {0}, {}}}, {}),
                 ModelError);
    // Output with two writers.
    EXPECT_THROW(OpaqueBlock("B", {"a"}, {"y"}, BlockClass::Combinational,
                             {Fn{"f", {}, {0}}, Fn{"g", {}, {0}}}, {}),
                 ModelError);
    // Port out of range.
    EXPECT_THROW(OpaqueBlock("B", {"a"}, {"y"}, BlockClass::Combinational,
                             {Fn{"f", {3}, {0}}}, {}),
                 ModelError);
    // Cyclic order.
    EXPECT_THROW(OpaqueBlock("B", {"a"}, {"y", "z"}, BlockClass::Combinational,
                             {Fn{"f", {0}, {0}}, Fn{"g", {0}, {1}}}, {{0, 1}, {1, 0}}),
                 ModelError);
    EXPECT_NO_THROW(OpaqueBlock("B", {"a"}, {"y"}, BlockClass::Combinational,
                                {Fn{"f", {0}, {0}}}, {}));
}

TEST(Opaque, CompilesInsideFeedbackContextWithoutInternals) {
    // Embed the opaque P with the feedback y -> x: P is Moore per its
    // declared profile, so the embedding must be accepted and code
    // generated — purely from the interface.
    auto ctx = std::make_shared<MacroBlock>("Ctx", std::vector<std::string>{},
                                            std::vector<std::string>{"y"});
    const auto p = ctx->add_sub("P", opaque_fig3_profile());
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, 0},
                 Endpoint{Endpoint::Kind::SubInput, p, 0});
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, 0},
                 Endpoint{Endpoint::Kind::MacroOutput, -1, 0});
    const auto sys = compile_hierarchy(std::static_pointer_cast<const Block>(ctx),
                                       Method::Dynamic);
    const auto& cb = sys.at(*ctx);
    const std::string code = cb.code->to_pseudocode();
    EXPECT_NE(code.find("P.get()"), std::string::npos);
    EXPECT_NE(code.find("P.step(P_P_out)"), std::string::npos); // fed by its own output slot
    EXPECT_TRUE(cb.profile.sequential);
}

TEST(Opaque, MonolithicOpaqueProfileIsRejectedInFeedback) {
    // Same context but the vendor shipped a single step(P_in)->P_out
    // function: the embedding must be rejected — demonstrating that the
    // trade-off is about interfaces, not implementations.
    auto mono = std::make_shared<OpaqueBlock>(
        "VendorMono", std::vector<std::string>{"P_in"}, std::vector<std::string>{"P_out"},
        BlockClass::Sequential,
        std::vector<OpaqueBlock::Function>{{"step", {0}, {0}}},
        std::vector<std::pair<std::size_t, std::size_t>>{});
    auto ctx = std::make_shared<MacroBlock>("Ctx", std::vector<std::string>{},
                                            std::vector<std::string>{"y"});
    const auto p = ctx->add_sub("P", mono);
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, 0},
                 Endpoint{Endpoint::Kind::SubInput, p, 0});
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, 0},
                 Endpoint{Endpoint::Kind::MacroOutput, -1, 0});
    EXPECT_THROW(
        (void)compile_hierarchy(std::static_pointer_cast<const Block>(ctx), Method::Dynamic),
        SdgCycleError);
}

TEST(Opaque, CannotBeExecutedOrSimulatedOrEmitted) {
    auto m = std::make_shared<MacroBlock>("M", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("P", opaque_fig3_profile());
    m->connect("x", "P.P_in");
    m->connect("P.P_out", "y");
    const auto sys =
        compile_hierarchy(std::static_pointer_cast<const Block>(m), Method::Dynamic);
    EXPECT_THROW(InterpInstance inst(sys, m), std::logic_error);
    EXPECT_THROW((void)emit_cpp(sys), std::runtime_error);
    EXPECT_THROW(sim::Simulator s(flatten(*m)), ModelError);
}

TEST(Opaque, ExternBlockParsesFromSbd) {
    const auto file = text::parse_sbd_string(R"(
extern block VendorP {
  inputs P_in
  outputs P_out
  class moore
  function get writes P_out
  function step reads P_in
  order get step
}
block Top {
  inputs x
  outputs y
  sub P VendorP
  sub G Gain 2
  connect x P.P_in
  connect P.P_out G.u
  connect G.y y
}
)");
    EXPECT_EQ(file.root->type_name(), "Top");
    const auto& p = *file.root->sub(0).type;
    EXPECT_TRUE(p.is_opaque());
    EXPECT_EQ(p.block_class(), BlockClass::MooreSequential);
    // Compiles against the declared interface.
    const auto sys = compile_hierarchy(file.root, Method::DisjointSat);
    EXPECT_EQ(sys.at(*file.root).profile.functions.size(), 2u);
}

TEST(Opaque, ExternBlockErrors) {
    // Extern block with internals is rejected.
    EXPECT_THROW((void)text::parse_sbd_string(R"(
extern block E {
  inputs a
  outputs y
  sub G Gain 1
  function f reads a writes y
})"),
                 ModelError);
    // Unknown port in a function declaration.
    EXPECT_THROW((void)text::parse_sbd_string(R"(
extern block E {
  inputs a
  outputs y
  function f reads nope writes y
})"),
                 ModelError);
    // File whose only definition is extern: no root.
    EXPECT_THROW((void)text::parse_sbd_string(R"(
extern block E {
  inputs a
  outputs y
  function f reads a writes y
})"),
                 ModelError);
}

TEST(Opaque, RoundTripsThroughSbd) {
    auto m = std::make_shared<MacroBlock>("Top", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("P", opaque_fig3_profile());
    m->add_sub("G", lib::gain(2.0));
    m->connect("x", "P.P_in");
    m->connect("P.P_out", "G.u");
    m->connect("G.y", "y");
    const std::string once = text::to_sbd(*m);
    EXPECT_NE(once.find("extern block VendorP"), std::string::npos);
    EXPECT_NE(once.find("order get step"), std::string::npos);
    const auto back = text::parse_sbd_string(once);
    EXPECT_EQ(text::to_sbd(*back.root), once);
}

TEST(Opaque, ReplacingOpaqueByRealImplementationPreservesProfiles) {
    // The modularity contract: swapping the opaque vendor block for a real
    // implementation with the same profile changes nothing in the parent's
    // generated interface.
    auto build_top = [](BlockPtr p) {
        auto m = std::make_shared<MacroBlock>("Top", std::vector<std::string>{"x"},
                                              std::vector<std::string>{"y"});
        m->add_sub("P", std::move(p));
        m->add_sub("G", lib::gain(2.0));
        m->connect("x", "P.P_in");
        m->connect("P.P_out", "G.u");
        m->connect("G.y", "y");
        return m;
    };
    const auto with_opaque = build_top(opaque_fig3_profile());
    const auto with_real = build_top(sbd::suite::figure3_p());
    const auto sys_o = compile_hierarchy(std::static_pointer_cast<const Block>(with_opaque),
                                         Method::Dynamic);
    const auto sys_r =
        compile_hierarchy(std::static_pointer_cast<const Block>(with_real), Method::Dynamic);
    const Profile& po = sys_o.at(*with_opaque).profile;
    const Profile& pr = sys_r.at(*with_real).profile;
    ASSERT_EQ(po.functions.size(), pr.functions.size());
    for (std::size_t f = 0; f < po.functions.size(); ++f) {
        EXPECT_EQ(po.functions[f].reads, pr.functions[f].reads);
        EXPECT_EQ(po.functions[f].writes, pr.functions[f].writes);
    }
    EXPECT_EQ(po.pdg_edges, pr.pdg_edges);
}

} // namespace
