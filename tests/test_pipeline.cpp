// Differential test harness for the memoized parallel compilation pipeline.
//
// The oracle below reimplements the original serial bottom-up recursion
// (pre-pipeline compile_hierarchy) from the public building blocks; every
// pipeline configuration — serial, warm in-memory, warm from disk, parallel
// — must produce bit-identical artifacts (profiles, SDGs, clusterings,
// pseudocode, emitted C++, simulation traces, SAT statistics) and identical
// rejections. The adversary tests then attack the cache itself: key
// sensitivity, on-disk corruption, and same-key races.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "analysis/lint.hpp"
#include "core/emit_cpp.hpp"
#include "core/exec.hpp"
#include "core/pipeline.hpp"
#include "helpers.hpp"
#include "sbd/library.hpp"
#include "sbd/opaque.hpp"
#include "sbd/text_format.hpp"
#include "suite/random_models.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sbd;
using namespace sbd::codegen;

// --------------------------------------------------------------- rendering

void render_block(std::string& out, const std::string& name, const Profile& profile,
                  const std::optional<Sdg>& sdg, const std::optional<Clustering>& clustering,
                  const std::optional<CodeUnit>& code) {
    out += "=== " + name + " ===\n";
    out += profile.to_string();
    if (sdg) out += sdg->graph.to_dot(sdg->labels());
    if (clustering) {
        out += "clusters(" + std::string(to_string(clustering->method)) + "):";
        for (const auto& cl : clustering->clusters) {
            out += " {";
            for (const auto v : cl) out += std::to_string(v) + ",";
            out += "}";
        }
        out += "\n";
    }
    if (code) out += code->to_pseudocode();
}

/// Deterministic stand-in for emit_cpp on models it rejects (interface-only
/// opaque blocks have no implementation to emit): the error text itself
/// becomes the compared artifact.
std::string emitted_or_error(const CompiledSystem& sys) {
    try {
        return emit_cpp(sys);
    } catch (const std::exception& e) {
        return std::string("<emit_cpp rejected: ") + e.what() + ">";
    }
}

/// Canonical rendering of everything a compilation produces. Two compiles
/// are "bit-identical" for this harness iff their renderings match and
/// their emitted C++ matches.
std::string render(const CompiledSystem& sys) {
    std::string out;
    for (const Block* b : sys.order()) {
        const auto& cb = sys.at(*b);
        render_block(out, b->type_name(), cb.profile, cb.sdg, cb.clustering, cb.code);
    }
    out += "---- emitted ----\n";
    out += emitted_or_error(sys);
    return out;
}

std::string render_sat(const SatClusterStats& s) {
    return std::to_string(s.iterations) + "/" + std::to_string(s.first_k) + "/" +
           std::to_string(s.final_k) + "/" + std::to_string(s.vars) + "/" +
           std::to_string(s.clauses) + "/" + std::to_string(s.conflicts) + "/" +
           std::to_string(s.decisions) + "/" + std::to_string(s.propagations);
}

// ------------------------------------------------------------------ oracle

/// The seed compiler: a line-for-line reimplementation of the original
/// serial recursion over the public API, rendering as it goes. Kept
/// independent of CompiledSystem/Pipeline on purpose — if the pipeline and
/// this ever disagree, the pipeline is wrong.
struct Oracle {
    Method method;
    ClusterOptions opts;
    std::unordered_map<const Block*, Profile> done;
    std::string rendering;
    SatClusterStats sat;

    const Profile& compile(const BlockPtr& block) {
        const auto it = done.find(block.get());
        if (it != done.end()) return it->second;
        if (block->is_atomic()) {
            Profile p = block->is_opaque()
                            ? opaque_profile(static_cast<const OpaqueBlock&>(*block))
                            : atomic_profile(static_cast<const AtomicBlock&>(*block));
            render_block(rendering, block->type_name(), p, std::nullopt, std::nullopt,
                         std::nullopt);
            return done.emplace(block.get(), std::move(p)).first->second;
        }
        const auto& macro = static_cast<const MacroBlock&>(*block);
        for (std::size_t s = 0; s < macro.num_subs(); ++s) compile(macro.sub(s).type);
        std::vector<const Profile*> subs;
        for (std::size_t s = 0; s < macro.num_subs(); ++s)
            subs.push_back(&done.at(macro.sub(s).type.get()));
        const Sdg sdg = build_sdg(macro, subs);
        const Clustering clustering = cluster(sdg, method, opts, &sat);
        auto gen = generate_code(macro, subs, sdg, clustering);
        render_block(rendering, macro.type_name(), gen.profile, sdg, clustering, gen.code);
        return done.emplace(block.get(), std::move(gen.profile)).first->second;
    }
};

/// The oracle's rendering of a whole hierarchy (without the emitted-C++
/// tail, which needs a CompiledSystem); throws exactly like the seed.
std::string oracle_render(const BlockPtr& root, Method method, const ClusterOptions& opts,
                          SatClusterStats* sat = nullptr) {
    Oracle oracle{method, opts, {}, {}, {}};
    oracle.compile(root);
    if (sat != nullptr) *sat = oracle.sat;
    return oracle.rendering;
}

std::string render_without_emitted(const CompiledSystem& sys) {
    std::string out;
    for (const Block* b : sys.order()) {
        const auto& cb = sys.at(*b);
        render_block(out, b->type_name(), cb.profile, cb.sdg, cb.clustering, cb.code);
    }
    return out;
}

/// Exact (==, not nearly-equal) output trace of the generated code; models
/// that cannot execute (interface-only externs) contribute the error text.
std::pair<std::vector<std::vector<double>>, std::string>
exact_trace(const CompiledSystem& sys, const std::shared_ptr<const MacroBlock>& root,
            std::size_t steps) {
    std::vector<std::vector<double>> out;
    try {
        InterpInstance inst(sys, root);
        const auto inputs = sbd::testing::random_trace(root->num_inputs(), steps, 99);
        for (const auto& row : inputs) out.push_back(inst.step_instant(row));
    } catch (const std::exception& e) {
        return {std::move(out), e.what()};
    }
    return {std::move(out), ""};
}

constexpr Method kAllMethods[] = {Method::Monolithic,     Method::StepGet,
                                  Method::Dynamic,        Method::DisjointSat,
                                  Method::DisjointGreedy, Method::Singletons};

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("sbd_pipeline_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/// Compiles `root` under every pipeline configuration and asserts all of
/// them equal each other and the oracle. Returns false if the method
/// rejects the model (and then asserts every configuration rejects it with
/// the same message).
bool expect_all_paths_identical(const std::shared_ptr<const MacroBlock>& root, Method method,
                                const ClusterOptions& copts = {}) {
    std::string expected;
    SatClusterStats oracle_sat;
    std::string oracle_error;
    try {
        expected = oracle_render(root, method, copts, &oracle_sat);
    } catch (const std::exception& e) {
        oracle_error = e.what();
        if (oracle_error.empty()) oracle_error = "<empty>";
    }

    TempDir dir;
    const auto run = [&](PipelineOptions popts, std::shared_ptr<ProfileCache> cache,
                         const char* label) -> std::optional<CompiledSystem> {
        popts.method = method;
        popts.cluster = copts;
        Pipeline p = cache ? Pipeline(popts, cache) : Pipeline(popts);
        SatClusterStats sat;
        try {
            CompiledSystem sys = p.compile(root, &sat);
            EXPECT_EQ(oracle_error, "") << label << ": pipeline accepted, oracle rejected";
            EXPECT_EQ(render_without_emitted(sys), expected) << label;
            EXPECT_EQ(render_sat(sat), render_sat(oracle_sat)) << label;
            return sys;
        } catch (const std::exception& e) {
            EXPECT_EQ(oracle_error, std::string(e.what())) << label;
            return std::nullopt;
        }
    };

    PipelineOptions serial_opts;
    const auto serial = run(serial_opts, nullptr, "serial");

    // Warm: same cache, second compile must be all hits and still identical.
    auto shared = std::make_shared<ProfileCache>();
    run(serial_opts, shared, "cold-shared");
    const auto warm = run(serial_opts, shared, "warm");

    PipelineOptions par_opts;
    par_opts.threads = 4;
    const auto parallel = run(par_opts, nullptr, "parallel");

    PipelineOptions disk_opts;
    disk_opts.cache_dir = (dir.path / "cache").string();
    run(disk_opts, nullptr, "disk-cold");
    const auto disk_warm = run(disk_opts, nullptr, "disk-warm"); // fresh memory, warm disk

    PipelineOptions par_disk_opts = disk_opts;
    par_disk_opts.threads = 4;
    const auto par_disk = run(par_disk_opts, nullptr, "parallel-disk-warm");

    if (!serial.has_value()) return false;
    if (!warm || !parallel || !disk_warm || !par_disk) return true; // EXPECTs already failed

    // Emitted C++ and exact simulation traces across all configurations.
    const std::string cpp = emitted_or_error(*serial);
    const auto trace = exact_trace(*serial, root, 20);
    for (const CompiledSystem* sys : {&*warm, &*parallel, &*disk_warm, &*par_disk}) {
        EXPECT_EQ(emitted_or_error(*sys), cpp);
        EXPECT_EQ(exact_trace(*sys, root, 20), trace);
    }
    return true;
}

// ------------------------------------------------- differential: shipped

TEST(PipelineDifferential, ShippedModels) {
    for (const auto& entry : fs::directory_iterator(SBD_MODELS_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        const auto file = text::parse_sbd_file(entry.path().string());
        for (const Method method : kAllMethods)
            expect_all_paths_identical(file.root, method);
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "first failing model: " << entry.path();
            return;
        }
    }
}

TEST(PipelineDifferential, ShippedModelsWithContracts) {
    ClusterOptions copts;
    copts.verify_contracts = true;
    for (const auto& entry : fs::directory_iterator(SBD_MODELS_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        const auto file = text::parse_sbd_file(entry.path().string());
        expect_all_paths_identical(file.root, Method::Dynamic, copts);
    }
}

// -------------------------------------------------- differential: fuzzed

class PipelineFuzz : public ::testing::TestWithParam<Method> {};

TEST_P(PipelineFuzz, FuzzedDiagramsAllPathsIdentical) {
    const Method method = GetParam();
    std::mt19937_64 rng(7000 + static_cast<std::uint64_t>(method));
    int accepted = 0, rejected = 0;
    for (int iter = 0; iter < 200; ++iter) {
        suite::RandomModelParams params;
        params.depth = 1 + iter % 2;
        params.subs_per_level = 3 + iter % 3;
        const auto m = suite::random_model(rng, params);
        (expect_all_paths_identical(m, method) ? accepted : rejected)++;
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "first failing iteration: " << iter;
            return;
        }
    }
    // Maximal-reusability methods never reject the generator's output.
    if (method == Method::Dynamic || method == Method::DisjointSat ||
        method == Method::DisjointGreedy || method == Method::Singletons)
        EXPECT_EQ(rejected, 0);
    EXPECT_GT(accepted, 0);
}

std::string method_name(const ::testing::TestParamInfo<Method>& info) {
    std::string s = to_string(info.param);
    for (char& c : s)
        if (c == '-') c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, PipelineFuzz, ::testing::ValuesIn(kAllMethods),
                         method_name);

// ------------------------------------------------ differential: hierarchy

TEST(PipelineDifferential, DeepSharedHierarchyHighHitRate) {
    std::mt19937_64 rng(8101);
    suite::DeepModelParams params;
    params.levels = 6;
    params.clone_probability = 0.3;
    const auto m = suite::random_deep_model(rng, params);

    PipelineOptions popts;
    Pipeline serial(popts);
    const auto sys = serial.compile(m);

    // Shared types: far more macro instances exist than distinct compiles.
    const auto stats = serial.stats();
    EXPECT_GT(stats.macro_reuses, 0u);
    std::printf("deep hierarchy: %llu compiles, %llu reuses (hit rate %.2f)\n",
                static_cast<unsigned long long>(stats.macro_compiles),
                static_cast<unsigned long long>(stats.macro_reuses), stats.hit_rate());

    // Clones are distinct objects with identical structure: the pointer-level
    // order() contains them separately, but the cache compiled each distinct
    // structure once. Parallel + oracle equivalence on the same model:
    expect_all_paths_identical(m, Method::Dynamic);
}

TEST(PipelineDifferential, CloneFingerprintsIdentically) {
    std::mt19937_64 rng(8202);
    suite::RandomModelParams params;
    params.depth = 2;
    const auto m = suite::random_model(rng, params);
    const auto c = suite::clone_macro(*m);
    ASSERT_NE(static_cast<const Block*>(m.get()), static_cast<const Block*>(c.get()));
    const Fingerprint fm = fingerprint_block(*m);
    const Fingerprint fc = fingerprint_block(*c);
    EXPECT_EQ(fm.hex(), fc.hex());

    // A hierarchy containing both the original and the clone compiles the
    // shared structure once.
    auto parent = std::make_shared<MacroBlock>("Both", std::vector<std::string>{"i0", "i1"},
                                               std::vector<std::string>{"o0", "o1"});
    parent->add_sub("a", m);
    parent->add_sub("b", c);
    for (int s = 0; s < 2; ++s)
        for (std::size_t i = 0; i < m->num_inputs(); ++i)
            parent->connect(Endpoint{Endpoint::Kind::MacroInput, -1,
                                     static_cast<std::int32_t>(i % parent->num_inputs())},
                            Endpoint{Endpoint::Kind::SubInput, s, static_cast<std::int32_t>(i)});
    parent->connect(Endpoint{Endpoint::Kind::SubOutput, 0, 0},
                    Endpoint{Endpoint::Kind::MacroOutput, -1, 0});
    parent->connect(Endpoint{Endpoint::Kind::SubOutput, 1, 0},
                    Endpoint{Endpoint::Kind::MacroOutput, -1, 1});
    parent->validate();

    Pipeline p{PipelineOptions{}};
    (void)p.compile(parent);
    const auto stats = p.stats();
    EXPECT_GE(stats.macro_reuses, 1u) << "clone should hit the cache, not recompile";
    expect_all_paths_identical(parent, Method::Dynamic);
}

// -------------------------------------------------- adversary: fingerprint

TEST(CacheAdversary, FingerprintSensitivity) {
    // Base diagram rebuilt from scratch by a parameterized builder: any
    // single structural mutation must change the fingerprint.
    struct Cfg {
        std::string name = "M";
        std::string in0 = "a", in1 = "b", out0 = "y";
        std::string sub0 = "g", sub1 = "d";
        double gain = 2.0, init = 0.5;
        bool swap_connection_order = false;
        bool rewire_to_delay = false;
        bool extra_sub = false;
        bool trigger = false;
    };
    const auto build = [](const Cfg& c) {
        auto m = std::make_shared<MacroBlock>(c.name, std::vector<std::string>{c.in0, c.in1},
                                              std::vector<std::string>{c.out0});
        m->add_sub(c.sub0, lib::gain(c.gain));
        m->add_sub(c.sub1, lib::unit_delay(c.init));
        if (c.extra_sub) m->add_sub("extra", lib::abs_block());
        if (c.trigger)
            m->set_trigger(1, Endpoint{Endpoint::Kind::MacroInput, -1, 1});
        const Endpoint gain_in{Endpoint::Kind::SubInput, 0, 0};
        const Endpoint delay_in{Endpoint::Kind::SubInput, 1, 0};
        const Endpoint src0{Endpoint::Kind::MacroInput, -1, 0};
        const Endpoint src1{Endpoint::Kind::MacroInput, -1, 1};
        std::vector<std::pair<Endpoint, Endpoint>> wires;
        wires.emplace_back(src0, gain_in);
        wires.emplace_back(c.rewire_to_delay ? src0 : src1, delay_in);
        if (c.extra_sub)
            wires.emplace_back(src1, Endpoint{Endpoint::Kind::SubInput, 2, 0});
        if (c.swap_connection_order) std::swap(wires[0], wires[1]);
        for (const auto& [s, d] : wires) m->connect(s, d);
        m->connect(Endpoint{Endpoint::Kind::SubOutput, 0, 0},
                   Endpoint{Endpoint::Kind::MacroOutput, -1, 0});
        m->validate();
        return m;
    };

    const Cfg base;
    const std::string base_fp = fingerprint_block(*build(base)).hex();
    // Determinism first: rebuilding the identical structure re-fingerprints
    // identically.
    EXPECT_EQ(base_fp, fingerprint_block(*build(base)).hex());

    const auto mutated = [&](const char* what, const Cfg& c) {
        EXPECT_NE(base_fp, fingerprint_block(*build(c)).hex()) << what;
    };
    {
        Cfg c; c.name = "N"; mutated("type name", c);
    }
    {
        Cfg c; c.in0 = "a2"; mutated("input port name", c);
    }
    {
        Cfg c; c.out0 = "z"; mutated("output port name", c);
    }
    {
        Cfg c; c.sub0 = "g2"; mutated("sub instance name", c);
    }
    {
        Cfg c; c.gain = 2.5; mutated("atomic parameter", c);
    }
    {
        Cfg c; c.init = 0.25; mutated("initial state", c);
    }
    {
        Cfg c; c.swap_connection_order = true; mutated("connection order", c);
    }
    {
        Cfg c; c.rewire_to_delay = true; mutated("connection endpoint", c);
    }
    {
        Cfg c; c.extra_sub = true; mutated("added sub-block", c);
    }
    {
        Cfg c; c.trigger = true; mutated("trigger", c);
    }
}

TEST(CacheAdversary, CompileKeySeparatesMethodsAndOptions) {
    const Fingerprint fp = fingerprint_block(*lib::gain(1.0));
    std::vector<std::string> keys;
    for (const Method m : kAllMethods) keys.push_back(compile_key(fp, m, {}).hex());
    for (std::size_t a = 0; a < keys.size(); ++a)
        for (std::size_t b = a + 1; b < keys.size(); ++b) EXPECT_NE(keys[a], keys[b]);

    // Every ClusterOptions field must flow into both canonical_options and
    // the compile key (the add-a-field tripwire's runtime half).
    const ClusterOptions base;
    const auto differs = [&](const char* what, const ClusterOptions& opts) {
        EXPECT_NE(canonical_options(base), canonical_options(opts)) << what;
        EXPECT_NE(compile_key(fp, Method::Dynamic, base).hex(),
                  compile_key(fp, Method::Dynamic, opts).hex())
            << what;
    };
    {
        ClusterOptions o; o.fold_update_into_get = false; differs("fold_update_into_get", o);
    }
    {
        ClusterOptions o; o.sat_start_k = 3; differs("sat_start_k", o);
    }
    {
        ClusterOptions o; o.sat_symmetry_breaking = false; differs("sat_symmetry_breaking", o);
    }
    {
        ClusterOptions o; o.sat_conflict_budget = 1000; differs("sat_conflict_budget", o);
    }
    {
        ClusterOptions o; o.verify_contracts = true; differs("verify_contracts", o);
    }
    {
        ClusterOptions o; o.sat_budget_degrade = true; differs("sat_budget_degrade", o);
    }
}

// ------------------------------------------------------ adversary: disk

TEST(CacheAdversary, DiskTamperingDegradesToRecompute) {
    std::mt19937_64 rng(9001);
    suite::RandomModelParams params;
    params.depth = 2;
    const auto m = suite::random_model(rng, params);

    TempDir dir;
    const std::string cache = (dir.path / "cache").string();
    PipelineOptions popts;
    popts.cache_dir = cache;
    std::string expected;
    {
        Pipeline p(popts);
        expected = render(p.compile(m));
    }
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(cache)) files.push_back(e.path());
    ASSERT_FALSE(files.empty());

    const auto recompile_expect_identical = [&](const char* what, std::uint64_t min_rejects) {
        Pipeline p(popts);
        EXPECT_EQ(render(p.compile(m)), expected) << what;
        EXPECT_GE(p.stats().disk_rejects, min_rejects) << what;
    };

    const auto reload = [&](const fs::path& f) {
        std::ifstream in(f, std::ios::binary);
        return std::vector<char>(std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>());
    };
    const auto rewrite = [&](const fs::path& f, const std::vector<char>& bytes) {
        std::ofstream out(f, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    };

    // 1. Flip one byte in the middle of every record (payload corruption).
    std::vector<std::vector<char>> originals;
    for (const auto& f : files) originals.push_back(reload(f));
    for (std::size_t i = 0; i < files.size(); ++i) {
        auto bytes = originals[i];
        bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
        rewrite(files[i], bytes);
    }
    recompile_expect_identical("byte flip", files.size());

    // 2. Truncate to every interesting prefix length.
    {
        Pipeline warmup(popts); // restore good files
        (void)warmup.compile(m);
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
        auto bytes = originals[i];
        bytes.resize(bytes.size() / 3);
        rewrite(files[i], bytes);
    }
    recompile_expect_identical("truncation", files.size());

    // 3. Garbage and empty files.
    {
        Pipeline warmup(popts);
        (void)warmup.compile(m);
    }
    for (std::size_t i = 0; i < files.size(); ++i)
        rewrite(files[i], std::vector<char>(i % 2 == 0 ? 0 : 100, 'x'));
    recompile_expect_identical("garbage", files.size());

    // 4. Header key mismatch: a valid record under the wrong file name.
    {
        Pipeline warmup(popts);
        (void)warmup.compile(m);
        ASSERT_GE(files.size(), 1u);
        auto bytes = reload(files[0]);
        // Flip a key byte inside the header (offset 8 = first key byte).
        bytes[9] = static_cast<char>(bytes[9] ^ 0xff);
        rewrite(files[0], bytes);
    }
    recompile_expect_identical("key mismatch", 1);

    // Rejected files are deleted, then rewritten by the recompute: the
    // cache heals itself.
    Pipeline p(popts);
    EXPECT_EQ(render(p.compile(m)), expected);
    EXPECT_EQ(p.stats().disk_rejects, 0u);
    EXPECT_EQ(p.stats().macro_compiles, 0u);
}

TEST(CacheAdversary, EntryRoundTripAndTruncationSafety) {
    std::mt19937_64 rng(9102);
    suite::RandomModelParams params;
    params.depth = 1;
    const auto m = suite::random_model(rng, params);
    Pipeline p{PipelineOptions{}};
    const auto sys = p.compile(m);
    const auto& cb = sys.root();

    CacheEntry entry;
    entry.profile = cb.profile;
    entry.sdg = cb.sdg;
    entry.clustering = cb.clustering;
    entry.code = cb.code;
    entry.sat_delta.iterations = 3;
    entry.sat_delta.conflicts = 41;

    const auto bytes = serialize_entry(entry);
    const auto back = deserialize_entry(bytes);
    ASSERT_TRUE(back.has_value());
    // Round trip is exact: re-serialization is byte-identical, and the
    // reconstructed artifacts render identically.
    EXPECT_EQ(serialize_entry(*back), bytes);
    std::string a, b;
    render_block(a, "x", entry.profile, entry.sdg, entry.clustering, entry.code);
    render_block(b, "x", back->profile, back->sdg, back->clustering, back->code);
    EXPECT_EQ(a, b);
    EXPECT_EQ(back->sat_delta.conflicts, 41u);

    // No prefix, corruption or extension may crash; a parse that
    // "succeeds" must never reproduce the original entry from different
    // bytes.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const auto r = deserialize_entry(std::span<const std::uint8_t>(bytes.data(), len));
        if (r) EXPECT_NE(serialize_entry(*r), bytes) << "prefix length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(deserialize_entry(extended).has_value());
    std::mt19937_64 fuzz(424242);
    for (int iter = 0; iter < 200; ++iter) {
        auto mutated = bytes;
        const std::size_t at = fuzz() % mutated.size();
        mutated[at] = static_cast<std::uint8_t>(fuzz());
        (void)deserialize_entry(mutated); // must not crash or hang
    }
}

// --------------------------------------------------- adversary: same key

TEST(CacheAdversary, ConcurrentSameKeyCompilesProduceOneEntry) {
    std::mt19937_64 rng(9203);
    suite::RandomModelParams params;
    params.depth = 2;
    params.subs_per_level = 5;
    const auto m = suite::random_model(rng, params);

    const std::string expected = [&] {
        Pipeline p{PipelineOptions{}};
        return render(p.compile(m));
    }();

    auto cache = std::make_shared<ProfileCache>();
    std::vector<std::string> renderings(8);
    {
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < renderings.size(); ++t)
            threads.emplace_back([&, t] {
                PipelineOptions popts;
                popts.threads = 1 + t % 4;
                Pipeline p(popts, cache);
                renderings[t] = render(p.compile(m));
            });
        for (auto& th : threads) th.join();
    }
    for (const auto& r : renderings) EXPECT_EQ(r, expected);

    // One entry per distinct (sub-diagram, method, options) — racing
    // compilers never duplicate or split an entry.
    std::size_t distinct_macros = 0;
    {
        Pipeline counter{PipelineOptions{}};
        const auto sys = counter.compile(m);
        for (const Block* b : sys.order())
            if (!b->is_atomic()) ++distinct_macros;
    }
    EXPECT_EQ(cache->size(), distinct_macros);
}

// --------------------------------------------------------- stats & cache

TEST(ProfileCache, LruEvictionAtCapacity) {
    std::mt19937_64 rng(9304);
    auto cache = std::make_shared<ProfileCache>(1); // capacity one entry
    suite::RandomModelParams params;
    params.depth = 1;
    PipelineOptions popts;
    for (int iter = 0; iter < 4; ++iter) {
        const auto m = suite::random_model(rng, params);
        Pipeline p(popts, cache);
        (void)p.compile(m);
    }
    EXPECT_EQ(cache->size(), 1u);
    EXPECT_GE(cache->stats().evictions, 3u);
}

TEST(ProfileCache, StatsJsonWellFormedAndConsistent) {
    std::mt19937_64 rng(9405);
    suite::RandomModelParams params;
    params.depth = 2;
    const auto m = suite::random_model(rng, params);
    PipelineOptions popts;
    Pipeline p(popts);
    (void)p.compile(m);
    (void)p.compile(m); // second run: all reuses (same Block*, same cache)
    const auto stats = p.stats();
    EXPECT_EQ(stats.mem_hits + stats.mem_misses,
              stats.macro_compiles + stats.macro_reuses);
    EXPECT_GT(stats.macro_reuses, 0u);
    const std::string json = stats.to_json();
    for (const char* key : {"\"mem_hits\"", "\"disk_rejects\"", "\"hit_rate\"",
                            "\"fingerprint\"", "\"total\""})
        EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
}

TEST(Pipeline, LintSharedCacheMakesProbesIncremental) {
    // The SBD013 which-methods-accept probe compiles the model under all
    // six methods; with a shared cache, linting the same file twice does
    // no new compilation work.
    const std::string model = std::string(SBD_MODELS_DIR) + "/thermostat.sbd";
    analysis::LintOptions lopts;
    lopts.method = Method::Monolithic; // forces the false-cycle probe
    lopts.cache = std::make_shared<ProfileCache>();
    const auto first = analysis::lint_file(model, lopts);
    const auto baseline = lopts.cache->stats();
    const auto second = analysis::lint_file(model, lopts);
    const auto after = lopts.cache->stats();
    EXPECT_EQ(analysis::render_json(first), analysis::render_json(second));
    EXPECT_GT(after.mem_hits, baseline.mem_hits);
}

} // namespace
