// Resilience subsystem tests: deterministic fault plans, the registry's
// per-hit decision semantics, budgets/deadlines, the cache's bounded
// retry-with-backoff, the SAT degradation ladder — and the headline chaos
// differential harness, which replays hundreds of seeded fault schedules
// through the whole pipeline + engine and requires every run to be either
// bit-identical to the fault-free oracle or a documented, coded error.
// Never a crash, never a hang, never silently-wrong output.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <unistd.h>

#include "core/clustering.hpp"
#include "core/pipeline.hpp"
#include "durable/durable.hpp"
#include "graph/undirected.hpp"
#include "helpers.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "runtime/engine.hpp"
#include "sbd/text_format.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "upgrade/upgrade.hpp"
#include "suite/npred.hpp"
#include "suite/random_models.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sbd;
using namespace sbd::codegen;
using namespace sbd::resilience;

// Tests sleep microseconds, not the production 100us+ backoff.
constexpr RetryPolicy kFastRetry{3, 1'000, 2.0};

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("sbd_resilience_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/// Canonical rendering of a compilation: the differential harness calls two
/// compiles identical iff these strings match (profiles, SDGs, clusterings,
/// generated code — everything semantically observable short of emit_cpp).
std::string render(const CompiledSystem& sys) {
    std::string out;
    for (const Block* b : sys.order()) {
        const auto& cb = sys.at(*b);
        out += "=== " + b->type_name() + " ===\n";
        out += cb.profile.to_string();
        if (cb.sdg) out += cb.sdg->graph.to_dot(cb.sdg->labels());
        if (cb.clustering) {
            out += "clusters(" + std::string(to_string(cb.clustering->method)) + "):";
            for (const auto& cl : cb.clustering->clusters) {
                out += " {";
                for (const auto v : cl) out += std::to_string(v) + ",";
                out += "}";
            }
            out += "\n";
        }
        if (cb.code) out += cb.code->to_pseudocode();
    }
    return out;
}

std::shared_ptr<const MacroBlock> make_model(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    suite::RandomModelParams params;
    params.depth = 2;
    params.subs_per_level = 4;
    return suite::random_model(rng, params);
}

/// Runs `root` on the engine for `ticks` instants with two instances and
/// returns instance 0's outputs per tick (the chaos reference trajectory).
std::vector<std::vector<double>> engine_outputs(const CompiledSystem& sys,
                                                const std::shared_ptr<const MacroBlock>& root,
                                                std::size_t ticks,
                                                std::uint64_t deadline_ms = 0) {
    runtime::EngineConfig cfg;
    cfg.capacity = 2;
    cfg.deadline_ms = deadline_ms;
    runtime::Engine engine(sys, root, cfg);
    const auto ids = engine.create(2);
    std::vector<runtime::LcgInputSource> sources;
    for (std::size_t i = 0; i < 2; ++i) sources.emplace_back(1 + i);
    std::vector<std::vector<double>> out;
    for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t i = 0; i < 2; ++i) sources[i].fill(engine.pool().inputs(ids[i]));
        engine.tick();
        const auto outputs = engine.pool().outputs(ids[0]);
        out.emplace_back(outputs.begin(), outputs.end());
    }
    return out;
}

// ------------------------------------------------------------- fault plans

TEST(FaultPlan, ParsesEveryScheduleKindAndRoundTrips) {
    const FaultPlan plan = FaultPlan::parse(
        "seed=42; cache.disk_read=nth:3 ;sat.budget=every:2;engine.tick=p:0.5;"
        "pipeline.task=off");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.points.size(), 4u);
    // parse() sorts by point name.
    EXPECT_EQ(plan.points[0].first, "cache.disk_read");
    EXPECT_EQ(plan.points[0].second.kind, ScheduleKind::Nth);
    EXPECT_EQ(plan.points[0].second.n, 3u);
    EXPECT_EQ(plan.points[1].first, "engine.tick");
    EXPECT_EQ(plan.points[1].second.kind, ScheduleKind::Prob);
    EXPECT_DOUBLE_EQ(plan.points[1].second.p, 0.5);
    EXPECT_EQ(plan.points[2].first, "pipeline.task");
    EXPECT_EQ(plan.points[2].second.kind, ScheduleKind::Never);
    EXPECT_EQ(plan.points[3].first, "sat.budget");
    EXPECT_EQ(plan.points[3].second.kind, ScheduleKind::EveryK);
    EXPECT_EQ(plan.points[3].second.n, 2u);

    const std::string spec = plan.to_spec();
    EXPECT_EQ(FaultPlan::parse(spec).to_spec(), spec) << "spec must round-trip";
}

TEST(FaultPlan, RejectsMalformedSpecsNamingTheClause) {
    for (const char* bad : {"bogus", "seed=x", "a=nth:0", "a=every:-1", "a=p:2.0",
                            "a=p:zz", "a=wibble:3", "a=nth:", "=nth:1"}) {
        EXPECT_THROW((void)FaultPlan::parse(bad), std::invalid_argument) << bad;
        try {
            (void)FaultPlan::parse(bad);
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("bad clause"), std::string::npos) << bad;
        }
    }
}

TEST(FaultRegistry, SchedulesFireDeterministically) {
    FaultPlan plan = FaultPlan::parse("seed=7;a=nth:3;b=every:4;c=p:0.5");
    const auto run = [&] {
        std::string decisions;
        ScopedFaultPlan armed(plan);
        for (int i = 0; i < 40; ++i) {
            decisions += SBD_FAULT_HIT("a") ? 'A' : '.';
            decisions += SBD_FAULT_HIT("b") ? 'B' : '.';
            decisions += SBD_FAULT_HIT("c") ? 'C' : '.';
            decisions += SBD_FAULT_HIT("unplanned") ? 'U' : '.';
        }
        return decisions;
    };
    const std::string first = run();
    // nth:3 fires exactly once, on hit 3; every:4 on hits 4, 8, ...
    EXPECT_EQ(std::count(first.begin(), first.end(), 'A'), 1);
    EXPECT_EQ(first[2 * 4], 'A');
    EXPECT_EQ(std::count(first.begin(), first.end(), 'B'), 10);
    // p:0.5 over 40 trials: seeded, so any count is fine — but not 0 or 40.
    const auto cs = std::count(first.begin(), first.end(), 'C');
    EXPECT_GT(cs, 0);
    EXPECT_LT(cs, 40);
    // Unplanned points are observed but never told to fail.
    EXPECT_EQ(first.find('U'), std::string::npos);
    // Re-arming the identical plan replays the identical decision string.
    EXPECT_EQ(run(), first);
}

TEST(FaultRegistry, SnapshotCountsHitsAndInjections) {
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;x=every:2"));
    for (int i = 0; i < 6; ++i) (void)SBD_FAULT_HIT("x");
    (void)SBD_FAULT_HIT("y");
    const auto snap = FaultRegistry::instance().snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "x");
    EXPECT_EQ(snap[0].hits, 6u);
    EXPECT_EQ(snap[0].injected, 3u);
    EXPECT_TRUE(snap[0].scheduled);
    EXPECT_EQ(snap[1].name, "y");
    EXPECT_EQ(snap[1].hits, 1u);
    EXPECT_EQ(snap[1].injected, 0u);
    EXPECT_FALSE(snap[1].scheduled);
}

TEST(FaultRegistry, DisarmedChecksShortCircuit) {
    ASSERT_FALSE(fault_armed());
    EXPECT_FALSE(SBD_FAULT_HIT("anything"));
    {
        ScopedFaultPlan armed(FaultPlan::parse("seed=1;z=every:1"));
        EXPECT_TRUE(SBD_FAULT_HIT("z"));
    }
    EXPECT_FALSE(fault_armed());
    EXPECT_FALSE(SBD_FAULT_HIT("z"));
}

TEST(FaultRegistry, MetricsExportIsIdempotent) {
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;m=every:2"));
    for (int i = 0; i < 4; ++i) (void)SBD_FAULT_HIT("m");
    obs::MetricsRegistry reg;
    FaultRegistry::instance().export_metrics(reg);
    FaultRegistry::instance().export_metrics(reg); // set-by-delta: no double count
    const auto hits = reg.counter("sbd_fault_hits_total", "", {{"point", "m"}});
    const auto injected = reg.counter("sbd_fault_injected_total", "", {{"point", "m"}});
    EXPECT_EQ(hits.value(), 4u);
    EXPECT_EQ(injected.value(), 2u);
}

// ---------------------------------------------------- deadlines and budgets

TEST(Deadline, DisarmedIsNeverDue) {
    const Deadline d;
    EXPECT_FALSE(d.armed());
    EXPECT_FALSE(d.due());
    EXPECT_NO_THROW(d.check("unit"));
    EXPECT_FALSE(Deadline::after_ms(0).armed());
}

TEST(Deadline, ExpiresAndThrowsCoded) {
    const Deadline d = Deadline::after_ms(1);
    EXPECT_TRUE(d.armed());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(d.due());
    EXPECT_THROW(d.check("unit"), DeadlineExceeded);
}

TEST(Deadline, FaultPointForcesDueWithoutWaiting) {
    const Deadline d; // disarmed: only the injected verdict can make it due
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;unit.deadline=nth:1"));
    EXPECT_TRUE(d.due("unit.deadline"));
    EXPECT_FALSE(d.due("unit.deadline")); // nth:1 fired; later hits pass
}

TEST(RetryPolicy, BackoffGrowsExponentially) {
    const RetryPolicy p{5, 100, 2.0};
    EXPECT_EQ(p.backoff_ns(1), 100u);
    EXPECT_EQ(p.backoff_ns(2), 200u);
    EXPECT_EQ(p.backoff_ns(3), 400u);
}

// ------------------------------------------------- SAT budget + degradation

/// A reduction SDG hard enough that a 1-conflict budget trips: the
/// Proposition 2 construction over a dense-ish random graph.
Sdg hard_sat_sdg() {
    graph::Undirected g(9);
    std::mt19937_64 rng(5);
    for (std::size_t u = 0; u < g.num_nodes(); ++u)
        for (std::size_t v = u + 1; v < g.num_nodes(); ++v)
            if (rng() % 100 < 45) g.add_edge(u, v);
    return suite::reduction_sdg(g);
}

TEST(SatBudget, ExhaustionThrowsCodedErrorNamingTheRemedy) {
    const Sdg sdg = hard_sat_sdg();
    ClusterOptions opts;
    opts.sat_conflict_budget = 1;
    SatClusterStats stats;
    try {
        (void)cluster_disjoint_sat(sdg, opts, &stats);
        FAIL() << "a 1-conflict budget must trip on the reduction SDG";
    } catch (const BudgetExhausted& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("SAT conflict budget"), std::string::npos);
        EXPECT_NE(what.find("SBD021"), std::string::npos);
    }
    EXPECT_TRUE(stats.budget_exhausted);
}

TEST(SatBudget, DegradationLadderYieldsValidClustering) {
    const Sdg sdg = hard_sat_sdg();
    ClusterOptions opts;
    opts.sat_conflict_budget = 1;
    opts.sat_budget_degrade = true;
    SatClusterStats stats;
    const Clustering degraded = cluster_disjoint_sat(sdg, opts, &stats);
    EXPECT_TRUE(stats.budget_exhausted);
    // The degraded result keeps its real producer's tag (the ladder is
    // step-get first, dynamic as the always-valid fallback) and must be
    // valid by the criterion that applies to that rung: Definition 1 for
    // the disjoint step-get result, no-false-dependencies for the
    // overlapping dynamic one.
    if (degraded.method == Method::StepGet)
        EXPECT_TRUE(check_validity(sdg, degraded).valid());
    else if (degraded.method == Method::Dynamic)
        EXPECT_TRUE(false_io_dependencies(sdg, degraded).empty());
    else
        FAIL() << "unexpected degraded method " << to_string(degraded.method);
    // Unlimited budget on the same SDG must still find the optimum.
    ClusterOptions unlimited;
    SatClusterStats full_stats;
    (void)cluster_disjoint_sat(sdg, unlimited, &full_stats);
    EXPECT_FALSE(full_stats.budget_exhausted);
}

TEST(SatBudget, PipelineInjectedExhaustionFollowsTheSameLadder) {
    const auto root = make_model(21);
    PipelineOptions popts;
    popts.method = Method::DisjointSat;

    ScopedFaultPlan armed(FaultPlan::parse("seed=3;sat.budget=every:1"));
    {
        Pipeline strict(popts);
        EXPECT_THROW((void)strict.compile(root), BudgetExhausted);
    }
    popts.cluster.sat_budget_degrade = true;
    Pipeline degrade(popts);
    SatClusterStats stats;
    const CompiledSystem sys = degrade.compile(root, &stats);
    EXPECT_TRUE(stats.budget_exhausted);
    // The degraded system still executes (and matches the step-get/dynamic
    // semantics bit-for-bit — the equivalence tests cover that elsewhere);
    // here: no crash, outputs exist.
    const auto outs = engine_outputs(sys, root, 3);
    ASSERT_EQ(outs.size(), 3u);
}

// --------------------------------------------------------- cache resilience

TEST(CacheResilience, TransientReadFailureIsRetriedThenServed) {
    TempDir dir;
    const auto root = make_model(31);
    PipelineOptions popts;
    std::string expected;
    {
        auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
        cache->set_retry_policy(kFastRetry);
        Pipeline p(popts, cache);
        expected = render(p.compile(root));
    }
    // Fresh memory, warm disk; the very first read attempt fails, the retry
    // succeeds — the run must still be all disk hits.
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;cache.disk_read=nth:1"));
    auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
    cache->set_retry_policy(kFastRetry);
    Pipeline p(popts, cache);
    EXPECT_EQ(render(p.compile(root)), expected);
    const PipelineStats stats = p.stats();
    EXPECT_GE(stats.disk_retries, 1u);
    EXPECT_GT(stats.disk_backoff_ns, 0u);
    EXPECT_GT(stats.disk_hits, 0u);
    EXPECT_EQ(stats.macro_compiles, 0u) << "the retry must have rescued the read";
}

TEST(CacheResilience, PersistentReadFailureDegradesToRecompute) {
    TempDir dir;
    const auto root = make_model(31);
    PipelineOptions popts;
    std::string expected;
    {
        auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
        cache->set_retry_policy(kFastRetry);
        Pipeline p(popts, cache);
        expected = render(p.compile(root));
    }
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;cache.disk_read=every:1"));
    auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
    cache->set_retry_policy(kFastRetry);
    Pipeline p(popts, cache);
    EXPECT_EQ(render(p.compile(root)), expected) << "a sick disk may only cost time";
    const PipelineStats stats = p.stats();
    EXPECT_GT(stats.macro_compiles, 0u);
    EXPECT_EQ(stats.disk_hits, 0u);
    EXPECT_GE(stats.disk_retries, 2u);
}

TEST(CacheResilience, CorruptedRecordIsRejectedAndRecomputed) {
    TempDir dir;
    const auto root = make_model(31);
    PipelineOptions popts;
    std::string expected;
    {
        auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
        Pipeline p(popts, cache);
        expected = render(p.compile(root));
    }
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;cache.disk_corrupt=every:1"));
    auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
    Pipeline p(popts, cache);
    EXPECT_EQ(render(p.compile(root)), expected);
    const PipelineStats stats = p.stats();
    EXPECT_GT(stats.disk_rejects, 0u);
    EXPECT_GT(stats.macro_compiles, 0u);
}

TEST(CacheResilience, UnwritableStoreDropsOnceWarnsOnce) {
    TempDir dir;
    const auto root = make_model(31);
    PipelineOptions popts;
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;cache.disk_write=every:1"));
    auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
    cache->set_retry_policy(kFastRetry);
    Pipeline p(popts, cache);
    ::testing::internal::CaptureStderr();
    (void)p.compile(root);
    const std::string err = ::testing::internal::GetCapturedStderr();
    const PipelineStats stats = p.stats();
    EXPECT_GT(stats.store_drops, 0u);
    // One-shot warning: first drop announces, later drops stay silent.
    const auto first = err.find("not accepting writes");
    ASSERT_NE(first, std::string::npos) << err;
    EXPECT_EQ(err.find("not accepting writes", first + 1), std::string::npos) << err;
    // Drops are recoverable: the entries stayed in memory.
    EXPECT_GT(cache->size(), 0u);
}

TEST(CacheResilience, RenameFailureCountsAsDropAndLeavesNoTempFiles) {
    TempDir dir;
    const auto root = make_model(31);
    PipelineOptions popts;
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;cache.disk_rename=every:1"));
    auto cache = std::make_shared<ProfileCache>(0, dir.path.string());
    cache->set_retry_policy(kFastRetry);
    Pipeline p(popts, cache);
    ::testing::internal::CaptureStderr();
    (void)p.compile(root);
    (void)::testing::internal::GetCapturedStderr();
    EXPECT_GT(p.stats().store_drops, 0u);
    for (const auto& f : fs::directory_iterator(dir.path))
        EXPECT_EQ(f.path().extension(), ".sbdp") << "dropped stores must clean their temp file: "
                                                 << f.path();
}

TEST(CacheResilience, DirCreateFailureThrowsUpFront) {
    TempDir dir;
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;cache.dir_create=nth:1"));
    try {
        ProfileCache cache(0, (dir.path / "sub").string());
        FAIL() << "injected dir-create failure must surface";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("cannot create cache dir"), std::string::npos);
    }
}

TEST(CacheResilience, MemoryBudgetEvictsByBytesButKeepsWorking) {
    std::mt19937_64 rng(41);
    suite::DeepModelParams params;
    params.levels = 4;
    const auto root = suite::random_deep_model(rng, params);

    PipelineOptions popts;
    std::string expected;
    {
        Pipeline p(popts);
        expected = render(p.compile(root));
    }
    popts.budgets.memory_bytes = 4096; // far below the working set
    Pipeline p(popts);
    EXPECT_EQ(p.cache()->max_bytes(), 4096u) << "budget must reach the pipeline-owned cache";
    EXPECT_EQ(render(p.compile(root)), expected);
    EXPECT_LE(p.cache()->mem_bytes(), 4096u * 2)
        << "resident bytes must track the budget (one oversized entry is kept)";
    EXPECT_GE(p.stats().evictions, 1u);
    // A second compile under the same starved cache still agrees.
    EXPECT_EQ(render(p.compile(root)), expected);
}

// --------------------------------------------------------- engine deadlines

TEST(EngineResilience, InjectedTickFaultLeavesStateUntouched) {
    const auto root = make_model(51);
    PipelineOptions popts;
    Pipeline p(popts);
    const CompiledSystem sys = p.compile(root);
    const auto expected = engine_outputs(sys, root, 3);

    ScopedFaultPlan armed(FaultPlan::parse("seed=1;engine.tick=nth:2"));
    runtime::EngineConfig cfg;
    cfg.capacity = 2;
    runtime::Engine engine(sys, root, cfg);
    const auto ids = engine.create(2);
    std::vector<runtime::LcgInputSource> sources;
    for (std::size_t i = 0; i < 2; ++i) sources.emplace_back(1 + i);

    const auto fill = [&] {
        for (std::size_t i = 0; i < 2; ++i) sources[i].fill(engine.pool().inputs(ids[i]));
    };
    fill();
    engine.tick();
    EXPECT_THROW(engine.tick(), FaultInjected); // hit 2: fails before stepping
    engine.tick();                              // recovered: state not torn
    fill();
    engine.tick();
    const auto outputs = engine.pool().outputs(ids[0]);
    ASSERT_EQ(expected[1].size(), outputs.size());
    for (std::size_t o = 0; o < outputs.size(); ++o)
        EXPECT_DOUBLE_EQ(outputs[o], expected[1][o])
            << "a refused tick must not consume the instant";
}

TEST(EngineResilience, RealDeadlineStopsTicksWithCodedError) {
    const auto root = make_model(51);
    Pipeline p{PipelineOptions{}};
    const CompiledSystem sys = p.compile(root);
    runtime::EngineConfig cfg;
    cfg.capacity = 1;
    cfg.deadline_ms = 1;
    runtime::Engine engine(sys, root, cfg);
    (void)engine.create(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    try {
        engine.tick();
        FAIL() << "expired deadline must refuse the tick";
    } catch (const DeadlineExceeded& e) {
        EXPECT_NE(std::string(e.what()).find("deadline expired before tick"),
                  std::string::npos);
    }
}

TEST(PipelineResilience, InjectedDeadlineNamesTheSubtree) {
    const auto root = make_model(51);
    ScopedFaultPlan armed(FaultPlan::parse("seed=1;pipeline.deadline=nth:1"));
    Pipeline p{PipelineOptions{}};
    try {
        (void)p.compile(root);
        FAIL() << "injected pipeline deadline must surface";
    } catch (const DeadlineExceeded& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("deadline expired before compiling subtree"), std::string::npos);
        EXPECT_NE(what.find("partial result discarded"), std::string::npos);
    }
    EXPECT_GE(p.stats().deadline_misses, 1u);
}

// ------------------------------------------------- chaos differential harness

/// Outcome classes of one chaos run. Everything else is a test failure.
enum class Outcome { Identical, Budget, Deadline, Injected, CacheDir };

const char* to_string(Outcome o) {
    switch (o) {
    case Outcome::Identical: return "identical";
    case Outcome::Budget: return "budget_exhausted";
    case Outcome::Deadline: return "deadline_exceeded";
    case Outcome::Injected: return "fault_injected";
    case Outcome::CacheDir: return "cache_dir_error";
    }
    return "?";
}

struct ChaosConfig {
    std::shared_ptr<const MacroBlock> root;
    Method method = Method::Dynamic;
    std::string expected;                       ///< fault-free rendering
    std::vector<std::vector<double>> reference; ///< fault-free engine outputs
    std::vector<double> serve_reference;        ///< fault-free served outputs (zero inputs)
    fs::path cache_dir;                         ///< pre-populated (warm) disk cache
};

struct Coverage {
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
};

/// One chaos run under the armed plan: warm-or-cold compile through the
/// pipeline (disk cache), then a short engine trajectory, both compared
/// bit-for-bit against the fault-free reference. Throws the coded errors.
Outcome chaos_run(const ChaosConfig& cfg, const fs::path& cache_dir, std::size_t threads) {
    try {
        auto cache = std::make_shared<ProfileCache>(0, cache_dir.string());
        cache->set_retry_policy(kFastRetry);
        PipelineOptions popts;
        popts.method = cfg.method;
        popts.threads = threads;
        Pipeline pipeline(popts, cache);
        const CompiledSystem sys = pipeline.compile(cfg.root);
        EXPECT_EQ(render(sys), cfg.expected) << "fault-absorbing run diverged from oracle";
        const auto outs = engine_outputs(sys, cfg.root, cfg.reference.size());
        EXPECT_EQ(outs, cfg.reference) << "engine trajectory diverged from oracle";

        // Serve phase: the same compiled system behind a live loopback
        // server, one short tenant session per run. The serve.* points
        // (and the engine points firing inside the shards) must surface as
        // coded rejections or a cleanly dropped connection — never a crash
        // or a torn instant; a session that completes must read back the
        // fault-free outputs bit-for-bit. The session runs on a durable
        // store (fsync=always, checkpoint cadence 2), so durable.append /
        // durable.fsync fire on every mutation and durable.checkpoint
        // mid-session; a completed session is then recovered into a fresh
        // server (durable.recover fires there) and the recovered state must
        // match the served outputs bit-for-bit.
        static std::atomic<std::uint64_t> durable_serial{0};
        const fs::path durable_dir =
            cfg.cache_dir.parent_path() /
            ("serve_durable_" + std::to_string(durable_serial.fetch_add(1)));
        struct DirRemover {
            fs::path p;
            ~DirRemover() {
                std::error_code ec;
                fs::remove_all(p, ec);
            }
        } durable_cleanup{durable_dir};
        try {
            serve::ServerConfig scfg;
            scfg.endpoint = serve::Endpoint::parse("tcp:127.0.0.1:0");
            scfg.shards = 2;
            scfg.shard_capacity = 2;
            upgrade::CompileContext uctx;
            uctx.method = cfg.method;
            scfg.upgrade = std::move(uctx);
            scfg.model_source = text::to_sbd(*cfg.root);
            durable::Options dopts;
            dopts.data_dir = durable_dir;
            dopts.fsync = durable::FsyncMode::Always;
            dopts.checkpoint_every_ticks = 2;
            scfg.durable = dopts;
            std::vector<double> served;
            std::vector<serve::WireHandle> handles;
            {
                serve::Server server(sys, cfg.root, scfg);
                server.start();
                auto client = serve::Client::connect(server.endpoint());
                handles = client.create_instances(1, 2);
                for (std::size_t t = 0; t < cfg.reference.size(); ++t) (void)client.tick(1, 1);
                // Mid-session hot swap to the *identical* model: the plan is
                // all-CopySubtree, so live state — and therefore the outputs
                // read below — must stay bit-for-bit on the oracle whether the
                // swap lands or is rejected. serve.upgrade fires before the
                // compile, and compile-side points surface as coded
                // UPGRADE_REJECTED / FAULT_INJECTED / DEADLINE_EXCEEDED frames
                // that leave the running version untouched.
                try {
                    (void)client.upgrade_model(1, text::to_sbd(*cfg.root));
                } catch (const serve::ServeError& e) {
                    if (e.code() != serve::Err::FaultInjected &&
                        e.code() != serve::Err::DeadlineExceeded &&
                        e.code() != serve::Err::UpgradeRejected)
                        throw;
                }
                served = client.read_outputs(1, handles);
                const std::size_t nout = cfg.serve_reference.size();
                EXPECT_EQ(served.size(), 2 * nout) << "served output row count diverged";
                for (std::size_t i = 0; served.size() == 2 * nout && i < 2; ++i)
                    EXPECT_EQ(std::memcmp(served.data() + i * nout, cfg.serve_reference.data(),
                                          nout * sizeof(double)),
                              0)
                        << "served outputs diverged from oracle (instance " << i << ")";
            }
            // Recovery pass: a fresh server over the same durable store must
            // rebuild exactly the state the session acked. durable.recover
            // (checkpoint fallback) degrades to longer journal replay, never
            // to different state; replay-time injections abort the replay at
            // a consistent prefix (replay_aborted) instead of diverging.
            {
                serve::Server rec(sys, cfg.root, scfg);
                const serve::RecoveryStats rs = rec.recover();
                if (!rs.replay_aborted) {
                    EXPECT_EQ(rs.recovered_ticks, cfg.reference.size())
                        << "recovery lost acked ticks";
                    EXPECT_EQ(rs.live_instances, 2u) << "recovery lost live instances";
                    rec.start();
                    auto rclient = serve::Client::connect(rec.endpoint());
                    const auto recovered = rclient.read_outputs(1, handles);
                    EXPECT_EQ(recovered.size(), served.size());
                    if (recovered.size() == served.size()) {
                        EXPECT_EQ(std::memcmp(recovered.data(), served.data(),
                                              served.size() * sizeof(double)),
                                  0)
                            << "recovered outputs diverged from the acked session";
                    }
                }
            }
        } catch (const serve::ServeError& e) {
            if (e.code() == serve::Err::FaultInjected) return Outcome::Injected;
            if (e.code() == serve::Err::DeadlineExceeded) return Outcome::Deadline;
            if (e.code() == serve::Err::DurableFailed) return Outcome::Injected;
            throw; // any other coded rejection is undocumented here: fail
        } catch (const durable::DurableError&) {
            // An injected durable.append/fsync that fires outside a request
            // (e.g. while the recovery server replays) surfaces as the coded
            // DurableError itself rather than a protocol status.
            return Outcome::Injected;
        } catch (const std::runtime_error&) {
            // serve.accept drops the connection before the first frame, so
            // the client sees a transport error. That drop is the documented
            // degradation — but only accept it when the registry confirms
            // the point actually fired; anything else is a real bug.
            for (const PointStats& pt : FaultRegistry::instance().snapshot())
                if (pt.name == "serve.accept" && pt.injected > 0) return Outcome::Injected;
            throw;
        }
        return Outcome::Identical;
    } catch (const BudgetExhausted&) {
        return Outcome::Budget;
    } catch (const DeadlineExceeded&) {
        return Outcome::Deadline;
    } catch (const FaultInjected&) {
        return Outcome::Injected;
    } catch (const std::runtime_error& e) {
        if (std::string(e.what()).find("cannot create cache dir") != std::string::npos)
            return Outcome::CacheDir;
        throw; // undocumented error: the harness fails
    }
}

TEST(Chaos, DifferentialHarness) {
    // SBD_CHAOS_SEED varies the whole campaign (CI runs 3 fixed seeds).
    std::uint64_t campaign_seed = 2026;
    if (const char* env = std::getenv("SBD_CHAOS_SEED")) campaign_seed = std::strtoull(env, nullptr, 10);

    constexpr std::size_t kCatalogSize = std::size(kFaultPointCatalog);
    constexpr std::size_t kRandomRuns = 500;
    constexpr std::size_t kTicks = 4;

    TempDir dir;
    std::vector<ChaosConfig> configs;
    for (const std::uint64_t model_seed : {11u, 12u})
        for (const Method method : {Method::Dynamic, Method::DisjointSat}) {
            ChaosConfig cfg;
            cfg.root = make_model(model_seed);
            cfg.method = method;
            cfg.cache_dir =
                dir.path / ("warm_" + std::to_string(model_seed) + "_" + to_string(method));
            PipelineOptions popts;
            popts.method = method;
            popts.cache_dir = cfg.cache_dir.string();
            Pipeline p(popts);
            const CompiledSystem sys = p.compile(cfg.root);
            cfg.expected = render(sys);
            cfg.reference = engine_outputs(sys, cfg.root, kTicks);
            {
                // Fault-free serve oracle: the session posts no inputs, so
                // it equals a direct zero-input engine run of kTicks.
                runtime::EngineConfig ecfg;
                ecfg.capacity = 1;
                runtime::Engine engine(sys, cfg.root, ecfg);
                const auto id = engine.create(1).front();
                engine.tick(kTicks);
                const auto outs = engine.pool().outputs(id);
                cfg.serve_reference.assign(outs.begin(), outs.end());
            }
            configs.push_back(std::move(cfg));
        }

    std::map<std::string, Coverage> coverage;
    std::map<Outcome, std::uint64_t> outcomes;
    std::size_t runs = 0;

    const auto record = [&](Outcome outcome) {
        ++outcomes[outcome];
        ++runs;
        for (const PointStats& pt : FaultRegistry::instance().snapshot()) {
            coverage[pt.name].hits += pt.hits;
            coverage[pt.name].injected += pt.injected;
        }
    };

    // Directed phase: every cataloged point, pinned to the earliest hit, on
    // a cold cache with the SAT method — guarantees each point injects at
    // least once regardless of how the random phase samples.
    std::size_t directed = 0;
    for (const char* point : kFaultPointCatalog)
        for (const char* sched : {"nth:1", "every:2"}) {
            const ChaosConfig& cfg = configs[1]; // model 11, DisjointSat
            const fs::path cold = dir.path / ("directed_" + std::to_string(directed++));
            FaultPlan plan =
                FaultPlan::parse("seed=" + std::to_string(campaign_seed) + ";" +
                                 std::string(point) + "=" + sched);
            Outcome outcome;
            {
                ScopedFaultPlan armed(plan);
                outcome = chaos_run(cfg, cold, 1);
                // Cold cache first, then a warm pass so the read-side points
                // (disk_read/disk_corrupt) execute against real records.
                if (outcome == Outcome::Identical) outcome = chaos_run(cfg, cold, 1);
            }
            record(outcome);
        }

    // Random phase: seeded plans over 1–3 points, warm and cold caches,
    // serial and 2-thread pipelines.
    std::mt19937_64 rng(campaign_seed);
    std::size_t cold_serial = 0;
    for (std::size_t i = 0; i < kRandomRuns; ++i) {
        const ChaosConfig& cfg = configs[rng() % configs.size()];
        FaultPlan plan;
        plan.seed = rng();
        const std::size_t npts = 1 + rng() % 3;
        for (std::size_t j = 0; j < npts; ++j) {
            const char* point = kFaultPointCatalog[rng() % kCatalogSize];
            Schedule sched;
            switch (rng() % 3) {
            case 0:
                sched.kind = ScheduleKind::Nth;
                sched.n = 1 + rng() % 4;
                break;
            case 1:
                sched.kind = ScheduleKind::EveryK;
                sched.n = 1 + rng() % 3;
                break;
            default:
                sched.kind = ScheduleKind::Prob;
                sched.p = 0.2 + 0.6 * (static_cast<double>(rng() % 1000) / 1000.0);
                break;
            }
            plan.points.emplace_back(point, sched);
        }
        const bool cold = rng() % 4 == 0;
        const fs::path cache_dir =
            cold ? dir.path / ("cold_" + std::to_string(cold_serial++)) : cfg.cache_dir;
        const std::size_t threads = 1 + rng() % 2;
        Outcome outcome;
        {
            ScopedFaultPlan armed(plan);
            outcome = chaos_run(cfg, cache_dir, threads);
        }
        record(outcome);
        if (cold) {
            std::error_code ec;
            fs::remove_all(cache_dir, ec);
        }
    }

    // The campaign's acceptance bar: enough runs, every cataloged point
    // both executed and injected, both absorbed and surfaced outcomes seen.
    EXPECT_GE(runs, 500u);
    for (const char* point : kFaultPointCatalog) {
        EXPECT_GT(coverage[point].hits, 0u) << point << " never executed";
        EXPECT_GT(coverage[point].injected, 0u) << point << " never injected";
    }
    EXPECT_GT(outcomes[Outcome::Identical], 0u);
    EXPECT_GT(outcomes[Outcome::Injected] + outcomes[Outcome::Deadline] +
                  outcomes[Outcome::Budget],
              0u);

    // Machine-readable campaign report (CI uploads it as an artifact).
    std::ofstream report("FAULT_coverage.json");
    report << "{\n  \"campaign_seed\": " << campaign_seed << ",\n  \"runs\": " << runs
           << ",\n  \"outcomes\": {";
    bool first = true;
    for (const auto& [outcome, count] : outcomes) {
        report << (first ? "" : ", ") << "\"" << to_string(outcome) << "\": " << count;
        first = false;
    }
    report << "},\n  \"points\": {\n";
    first = true;
    for (const auto& [name, cov] : coverage) {
        report << (first ? "" : ",\n") << "    \"" << name << "\": {\"hits\": " << cov.hits
               << ", \"injected\": " << cov.injected << "}";
        first = false;
    }
    report << "\n  }\n}\n";
}

} // namespace
