// Larger-scale soak tests: the paper's scalability claims exercised at
// sizes well beyond the unit tests, plus adversarial shapes for each
// subsystem. These run in a few seconds total and guard against
// superlinear blowups and stack-depth assumptions.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sbd/library.hpp"
#include "sbd/text_format.hpp"
#include "suite/figures.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

TEST(Stress, LongChainCompilesAndRunsAllMethods) {
    // A 300-stage chain: deep topological orders, long cones, big guard
    // regions. (Also exercises the iterative Tarjan/closure code paths.)
    const auto p = suite::figure4_chain(300);
    for (const Method method : {Method::Dynamic, Method::DisjointSat, Method::StepGet}) {
        sbd::testing::expect_equivalent(p, method,
                                        sbd::testing::random_trace(3, 5, 90210));
    }
    const auto dyn = compile_hierarchy(p, Method::Dynamic);
    EXPECT_EQ(dyn.at(*p).clustering->replicated_nodes(*dyn.at(*p).sdg), 300u);
}

TEST(Stress, DeepHierarchy) {
    // 12 levels of single-sub nesting around a delay core.
    BlockPtr core = suite::figure3_p();
    for (int level = 0; level < 12; ++level) {
        auto wrap = std::make_shared<MacroBlock>("L" + std::to_string(level),
                                                 std::vector<std::string>{"x"},
                                                 std::vector<std::string>{"y"});
        wrap->add_sub("inner", core);
        wrap->connect(Endpoint{Endpoint::Kind::MacroInput, -1, 0},
                      Endpoint{Endpoint::Kind::SubInput, 0, 0});
        wrap->connect(Endpoint{Endpoint::Kind::SubOutput, 0, 0},
                      Endpoint{Endpoint::Kind::MacroOutput, -1, 0});
        core = wrap;
    }
    const auto root = std::static_pointer_cast<const MacroBlock>(core);
    sbd::testing::expect_equivalent(root, Method::Dynamic,
                                    sbd::testing::random_trace(1, 20, 11));
    // Moore-ness must survive all 12 levels of profile synthesis.
    const auto sys = compile_hierarchy(root, Method::Dynamic);
    const Profile& prof = sys.at(*root).profile;
    const std::int32_t writer = prof.writer_of_output(0);
    ASSERT_GE(writer, 0);
    EXPECT_TRUE(prof.functions[writer].reads.empty());
}

TEST(Stress, WideFanoutModel) {
    // One producer feeding 64 independent output paths: 64 In-classes in
    // one SDG; dynamic must stay at <= n+1 = 65 and SAT must agree.
    auto m = std::make_shared<MacroBlock>("Wide", std::vector<std::string>{"x"},
                                          std::vector<std::string>{});
    m->add_sub("Src", lib::fanout(64));
    m->connect("x", "Src.u");
    std::vector<std::string> outs;
    for (int i = 0; i < 64; ++i) {
        const std::string g = "G" + std::to_string(i);
        m->add_sub(g, lib::gain(static_cast<double>(i)));
        m->connect("Src.y" + std::to_string(i + 1), g + ".u");
    }
    // Rebuild with outputs (MacroBlock ports are fixed at construction).
    auto m2 = std::make_shared<MacroBlock>("Wide", std::vector<std::string>{"x"}, [] {
        std::vector<std::string> o;
        for (int i = 0; i < 64; ++i) o.push_back("y" + std::to_string(i));
        return o;
    }());
    m2->add_sub("Src", lib::fanout(64));
    m2->connect("x", "Src.u");
    for (int i = 0; i < 64; ++i) {
        const std::string g = "G" + std::to_string(i);
        m2->add_sub(g, lib::gain(1.0 + i));
        m2->connect("Src.y" + std::to_string(i + 1), g + ".u");
        m2->connect(g + ".y", "y" + std::to_string(i));
    }
    const auto sys = compile_hierarchy(std::static_pointer_cast<const Block>(m2),
                                       Method::Dynamic);
    // All outputs share In = {x}: one get function suffices.
    EXPECT_EQ(sys.at(*m2).profile.functions.size(), 1u);
    sbd::testing::expect_equivalent(m2, Method::Dynamic,
                                    sbd::testing::random_trace(1, 10, 77));
}

TEST(Stress, ManyRandomModelsSoak) {
    std::mt19937_64 rng(123456);
    suite::RandomModelParams params;
    params.depth = 3;
    params.subs_per_level = 6;
    params.macro_probability = 0.4;
    for (int iter = 0; iter < 20; ++iter) {
        const auto m = suite::random_model(rng, params);
        sbd::testing::expect_equivalent(m, Method::Dynamic,
                                        sbd::testing::random_trace(m->num_inputs(), 15,
                                                                   1000 + iter));
    }
}

TEST(Stress, BigRandomSdgAllPolynomialMethods) {
    std::mt19937_64 rng(777777);
    const Sdg sdg = suite::random_flat_sdg(rng, 8, 8, 250, 0.03);
    const Clustering dyn = cluster_dynamic(sdg);
    const Clustering sg = cluster_stepget(sdg);
    const Clustering fine = cluster_singletons(sdg);
    EXPECT_TRUE(false_io_dependencies(sdg, dyn).empty());
    EXPECT_LE(dyn.num_clusters(), 9u);
    EXPECT_LE(sg.num_clusters(), 2u);
    EXPECT_EQ(fine.num_clusters(), 250u);
    EXPECT_TRUE(check_validity(sdg, fine).valid());
}

TEST(Stress, SbdRoundTripOnLargeGeneratedModel) {
    std::mt19937_64 rng(31);
    suite::RandomModelParams params;
    params.depth = 3;
    params.subs_per_level = 7;
    const auto m = suite::random_model(rng, params);
    const std::string once = text::to_sbd(*m);
    const auto back = text::parse_sbd_string(once);
    EXPECT_EQ(text::to_sbd(*back.root), once);
    const auto trace = sbd::testing::random_trace(m->num_inputs(), 10, 5);
    EXPECT_EQ(sim::simulate(*m, trace), sim::simulate(*back.root, trace));
}

} // namespace
