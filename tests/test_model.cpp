#include <gtest/gtest.h>

#include "sbd/block.hpp"
#include "sbd/flatten.hpp"
#include "sbd/library.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;

TEST(Block, PortNamesAndIndices) {
    const auto b = lib::sum("+-");
    EXPECT_EQ(b->num_inputs(), 2u);
    EXPECT_EQ(b->num_outputs(), 1u);
    EXPECT_EQ(b->input_index("u2"), 1u);
    EXPECT_EQ(b->output_index("y"), 0u);
    EXPECT_THROW((void)b->input_index("nope"), ModelError);
}

TEST(Block, AtomicClassInvariants) {
    EXPECT_EQ(lib::gain(2.0)->block_class(), BlockClass::Combinational);
    EXPECT_EQ(lib::unit_delay()->block_class(), BlockClass::MooreSequential);
    EXPECT_EQ(lib::fir2(1.0, 0.5)->block_class(), BlockClass::Sequential);
    // A combinational block must not carry state.
    EXPECT_THROW(AtomicBlock("bad", {}, {}, BlockClass::Combinational, {1.0}, {}, {}),
                 ModelError);
    // A sequential block must have an update function.
    EXPECT_THROW(AtomicBlock("bad", {"u"}, {"y"}, BlockClass::Sequential, {0.0},
                             [](auto, auto, auto) {}, {}),
                 ModelError);
}

TEST(Macro, DuplicateSubNameRejected) {
    MacroBlock m("M", {"x"}, {"y"});
    m.add_sub("G", lib::gain(1.0));
    EXPECT_THROW(m.add_sub("G", lib::gain(2.0)), ModelError);
}

TEST(Macro, DoubleWriterRejected) {
    MacroBlock m("M", {"x"}, {"y"});
    m.add_sub("G", lib::gain(1.0));
    m.connect("x", "G.u");
    EXPECT_THROW(m.connect("x", "G.u"), ModelError);
}

TEST(Macro, BadEndpointsRejected) {
    MacroBlock m("M", {"x"}, {"y"});
    const auto g = m.add_sub("G", lib::gain(1.0));
    EXPECT_THROW(m.connect(Endpoint{Endpoint::Kind::SubOutput, g, 5},
                           Endpoint{Endpoint::Kind::MacroOutput, -1, 0}),
                 ModelError);
    EXPECT_THROW(m.connect(Endpoint{Endpoint::Kind::SubOutput, 7, 0},
                           Endpoint{Endpoint::Kind::MacroOutput, -1, 0}),
                 ModelError);
    // Source used as destination.
    EXPECT_THROW(m.connect(Endpoint{Endpoint::Kind::MacroOutput, -1, 0},
                           Endpoint{Endpoint::Kind::SubInput, g, 0}),
                 ModelError);
}

TEST(Macro, ValidateReportsUnconnected) {
    MacroBlock m("M", {"x"}, {"y"});
    m.add_sub("G", lib::gain(1.0));
    EXPECT_THROW(m.validate(), ModelError); // G.u and y unconnected
    m.connect("x", "G.u");
    EXPECT_THROW(m.validate(), ModelError); // y unconnected
    m.connect("G.y", "y");
    EXPECT_NO_THROW(m.validate());
}

TEST(Macro, NameBasedConnectParsesBothForms) {
    MacroBlock m("M", {"x"}, {"y"});
    m.add_sub("G", lib::gain(1.0));
    m.connect("x", "G.u");
    m.connect("G.y", "y");
    const auto* w = m.writer_of(Endpoint{Endpoint::Kind::MacroOutput, -1, 0});
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->src.kind, Endpoint::Kind::SubOutput);
}

TEST(Flatten, FlatDiagramIsUnchangedStructurally) {
    const auto p = sbd::suite::figure1_p();
    const auto flat = flatten(*p);
    EXPECT_EQ(flat->num_subs(), 3u);
    EXPECT_EQ(flat->num_inputs(), 2u);
    EXPECT_EQ(flat->num_outputs(), 2u);
    for (std::size_t s = 0; s < flat->num_subs(); ++s)
        EXPECT_TRUE(flat->sub(s).type->is_atomic());
}

TEST(Flatten, TwoLevelsSpliced) {
    // inner: x -> gain -> y ; outer: x -> inner -> gain -> y
    auto inner = std::make_shared<MacroBlock>("Inner", std::vector<std::string>{"x"},
                                              std::vector<std::string>{"y"});
    inner->add_sub("G1", lib::gain(2.0));
    inner->connect("x", "G1.u");
    inner->connect("G1.y", "y");
    auto outer = std::make_shared<MacroBlock>("Outer", std::vector<std::string>{"x"},
                                              std::vector<std::string>{"y"});
    outer->add_sub("I", inner);
    outer->add_sub("G2", lib::gain(3.0));
    outer->connect("x", "I.x");
    outer->connect("I.y", "G2.u");
    outer->connect("G2.y", "y");

    const auto flat = flatten(*outer);
    ASSERT_EQ(flat->num_subs(), 2u);
    EXPECT_EQ(flat->sub(0).name, "I/G1");
    EXPECT_EQ(flat->sub(1).name, "G2");
    // Wire x -> I/G1 -> G2 -> y must be re-instituted.
    const auto* w = flat->writer_of(Endpoint{Endpoint::Kind::SubInput, 1, 0});
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->src.kind, Endpoint::Kind::SubOutput);
    EXPECT_EQ(w->src.sub, 0);
}

TEST(Flatten, PassThroughSpliced) {
    // inner passes its input straight to its output.
    auto inner = std::make_shared<MacroBlock>("Wire", std::vector<std::string>{"x"},
                                              std::vector<std::string>{"y"});
    inner->connect("x", "y");
    auto outer = std::make_shared<MacroBlock>("Outer", std::vector<std::string>{"x"},
                                              std::vector<std::string>{"y"});
    outer->add_sub("W", inner);
    outer->add_sub("G", lib::gain(2.0));
    outer->connect("x", "W.x");
    outer->connect("W.y", "G.u");
    outer->connect("G.y", "y");
    const auto flat = flatten(*outer);
    ASSERT_EQ(flat->num_subs(), 1u);
    const auto* w = flat->writer_of(Endpoint{Endpoint::Kind::SubInput, 0, 0});
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->src.kind, Endpoint::Kind::MacroInput); // spliced through
}

TEST(Flatten, PassThroughCycleDetected) {
    // Two pure wire blocks feeding each other: a wire cycle with no blocks.
    auto wire = std::make_shared<MacroBlock>("Wire", std::vector<std::string>{"x"},
                                             std::vector<std::string>{"y"});
    wire->connect("x", "y");
    auto outer = std::make_shared<MacroBlock>("Outer", std::vector<std::string>{},
                                              std::vector<std::string>{"y"});
    outer->add_sub("W1", wire);
    outer->add_sub("W2", wire);
    outer->connect("W1.y", "W2.x");
    outer->connect("W2.y", "W1.x");
    outer->connect("W1.y", "y");
    EXPECT_THROW((void)flatten(*outer), ModelError);
}

TEST(Flatten, ThreeLevelFuelControllerFlattens) {
    const auto top = sbd::suite::fuel_controller();
    const auto flat = flatten(*top);
    EXPECT_GT(flat->num_subs(), 15u);
    for (std::size_t s = 0; s < flat->num_subs(); ++s)
        EXPECT_TRUE(flat->sub(s).type->is_atomic());
    // Nested instance naming includes the full path.
    bool found_nested = false;
    for (std::size_t s = 0; s < flat->num_subs(); ++s)
        if (flat->sub(s).name.find("Fuel/Corr/") == 0) found_nested = true;
    EXPECT_TRUE(found_nested);
}

TEST(BlockClass, MacroCombinational) {
    const auto p = sbd::suite::figure1_p();
    EXPECT_EQ(p->block_class(), BlockClass::Combinational);
}

TEST(BlockClass, MacroSequentialNonMoore) {
    // Figure 3's P: its output depends on the delay only, so it is Moore?
    // P_out <- A <- U(delay) <- C <- P_in: no combinational input-to-output
    // path, so P is Moore-sequential.
    EXPECT_EQ(sbd::suite::figure3_p()->block_class(), BlockClass::MooreSequential);
}

TEST(BlockClass, MacroMooreAircraft) {
    EXPECT_EQ(sbd::suite::aircraft_pitch()->block_class(), BlockClass::MooreSequential);
}

TEST(BlockClass, MacroSequentialWithFeedthrough) {
    // Thermostat: heater_on depends combinationally on setpoint.
    EXPECT_EQ(sbd::suite::thermostat()->block_class(), BlockClass::Sequential);
}

TEST(DependencyGraph, AcyclicForWholeSuite) {
    for (const auto& model : sbd::suite::demo_suite())
        EXPECT_TRUE(is_acyclic_diagram(static_cast<const MacroBlock&>(*model.block)))
            << model.name;
}

TEST(DependencyGraph, CombinationalLoopDetected) {
    // gain -> gain loop with no delay: block-based dependency cycle.
    auto m = std::make_shared<MacroBlock>("Loop", std::vector<std::string>{},
                                          std::vector<std::string>{"y"});
    m->add_sub("G1", lib::gain(1.0));
    m->add_sub("G2", lib::gain(1.0));
    m->connect("G1.y", "G2.u");
    m->connect("G2.y", "G1.u");
    m->connect("G1.y", "y");
    EXPECT_FALSE(is_acyclic_diagram(*m));
}

TEST(DependencyGraph, DelayBreaksLoop) {
    auto m = std::make_shared<MacroBlock>("DelayLoop", std::vector<std::string>{},
                                          std::vector<std::string>{"y"});
    m->add_sub("G", lib::gain(0.5));
    m->add_sub("D", lib::unit_delay(1.0));
    m->connect("G.y", "D.u");
    m->connect("D.y", "G.u");
    m->connect("G.y", "y");
    EXPECT_TRUE(is_acyclic_diagram(*m));
}

TEST(Suite, AllModelsValidate) {
    for (const auto& model : sbd::suite::demo_suite()) {
        const auto& m = static_cast<const MacroBlock&>(*model.block);
        EXPECT_NO_THROW(m.validate()) << model.name;
    }
}

} // namespace
