#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sbd/library.hpp"
#include "sbd/text_format.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;

TEST(SbdParse, MinimalBlock) {
    const auto file = text::parse_sbd_string(R"(
# a gain
block M {
  inputs x
  outputs y
  sub G Gain 2.5
  connect x G.u
  connect G.y y
}
)");
    ASSERT_TRUE(file.root != nullptr);
    EXPECT_EQ(file.root->type_name(), "M");
    EXPECT_EQ(file.root->num_subs(), 1u);
    const auto out = sim::simulate(*file.root, {{4.0}});
    EXPECT_EQ(out[0][0], 10.0);
}

TEST(SbdParse, AllAtomicKinds) {
    const auto file = text::parse_sbd_string(R"(
block Zoo {
  inputs a b c
  outputs o1 o2
  sub K  Constant 1.5
  sub G  Gain -2
  sub S  Sum ++-
  sub P  Product 2
  sub D  UnitDelay 0.5
  sub I  Integrator 0.1 0
  sub F  Fir2 1 2
  sub Sat Saturation -1 1
  sub Ab Abs
  sub Mn Min
  sub Mx Max
  sub R  Relational <=
  sub Sw Switch 0.5
  sub L  Logic AND 2
  sub Dz DeadZone -1 1
  sub Lu Lookup1D 0 1 2 / 0 10 40
  sub Ma MovingAvg 3
  sub Fl Filter1 0.5 0.25 -0.25
  sub Cn Counter
  sub Fo Fanout 2
  sub Sh SampleHold 0
  connect a S.u1
  connect b S.u2
  connect c S.u3
  connect K.y P.u1
  connect S.y P.u2
  connect P.y G.u
  connect G.y D.u
  connect D.y I.u
  connect I.y F.x
  connect F.y Sat.u
  connect Sat.y Ab.u
  connect Ab.y Mn.u1
  connect K.y Mn.u2
  connect Mn.y Mx.u1
  connect K.y Mx.u2
  connect Mx.y R.u1
  connect K.y R.u2
  connect Ab.y Sw.u1
  connect R.y Sw.ctrl
  connect K.y Sw.u2
  connect R.y L.u1
  connect R.y L.u2
  connect Sw.y Dz.u
  connect Dz.y Lu.u
  connect Lu.y Ma.u
  connect Ma.y Fl.u
  connect Fl.y Fo.u
  connect Fo.y1 Sh.u
  connect L.y Sh.trigger
  connect Sh.y o1
  connect Fo.y2 o2
  connect Cn.y Cn.enable
}
)");
    EXPECT_EQ(file.root->num_subs(), 21u);
    EXPECT_NO_THROW(file.root->validate());
    // The whole zoo must simulate and compile.
    sbd::testing::expect_equivalent(file.root, codegen::Method::Dynamic,
                                    sbd::testing::random_trace(3, 25, 5150));
}

TEST(SbdParse, HierarchyAndBlockReferences) {
    const auto file = text::parse_sbd_string(R"(
block Inner {
  inputs x
  outputs y
  sub G Gain 2
  connect x G.u
  connect G.y y
}
block Outer {
  inputs x
  outputs y
  sub A Inner
  sub B Inner
  connect x A.x
  connect A.y B.x
  connect B.y y
}
)");
    EXPECT_EQ(file.order, (std::vector<std::string>{"Inner", "Outer"}));
    EXPECT_EQ(file.root->type_name(), "Outer");
    // Shared type: both subs point at the same Inner instance.
    EXPECT_EQ(file.root->sub(0).type.get(), file.root->sub(1).type.get());
    const auto out = sim::simulate(*file.root, {{3.0}});
    EXPECT_EQ(out[0][0], 12.0);
}

TEST(SbdParse, TriggersParsed) {
    const auto file = text::parse_sbd_string(R"(
block T {
  inputs u g
  outputs y
  sub G Gain 1
  connect u G.u
  connect G.y y
  trigger G g
}
)");
    ASSERT_TRUE(file.root->sub(0).trigger.has_value());
    const auto out = sim::simulate(*file.root, {{5.0, 1.0}, {9.0, 0.0}});
    EXPECT_EQ(out[0][0], 5.0);
    EXPECT_EQ(out[1][0], 5.0); // held
}

struct BadCase {
    const char* name;
    const char* text;
};

class SbdParseErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(SbdParseErrors, Rejected) {
    EXPECT_THROW((void)text::parse_sbd_string(GetParam().text), ModelError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SbdParseErrors,
    ::testing::Values(
        BadCase{"empty", ""},
        BadCase{"unknown_type", "block M { inputs x\noutputs y\nsub G Wat 2\n"
                                "connect x G.u\nconnect G.y y }"},
        BadCase{"bad_number", "block M { inputs x\noutputs y\nsub G Gain two\n"
                              "connect x G.u\nconnect G.y y }"},
        BadCase{"wrong_arity", "block M { inputs x\noutputs y\nsub G Gain 1 2\n"
                               "connect x G.u\nconnect G.y y }"},
        BadCase{"unconnected", "block M { inputs x\noutputs y\nsub G Gain 1\n"
                               "connect x G.u }"},
        BadCase{"duplicate_block", "block M { inputs x\noutputs y\nsub G Gain 1\n"
                                   "connect x G.u\nconnect G.y y }\n"
                                   "block M { inputs x\noutputs y\nconnect x y }"},
        BadCase{"double_writer", "block M { inputs x\noutputs y\nsub G Gain 1\n"
                                 "connect x G.u\nconnect x G.u\nconnect G.y y }"},
        BadCase{"bad_port", "block M { inputs x\noutputs y\nsub G Gain 1\n"
                            "connect x G.nope\nconnect G.y y }"},
        BadCase{"params_on_reference",
                "block A { inputs x\noutputs y\nconnect x y }\n"
                "block M { inputs x\noutputs y\nsub S A 3\nconnect x S.x\n"
                "connect S.y y }"},
        BadCase{"stray_token", "block M { inputs x\noutputs y\nbananas\n"
                               "connect x y }"}),
    [](const auto& info) { return info.param.name; });

TEST(SbdRoundTrip, SuiteModelsSurviveWriteParseWrite) {
    for (const auto& model : sbd::suite::demo_suite()) {
        const auto& m = static_cast<const MacroBlock&>(*model.block);
        const std::string once = text::to_sbd(m);
        const auto back = text::parse_sbd_string(once);
        const std::string twice = text::to_sbd(*back.root);
        EXPECT_EQ(once, twice) << model.name;
        // And behaviour is preserved.
        const auto trace =
            sbd::testing::random_trace(m.num_inputs(), 20, 31337);
        EXPECT_EQ(sim::simulate(m, trace), sim::simulate(*back.root, trace)) << model.name;
    }
}

TEST(SbdRoundTrip, TriggeredModelSurvives) {
    auto m = std::make_shared<MacroBlock>("Trig", std::vector<std::string>{"u", "g"},
                                          std::vector<std::string>{"y"});
    m->add_sub("A", lib::moving_average(3));
    m->connect("u", "A.u");
    m->connect("A.y", "y");
    m->set_trigger("A", "g");
    const auto back = text::parse_sbd_string(text::to_sbd(*m));
    ASSERT_TRUE(back.root->sub(0).trigger.has_value());
    const auto trace = sbd::testing::random_trace(2, 15, 99);
    EXPECT_EQ(sim::simulate(*m, trace), sim::simulate(*back.root, trace));
}

TEST(SbdWrite, CustomAtomicRejected) {
    auto m = std::make_shared<MacroBlock>("M", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("B", lib::make_combinational(
                        "Custom", {"u"}, {"y"},
                        [](auto, std::span<const double> u, std::span<double> y) {
                            y[0] = u[0];
                        }));
    m->connect("x", "B.u");
    m->connect("B.y", "y");
    EXPECT_THROW((void)text::to_sbd(*m), ModelError);
}

TEST(SbdFiles, VendorIntegrationCompilesAgainstInterfaceOnly) {
    const auto file =
        text::parse_sbd_file(std::string(SBD_MODELS_DIR) + "/vendor_integration.sbd");
    const auto sys = codegen::compile_hierarchy(file.root, codegen::Method::Dynamic);
    const auto rep = codegen::check_validity(*sys.at(*file.root).sdg,
                                             *sys.at(*file.root).clustering);
    // Dynamic may overlap; what matters is maximal reusability.
    EXPECT_TRUE(codegen::false_io_dependencies(*sys.at(*file.root).sdg,
                                               *sys.at(*file.root).clustering)
                    .empty());
    (void)rep;
}

TEST(SbdFiles, ShippedModelsParseCompileAndRun) {
    for (const std::string name :
         {"figure3.sbd", "figure4.sbd", "thermostat.sbd", "triggered_logger.sbd"}) {
        const auto file = text::parse_sbd_file(std::string(SBD_MODELS_DIR) + "/" + name);
        ASSERT_TRUE(file.root != nullptr) << name;
        sbd::testing::expect_equivalent(
            file.root, codegen::Method::Dynamic,
            sbd::testing::random_trace(file.root->num_inputs(), 20, 77));
        sbd::testing::expect_equivalent(
            file.root, codegen::Method::DisjointSat,
            sbd::testing::random_trace(file.root->num_inputs(), 20, 78));
    }
}

} // namespace
