// Crash-safe serving: the durable store (write-ahead journal + checkpoint
// files), boot-time recovery, and the fork/SIGKILL crash-chaos harness.
//
// The harness is the tentpole gate: it boots the real sbd-serve binary on a
// durable data dir, drives a deterministic session against it, SIGKILLs it
// at a random point (including mid-append and mid-checkpoint via directed
// fault plans), recovers the store in-process and proves that
//
//   * no acked tick is ever lost (recovered_ticks >= acked ticks), and
//   * the recovered state is bit-identical to an uninterrupted oracle run
//     of the same prefix (instance state and output rows compared with
//     memcmp; input rows are excluded because a journaled-but-unacked
//     trailing POST_INPUTS may legitimately be one row ahead).
//
// Run count is environment-tunable: SBD_DURABLE_CRASH_RUNS (default 200
// random-kill runs) on top of the directed fault-plan runs and the
// native-backend and live-upgrade runs.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/compiler.hpp"
#include "core/fsio.hpp"
#include "durable/durable.hpp"
#include "resilience/fault.hpp"
#include "sbd/library.hpp"
#include "sbd/text_format.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "suite/models.hpp"
#include "upgrade/upgrade.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sbd;
using durable::DurableError;
using durable::FsyncMode;
using durable::Journal;
using durable::Record;
using durable::RecordKind;
using durable::ScanResult;

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("sbd_durable_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static std::size_t& counter() {
        static std::size_t c = 0;
        return c;
    }
};

durable::Options opts_for(const fs::path& dir, FsyncMode mode = FsyncMode::Off) {
    durable::Options o;
    o.data_dir = dir;
    o.fsync = mode;
    return o;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// fsio (the shared fsync helper the cache, the native artifact store and the
// durable store all publish through)

TEST(Fsio, WriteFileDurableRoundTrip) {
    TempDir dir;
    const fs::path final_path = dir.path / "out.bin";
    const fs::path tmp_path = dir.path / "out.tmp";
    const std::vector<std::uint8_t> payload = bytes_of("durable payload");
    ASSERT_TRUE(fsio::write_file_durable(final_path, tmp_path, payload));
    EXPECT_FALSE(fs::exists(tmp_path)) << "temp file must not survive a publish";
    std::ifstream in(final_path, std::ios::binary);
    std::string got((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_of(got), payload);
}

TEST(Fsio, PublishFailsIntoMissingDirectory) {
    TempDir dir;
    const fs::path tmp_path = dir.path / "t.tmp";
    std::ofstream(tmp_path) << "x";
    EXPECT_FALSE(fsio::publish_file_durable(tmp_path, dir.path / "no" / "such" / "dir" / "f"));
    EXPECT_TRUE(fs::exists(tmp_path)) << "a failed publish leaves the temp file for the caller";
}

TEST(Fsio, Fnv1a64IsResumable) {
    const auto all = bytes_of("hello, journal");
    const std::span<const std::uint8_t> head(all.data(), 5);
    const std::span<const std::uint8_t> tail(all.data() + 5, all.size() - 5);
    EXPECT_EQ(durable::fnv1a64(all), durable::fnv1a64(tail, durable::fnv1a64(head)));
    EXPECT_NE(durable::fnv1a64(bytes_of("a")), durable::fnv1a64(bytes_of("b")));
}

// ---------------------------------------------------------------------------
// Journal

TEST(DurableJournal, AppendScanRoundTrip) {
    TempDir dir;
    const auto opts = opts_for(dir.path);
    {
        Journal j(opts);
        EXPECT_EQ(j.append(RecordKind::Create, bytes_of("c0")), 1u);
        EXPECT_EQ(j.append(RecordKind::Tick, {}), 2u);
        EXPECT_EQ(j.append(RecordKind::PostInputs, bytes_of("rows")), 3u);
        j.sync();
    }
    const ScanResult scan = Journal::scan(opts.journal_dir());
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.last_seq, 3u);
    EXPECT_EQ(scan.records[0].kind, RecordKind::Create);
    EXPECT_EQ(scan.records[0].payload, bytes_of("c0"));
    EXPECT_EQ(scan.records[1].kind, RecordKind::Tick);
    EXPECT_TRUE(scan.records[1].payload.empty());
    EXPECT_EQ(scan.records[2].seq, 3u);

    // from_seq filters strictly-greater records.
    EXPECT_EQ(Journal::scan(opts.journal_dir(), 2).records.size(), 1u);
    EXPECT_EQ(Journal::scan(opts.journal_dir(), 3).records.size(), 0u);
}

TEST(DurableJournal, ReopenContinuesTheSequence) {
    TempDir dir;
    const auto opts = opts_for(dir.path);
    {
        Journal j(opts);
        j.append(RecordKind::Tick, {});
        j.append(RecordKind::Tick, {});
    }
    {
        Journal j(opts);
        EXPECT_EQ(j.next_seq(), 3u);
        EXPECT_EQ(j.append(RecordKind::Destroy, bytes_of("d")), 3u);
    }
    const ScanResult scan = Journal::scan(opts.journal_dir());
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[2].kind, RecordKind::Destroy);
}

TEST(DurableJournal, RotatesSegmentsAndScansAcrossThem) {
    TempDir dir;
    auto opts = opts_for(dir.path);
    opts.segment_bytes = 128; // force rotation every few records
    {
        Journal j(opts);
        for (int i = 0; i < 32; ++i) j.append(RecordKind::Tick, bytes_of("payload"));
    }
    const ScanResult scan = Journal::scan(opts.journal_dir());
    EXPECT_GT(scan.segments, 3u);
    ASSERT_EQ(scan.records.size(), 32u);
    for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(scan.records[i].seq, i + 1);
}

TEST(DurableJournal, TruncateUntilDropsSealedSegmentsOnly) {
    TempDir dir;
    auto opts = opts_for(dir.path);
    opts.segment_bytes = 128;
    Journal j(opts);
    for (int i = 0; i < 32; ++i) j.append(RecordKind::Tick, bytes_of("payload"));
    const std::size_t before = Journal::scan(opts.journal_dir()).segments;
    ASSERT_GT(before, 2u);
    j.truncate_until(30);
    const ScanResult scan = Journal::scan(opts.journal_dir());
    EXPECT_LT(scan.segments, before);
    // Everything after seq 30 must still be there; earlier whole segments
    // may be gone, but records are never cut mid-segment.
    ASSERT_FALSE(scan.records.empty());
    EXPECT_EQ(scan.last_seq, 32u);
    std::uint64_t prev = scan.records.front().seq;
    EXPECT_LE(prev, 31u);
    for (std::size_t i = 1; i < scan.records.size(); ++i) {
        EXPECT_EQ(scan.records[i].seq, prev + 1);
        prev = scan.records[i].seq;
    }
}

TEST(DurableJournal, TornTailIsTruncatedOnOpen) {
    TempDir dir;
    const auto opts = opts_for(dir.path);
    fs::path segment;
    {
        Journal j(opts);
        j.append(RecordKind::Create, bytes_of("keep me"));
        j.append(RecordKind::Tick, {});
        segment = *fs::directory_iterator(opts.journal_dir());
    }
    // Simulate a crash mid-append: garbage half-record at the tail.
    {
        std::ofstream out(segment, std::ios::binary | std::ios::app);
        out.write("\x07\x00\x00\x00garbage", 11);
    }
    // A read-only scan reports the tear without touching the file.
    const auto dirty = Journal::scan(opts.journal_dir());
    EXPECT_TRUE(dirty.torn);
    EXPECT_EQ(dirty.records.size(), 2u);
    EXPECT_GT(dirty.torn_bytes, 0u);

    // Re-opening repairs: the tail is truncated and appends continue.
    {
        Journal j(opts);
        EXPECT_EQ(j.next_seq(), 3u);
        j.append(RecordKind::Destroy, bytes_of("after repair"));
    }
    const auto clean = Journal::scan(opts.journal_dir());
    EXPECT_FALSE(clean.torn);
    ASSERT_EQ(clean.records.size(), 3u);
    EXPECT_EQ(clean.records[2].payload, bytes_of("after repair"));
}

TEST(DurableJournal, CorruptRecordStopsTheScanAndDropsLaterSegments) {
    TempDir dir;
    auto opts = opts_for(dir.path);
    opts.segment_bytes = 96; // several segments
    std::vector<fs::path> segments;
    {
        Journal j(opts);
        for (int i = 0; i < 16; ++i) j.append(RecordKind::Tick, bytes_of("abcdefgh"));
    }
    for (const auto& e : fs::directory_iterator(opts.journal_dir()))
        segments.push_back(e.path());
    std::sort(segments.begin(), segments.end());
    ASSERT_GT(segments.size(), 2u);
    // Flip one payload byte in the middle of the *first* segment.
    {
        std::fstream f(segments.front(), std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(fs::file_size(segments.front())) / 2);
        f.put('\xff');
    }
    const ScanResult scan = Journal::scan(opts.journal_dir());
    EXPECT_TRUE(scan.torn);
    EXPECT_GT(scan.dropped_segments, 0u) << "segments past the corruption are unreachable";
    EXPECT_LT(scan.records.size(), 16u);
    // The valid prefix is still contiguous from seq 1.
    for (std::size_t i = 0; i < scan.records.size(); ++i)
        EXPECT_EQ(scan.records[i].seq, i + 1);
    // Repair-on-open keeps exactly that prefix and serves new appends.
    Journal j(opts);
    EXPECT_EQ(j.next_seq(), scan.last_seq + 1);
}

TEST(DurableJournal, InjectedAppendFaultThrowsAndLeavesJournalUsable) {
    TempDir dir;
    const auto opts = opts_for(dir.path, FsyncMode::Always);
    Journal j(opts);
    j.append(RecordKind::Tick, {});
    {
        resilience::ScopedFaultPlan armed(
            resilience::FaultPlan::parse("seed=7;durable.append=nth:1"));
        EXPECT_THROW(j.append(RecordKind::Tick, {}), DurableError);
    }
    // The failed append must not have burned a sequence number or left
    // partial bytes behind.
    EXPECT_EQ(j.append(RecordKind::Tick, {}), 2u);
    const ScanResult scan = Journal::scan(opts.journal_dir());
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.records.size(), 2u);
}

TEST(DurableJournal, InjectedFsyncFaultThrowsInAlwaysMode) {
    TempDir dir;
    Journal j(opts_for(dir.path, FsyncMode::Always));
    resilience::ScopedFaultPlan armed(
        resilience::FaultPlan::parse("seed=7;durable.fsync=nth:1"));
    EXPECT_THROW(j.append(RecordKind::Tick, {}), DurableError);
}

// ---------------------------------------------------------------------------
// Checkpoints

TEST(DurableCheckpoint, WriteLoadRetain) {
    TempDir dir;
    const auto opts = opts_for(dir.path);
    durable::CheckpointStore cs(opts);
    EXPECT_FALSE(cs.load_latest().has_value());
    ASSERT_TRUE(cs.write(10, bytes_of("v10")));
    ASSERT_TRUE(cs.write(20, bytes_of("v20")));
    ASSERT_TRUE(cs.write(30, bytes_of("v30")));
    const auto loaded = cs.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->seq, 30u);
    EXPECT_EQ(loaded->payload, bytes_of("v30"));
    EXPECT_EQ(loaded->fallbacks, 0u);
    cs.retain(2);
    std::size_t ckpts = 0;
    for (const auto& e : fs::directory_iterator(dir.path))
        if (e.path().extension() == ".sbdk") ++ckpts;
    EXPECT_EQ(ckpts, 2u);
}

TEST(DurableCheckpoint, CorruptNewestFallsBackToPrevious) {
    TempDir dir;
    const auto opts = opts_for(dir.path);
    durable::CheckpointStore cs(opts);
    ASSERT_TRUE(cs.write(10, bytes_of("good old")));
    ASSERT_TRUE(cs.write(20, bytes_of("bad new")));
    // Corrupt the newest checkpoint's payload in place.
    fs::path newest;
    for (const auto& e : fs::directory_iterator(dir.path))
        if (e.path().extension() == ".sbdk" && (newest.empty() || e.path() > newest))
            newest = e.path();
    ASSERT_FALSE(newest.empty());
    {
        std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(-3, std::ios::end);
        f.put('\xee');
    }
    const auto loaded = cs.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->seq, 10u);
    EXPECT_EQ(loaded->payload, bytes_of("good old"));
    EXPECT_EQ(loaded->fallbacks, 1u);
}

TEST(DurableCheckpoint, InjectedRecoverFaultFallsBack) {
    TempDir dir;
    durable::CheckpointStore cs(opts_for(dir.path));
    ASSERT_TRUE(cs.write(5, bytes_of("only")));
    resilience::ScopedFaultPlan armed(
        resilience::FaultPlan::parse("seed=7;durable.recover=nth:1"));
    const auto loaded = cs.load_latest();
    // The single checkpoint was rejected by the injected fault: recovery
    // degrades to journal-only replay, never to a crash.
    EXPECT_FALSE(loaded.has_value());
}

TEST(DurableCheckpoint, InjectedCheckpointFaultIsAbsorbed) {
    TempDir dir;
    durable::CheckpointStore cs(opts_for(dir.path));
    resilience::ScopedFaultPlan armed(
        resilience::FaultPlan::parse("seed=7;durable.checkpoint=nth:1"));
    EXPECT_FALSE(cs.write(5, bytes_of("dropped")));
    EXPECT_TRUE(cs.write(6, bytes_of("kept")));
    const auto loaded = cs.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->seq, 6u);
}

// ---------------------------------------------------------------------------
// Server-level recovery (in-process): deterministic round trips

serve::ServerConfig durable_server_config(const fs::path& data_dir, const std::string& source,
                                          FsyncMode mode = FsyncMode::Always,
                                          std::uint64_t ckpt_every = 4) {
    serve::ServerConfig cfg;
    cfg.endpoint = serve::Endpoint::parse("tcp:127.0.0.1:0");
    cfg.shards = 2;
    cfg.shard_capacity = 4;
    upgrade::CompileContext uctx;
    cfg.upgrade = std::move(uctx);
    cfg.model_source = source;
    durable::Options dopts;
    dopts.data_dir = data_dir;
    dopts.fsync = mode;
    dopts.checkpoint_every_ticks = ckpt_every;
    cfg.durable = dopts;
    return cfg;
}

/// Runs a deterministic session (create, post+tick loop, optional upgrade,
/// partial destroy) against `server` and returns per-handle snapshots.
struct SessionResult {
    std::vector<serve::WireHandle> handles;
    std::vector<std::vector<double>> snapshots;
    std::vector<double> outputs;
    std::uint64_t ticks = 0;
};

SessionResult run_session(serve::Server& server, const BlockPtr& model,
                          const std::string& upgrade_source = "") {
    serve::Client client = serve::Client::connect(server.endpoint());
    SessionResult r;
    r.handles = client.create_instances(1, 3);
    std::vector<double> row(model->num_inputs());
    for (std::uint64_t t = 0; t < 9; ++t) {
        for (std::size_t j = 0; j < row.size(); ++j)
            row[j] = 0.25 * static_cast<double>(t) + static_cast<double>(j);
        for (const serve::WireHandle& h : r.handles) {
            const serve::WireHandle one[] = {h};
            client.post_inputs(1, one, row);
        }
        (void)client.tick(1, 1);
        if (t == 4 && !upgrade_source.empty()) (void)client.upgrade_model(1, upgrade_source);
    }
    // Churn: destroy one instance so the recovered free/live lists are
    // non-trivial.
    const serve::WireHandle victim[] = {r.handles.back()};
    client.destroy_instances(1, victim);
    r.handles.pop_back();
    for (const serve::WireHandle& h : r.handles) r.snapshots.push_back(client.snapshot(1, h));
    r.outputs = client.read_outputs(1, r.handles);
    r.ticks = server.ticks();
    return r;
}

void expect_bitexact(const SessionResult& before, serve::Server& recovered) {
    recovered.start();
    serve::Client client = serve::Client::connect(recovered.endpoint());
    for (std::size_t i = 0; i < before.handles.size(); ++i) {
        const std::vector<double> snap = client.snapshot(1, before.handles[i]);
        ASSERT_EQ(snap.size(), before.snapshots[i].size());
        EXPECT_EQ(std::memcmp(snap.data(), before.snapshots[i].data(),
                              snap.size() * sizeof(double)),
                  0)
            << "instance " << i << " state diverged after recovery";
    }
    const std::vector<double> outs = client.read_outputs(1, before.handles);
    ASSERT_EQ(outs.size(), before.outputs.size());
    EXPECT_EQ(std::memcmp(outs.data(), before.outputs.data(), outs.size() * sizeof(double)),
              0);
}

TEST(DurableRecovery, CleanShutdownRoundTripWithCheckpoints) {
    TempDir dir;
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*model);
    const auto cfg = durable_server_config(dir.path / "data", source);
    SessionResult before;
    {
        serve::Server server(sys, model, cfg);
        server.start();
        before = run_session(server, model);
    }
    serve::Server recovered(sys, model, cfg);
    const serve::RecoveryStats rs = recovered.recover();
    EXPECT_TRUE(rs.recovered);
    EXPECT_FALSE(rs.replay_aborted);
    EXPECT_EQ(rs.recovered_ticks, before.ticks);
    EXPECT_EQ(rs.live_instances, before.handles.size());
    EXPECT_GT(rs.checkpoint_seq, 0u) << "cadence 4 with 9 ticks must have checkpointed";
    expect_bitexact(before, recovered);
}

TEST(DurableRecovery, JournalOnlyReplayWhenCheckpointsDisabled) {
    TempDir dir;
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*model);
    const auto cfg =
        durable_server_config(dir.path / "data", source, FsyncMode::Always, /*ckpt_every=*/0);
    SessionResult before;
    {
        serve::Server server(sys, model, cfg);
        server.start();
        before = run_session(server, model);
    }
    serve::Server recovered(sys, model, cfg);
    const serve::RecoveryStats rs = recovered.recover();
    EXPECT_EQ(rs.checkpoint_seq, 0u);
    EXPECT_EQ(rs.recovered_ticks, before.ticks);
    EXPECT_GE(rs.replayed_ticks, before.ticks) << "everything must come from the journal";
    expect_bitexact(before, recovered);
}

TEST(DurableRecovery, BatchFsyncModeRecoversACompleteSession) {
    // Batch mode may lose the un-synced tail on a *crash*; on a clean
    // shutdown the Store destructor drains, so nothing is lost.
    TempDir dir;
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*model);
    const auto cfg = durable_server_config(dir.path / "data", source, FsyncMode::Batch);
    SessionResult before;
    {
        serve::Server server(sys, model, cfg);
        server.start();
        before = run_session(server, model);
    }
    serve::Server recovered(sys, model, cfg);
    const serve::RecoveryStats rs = recovered.recover();
    EXPECT_EQ(rs.recovered_ticks, before.ticks);
    expect_bitexact(before, recovered);
}

TEST(DurableRecovery, RecoversAcrossALiveUpgrade) {
    TempDir dir;
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*model);
    // v2 = v1 plus an appended state-bearing sub: same root interface, so
    // the live migration is a copy + init, not a drain.
    const auto& m = static_cast<const MacroBlock&>(*model);
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < m.num_inputs(); ++i) ins.push_back(m.input_name(i));
    for (std::size_t o = 0; o < m.num_outputs(); ++o) outs.push_back(m.output_name(o));
    auto v2 = std::make_shared<MacroBlock>(m.type_name(), std::move(ins), std::move(outs));
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const auto& sub = m.sub(s);
        const auto id = v2->add_sub(sub.name, sub.type);
        if (sub.trigger) v2->set_trigger(id, *sub.trigger);
    }
    for (const Connection& conn : m.connections()) v2->connect(conn.src, conn.dst);
    v2->add_sub("DurAdded", lib::unit_delay(1.5));
    v2->connect(m.input_name(0), "DurAdded.u");
    v2->validate();
    const std::string source_v2 = text::to_sbd(*v2);

    const auto cfg = durable_server_config(dir.path / "data", source);
    SessionResult before;
    {
        serve::Server server(sys, model, cfg);
        server.start();
        before = run_session(server, model, source_v2);
        EXPECT_EQ(server.model_version(), 2u);
    }
    serve::Server recovered(sys, model, cfg);
    const serve::RecoveryStats rs = recovered.recover();
    EXPECT_FALSE(rs.replay_aborted);
    EXPECT_EQ(rs.recovered_version, 2u) << "the journaled upgrade must replay";
    EXPECT_EQ(rs.recovered_ticks, before.ticks);
    expect_bitexact(before, recovered);
}

TEST(DurableRecovery, BootConfigMismatchIsACodedError) {
    TempDir dir;
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*model);
    const auto cfg = durable_server_config(dir.path / "data", source);
    {
        serve::Server server(sys, model, cfg);
        server.start();
        (void)run_session(server, model);
    }
    // Restart with a different shard count: the checkpoint cannot be laid
    // onto this topology; the failure must be the coded DurableError, not a
    // crash or silent partial restore.
    auto bad = cfg;
    bad.shards = 3;
    serve::Server recovered(sys, model, bad);
    EXPECT_THROW((void)recovered.recover(), DurableError);
}

TEST(DurableRecovery, EmptyDataDirRecoversToNothing) {
    TempDir dir;
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const auto cfg = durable_server_config(dir.path / "data", text::to_sbd(*model));
    serve::Server server(sys, model, cfg);
    const serve::RecoveryStats rs = server.recover();
    EXPECT_FALSE(rs.recovered);
    EXPECT_EQ(rs.recovered_ticks, 0u);
    EXPECT_EQ(rs.live_instances, 0u);
}

// ---------------------------------------------------------------------------
// Crash-chaos harness: exec the real daemon, SIGKILL it, prove recovery.

#ifndef SBD_SERVE_BIN
#define SBD_SERVE_BIN ""
#endif

struct CrashRunConfig {
    std::uint64_t seed = 1;
    std::string fault_plan;     ///< child-side --fault-plan (directed runs)
    std::string parent_plan;    ///< armed in-parent around recover()
    bool with_upgrade = false;  ///< hot-swap after acked tick 5
    bool native = false;        ///< child serves --backend native
    std::uint32_t kill_after_us = 20000;
};

struct CrashRunStats {
    std::uint64_t acked_ticks = 0;
    std::uint64_t recovered_ticks = 0;
    bool upgrade_acked = false;
};

constexpr std::uint64_t kUpgradeAtTick = 5;
constexpr std::uint64_t kMaxTicks = 24;

pid_t spawn_serve(const fs::path& dir, const fs::path& model_path, const CrashRunConfig& cfg) {
    const fs::path ep_file = dir / "ep.txt";
    const fs::path log = dir / "serve.log";
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    // Child: plain exec of the real daemon — no in-process state survives
    // the fork, so SIGKILL timing exercises exactly what production sees.
    const int logfd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (logfd >= 0) {
        ::dup2(logfd, 1);
        ::dup2(logfd, 2);
        ::close(logfd);
    }
    std::vector<std::string> args = {SBD_SERVE_BIN,
                                     "--listen",
                                     "unix:" + (dir / "s.sock").string(),
                                     "--endpoint-file",
                                     ep_file.string(),
                                     "--data-dir",
                                     (dir / "data").string(),
                                     "--fsync",
                                     "always",
                                     "--checkpoint-every-ticks",
                                     "2",
                                     "--shards",
                                     "2",
                                     "--capacity",
                                     "4"};
    if (!cfg.fault_plan.empty()) {
        args.push_back("--fault-plan");
        args.push_back(cfg.fault_plan);
    }
    if (cfg.native) {
        args.push_back("--backend");
        args.push_back("native");
    }
    args.push_back(model_path.string());
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(SBD_SERVE_BIN, argv.data());
    ::_exit(127);
}

bool wait_for_socket(const fs::path& sock, int timeout_ms) {
    for (int i = 0; i < timeout_ms; ++i) {
        struct ::stat st{};
        if (::stat(sock.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

/// One kill/recover trial. Returns nullopt when the daemon died before the
/// session even started (kill landed pre-boot) — nothing to verify then.
std::optional<CrashRunStats> crash_run(const BlockPtr& model,
                                       const codegen::CompiledSystem& sys,
                                       const std::string& source, const std::string& source_v2,
                                       const CrashRunConfig& cfg) {
    TempDir dir;
    const fs::path model_path = dir.path / "model.sbd";
    std::ofstream(model_path) << source;
    const pid_t pid = spawn_serve(dir.path, model_path, cfg);
    EXPECT_GT(pid, 0);
    if (pid <= 0) return std::nullopt;

    CrashRunStats stats;
    std::vector<serve::WireHandle> handles;
    bool created = false;
    if (wait_for_socket(dir.path / "s.sock", cfg.native ? 30000 : 5000)) {
        // The killer arms only once the server is up, so the random delay
        // lands across the whole session — boot, appends, checkpoints.
        std::thread killer([pid, &cfg] {
            std::this_thread::sleep_for(std::chrono::microseconds(cfg.kill_after_us));
            ::kill(pid, SIGKILL);
        });
        try {
            serve::Client client = serve::Client::connect(
                serve::Endpoint::parse("unix:" + (dir.path / "s.sock").string()));
            handles = client.create_instances(1, 3);
            created = true;
            std::vector<double> row(model->num_inputs());
            for (std::uint64_t t = 0; t < kMaxTicks; ++t) {
                for (std::size_t j = 0; j < row.size(); ++j)
                    row[j] = 0.25 * static_cast<double>(t) + static_cast<double>(j);
                for (const serve::WireHandle& h : handles) {
                    const serve::WireHandle one[] = {h};
                    try {
                        client.post_inputs(1, one, row);
                    } catch (const serve::ServeError&) {
                        // DURABLE_FAILED and friends: not acked, not applied.
                    }
                }
                try {
                    (void)client.tick(1, 1);
                    ++stats.acked_ticks;
                } catch (const serve::ServeError&) {
                }
                if (cfg.with_upgrade && stats.acked_ticks == kUpgradeAtTick &&
                    !stats.upgrade_acked) {
                    try {
                        (void)client.upgrade_model(1, source_v2);
                        stats.upgrade_acked = true;
                    } catch (const serve::ServeError&) {
                    }
                }
            }
        } catch (const std::exception&) {
            // Transport error: the SIGKILL landed. Everything acked so far
            // is what recovery must reproduce.
        }
        killer.join();
    }
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);

    // Recover in-process from the survivor files.
    auto rcfg = durable_server_config(dir.path / "data", source, FsyncMode::Off, 2);
    serve::Server recovered(sys, model, rcfg);
    serve::RecoveryStats rs;
    {
        std::optional<resilience::ScopedFaultPlan> armed;
        if (!cfg.parent_plan.empty())
            armed.emplace(resilience::FaultPlan::parse(cfg.parent_plan));
        rs = recovered.recover();
    }
    EXPECT_FALSE(rs.replay_aborted) << "no faults are armed during this replay";
    stats.recovered_ticks = rs.recovered_ticks;

    // Gate 1: no acked work is ever lost.
    EXPECT_GE(rs.recovered_ticks, stats.acked_ticks) << "acked ticks lost";
    EXPECT_LE(rs.recovered_ticks, kMaxTicks);
    if (created) {
        EXPECT_EQ(rs.live_instances, 3u);
    }
    if (stats.upgrade_acked) {
        EXPECT_EQ(rs.recovered_version, 2u) << "acked upgrade lost";
    }
    if (!created) {
        EXPECT_EQ(stats.acked_ticks, 0u);
        return stats;
    }
    if (rs.live_instances != 3u) return stats;

    // Gate 2: bit-exact against an uninterrupted oracle of the same prefix.
    // Skipped for child-side fault plans: a coded append rejection drops the
    // record (or, for a failed fsync, persists it un-acked), so the journal
    // timeline is a legitimate consistent prefix that differs from the
    // "every post succeeded" script the oracle runs. Parent-side recover
    // faults only change *which* checkpoint recovery starts from, so they
    // keep the gate.
    if (!cfg.fault_plan.empty()) return stats;
    // The oracle replays the deterministic script for exactly the recovered
    // tick count; the upgrade slots in at its scripted position iff the
    // recovered version says it happened before the crash point.
    serve::ServerConfig ocfg;
    ocfg.endpoint = serve::Endpoint::parse("tcp:127.0.0.1:0");
    ocfg.shards = 2;
    ocfg.shard_capacity = 4;
    upgrade::CompileContext uctx;
    ocfg.upgrade = std::move(uctx);
    serve::Server oracle(sys, model, ocfg);
    oracle.start();
    serve::Client oclient = serve::Client::connect(oracle.endpoint());
    const std::vector<serve::WireHandle> ohandles = oclient.create_instances(1, 3);
    std::vector<double> row(model->num_inputs());
    for (std::uint64_t t = 0; t <= rs.recovered_ticks; ++t) {
        if (rs.recovered_version == 2 && t == kUpgradeAtTick)
            (void)oclient.upgrade_model(1, source_v2);
        if (t == rs.recovered_ticks) break;
        for (std::size_t j = 0; j < row.size(); ++j)
            row[j] = 0.25 * static_cast<double>(t) + static_cast<double>(j);
        for (const serve::WireHandle& h : ohandles) {
            const serve::WireHandle one[] = {h};
            oclient.post_inputs(1, one, row);
        }
        (void)oclient.tick(1, 1);
    }

    recovered.start();
    serve::Client rclient = serve::Client::connect(recovered.endpoint());
    const std::size_t nin = model->num_inputs();
    const std::size_t nout = model->num_outputs();
    for (std::size_t i = 0; i < ohandles.size(); ++i) {
        // Deterministic placement: the recovered pool re-mints the same
        // handles the oracle (and the dead daemon) minted.
        const std::vector<double> want = oclient.snapshot(1, ohandles[i]);
        const std::vector<double> got = rclient.snapshot(1, ohandles[i]);
        EXPECT_EQ(got.size(), want.size());
        if (got.size() != want.size()) return stats;
        // Layout is [persistent state..., input row, output row]. The input
        // row is excluded: a journaled-but-unacked trailing POST_INPUTS may
        // put the recovered row one step ahead of the oracle.
        const std::size_t state_n = want.size() - nin - nout;
        EXPECT_EQ(std::memcmp(got.data(), want.data(), state_n * sizeof(double)), 0)
            << "instance " << i << " persistent state diverged (seed " << cfg.seed << ")";
        EXPECT_EQ(std::memcmp(got.data() + state_n + nin, want.data() + state_n + nin,
                              nout * sizeof(double)),
                  0)
            << "instance " << i << " output row diverged (seed " << cfg.seed << ")";
    }
    return stats;
}

TEST(DurableCrashChaos, KillRecoverCampaign) {
    ASSERT_NE(std::string(SBD_SERVE_BIN), "") << "SBD_SERVE_BIN not configured";
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*model);
    // v2: append a state-bearing sub (same interface, copy+init migration).
    std::string source_v2;
    {
        const auto& m = static_cast<const MacroBlock&>(*model);
        std::vector<std::string> ins, outs;
        for (std::size_t i = 0; i < m.num_inputs(); ++i) ins.push_back(m.input_name(i));
        for (std::size_t o = 0; o < m.num_outputs(); ++o) outs.push_back(m.output_name(o));
        auto v2 = std::make_shared<MacroBlock>(m.type_name(), std::move(ins), std::move(outs));
        for (std::size_t s = 0; s < m.num_subs(); ++s) {
            const auto& sub = m.sub(s);
            const auto id = v2->add_sub(sub.name, sub.type);
            if (sub.trigger) v2->set_trigger(id, *sub.trigger);
        }
        for (const Connection& conn : m.connections()) v2->connect(conn.src, conn.dst);
        v2->add_sub("DurAdded", lib::unit_delay(1.5));
        v2->connect(m.input_name(0), "DurAdded.u");
        v2->validate();
        source_v2 = text::to_sbd(*v2);
    }

    std::size_t random_runs = 200;
    if (const char* env = std::getenv("SBD_DURABLE_CRASH_RUNS"))
        random_runs = std::strtoull(env, nullptr, 10);
    std::uint64_t campaign_seed = 77;
    if (const char* env = std::getenv("SBD_CHAOS_SEED"))
        campaign_seed = std::strtoull(env, nullptr, 10);

    std::size_t runs = 0, sessions_with_acks = 0, upgrades_acked = 0, full_sessions = 0;

    // Directed phase: pin each durable fault point so every degradation
    // path runs regardless of random timing. Child-side plans hit the
    // daemon's append/fsync/checkpoint paths; the recover plan is armed in
    // the parent, where load_latest actually executes.
    struct Directed {
        std::uint64_t seed;
        const char* child_plan;
        const char* parent_plan;
        std::uint32_t kill_after_us;
    };
    const Directed directed[] = {
        {1, "seed=1;durable.append=nth:6", "", 30000},
        {2, "seed=2;durable.append=every:7", "", 40000},
        {3, "seed=3;durable.fsync=nth:9", "", 30000},
        {4, "seed=4;durable.fsync=p:0.1", "", 40000},
        {5, "seed=5;durable.checkpoint=nth:1", "", 30000},
        {6, "seed=6;durable.checkpoint=every:2", "", 50000},
        {7, "", "seed=7;durable.recover=nth:1", 30000},
        {8, "", "seed=8;durable.recover=every:2", 50000},
    };
    for (const Directed& d : directed) {
        CrashRunConfig cfg;
        cfg.seed = d.seed;
        cfg.fault_plan = d.child_plan;
        cfg.parent_plan = d.parent_plan;
        cfg.kill_after_us = d.kill_after_us;
        const auto stats = crash_run(model, sys, source, source_v2, cfg);
        ++runs;
        if (stats && stats->acked_ticks > 0) ++sessions_with_acks;
    }

    // Random phase: seeded kill timing over the full session window, with
    // upgrades mixed in. Early kills catch mid-boot and mid-create; late
    // kills catch mid-checkpoint, mid-append and post-upgrade appends.
    std::mt19937_64 rng(campaign_seed);
    for (std::size_t i = 0; i < random_runs; ++i) {
        CrashRunConfig cfg;
        cfg.seed = 1000 + i;
        cfg.kill_after_us = static_cast<std::uint32_t>(rng() % 80000);
        cfg.with_upgrade = (rng() % 2) == 0;
        const auto stats = crash_run(model, sys, source, source_v2, cfg);
        ++runs;
        if (stats && stats->acked_ticks > 0) ++sessions_with_acks;
        if (stats && stats->upgrade_acked) ++upgrades_acked;
        if (stats && stats->recovered_ticks == kMaxTicks) ++full_sessions;
    }

    // The campaign is only meaningful if the kill timing actually sampled
    // real sessions (not all pre-boot kills). The 200-run floor is the
    // acceptance default; SBD_DURABLE_CRASH_RUNS can shrink it for quick
    // local iteration.
    EXPECT_EQ(runs, sizeof(directed) / sizeof(directed[0]) + random_runs);
    EXPECT_GT(sessions_with_acks, runs / 4) << "kill timing never let sessions progress";
    if (random_runs >= 50) {
        EXPECT_GT(upgrades_acked, 0u) << "no run survived to the upgrade point";
        EXPECT_GT(full_sessions, 0u) << "no run completed the full session";
    }
    std::printf("crash campaign: %zu runs, %zu with acks, %zu upgrades acked, %zu full\n",
                runs, sessions_with_acks, upgrades_acked, full_sessions);
}

TEST(DurableCrashChaos, NativeBackendKillRecover) {
    ASSERT_NE(std::string(SBD_SERVE_BIN), "") << "SBD_SERVE_BIN not configured";
    const auto model = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(model, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*model);
    std::size_t native_runs = 3;
    if (const char* env = std::getenv("SBD_DURABLE_NATIVE_RUNS"))
        native_runs = std::strtoull(env, nullptr, 10);
    std::mt19937_64 rng(99);
    std::size_t with_acks = 0;
    for (std::size_t i = 0; i < native_runs; ++i) {
        CrashRunConfig cfg;
        cfg.seed = 5000 + i;
        cfg.native = true;
        // Native boot AOT-compiles the model: give the session room to run
        // before the kill lands (timing is relative to socket readiness).
        cfg.kill_after_us = 20000 + static_cast<std::uint32_t>(rng() % 60000);
        const auto stats = crash_run(model, sys, source, "", cfg);
        if (stats && stats->acked_ticks > 0) ++with_acks;
    }
    // The recovery/oracle servers run interp: the state-blob layout is
    // backend-invariant (the cross-backend portability contract), so a
    // native daemon's journal+checkpoints must restore bit-exactly here.
    EXPECT_GT(with_acks, 0u) << "no native session progressed before the kill";
}

} // namespace
