// Tests of the deep semantic analysis (src/analysis/absint, cost): the
// interval domain's algebra, and — the load-bearing gate — differential
// soundness: for every model we can execute, every concrete output value
// of every simulated instant must lie inside the interval the abstract
// interpreter predicted. The gate runs the demo suite under every
// clustering method plus 500 seeded random hierarchies, so a transfer
// function that forgets an IEEE corner case (inf - inf, 0 * inf, division
// by a zero-crossing range) fails here, not in a user's report.
//
// Also covered: summary memoization (content-addressed, shared across
// analyzers like the profile cache), the shipped models' expected deep
// findings, the SARIF golden file, and the static cost model (which writes
// the COST_suite.md artifact EXPERIMENTS.md quotes).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/cost.hpp"
#include "analysis/lint.hpp"
#include "core/compiler.hpp"
#include "core/exec.hpp"
#include "runtime/engine.hpp"
#include "sbd/text_format.hpp"
#include "suite/models.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::analysis;
using sbd::codegen::CompiledSystem;
using sbd::codegen::Method;
using sbd::codegen::SdgCycleError;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

constexpr Method kAllMethods[] = {Method::Monolithic,     Method::StepGet,
                                  Method::Dynamic,        Method::DisjointSat,
                                  Method::DisjointGreedy, Method::Singletons};

// ---------------------------------------------------------------------------
// Interval domain algebra.
// ---------------------------------------------------------------------------

TEST(IntervalDomain, JoinAndContains) {
    const Interval a = Interval::point(1.0);
    const Interval b = Interval::point(3.0);
    const Interval j = iv_join(a, b);
    EXPECT_EQ(j, Interval::make(1.0, 3.0));
    EXPECT_TRUE(j.contains(2.0));
    EXPECT_FALSE(j.contains(3.5));
    EXPECT_FALSE(j.contains(kNan));

    // Bottom is the join identity.
    EXPECT_EQ(iv_join(Interval::bottom(), b), b);
    EXPECT_EQ(iv_join(a, Interval::bottom()), a);

    // The nan flag survives joins and is what NaN membership tests.
    Interval n = Interval::point(0.0);
    n.nan = true;
    EXPECT_TRUE(iv_join(n, b).nan);
    EXPECT_TRUE(n.contains(kNan));

    // Infinite endpoints are themselves attainable values.
    EXPECT_TRUE(Interval::top().contains(kInf));
    EXPECT_TRUE(Interval::top().contains(-kInf));
}

TEST(IntervalDomain, Predicates) {
    EXPECT_TRUE(Interval::bottom().is_bottom());
    EXPECT_TRUE(Interval::point(2.0).is_finite_singleton());
    EXPECT_FALSE(Interval::point(kInf).is_finite_singleton());
    EXPECT_TRUE(Interval::point(kInf).definitely_nonfinite());
    Interval pure_nan = Interval::bottom();
    pure_nan.nan = true;
    EXPECT_TRUE(pure_nan.definitely_nonfinite());
    EXPECT_FALSE(pure_nan.is_bottom());
    EXPECT_FALSE(Interval::top().definitely_nonfinite());
    EXPECT_EQ(Interval::bottom().str_or("none"), "none");
}

TEST(IntervalDomain, AddCorners) {
    EXPECT_EQ(iv_add(Interval::make(1, 2), Interval::make(3, 4)), Interval::make(4, 6));
    // inf + inf of the same sign is a definite infinity, not NaN.
    const Interval pp = iv_add(Interval::point(kInf), Interval::point(kInf));
    EXPECT_EQ(pp.lo, kInf);
    EXPECT_FALSE(pp.nan);
    // Opposite infinities can meet: the indeterminate corner sets nan.
    const Interval mix = iv_add(Interval::make(0, kInf), Interval::make(-kInf, 0));
    EXPECT_TRUE(mix.nan);
    // Bottom operands stay bottom.
    EXPECT_TRUE(iv_add(Interval::bottom(), Interval::make(1, 2)).is_bottom());
}

TEST(IntervalDomain, MulCorners) {
    EXPECT_EQ(iv_mul(Interval::make(-2, 3), Interval::make(-5, 7)), Interval::make(-15, 21));
    // 0 * inf is indeterminate: NaN attainable.
    const Interval zi = iv_mul(Interval::point(0.0), Interval::make(0, kInf));
    EXPECT_TRUE(zi.nan);
    // A zero inside one operand times a finite range must keep 0 attainable
    // even when every corner product is nonzero.
    const Interval z = iv_mul(Interval::make(-1, 1), Interval::make(2, 3));
    EXPECT_TRUE(z.contains(0.0));
    EXPECT_EQ(z, Interval::make(-3, 3));
}

TEST(IntervalDomain, DivVerdicts) {
    // Plain division, zero-free denominator.
    const DivResult ok = iv_div(Interval::make(4, 8), Interval::make(2, 4));
    EXPECT_FALSE(ok.definite_zero_den);
    EXPECT_FALSE(ok.possible_zero_den);
    EXPECT_EQ(ok.value, Interval::make(1, 4));

    // Denominator is exactly zero always: the SBD022 verdict. 1/0 is a
    // real IEEE infinity of unknown sign (sign of zero unknown).
    const DivResult dz = iv_div(Interval::point(1.0), Interval::point(0.0));
    EXPECT_TRUE(dz.definite_zero_den);
    EXPECT_TRUE(dz.value.contains(kInf));
    EXPECT_TRUE(dz.value.contains(-kInf));

    // 0/0 always: pure NaN.
    const DivResult zz = iv_div(Interval::point(0.0), Interval::point(0.0));
    EXPECT_TRUE(zz.definite_zero_den);
    EXPECT_TRUE(zz.value.nan);
    EXPECT_TRUE(zz.value.definitely_nonfinite());

    // Zero-crossing denominator: the SBD023 verdict; with 0 in the
    // numerator too, NaN is attainable.
    const DivResult pz = iv_div(Interval::make(-1, 1), Interval::make(-1, 1));
    EXPECT_FALSE(pz.definite_zero_den);
    EXPECT_TRUE(pz.possible_zero_den);
    EXPECT_TRUE(pz.value.nan);
}

TEST(IntervalDomain, MinMaxNegAbsClamp) {
    EXPECT_EQ(iv_neg(Interval::make(-2, 5)), Interval::make(-5, 2));
    EXPECT_EQ(iv_abs(Interval::make(-2, 5)), Interval::make(0, 5));
    EXPECT_EQ(iv_abs(Interval::make(-5, -2)), Interval::make(2, 5));
    EXPECT_EQ(iv_min(Interval::make(0, 3), Interval::make(1, 2)), Interval::make(0, 2));
    EXPECT_EQ(iv_max(Interval::make(0, 3), Interval::make(1, 2)), Interval::make(1, 3));
    EXPECT_EQ(iv_clamp(Interval::make(-10, 10), -1, 1), Interval::make(-1, 1));
    // NaN operands pass through every kernel.
    Interval n = Interval::make(0, 1);
    n.nan = true;
    EXPECT_TRUE(iv_min(n, Interval::point(5.0)).nan);
    EXPECT_TRUE(iv_abs(n).nan);
}

TEST(IntervalDomain, WideningTerminates) {
    // An unstable upper bound climbs the rung ladder and must reach +inf in
    // a bounded number of widenings (this is the termination argument for
    // the stateful-block fixpoint).
    Interval cur = Interval::make(0, 0.1);
    std::size_t steps = 0;
    while (cur.hi < kInf) {
        const Interval next = iv_join(cur, Interval::make(0, std::nextafter(cur.hi, kInf)));
        const Interval widened = iv_widen(cur, next);
        ASSERT_GT(widened.hi, cur.hi);
        cur = widened;
        ASSERT_LT(++steps, 64u);
    }
    // A stable iterate is left alone.
    const Interval stable = Interval::make(-1, 1);
    EXPECT_EQ(iv_widen(stable, stable), stable);
}

// ---------------------------------------------------------------------------
// Differential soundness gate.
// ---------------------------------------------------------------------------

/// Compiles `root` under `method`, analyzes it, simulates `instants`
/// concrete instants with the LCG input stream (the same family the
/// engine/differential tests use; values in [-8, 8), matching the default
/// assumed-input range) and asserts every concrete output lies inside the
/// predicted intervals. Returns false when the method rejects the model or
/// the model is not executable (opaque blocks) — both are skips, not
/// failures.
bool check_soundness(const BlockPtr& root, Method method, std::uint64_t seed,
                     std::size_t instants, const std::string& tag) {
    CompiledSystem sys;
    try {
        sys = codegen::compile_hierarchy(root, method);
    } catch (const SdgCycleError&) {
        return false;
    }
    Analyzer analyzer(sys);
    const BlockSummary& sum = analyzer.analyze_root(root);
    EXPECT_EQ(sum.outputs.size(), root->num_outputs()) << tag;
    EXPECT_EQ(sum.first_outputs.size(), root->num_outputs()) << tag;

    std::unique_ptr<codegen::Instance> inst;
    try {
        inst = std::make_unique<codegen::InterpInstance>(sys, root);
    } catch (const std::logic_error&) {
        return false; // opaque (interface-only) blocks are not executable
    }
    runtime::LcgInputSource source(seed);
    std::vector<double> inputs(root->num_inputs());
    for (std::size_t t = 0; t < instants; ++t) {
        source.fill(inputs);
        std::vector<double> out;
        try {
            out = inst->step_instant(inputs);
        } catch (const std::logic_error&) {
            return false;
        }
        for (std::size_t o = 0; o < out.size(); ++o) {
            EXPECT_TRUE(sum.outputs[o].contains(out[o]))
                << tag << " method=" << to_string(method) << " instant=" << t
                << " output=" << o << " value=" << out[o]
                << " predicted=" << to_string(sum.outputs[o]);
            if (t == 0) {
                EXPECT_TRUE(sum.first_outputs[o].contains(out[o]))
                    << tag << " method=" << to_string(method) << " first-instant output="
                    << o << " value=" << out[o]
                    << " predicted=" << to_string(sum.first_outputs[o]);
            }
        }
    }
    return true;
}

TEST(AbsintSoundness, DemoSuiteAllMethods) {
    std::size_t executed = 0;
    for (const suite::NamedModel& m : suite::demo_suite())
        for (const Method method : kAllMethods)
            if (check_soundness(m.block, method, 7, 64, m.name)) ++executed;
    // Most of the suite executes under most methods; a handful of
    // (model, method) pairs are legitimate cycle rejections.
    EXPECT_GE(executed, 30u);
}

TEST(AbsintSoundness, ShippedModels) {
    std::size_t executed = 0;
    for (const auto& entry : std::filesystem::directory_iterator(SBD_MODELS_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        const auto file = text::parse_sbd_file(entry.path().string());
        if (check_soundness(file.root, Method::Dynamic, 11, 64,
                            entry.path().filename().string()))
            ++executed;
    }
    EXPECT_GE(executed, 4u);
}

TEST(AbsintSoundness, RandomHierarchies) {
    // 350 shallow/wide random models. The analysis is method-agnostic (the
    // summaries are semantic), and the engine tests already prove every
    // method bit-identical, so one method per model suffices here; the
    // method still rotates for coverage of the different generated shapes.
    std::mt19937_64 rng(20260808);
    std::size_t executed = 0;
    for (std::size_t i = 0; i < 350; ++i) {
        suite::RandomModelParams p;
        p.depth = 1 + i % 3;
        p.subs_per_level = 3 + i % 4;
        p.inputs = 1 + i % 3;
        p.outputs = 1 + (i / 2) % 3;
        p.backward_wire_probability = (i % 5) * 0.1;
        const auto root = suite::random_model(rng, p);
        const Method method = kAllMethods[i % 6];
        if (check_soundness(root, method, 100 + i, 64, "random#" + std::to_string(i)))
            ++executed;
        if (::testing::Test::HasFailure()) break; // one witness is enough
    }
    EXPECT_GE(executed, 250u);
}

TEST(AbsintSoundness, RandomDeepHierarchies) {
    // 150 deep shared-type hierarchies, including structural clones — the
    // shape that stresses the content-addressed summary memo.
    std::mt19937_64 rng(4242);
    std::size_t executed = 0;
    for (std::size_t i = 0; i < 150; ++i) {
        suite::DeepModelParams p;
        p.levels = 3 + i % 2;
        p.types_per_level = 2;
        p.subs_per_macro = 3;
        p.clone_probability = (i % 2) ? 0.5 : 0.0;
        const auto root = suite::random_deep_model(rng, p);
        if (check_soundness(root, Method::Dynamic, 1000 + i, 64,
                            "deep#" + std::to_string(i)))
            ++executed;
        if (::testing::Test::HasFailure()) break;
    }
    EXPECT_GE(executed, 120u);
}

// ---------------------------------------------------------------------------
// Summary memoization.
// ---------------------------------------------------------------------------

TEST(AbsintMemo, SharedAcrossAnalyzersLikeProfileCache) {
    const auto root = suite::thermostat();
    const CompiledSystem sys = codegen::compile_hierarchy(root, Method::Dynamic);
    const auto memo = std::make_shared<SummaryMemo>();
    AbsOptions opts;
    opts.memo = memo;

    Analyzer first(sys, opts);
    const BlockSummary& cold = first.analyze_root(root);
    EXPECT_GT(first.summaries_computed(), 0u);
    const std::uint64_t computed_cold = memo->computed;

    // A second analyzer over the same memo recomputes nothing.
    Analyzer second(sys, opts);
    const BlockSummary& warm = second.analyze_root(root);
    EXPECT_GT(memo->hits, 0u);
    EXPECT_EQ(memo->computed, computed_cold);
    ASSERT_EQ(warm.outputs.size(), cold.outputs.size());
    for (std::size_t o = 0; o < cold.outputs.size(); ++o)
        EXPECT_EQ(warm.outputs[o], cold.outputs[o]);
    // Memo hits must not lose the hazards collected on first computation.
    EXPECT_EQ(warm.hazards.size(), cold.hazards.size());
}

TEST(AbsintMemo, StructuralClonesHitTheMemo) {
    // clone_probability = 1: every shared type is a distinct Block object
    // with an identical fingerprint. Only content addressing (not pointer
    // identity) can dedup these — the same adversary the profile cache has.
    std::mt19937_64 rng(99);
    suite::DeepModelParams p;
    p.levels = 4;
    p.types_per_level = 2;
    p.subs_per_macro = 3;
    p.clone_probability = 1.0;
    const auto root = suite::random_deep_model(rng, p);
    const CompiledSystem sys = codegen::compile_hierarchy(root, Method::Dynamic);
    Analyzer analyzer(sys);
    analyzer.analyze_root(root);
    EXPECT_GT(analyzer.memo_hits(), 0u);
}

// ---------------------------------------------------------------------------
// Shipped models: expected deep findings, nothing else.
// ---------------------------------------------------------------------------

TEST(DeepLint, ShippedModelsExpectedFindings) {
    LintOptions opts;
    opts.deep = true;
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(SBD_MODELS_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        ++files;
        const LintReport rep = lint_file(entry.path().string(), opts);
        EXPECT_FALSE(rep.has_errors()) << entry.path().filename();
        std::vector<std::string> deep_codes;
        for (const Diagnostic& d : rep.diagnostics)
            if (d.code >= "SBD022" && d.code <= "SBD028") deep_codes.push_back(d.code);
        if (entry.path().filename() == "thermostat.sbd") {
            // The room-temperature feedback loop is stable in reality but
            // not provably bounded in the interval domain: widening takes
            // the integrator state to +-inf, where the heater sum has an
            // inf + (-inf) corner. The honest answer is "may be NaN" —
            // a warning, never an error (DESIGN.md, known imprecision).
            ASSERT_EQ(deep_codes.size(), 1u);
            EXPECT_EQ(deep_codes[0], "SBD025");
        } else {
            EXPECT_TRUE(deep_codes.empty())
                << entry.path().filename() << " unexpected " << deep_codes.front();
        }
    }
    EXPECT_GE(files, 5u);
}

TEST(DeepLint, DirectiveTurnsDeepOnPerFile) {
    // "# lint-deep" in the model text enables the deep pass with default
    // options even when the caller did not ask for it.
    EXPECT_TRUE(deep_directive("# lint-deep\nblock X {}\n"));
    EXPECT_FALSE(deep_directive("# lint-method: dynamic\n"));
    const LintReport rep = lint_string("# lint-deep\n"
                                       "block P {\n"
                                       "  inputs x\n"
                                       "  outputs y\n"
                                       "  sub One Constant 1\n"
                                       "  sub Q   Div\n"
                                       "  connect One.y Q.u1\n"
                                       "  connect x     Q.u2\n"
                                       "  connect Q.y y\n"
                                       "}\n");
    bool saw_023 = false;
    for (const Diagnostic& d : rep.diagnostics) saw_023 |= d.code == "SBD023";
    EXPECT_TRUE(saw_023);
}

// ---------------------------------------------------------------------------
// Diagnostic catalog and SARIF rendering.
// ---------------------------------------------------------------------------

TEST(Sarif, CatalogIsCompleteAndOrdered) {
    const auto cat = catalog();
    ASSERT_EQ(cat.size(), 28u);
    for (std::size_t i = 0; i < cat.size(); ++i) {
        char expect[32];
        std::snprintf(expect, sizeof expect, "SBD%03u", static_cast<unsigned>(i + 1));
        EXPECT_EQ(cat[i].code, std::string(expect));
        EXPECT_FALSE(std::string(cat[i].summary).empty());
    }
    // The deep codes carry the severities the goldens pin down.
    EXPECT_EQ(cat[21].severity, Severity::Error);   // SBD022
    EXPECT_EQ(cat[23].severity, Severity::Error);   // SBD024
    EXPECT_EQ(cat[24].severity, Severity::Warning); // SBD025
}

TEST(Sarif, GoldenFileIsBitExact) {
    // Regenerate the SARIF for the SBD022 golden model exactly the way
    // tests/lint/golden.sarif was produced and compare byte-for-byte. The
    // default SarifOptions omit the tool version, so the golden does not
    // churn on releases.
    const LintReport rep = [] {
        LintReport r = lint_file(std::string(SBD_LINT_DIR) + "/SBD022_div_by_zero.sbd");
        r.file = "SBD022_div_by_zero.sbd";
        return r;
    }();
    const std::string got = render_sarif(std::span(&rep, 1));

    std::ifstream in(std::string(SBD_LINT_DIR) + "/golden.sarif", std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str());
}

TEST(Sarif, StructurallySane) {
    LintOptions opts;
    opts.deep = true;
    const LintReport rep =
        lint_file(std::string(SBD_LINT_DIR) + "/SBD024_always_nan_output.sbd", opts);
    const std::string sarif = render_sarif(std::span(&rep, 1));
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-schema-2.1.0"), std::string::npos);
    EXPECT_NE(sarif.find("\"id\": \"SBD028\""), std::string::npos); // full rule catalog
    EXPECT_NE(sarif.find("\"ruleId\": \"SBD024\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
    // Balanced braces — cheap structural JSON check, no parser dependency.
    long depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < sarif.size(); ++i) {
        const char c = sarif[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
        } else if (c == '"') in_string = true;
        else if (c == '{' || c == '[') ++depth;
        else if (c == '}' || c == ']') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// Static cost model.
// ---------------------------------------------------------------------------

TEST(CostModel, ThermostatPerMethod) {
    const auto file = text::parse_sbd_file(std::string(SBD_MODELS_DIR) + "/thermostat.sbd");
    const CostReport rep = cost_report(file.root, "models/thermostat.sbd");
    EXPECT_EQ(rep.model, file.root->type_name());
    ASSERT_EQ(rep.methods.size(), 6u);

    const auto find = [&](const char* name) -> const MethodCost& {
        for (const MethodCost& m : rep.methods)
            if (m.method == name) return m;
        ADD_FAILURE() << "method missing: " << name;
        static MethodCost none;
        return none;
    };
    // The thermostat has a false monolithic cycle: the paper's headline
    // rejection case. Every modular method accepts it.
    const MethodCost& mono = find("monolithic");
    EXPECT_FALSE(mono.accepted);
    EXPECT_FALSE(mono.reject_reason.empty());
    for (const char* name : {"step-get", "dynamic", "disjoint-sat", "disjoint-greedy",
                             "singletons"}) {
        const MethodCost& m = find(name);
        EXPECT_TRUE(m.accepted) << name;
        EXPECT_GT(m.functions, 0u) << name;
        EXPECT_GT(m.ops.total(), 0u) << name;
        EXPECT_GT(m.lines, 0u) << name;
        EXPECT_GT(m.code_bytes, 0u) << name;
        EXPECT_EQ(m.code_kind, "c++") << name;
        EXPECT_FALSE(m.blocks.empty()) << name;
    }
    // Modularity costs code size: one function per output-class (dynamic)
    // generates fewer interface functions than one block per cluster
    // (singletons), and the paper's Section 5 line measure orders the same
    // way on this model.
    EXPECT_LT(find("dynamic").functions, find("singletons").functions);
    EXPECT_LE(find("dynamic").lines, find("singletons").lines);
}

TEST(CostModel, OpaqueModelFallsBackToPseudocode) {
    const auto file =
        text::parse_sbd_file(std::string(SBD_MODELS_DIR) + "/vendor_integration.sbd");
    const CostReport rep = cost_report(file.root, "models/vendor_integration.sbd");
    bool some_accepted = false;
    for (const MethodCost& m : rep.methods)
        if (m.accepted) {
            some_accepted = true;
            // Opaque vendor blocks have no emit-time semantics; the size
            // measure must degrade to the pseudocode rendering, not throw.
            EXPECT_EQ(m.code_kind, "pseudocode") << m.method;
            EXPECT_GT(m.code_bytes, 0u) << m.method;
        }
    EXPECT_TRUE(some_accepted);
}

TEST(CostModel, RenderersAreStable) {
    const auto root = suite::counter_limited();
    const CostReport rep = cost_report(root, "counter_limited");
    const std::string table = render_cost_table(rep);
    EXPECT_NE(table.find("method"), std::string::npos);
    EXPECT_NE(table.find("dynamic"), std::string::npos);
    const std::string json = render_cost_json(rep);
    EXPECT_NE(json.find("\"file\": \"counter_limited\""), std::string::npos);
    EXPECT_NE(json.find("\"methods\""), std::string::npos);
    // Identical inputs render identically (the report is deterministic).
    EXPECT_EQ(render_cost_json(cost_report(root, "counter_limited")), json);
}

TEST(CostModel, SuiteTableArtifact) {
    // Writes COST_suite.md next to the test binary: the per-model,
    // per-method code-size table EXPERIMENTS.md quotes. Shared profile
    // cache across models, like one sbd-lint --report-cost batch.
    const auto cache = std::make_shared<codegen::ProfileCache>();
    std::ostringstream md;
    md << "# Static cost report — demo suite\n\n"
       << "Generated by test_absint (CostModel.SuiteTableArtifact); the same\n"
       << "tables come from `sbd-lint --report-cost` on each model.\n";
    std::size_t models = 0;
    for (const suite::NamedModel& m : suite::demo_suite()) {
        const CostReport rep = cost_report(m.block, m.name, cache);
        ASSERT_EQ(rep.methods.size(), 6u) << m.name;
        bool some_accepted = false;
        for (const MethodCost& mc : rep.methods) some_accepted |= mc.accepted;
        EXPECT_TRUE(some_accepted) << m.name;
        md << "\n## " << m.name << "\n\n" << render_cost_table(rep) << "\n";
        ++models;
    }
    EXPECT_GE(models, 8u);
    std::ofstream out("COST_suite.md", std::ios::binary);
    ASSERT_TRUE(out.good());
    out << md.str();
    out.close();
    ASSERT_TRUE(std::filesystem::exists("COST_suite.md"));
    EXPECT_GT(std::filesystem::file_size("COST_suite.md"), 1000u);
}

} // namespace
