#include <gtest/gtest.h>

#include <random>

#include "graph/bitset.hpp"
#include "graph/digraph.hpp"
#include "graph/undirected.hpp"

namespace {

using sbd::graph::Bitset;
using sbd::graph::Digraph;
using sbd::graph::NodeId;
using sbd::graph::Undirected;

TEST(Bitset, SetTestReset) {
    Bitset b(130);
    EXPECT_TRUE(b.none());
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    EXPECT_EQ(b.count(), 3u);
    b.reset(64);
    EXPECT_FALSE(b.test(64));
    EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, IndicesRoundTrip) {
    Bitset b(200);
    const std::vector<std::size_t> want = {0, 7, 63, 64, 65, 128, 199};
    for (const auto i : want) b.set(i);
    EXPECT_EQ(b.to_indices(), want);
}

TEST(Bitset, SubsetAndIntersect) {
    Bitset a(70), b(70);
    a.set(3);
    a.set(68);
    b.set(3);
    b.set(68);
    b.set(10);
    EXPECT_TRUE(a.is_subset_of(b));
    EXPECT_FALSE(b.is_subset_of(a));
    EXPECT_TRUE(a.intersects(b));
    Bitset c(70);
    c.set(11);
    EXPECT_FALSE(a.intersects(c));
    EXPECT_TRUE(c.is_subset_of(b) == false);
}

TEST(Bitset, OrAndEquality) {
    Bitset a(10), b(10);
    a.set(1);
    b.set(2);
    a |= b;
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(2));
    Bitset c(10);
    c.set(1);
    c.set(2);
    EXPECT_EQ(a, c);
    a &= b;
    EXPECT_FALSE(a.test(1));
    EXPECT_TRUE(a.test(2));
}

TEST(Digraph, TopologicalOrderOfDag) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 3);
    g.add_edge(3, 2);
    const auto order = g.topological_order();
    ASSERT_TRUE(order.has_value());
    std::vector<std::size_t> pos(4);
    for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
    EXPECT_LT(pos[0], pos[1]);
    EXPECT_LT(pos[1], pos[2]);
    EXPECT_LT(pos[3], pos[2]);
}

TEST(Digraph, CycleDetected) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    EXPECT_FALSE(g.topological_order().has_value());
    EXPECT_FALSE(g.is_acyclic());
}

TEST(Digraph, SelfLoopIsCycle) {
    Digraph g(2);
    g.add_edge(0, 0);
    EXPECT_FALSE(g.is_acyclic());
}

TEST(Digraph, ParallelEdgesCollapsed) {
    Digraph g(2);
    g.add_edge(0, 1);
    g.add_edge(0, 1);
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_EQ(g.successors(0).size(), 1u);
}

TEST(Digraph, SccComponents) {
    Digraph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0); // {0,1,2}
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(4, 3); // {3,4}
    std::size_t n = 0;
    const auto comp = g.scc_ids(&n);
    EXPECT_EQ(n, 3u); // {0,1,2}, {3,4}, {5}
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[1], comp[2]);
    EXPECT_EQ(comp[3], comp[4]);
    EXPECT_NE(comp[0], comp[3]);
    EXPECT_NE(comp[0], comp[5]);
    EXPECT_NE(comp[3], comp[5]);
}

TEST(Digraph, ReachabilityIsNonReflexiveByDefault) {
    Digraph g(3);
    g.add_edge(0, 1);
    const auto r = g.reachable_from(0);
    EXPECT_FALSE(r.test(0));
    EXPECT_TRUE(r.test(1));
    EXPECT_FALSE(r.test(2));
    const auto t = g.reaching_to(1);
    EXPECT_TRUE(t.test(0));
    EXPECT_FALSE(t.test(1));
}

TEST(Digraph, ReachableThroughCycleIncludesSelf) {
    Digraph g(2);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    EXPECT_TRUE(g.reachable_from(0).test(0));
}

// Property: DAG transitive closure agrees with Floyd-Warshall on random
// graphs.
TEST(Digraph, ClosureMatchesFloydWarshall) {
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int iter = 0; iter < 25; ++iter) {
        const std::size_t n = 2 + static_cast<std::size_t>(unit(rng) * 14);
        Digraph g(n);
        for (NodeId a = 0; a < n; ++a)
            for (NodeId b = a + 1; b < n; ++b)
                if (unit(rng) < 0.3) g.add_edge(a, b);
        std::vector<std::vector<bool>> fw(n, std::vector<bool>(n, false));
        for (NodeId a = 0; a < n; ++a)
            for (const auto b : g.successors(a)) fw[a][b] = true;
        for (std::size_t k = 0; k < n; ++k)
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    if (fw[i][k] && fw[k][j]) fw[i][j] = true;
        const auto closure = g.transitive_closure();
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                EXPECT_EQ(closure[i].test(j), fw[i][j]) << i << "->" << j;
    }
}

TEST(Digraph, QuotientDropsSelfLoops) {
    Digraph g(4);
    g.add_edge(0, 1); // same class -> dropped
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const std::vector<NodeId> cls = {0, 0, 1, 1};
    const Digraph q = g.quotient(cls, 2);
    EXPECT_EQ(q.num_nodes(), 2u);
    EXPECT_TRUE(q.has_edge(0, 1));
    EXPECT_FALSE(q.has_edge(0, 0));
    EXPECT_FALSE(q.has_edge(1, 1));
    EXPECT_EQ(q.num_edges(), 1u);
}

TEST(Digraph, TransposeReversesEdges) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    const auto t = g.transpose();
    EXPECT_TRUE(t.has_edge(1, 0));
    EXPECT_TRUE(t.has_edge(2, 1));
    EXPECT_FALSE(t.has_edge(0, 1));
}

TEST(Digraph, DotContainsNodesAndEdges) {
    Digraph g(2);
    g.add_edge(0, 1);
    const auto dot = g.to_dot({"alpha", "beta"});
    EXPECT_NE(dot.find("alpha"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Undirected, CliqueBasics) {
    Undirected g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    EXPECT_TRUE(g.is_clique({0, 1, 2}));
    EXPECT_FALSE(g.is_clique({0, 1, 3}));
    EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Undirected, MinCliquePartitionTrianglePlusIsolated) {
    Undirected g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    std::size_t k = 0;
    g.min_clique_partition(&k);
    EXPECT_EQ(k, 2u); // {0,1,2} and {3}
}

TEST(Undirected, MinCliquePartitionPath) {
    // Path a-b-c-d: two cliques {a,b}, {c,d}.
    Undirected g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    std::size_t k = 0;
    g.min_clique_partition(&k);
    EXPECT_EQ(k, 2u);
}

TEST(Undirected, MinCliquePartitionEmptyGraphIsSingletons) {
    Undirected g(3);
    std::size_t k = 0;
    const auto assign = g.min_clique_partition(&k);
    EXPECT_EQ(k, 3u);
    EXPECT_EQ(assign.size(), 3u);
}

TEST(Undirected, GreedyIsValidPartitionAndUpperBound) {
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int iter = 0; iter < 20; ++iter) {
        const std::size_t n = 3 + static_cast<std::size_t>(unit(rng) * 7);
        Undirected g(n);
        for (std::size_t a = 0; a < n; ++a)
            for (std::size_t b = a + 1; b < n; ++b)
                if (unit(rng) < 0.5) g.add_edge(a, b);
        std::size_t kg = 0, ko = 0;
        const auto greedy = g.greedy_clique_partition(&kg);
        g.min_clique_partition(&ko);
        EXPECT_GE(kg, ko);
        // Each greedy class is a clique.
        std::vector<std::vector<std::size_t>> classes(kg);
        for (std::size_t v = 0; v < n; ++v) classes[greedy[v]].push_back(v);
        for (const auto& cl : classes) EXPECT_TRUE(g.is_clique(cl));
    }
}

} // namespace
