// Tests of the static-analysis subsystem (src/analysis): golden diagnostic
// files, whole-suite cleanliness, fuzzing, the contract checker, and the
// renderers. Golden files live in tests/lint/, one per diagnostic code, and
// carry their expectations inline:
//
//   # expect: SBD009 warning 5
//
// meaning the linter must emit exactly the declared (code, severity, line)
// multiset for that file — no more, no less.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/lint.hpp"
#include "core/compiler.hpp"
#include "core/contract.hpp"
#include "core/sdg.hpp"
#include "sbd/text_format.hpp"
#include "suite/models.hpp"
#include "suite/random_models.hpp"

namespace fs = std::filesystem;
using namespace sbd;

namespace {

using Expectation = std::tuple<std::string, std::string, int>; // code, severity, line

std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// Extracts "# expect: CODE severity LINE" directives; malformed directives
// are reported through `bad` so callers can fail loudly.
std::vector<Expectation> parse_expectations(const std::string& text, std::string* bad = nullptr) {
    std::vector<Expectation> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const auto pos = line.find("# expect:");
        if (pos == std::string::npos) continue;
        std::istringstream fields(line.substr(pos + 9));
        std::string code, severity;
        int at_line = 0;
        fields >> code >> severity >> at_line;
        if (!fields) {
            if (bad) *bad = line;
            continue;
        }
        out.emplace_back(code, severity, at_line);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Expectation> actual_of(const analysis::LintReport& report) {
    std::vector<Expectation> out;
    for (const auto& d : report.diagnostics)
        out.emplace_back(d.code, analysis::to_string(d.severity), static_cast<int>(d.loc.line));
    std::sort(out.begin(), out.end());
    return out;
}

std::string render_expectations(const std::vector<Expectation>& v) {
    std::ostringstream os;
    for (const auto& [code, sev, line] : v)
        os << "  " << code << " " << sev << " line " << line << "\n";
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Golden diagnostic files: every code in the catalog that a .sbd file can
// trigger has exactly one malformed model under tests/lint/, and the linter
// reproduces the declared diagnostics exactly.

TEST(LintGolden, EveryGoldenFileMatchesItsExpectations) {
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(SBD_LINT_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        ++files;
        SCOPED_TRACE(entry.path().filename().string());
        std::string bad;
        const auto expected = parse_expectations(slurp(entry.path()), &bad);
        EXPECT_TRUE(bad.empty()) << "malformed expectation: " << bad;
        EXPECT_FALSE(expected.empty()) << "golden file declares no '# expect:' lines";

        const auto report = analysis::lint_file(entry.path().string());
        const auto actual = actual_of(report);
        EXPECT_EQ(actual, expected) << "expected:\n"
                                    << render_expectations(expected) << "actual:\n"
                                    << render_expectations(actual) << "rendered:\n"
                                    << analysis::render_text(report);
    }
    // One golden per .sbd-expressible code: SBD001..SBD018 plus the deep
    // diagnostics SBD022..SBD028.
    EXPECT_GE(files, 25u);
}

// Every code SBD001..SBD018 and SBD022..SBD028 is covered by some golden
// file (SBD019/SBD020 cannot be produced by any .sbd input — the compiler
// is sound — and are exercised directly against the contract checker
// below; SBD021 needs an injected SAT budget and is covered by the chaos
// tests).
TEST(LintGolden, CatalogCoverage) {
    std::vector<std::string> seen;
    for (const auto& entry : fs::directory_iterator(SBD_LINT_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        for (const auto& [code, sev, line] : parse_expectations(slurp(entry.path())))
            seen.push_back(code);
    }
    for (int n = 1; n <= 28; ++n) {
        if (n >= 19 && n <= 21) continue;
        char code[8];
        std::snprintf(code, sizeof code, "SBD%03d", n);
        EXPECT_NE(std::find(seen.begin(), seen.end(), code), seen.end())
            << "no golden file covers " << code;
    }
}

// ---------------------------------------------------------------------------
// Shipped models are clean: no errors, no warnings.

TEST(LintModels, AllShippedModelsLintClean) {
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(SBD_MODELS_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        ++files;
        const auto report = analysis::lint_file(entry.path().string());
        EXPECT_TRUE(report.diagnostics.empty()) << entry.path().filename().string() << ":\n"
                                                << analysis::render_text(report);
    }
    EXPECT_GE(files, 5u);
}

// The in-memory demo suite, serialized and re-linted, is error-free.
TEST(LintModels, DemoSuiteLintsClean) {
    for (const auto& m : suite::demo_suite()) {
        const auto& macro = static_cast<const MacroBlock&>(*m.block);
        const auto report = analysis::lint_string(text::to_sbd(macro), {}, m.name);
        EXPECT_FALSE(report.has_errors()) << m.name << ":\n" << analysis::render_text(report);
    }
}

// ---------------------------------------------------------------------------
// Fuzz: random hierarchies are well-formed by construction, so the linter
// must never report an *error* on them (dangling-output warnings are fair
// game — the generator wires outputs lazily).

TEST(LintFuzz, RandomModelsNeverProduceErrors) {
    suite::RandomModelParams params;
    params.depth = 3;
    params.subs_per_level = 4;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        std::mt19937_64 rng(seed);
        const auto model = suite::random_model(rng, params);
        const auto report =
            analysis::lint_string(text::to_sbd(*model), {}, "seed-" + std::to_string(seed));
        EXPECT_FALSE(report.has_errors()) << "seed " << seed << ":\n"
                                          << analysis::render_text(report);
    }
}

// ---------------------------------------------------------------------------
// Method directives.

TEST(LintDirective, MethodDirectiveParsing) {
    EXPECT_EQ(analysis::method_directive("# lint-method: monolithic\nblock P {}\n"),
              codegen::Method::Monolithic);
    EXPECT_EQ(analysis::method_directive("  #   lint-method:   step-get  \n"),
              codegen::Method::StepGet);
    EXPECT_EQ(analysis::method_directive("# lint-method: disjoint-sat\n"),
              codegen::Method::DisjointSat);
    EXPECT_EQ(analysis::method_directive("block P {}\n"), std::nullopt);
    EXPECT_EQ(analysis::method_directive("# lint-method: bogus\n"), std::nullopt);
}

// The directive flips the verdict: under the default (dynamic) method the
// thermostat feedback diagram is fine; under a monolithic directive the
// same text reports a false cycle (SBD013), not a true one (SBD012).
TEST(LintDirective, DirectiveSelectsFalseCycleMethod) {
    const std::string path = std::string(SBD_MODELS_DIR) + "/thermostat.sbd";
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());

    const auto clean = analysis::lint_string(text);
    EXPECT_FALSE(clean.has_errors()) << analysis::render_text(clean);

    const auto rejected = analysis::lint_string("# lint-method: monolithic\n" + text);
    ASSERT_TRUE(rejected.has_errors()) << analysis::render_text(rejected);
    bool saw_false_cycle = false;
    for (const auto& d : rejected.diagnostics) {
        EXPECT_NE(d.code, "SBD012") << "flat-acyclic diagram misreported as a true cycle";
        if (d.code == "SBD013") {
            saw_false_cycle = true;
            // The witness and the accepting alternatives ride along as notes.
            ASSERT_GE(d.notes.size(), 2u);
            EXPECT_NE(d.notes[0].find("cycle witness:"), std::string::npos) << d.notes[0];
            EXPECT_NE(d.notes[1].find("dynamic"), std::string::npos) << d.notes[1];
        }
    }
    EXPECT_TRUE(saw_false_cycle) << analysis::render_text(rejected);
}

// ---------------------------------------------------------------------------
// Renderers.

TEST(LintRender, JsonShape) {
    const std::string bad = "block P {\n"
                            "  inputs x\n"
                            "  outputs y\n"
                            "  sub G Gain 2\n"
                            "  connect x G.u\n"
                            "  connect G.y y\n"
                            "  connect x y\n" // y multiply-driven -> SBD004
                            "}\n";
    const auto report = analysis::lint_string(bad, {}, "inline.sbd");
    ASSERT_TRUE(report.has_errors());
    const std::string json = analysis::render_json(report);
    EXPECT_NE(json.find("\"file\": \"inline.sbd\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"code\": \"SBD004\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
    // The display name must survive JSON quoting.
    const auto quoted = analysis::lint_string(bad, {}, "a\"b");
    EXPECT_NE(analysis::render_json(quoted).find("a\\\"b"), std::string::npos);
}

TEST(LintRender, TextShape) {
    const std::string bad = "block P {\n"
                            "  inputs x\n"
                            "  outputs y\n"
                            "}\n";
    const auto report = analysis::lint_string(bad, {}, "t.sbd");
    const std::string txt = analysis::render_text(report);
    EXPECT_NE(txt.find("t.sbd:"), std::string::npos) << txt;
    EXPECT_NE(txt.find("[SBD008]"), std::string::npos) << txt;
    EXPECT_NE(txt.find("error(s)"), std::string::npos) << txt;
}

// ---------------------------------------------------------------------------
// Contract checker. The compiler is sound, so violations are manufactured
// by tampering with a genuinely generated profile; each tampering must be
// flagged with the right kind and fatality.

namespace {

struct ContractFixture {
    BlockPtr root;
    codegen::CompiledSystem sys;
    const MacroBlock* macro = nullptr;
    std::vector<const codegen::Profile*> sub_profiles;
    const codegen::Sdg* sdg = nullptr;
    const codegen::Clustering* clustering = nullptr;
    codegen::Profile profile; // mutable copy for tampering
};

ContractFixture make_fixture(codegen::Method method) {
    ContractFixture f;
    f.root = suite::thermostat();
    f.sys = codegen::compile_hierarchy(f.root, method);
    const auto& cb = f.sys.root();
    f.macro = static_cast<const MacroBlock*>(cb.block.get());
    for (std::size_t s = 0; s < f.macro->num_subs(); ++s)
        f.sub_profiles.push_back(&f.sys.at(*f.macro->sub(s).type).profile);
    f.sdg = &*cb.sdg;
    f.clustering = &*cb.clustering;
    f.profile = cb.profile;
    return f;
}

std::vector<codegen::ContractIssue> recheck(const ContractFixture& f) {
    return codegen::check_profile_contract(*f.macro, f.sub_profiles, *f.sdg, *f.clustering,
                                           f.profile);
}

bool has_kind(const std::vector<codegen::ContractIssue>& issues,
              codegen::ContractIssue::Kind kind, bool fatal) {
    return std::any_of(issues.begin(), issues.end(), [&](const codegen::ContractIssue& i) {
        return i.kind == kind && i.fatal == fatal;
    });
}

} // namespace

TEST(Contract, GeneratedProfilesAreClean) {
    for (const auto method :
         {codegen::Method::StepGet, codegen::Method::Dynamic, codegen::Method::DisjointGreedy,
          codegen::Method::DisjointSat, codegen::Method::Singletons}) {
        auto f = make_fixture(method);
        const auto issues = recheck(f);
        EXPECT_TRUE(issues.empty()) << "method " << codegen::to_string(method) << ": "
                                    << issues.size() << " finding(s), first: "
                                    << (issues.empty() ? "" : issues.front().message);
    }
}

TEST(Contract, MissingReadIsFatal) {
    auto f = make_fixture(codegen::Method::Singletons);
    bool tampered = false;
    for (auto& fn : f.profile.functions) {
        if (!fn.reads.empty()) {
            fn.reads.erase(fn.reads.begin());
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered);
    const auto issues = recheck(f);
    EXPECT_TRUE(has_kind(issues, codegen::ContractIssue::Kind::MissingRead, true))
        << (issues.empty() ? "no findings" : issues.front().message);
    EXPECT_TRUE(codegen::any_fatal(issues));
}

TEST(Contract, ExtraReadIsFatal) {
    auto f = make_fixture(codegen::Method::Singletons);
    bool tampered = false;
    for (auto& fn : f.profile.functions) {
        for (std::size_t i = 0; i < f.macro->num_inputs(); ++i) {
            if (std::find(fn.reads.begin(), fn.reads.end(), i) == fn.reads.end()) {
                fn.reads.insert(std::lower_bound(fn.reads.begin(), fn.reads.end(), i), i);
                tampered = true;
                break;
            }
        }
        if (tampered) break;
    }
    ASSERT_TRUE(tampered) << "every function already reads every input";
    const auto issues = recheck(f);
    EXPECT_TRUE(has_kind(issues, codegen::ContractIssue::Kind::ExtraRead, true));
}

TEST(Contract, WrongWriteIsFatal) {
    auto f = make_fixture(codegen::Method::Singletons);
    ASSERT_GE(f.profile.functions.size(), 2u);
    // Move output 0 from its true writer to some other function.
    const auto writer = f.profile.writer_of_output(0);
    ASSERT_GE(writer, 0);
    auto& from = f.profile.functions[static_cast<std::size_t>(writer)];
    from.writes.erase(std::find(from.writes.begin(), from.writes.end(), 0u));
    auto& to = f.profile.functions[writer == 0 ? 1 : 0];
    to.writes.insert(to.writes.begin(), 0u);
    const auto issues = recheck(f);
    EXPECT_TRUE(has_kind(issues, codegen::ContractIssue::Kind::WrongWrite, true));
}

TEST(Contract, MissingOrderIsFatal) {
    auto f = make_fixture(codegen::Method::Singletons);
    ASSERT_FALSE(f.profile.pdg_edges.empty())
        << "fixture has no call-order constraints to delete";
    f.profile.pdg_edges.clear();
    const auto issues = recheck(f);
    EXPECT_TRUE(has_kind(issues, codegen::ContractIssue::Kind::MissingOrder, true));
}

TEST(Contract, UnjustifiedPdgEdgeIsNonFatal) {
    auto f = make_fixture(codegen::Method::Singletons);
    ASSERT_FALSE(f.profile.pdg_edges.empty());
    // Reverse an existing edge: in an acyclic SDG no dataflow backs it.
    const auto [a, b] = f.profile.pdg_edges.front();
    f.profile.pdg_edges.emplace_back(b, a);
    const auto issues = recheck(f);
    EXPECT_TRUE(has_kind(issues, codegen::ContractIssue::Kind::UnjustifiedPdgEdge, false));
    EXPECT_FALSE(codegen::any_fatal(issues));
}

TEST(Contract, StructureMismatchIsFatal) {
    auto f = make_fixture(codegen::Method::Dynamic);
    ASSERT_FALSE(f.profile.functions.empty());
    f.profile.functions.pop_back();
    const auto issues = recheck(f);
    EXPECT_TRUE(has_kind(issues, codegen::ContractIssue::Kind::Structure, true));
}

// ---------------------------------------------------------------------------
// The verify_contracts gate: compiling the whole demo suite (and a batch of
// random hierarchies) with the gate armed never throws — the generated
// profiles honour the contract under every method that accepts the model.

TEST(Contract, VerifyGatePassesOnDemoSuite) {
    codegen::ClusterOptions opts;
    opts.verify_contracts = true;
    for (const auto& m : suite::demo_suite()) {
        for (const auto method :
             {codegen::Method::Monolithic, codegen::Method::StepGet, codegen::Method::Dynamic,
              codegen::Method::DisjointGreedy, codegen::Method::DisjointSat,
              codegen::Method::Singletons}) {
            try {
                codegen::compile_hierarchy(m.block, method, opts);
            } catch (const codegen::SdgCycleError&) {
                // Legitimate modular rejection (false cycle) — not a
                // contract violation; std::logic_error would propagate
                // and fail the test.
            }
        }
    }
}

TEST(Contract, VerifyGatePassesOnRandomModels) {
    codegen::ClusterOptions opts;
    opts.verify_contracts = true;
    suite::RandomModelParams params;
    params.depth = 3;
    for (std::uint64_t seed = 100; seed < 108; ++seed) {
        std::mt19937_64 rng(seed);
        const auto model = suite::random_model(rng, params);
        for (const auto method : {codegen::Method::Dynamic, codegen::Method::DisjointGreedy,
                                  codegen::Method::Singletons}) {
            try {
                codegen::compile_hierarchy(model, method, opts);
            } catch (const codegen::SdgCycleError&) {
            }
        }
    }
}
