// Tests of the sbd-serve subsystem (src/serve): the SBDS wire protocol
// (golden frames, truncation/corruption rejection, payload bounds), the
// loopback server — whose outputs must be bit-identical to a directly
// driven Engine for every suite model at every worker-thread count — and
// the service semantics: multi-tenant isolation, budget shedding, coded
// errors, snapshots, metrics, and chaos on the accept/dispatch/tick fault
// points (coded rejections only, never a torn instant).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "core/compiler.hpp"
#include "resilience/fault.hpp"
#include "runtime/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::serve;
using Endpoint = sbd::serve::Endpoint; // sbd has another Endpoint type

Endpoint loopback() { return Endpoint::parse("tcp:127.0.0.1:0"); }

std::uint64_t bits_of(double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, 8);
    return b;
}

// ---------------------------------------------------------------------------
// Protocol framing

TEST(Protocol, GoldenFrameLayout) {
    Frame f;
    f.opcode = Op::Tick;
    f.request_id = 0x1122334455667788ULL;
    f.payload = {0x01, 0x02};
    const std::vector<std::uint8_t> bytes = encode_frame(f);
    ASSERT_EQ(bytes.size(), kHeaderSize + 2);
    // Golden header layout — this is the wire format; a change here is a
    // protocol break, not a refactor.
    EXPECT_EQ(bytes[0], 'S');
    EXPECT_EQ(bytes[1], 'B');
    EXPECT_EQ(bytes[2], 'D');
    EXPECT_EQ(bytes[3], 'S');
    EXPECT_EQ(bytes[4], 1); // version lo
    EXPECT_EQ(bytes[5], 0);
    EXPECT_EQ(bytes[6], 4); // opcode = Tick
    EXPECT_EQ(bytes[7], 0);
    EXPECT_EQ(bytes[8], 0); // status = Ok
    EXPECT_EQ(bytes[9], 0);
    EXPECT_EQ(bytes[10], 0); // reserved
    EXPECT_EQ(bytes[11], 0);
    EXPECT_EQ(bytes[12], 2); // payload_len
    EXPECT_EQ(bytes[13], 0);
    EXPECT_EQ(bytes[16], 0x88); // request_id, little-endian
    EXPECT_EQ(bytes[23], 0x11);
    std::uint64_t checksum;
    std::memcpy(&checksum, bytes.data() + 24, 8);
    EXPECT_EQ(checksum, fnv1a64(f.payload));

    Frame out;
    const DecodeResult r = decode_frame(bytes, out);
    ASSERT_EQ(r.status, DecodeStatus::Ok);
    EXPECT_EQ(r.consumed, bytes.size());
    EXPECT_EQ(out.version, kProtocolVersion);
    EXPECT_EQ(out.opcode, Op::Tick);
    EXPECT_EQ(out.status, Err::Ok);
    EXPECT_EQ(out.request_id, f.request_id);
    EXPECT_EQ(out.payload, f.payload);
}

TEST(Protocol, Fnv1a64KnownVectors) {
    const auto h = [](const std::string& s) {
        return fnv1a64({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    };
    EXPECT_EQ(h(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(h("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(h("foobar"), 0x85944171f73967e8ULL);
}

TEST(Protocol, TruncatedPrefixesNeedMore) {
    Frame f;
    f.opcode = Op::Stats;
    f.payload = {1, 2, 3, 4, 5};
    const std::vector<std::uint8_t> bytes = encode_frame(f);
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        Frame out;
        const DecodeResult r =
            decode_frame(std::span(bytes.data(), n), out);
        EXPECT_EQ(r.status, DecodeStatus::NeedMore) << "prefix length " << n;
        EXPECT_EQ(r.consumed, 0u);
    }
}

TEST(Protocol, CorruptionIsCoded) {
    Frame f;
    f.opcode = Op::CreateInstances;
    f.payload = {9, 9, 9};
    std::vector<std::uint8_t> bytes = encode_frame(f);
    Frame out;

    std::vector<std::uint8_t> bad = bytes;
    bad[0] = 'X';
    EXPECT_EQ(decode_frame(bad, out).status, DecodeStatus::BadMagic);

    bad = bytes;
    bad[4] = 99;
    EXPECT_EQ(decode_frame(bad, out).status, DecodeStatus::BadVersion);

    bad = bytes;
    const std::uint32_t huge = kMaxPayload + 1;
    std::memcpy(bad.data() + 12, &huge, 4);
    EXPECT_EQ(decode_frame(bad, out).status, DecodeStatus::Oversized);

    bad = bytes;
    bad[kHeaderSize] ^= 0xFF; // flip a payload byte: checksum must catch it
    EXPECT_EQ(decode_frame(bad, out).status, DecodeStatus::BadChecksum);
}

TEST(Protocol, PayloadReaderBounds) {
    const std::vector<std::uint8_t> three = {1, 2, 3};
    PayloadReader r(three);
    EXPECT_THROW(r.u32(), ServeError);
    try {
        PayloadReader r2(three);
        r2.u32();
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), Err::BadPayload);
    }
    // A string whose declared length exceeds the buffer must throw, not read.
    PayloadWriter w;
    w.u32(1000);
    const std::vector<std::uint8_t> lying = w.take();
    PayloadReader r3(lying);
    EXPECT_THROW(r3.str(), ServeError);
    // Trailing garbage fails the full-consumption check.
    PayloadReader r4(three);
    r4.u16();
    EXPECT_THROW(r4.done(), ServeError);
}

TEST(Protocol, DoublesTravelBitExact) {
    const double values[] = {0.0, -0.0, 5e-324, std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(), 1.0 / 3.0};
    PayloadWriter w;
    for (const double v : values) w.f64(v);
    Frame f;
    f.payload = w.take();
    const std::vector<std::uint8_t> bytes = encode_frame(f);
    Frame out;
    ASSERT_EQ(decode_frame(bytes, out).status, DecodeStatus::Ok);
    PayloadReader r(out.payload);
    for (const double v : values) EXPECT_EQ(bits_of(r.f64()), bits_of(v));
    r.done();
}

TEST(Protocol, EndpointParsing) {
    const Endpoint tcp = Endpoint::parse("tcp:127.0.0.1:7070");
    EXPECT_FALSE(tcp.is_unix);
    EXPECT_EQ(tcp.host, "127.0.0.1");
    EXPECT_EQ(tcp.port, 7070);
    EXPECT_EQ(tcp.to_string(), "tcp:127.0.0.1:7070");
    const Endpoint ux = Endpoint::parse("unix:/tmp/s.sock");
    EXPECT_TRUE(ux.is_unix);
    EXPECT_EQ(ux.path, "/tmp/s.sock");
    EXPECT_THROW(Endpoint::parse("http:foo"), std::invalid_argument);
    EXPECT_THROW(Endpoint::parse("tcp:localhost"), std::invalid_argument);
    EXPECT_THROW(Endpoint::parse("tcp:h:99999"), std::invalid_argument);
    EXPECT_THROW(Endpoint::parse("unix:"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Loopback differential gate: server outputs vs. a directly driven Engine,
// bit-exact for every suite model, at 1 and 4 engine worker threads.

TEST(ServeLoopback, BitExactAcrossSuiteAndThreads) {
    constexpr std::size_t kInstances = 6;
    constexpr std::size_t kInstants = 20;
    for (const suite::NamedModel& m : suite::demo_suite()) {
        const codegen::CompiledSystem sys =
            codegen::compile_hierarchy(m.block, codegen::Method::Dynamic);
        const std::size_t nin = m.block->num_inputs();
        const std::size_t nout = m.block->num_outputs();

        // Reference: one single-threaded engine, driven directly.
        runtime::EngineConfig ecfg;
        ecfg.capacity = kInstances;
        runtime::Engine ref(sys, m.block, ecfg);
        const std::vector<runtime::InstanceId> ref_ids = ref.create(kInstances);

        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            ServerConfig cfg;
            cfg.endpoint = loopback();
            cfg.shards = 2;
            cfg.shard_capacity = kInstances; // deliberately more than needed
            cfg.engine_threads = threads;
            Server server(sys, m.block, cfg);
            server.start();
            Client client = Client::connect(server.endpoint());
            const std::vector<WireHandle> handles =
                client.create_instances(1, kInstances);
            ASSERT_EQ(handles.size(), kInstances) << m.name;

            std::vector<runtime::LcgInputSource> srv_src, ref_src;
            for (std::size_t i = 0; i < kInstances; ++i) {
                srv_src.emplace_back(100 + i);
                ref_src.emplace_back(100 + i);
            }
            std::vector<double> rows(kInstances * nin);
            for (std::size_t t = 0; t < kInstants; ++t) {
                for (std::size_t i = 0; i < kInstances; ++i) {
                    srv_src[i].fill(std::span(rows).subspan(i * nin, nin));
                    ref_src[i].fill(ref.pool().inputs(ref_ids[i]));
                }
                if (nin != 0) client.post_inputs(1, handles, rows);
                client.tick(1, 1);
                ref.tick();
                const std::vector<double> got = client.read_outputs(1, handles);
                ASSERT_EQ(got.size(), kInstances * nout);
                for (std::size_t i = 0; i < kInstances; ++i) {
                    const std::span<const double> want = ref.pool().outputs(ref_ids[i]);
                    for (std::size_t o = 0; o < nout; ++o)
                        ASSERT_EQ(bits_of(got[i * nout + o]), bits_of(want[o]))
                            << m.name << " threads=" << threads << " t=" << t
                            << " instance=" << i << " output=" << o;
                }
            }
            client.shutdown(1);
            server.wait();
            // Rewind the reference for the next thread count.
            for (const runtime::InstanceId id : ref_ids) ref.pool().reset(id);
        }
    }
}

TEST(ServeLoopback, UnixSocketRoundTrip) {
    const auto m = suite::thermostat();
    const codegen::CompiledSystem sys =
        codegen::compile_hierarchy(m, codegen::Method::Dynamic);
    const std::string path = testing::TempDir() + "sbd_serve_test.sock";
    ServerConfig cfg;
    cfg.endpoint = Endpoint::parse("unix:" + path);
    Server server(sys, m, cfg);
    server.start();
    Client client = Client::connect(server.endpoint());
    const std::vector<WireHandle> handles = client.create_instances(1, 2);
    client.tick(1, 3);
    EXPECT_EQ(server.ticks(), 3u);
    const std::vector<double> out = client.read_outputs(1, handles);
    EXPECT_EQ(out.size(), 2 * m->num_outputs());
    client.shutdown(1);
    server.wait();
}

TEST(ServeLoopback, UnixSocketStaleFileIsReclaimed) {
    // A server that died without unlinking leaves a socket file nobody
    // answers. The next Listener must probe it, find it dead and bind over
    // it instead of failing with EADDRINUSE (the systemd-restart scenario).
    const std::string path = testing::TempDir() + "sbd_serve_stale.sock";
    ::unlink(path.c_str());
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
        ::close(fd); // crash surrogate: file stays, listener is gone
    }
    ASSERT_EQ(::access(path.c_str(), F_OK), 0);
    Listener fresh(Endpoint::parse("unix:" + path));
    EXPECT_TRUE(fresh.valid());
}

TEST(ServeLoopback, UnixSocketLiveListenerIsNotHijacked) {
    // The flip side: a socket with a live listener behind it must refuse a
    // second bind instead of silently unlinking it and stranding the first
    // server's clients.
    const std::string path = testing::TempDir() + "sbd_serve_live.sock";
    ::unlink(path.c_str());
    Listener first(Endpoint::parse("unix:" + path));
    ASSERT_TRUE(first.valid());
    try {
        Listener second(Endpoint::parse("unix:" + path));
        FAIL() << "binding over a live unix socket must throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("address in use"), std::string::npos);
    }
    // The probe must not have destroyed the live listener's socket file.
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
}

// ---------------------------------------------------------------------------
// Service semantics

class ServeFixture : public ::testing::Test {
protected:
    void start(ServerConfig cfg = {}) {
        model_ = suite::thermostat();
        sys_ = codegen::compile_hierarchy(model_, codegen::Method::Dynamic);
        cfg.endpoint = loopback();
        if (cfg.shards == 1 && cfg.shard_capacity == 1024) {
            cfg.shards = 2;
            cfg.shard_capacity = 8;
        }
        server_ = std::make_unique<Server>(sys_, model_, cfg);
        server_->start();
    }
    Client connect() { return Client::connect(server_->endpoint()); }

    BlockPtr model_;
    codegen::CompiledSystem sys_;
    std::unique_ptr<Server> server_;
};

TEST_F(ServeFixture, TenantsAreIsolated) {
    start();
    Client a = connect();
    Client b = connect();
    const std::vector<WireHandle> ha = a.create_instances(1, 2);
    const std::vector<WireHandle> hb = b.create_instances(2, 2);
    // Tenant 2 cannot read, write, snapshot or destroy tenant 1's handles.
    try {
        b.read_outputs(2, ha);
        FAIL() << "foreign read was not rejected";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), Err::BadHandle);
    }
    EXPECT_THROW(b.destroy_instances(2, ha), ServeError);
    EXPECT_THROW(b.snapshot(2, ha[0]), ServeError);
    // And the failed destroy really destroyed nothing.
    EXPECT_EQ(a.read_outputs(1, ha).size(), 2 * model_->num_outputs());
    a.destroy_instances(1, ha);
    b.destroy_instances(2, hb);
}

TEST_F(ServeFixture, StaleHandlesAreRejectedAfterChurn) {
    start();
    Client c = connect();
    const std::vector<WireHandle> first = c.create_instances(1, 2);
    c.destroy_instances(1, first);
    const std::vector<WireHandle> second = c.create_instances(1, 2);
    // Same slots may be recycled, but the generation moved on.
    try {
        c.read_outputs(1, first);
        FAIL() << "stale handle was not rejected";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), Err::BadHandle);
    }
    EXPECT_EQ(c.read_outputs(1, second).size(), 2 * model_->num_outputs());
}

TEST_F(ServeFixture, TenantBudgetShedsWhileOthersStayBitExact) {
    ServerConfig cfg;
    cfg.tenant_max_instances = 3;
    start(cfg);

    // Reference for the well-behaved tenant.
    runtime::EngineConfig ecfg;
    ecfg.capacity = 2;
    runtime::Engine ref(sys_, model_, ecfg);
    const std::vector<runtime::InstanceId> ref_ids = ref.create(2);

    Client good = connect();
    Client greedy = connect();
    const std::vector<WireHandle> hg = good.create_instances(1, 2);

    // The greedy tenant is shed with a coded rejection...
    try {
        greedy.create_instances(2, 10);
        FAIL() << "over-budget create was not shed";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), Err::TenantBudget);
    }
    // ...and nothing was partially created for it.
    EXPECT_EQ(server_->stats_view().live_instances, 2u);
    EXPECT_GE(server_->stats_view().shed, 1u);

    // The good tenant's results are unaffected: bit-exact vs. the reference.
    const std::size_t nin = model_->num_inputs();
    const std::size_t nout = model_->num_outputs();
    std::vector<runtime::LcgInputSource> sa, sb;
    for (std::size_t i = 0; i < 2; ++i) {
        sa.emplace_back(7 + i);
        sb.emplace_back(7 + i);
    }
    std::vector<double> rows(2 * nin);
    for (std::size_t t = 0; t < 10; ++t) {
        for (std::size_t i = 0; i < 2; ++i) {
            sa[i].fill(std::span(rows).subspan(i * nin, nin));
            sb[i].fill(ref.pool().inputs(ref_ids[i]));
        }
        good.post_inputs(1, hg, rows);
        good.tick(1, 1);
        ref.tick();
        const std::vector<double> got = good.read_outputs(1, hg);
        for (std::size_t i = 0; i < 2; ++i)
            for (std::size_t o = 0; o < nout; ++o)
                ASSERT_EQ(bits_of(got[i * nout + o]),
                          bits_of(ref.pool().outputs(ref_ids[i])[o]));
        // More shed attempts mid-run must not disturb anyone.
        EXPECT_THROW(greedy.create_instances(2, 10), ServeError);
    }
}

TEST_F(ServeFixture, PoolFullIsCoded) {
    ServerConfig cfg;
    cfg.shards = 2;
    cfg.shard_capacity = 2; // 4 slots total
    start(cfg);
    Client c = connect();
    (void)c.create_instances(1, 4);
    try {
        c.create_instances(1, 1);
        FAIL() << "create beyond capacity was not rejected";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), Err::PoolFull);
    }
}

TEST_F(ServeFixture, SnapshotMatchesReferenceState) {
    start();
    runtime::EngineConfig ecfg;
    ecfg.capacity = 1;
    runtime::Engine ref(sys_, model_, ecfg);
    const runtime::InstanceId rid = ref.create();

    Client c = connect();
    const std::vector<WireHandle> h = c.create_instances(1, 1);
    const std::size_t nin = model_->num_inputs();
    runtime::LcgInputSource src_a(42), src_b(42);
    std::vector<double> row(nin);
    for (std::size_t t = 0; t < 8; ++t) {
        src_a.fill(row);
        src_b.fill(ref.pool().inputs(rid));
        c.post_inputs(1, h, row);
        c.tick(1, 1);
        ref.tick();
    }
    const std::vector<double> blob = c.snapshot(1, h[0]);
    const std::vector<double> want = ref.pool().snapshot_state(rid);
    ASSERT_EQ(blob.size(), want.size());
    for (std::size_t i = 0; i < blob.size(); ++i)
        EXPECT_EQ(bits_of(blob[i]), bits_of(want[i])) << "state word " << i;
}

TEST_F(ServeFixture, BadRequestsGetCodedErrors) {
    start();
    Client c = connect();
    // Unknown opcode.
    Frame r = c.call_raw(static_cast<Op>(99), {});
    EXPECT_EQ(r.status, Err::BadOpcode);
    // Malformed payload for a known opcode (truncated).
    r = c.call_raw(Op::CreateInstances, {1, 2, 3});
    EXPECT_EQ(r.status, Err::BadPayload);
    // Trailing garbage after a well-formed payload.
    PayloadWriter w;
    w.u64(1);
    w.u32(1);
    w.u32(0xDEAD);
    r = c.call_raw(Op::CreateInstances, w.take());
    EXPECT_EQ(r.status, Err::BadPayload);
    // The connection survives coded rejections.
    EXPECT_EQ(c.create_instances(1, 1).size(), 1u);
}

TEST_F(ServeFixture, FramingViolationsGetCodedRepliesOverTheWire) {
    start();
    {
        // Garbage magic: the server answers BAD_FRAME, then drops the stream.
        Conn raw = Conn::connect(server_->endpoint());
        const std::uint8_t junk[kHeaderSize] = {'J', 'U', 'N', 'K'};
        raw.send_all(junk);
        const std::optional<Frame> resp = raw.recv_frame();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, Err::BadFrame);
        EXPECT_FALSE(raw.recv_frame().has_value()); // EOF: stream dropped
    }
    {
        // Corrupt checksum on an otherwise valid frame.
        Frame f;
        f.opcode = Op::Stats;
        PayloadWriter w;
        w.u64(1);
        f.payload = w.take();
        std::vector<std::uint8_t> bytes = encode_frame(f);
        bytes[kHeaderSize] ^= 0xFF;
        Conn raw = Conn::connect(server_->endpoint());
        raw.send_all(bytes);
        const std::optional<Frame> resp = raw.recv_frame();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, Err::BadFrame);
    }
    {
        // Wrong protocol version.
        Frame f;
        f.opcode = Op::Stats;
        std::vector<std::uint8_t> bytes = encode_frame(f);
        bytes[4] = 42;
        Conn raw = Conn::connect(server_->endpoint());
        raw.send_all(bytes);
        const std::optional<Frame> resp = raw.recv_frame();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, Err::BadVersion);
    }
    // The server is still healthy after all that.
    Client c = connect();
    EXPECT_EQ(c.create_instances(1, 1).size(), 1u);
}

TEST_F(ServeFixture, StatsAndHttpMetrics) {
    start();
    Client c = connect();
    (void)c.create_instances(1, 3);
    c.tick(1, 5);
    const std::string text = c.stats(1);
    EXPECT_NE(text.find("sbd_serve_ticks_total 5"), std::string::npos) << text;
    EXPECT_NE(text.find("sbd_serve_requests_total"), std::string::npos);
    EXPECT_NE(text.find("sbd_serve_shard_instances"), std::string::npos);

    // The same registry over HTTP: a plain GET on the protocol port.
    Conn http = Conn::connect(server_->endpoint());
    const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
    http.send_all({reinterpret_cast<const std::uint8_t*>(req.data()), req.size()});
    std::string body;
    std::uint8_t buf[4096];
    for (;;) {
        const std::size_t n = http.recv_some(buf);
        if (n == 0) break;
        body.append(reinterpret_cast<const char*>(buf), n);
    }
    EXPECT_NE(body.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(body.find("sbd_serve_ticks_total 5"), std::string::npos);
    // Unknown paths 404 instead of leaking anything.
    Conn http2 = Conn::connect(server_->endpoint());
    const std::string req2 = "GET /secrets HTTP/1.0\r\n\r\n";
    http2.send_all({reinterpret_cast<const std::uint8_t*>(req2.data()), req2.size()});
    std::string body2;
    for (;;) {
        const std::size_t n = http2.recv_some(buf);
        if (n == 0) break;
        body2.append(reinterpret_cast<const char*>(buf), n);
    }
    EXPECT_NE(body2.find("404"), std::string::npos);
}

TEST_F(ServeFixture, ShutdownIsAcknowledgedAndDrains) {
    start();
    Client c = connect();
    c.shutdown(1); // must receive the Ok before the server stops
    server_->wait();
    EXPECT_TRUE(server_->stopping());
    // New connections are refused or dropped once draining.
    EXPECT_THROW(
        {
            Client late = connect();
            late.create_instances(1, 1);
        },
        std::exception);
}

TEST_F(ServeFixture, TickDeadlineRejectsWholeInstants) {
    ServerConfig cfg;
    cfg.tick_deadline_ms = 60000; // never expires on its own...
    start(cfg);
    // ...the fault point forces the verdict deterministically instead: the
    // deadline check before instant 2 reports expired, so the request
    // completes exactly one whole instant and is then rejected coded.
    resilience::ScopedFaultPlan plan(
        resilience::FaultPlan::parse("seed=1;serve.deadline=nth:2"));
    Client c = connect();
    (void)c.create_instances(1, 2);
    try {
        c.tick(1, 5);
        FAIL() << "deadline was not enforced";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), Err::DeadlineExceeded);
    }
    EXPECT_EQ(server_->ticks(), 1u); // one complete instant, never a torn one
    c.tick(1, 1);                    // nth:2 consumed; healthy again
    EXPECT_EQ(server_->ticks(), 2u);
}

// ---------------------------------------------------------------------------
// Chaos: the serve fault points shed coded errors, never crash, never tear.

TEST_F(ServeFixture, DispatchFaultIsCodedAndRecoverable) {
    start();
    resilience::ScopedFaultPlan plan(
        resilience::FaultPlan::parse("seed=3;serve.dispatch=nth:2"));
    Client c = connect();
    const std::vector<WireHandle> h = c.create_instances(1, 1); // hit 1: passes
    try {
        c.tick(1, 1); // hit 2: injected before any shard state is touched
        FAIL() << "dispatch fault was not injected";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), Err::FaultInjected);
    }
    EXPECT_EQ(server_->ticks(), 0u); // nothing advanced
    c.tick(1, 1);                    // hit 3: healthy again
    EXPECT_EQ(server_->ticks(), 1u);
    EXPECT_EQ(c.read_outputs(1, h).size(), model_->num_outputs());
}

TEST_F(ServeFixture, TickFaultNeverTearsAnInstant) {
    start();
    runtime::EngineConfig ecfg;
    ecfg.capacity = 2;
    runtime::Engine ref(sys_, model_, ecfg);
    const std::vector<runtime::InstanceId> rid = ref.create(2);

    Client c = connect();
    const std::vector<WireHandle> h = c.create_instances(1, 2);
    {
        resilience::ScopedFaultPlan plan(
            resilience::FaultPlan::parse("seed=5;serve.tick=nth:1"));
        try {
            c.tick(1, 4);
            FAIL() << "tick fault was not injected";
        } catch (const ServeError& e) {
            EXPECT_EQ(e.code(), Err::FaultInjected);
        }
    }
    // The rejected request advanced nothing: outputs are still the initial
    // zeros, exactly like the untouched reference.
    const std::size_t nout = model_->num_outputs();
    std::vector<double> got = c.read_outputs(1, h);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t o = 0; o < nout; ++o)
            ASSERT_EQ(bits_of(got[i * nout + o]), bits_of(ref.pool().outputs(rid[i])[o]));
    EXPECT_EQ(server_->ticks(), 0u);
    // And the next tick produces exactly instant 1.
    c.tick(1, 1);
    ref.tick();
    got = c.read_outputs(1, h);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t o = 0; o < nout; ++o)
            ASSERT_EQ(bits_of(got[i * nout + o]), bits_of(ref.pool().outputs(rid[i])[o]));
}

TEST_F(ServeFixture, AcceptFaultDropsConnectionCleanly) {
    start();
    resilience::ScopedFaultPlan plan(
        resilience::FaultPlan::parse("seed=9;serve.accept=nth:1"));
    // The first connection is dropped before any request is read: the
    // client observes a closed stream, not a crash or a hang.
    EXPECT_THROW(
        {
            Client victim = connect();
            victim.create_instances(1, 1);
        },
        std::exception);
    // The next connection is served normally.
    Client ok = connect();
    EXPECT_EQ(ok.create_instances(1, 1).size(), 1u);
}

TEST_F(ServeFixture, ConcurrentTenantsUnderChaosStayConsistent) {
    ServerConfig cfg;
    cfg.shards = 2;
    cfg.shard_capacity = 32;
    start(cfg);
    resilience::ScopedFaultPlan plan(
        resilience::FaultPlan::parse("seed=11;serve.dispatch=p:0.15"));
    constexpr std::size_t kTenants = 4;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> coded{0}, okc{0};
    for (std::size_t t = 0; t < kTenants; ++t)
        threads.emplace_back([&, t] {
            Client c = Client::connect(server_->endpoint());
            std::vector<WireHandle> h;
            for (int round = 0; round < 30; ++round) {
                try {
                    if (h.empty()) h = c.create_instances(t + 1, 2);
                    c.tick(t + 1, 1);
                    (void)c.read_outputs(t + 1, h);
                    okc.fetch_add(1);
                } catch (const ServeError&) {
                    coded.fetch_add(1);
                }
            }
        });
    for (std::thread& th : threads) th.join();
    // With p=0.15 over ~hundreds of dispatches both outcomes occur, every
    // failure was coded, and the server is still healthy.
    EXPECT_GT(okc.load(), 0u);
    EXPECT_GT(coded.load(), 0u);
    Client c = connect();
    EXPECT_FALSE(c.stats(0).empty());
}

} // namespace
