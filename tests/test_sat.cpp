#include <gtest/gtest.h>

#include <random>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

namespace {

using sbd::sat::Cnf;
using sbd::sat::Lit;
using sbd::sat::neg;
using sbd::sat::pos;
using sbd::sat::Solver;
using sbd::sat::Var;

/// Exhaustive reference solver for small CNFs.
bool brute_force_sat(const Cnf& cnf) {
    const std::size_t n = cnf.num_vars;
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
        bool all = true;
        for (const auto& clause : cnf.clauses) {
            bool sat = false;
            for (const Lit l : clause)
                if (((mask >> l.var()) & 1) == (l.negated() ? 0u : 1u)) {
                    sat = true;
                    break;
                }
            if (!sat) {
                all = false;
                break;
            }
        }
        if (all) return true;
    }
    return false;
}

Solver from_cnf(const Cnf& cnf) {
    Solver s;
    for (std::size_t v = 0; v < cnf.num_vars; ++v) s.new_var();
    for (const auto& c : cnf.clauses) s.add_clause(c);
    return s;
}

bool model_satisfies(const Solver& s, const Cnf& cnf) {
    for (const auto& clause : cnf.clauses) {
        bool sat = false;
        for (const Lit l : clause)
            if (s.model_value(l.var()) != l.negated()) {
                sat = true;
                break;
            }
        if (!sat) return false;
    }
    return true;
}

TEST(SatSolver, TrivialSat) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_clause({pos(a), pos(b)});
    s.add_clause({neg(a)});
    EXPECT_TRUE(s.solve());
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, TrivialUnsat) {
    Solver s;
    const Var a = s.new_var();
    s.add_clause({pos(a)});
    EXPECT_FALSE(s.add_clause({neg(a)}));
    EXPECT_FALSE(s.solve());
}

TEST(SatSolver, EmptyClauseUnsat) {
    Solver s;
    s.new_var();
    EXPECT_FALSE(s.add_clause(std::span<const Lit>{}));
    EXPECT_FALSE(s.solve());
}

TEST(SatSolver, TautologyIgnored) {
    Solver s;
    const Var a = s.new_var();
    EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
    EXPECT_TRUE(s.solve());
}

TEST(SatSolver, DuplicateLiteralsHandled) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_clause({pos(a), pos(a), pos(b)});
    s.add_clause({neg(a), neg(a)});
    EXPECT_TRUE(s.solve());
    EXPECT_FALSE(s.model_value(a));
}

TEST(SatSolver, NoClausesIsSat) {
    Solver s;
    s.new_var();
    s.new_var();
    EXPECT_TRUE(s.solve());
}

/// Pigeonhole principle PHP(n+1, n) is unsatisfiable — a classic hard
/// UNSAT family exercising learning and restarts.
Cnf pigeonhole(std::size_t pigeons, std::size_t holes) {
    Cnf cnf;
    cnf.num_vars = pigeons * holes;
    const auto var = [&](std::size_t p, std::size_t h) {
        return static_cast<Var>(p * holes + h);
    };
    for (std::size_t p = 0; p < pigeons; ++p) {
        sbd::sat::Clause c;
        for (std::size_t h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
        cnf.add(c);
    }
    for (std::size_t h = 0; h < holes; ++h)
        for (std::size_t p1 = 0; p1 < pigeons; ++p1)
            for (std::size_t p2 = p1 + 1; p2 < pigeons; ++p2)
                cnf.add({neg(var(p1, h)), neg(var(p2, h))});
    return cnf;
}

TEST(SatSolver, PigeonholeUnsat) {
    for (std::size_t n = 2; n <= 5; ++n) {
        Solver s = from_cnf(pigeonhole(n + 1, n));
        EXPECT_FALSE(s.solve()) << "PHP(" << n + 1 << "," << n << ")";
    }
}

TEST(SatSolver, PigeonholeEqualSat) {
    Solver s = from_cnf(pigeonhole(4, 4));
    EXPECT_TRUE(s.solve());
}

Cnf random_3sat(std::mt19937_64& rng, std::size_t vars, std::size_t clauses) {
    Cnf cnf;
    cnf.num_vars = vars;
    std::uniform_int_distribution<Var> pick_var(0, static_cast<Var>(vars - 1));
    std::bernoulli_distribution sign;
    for (std::size_t c = 0; c < clauses; ++c) {
        sbd::sat::Clause clause;
        for (int k = 0; k < 3; ++k) clause.push_back(Lit(pick_var(rng), sign(rng)));
        cnf.add(clause);
    }
    return cnf;
}

struct Random3SatCase {
    std::uint64_t seed;
    std::size_t vars;
    double ratio;
};

class SatRandomTest : public ::testing::TestWithParam<Random3SatCase> {};

TEST_P(SatRandomTest, AgreesWithBruteForceAndModelsAreValid) {
    const auto param = GetParam();
    std::mt19937_64 rng(param.seed);
    for (int iter = 0; iter < 40; ++iter) {
        const auto clauses =
            static_cast<std::size_t>(param.ratio * static_cast<double>(param.vars));
        const Cnf cnf = random_3sat(rng, param.vars, clauses);
        Solver s = from_cnf(cnf);
        const bool got = s.solve();
        EXPECT_EQ(got, brute_force_sat(cnf));
        if (got) { EXPECT_TRUE(model_satisfies(s, cnf)); }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, SatRandomTest,
    ::testing::Values(Random3SatCase{101, 8, 2.0}, Random3SatCase{102, 8, 4.26},
                      Random3SatCase{103, 8, 6.0}, Random3SatCase{104, 12, 4.26},
                      Random3SatCase{105, 14, 3.0}, Random3SatCase{106, 14, 5.5},
                      Random3SatCase{107, 16, 4.26}),
    [](const auto& info) {
        return "seed" + std::to_string(info.param.seed) + "_v" +
               std::to_string(info.param.vars);
    });

TEST(SatSolver, AssumptionsRestrictAndDoNotPersist) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_clause({pos(a), pos(b)});
    const Lit assume_na[] = {neg(a)};
    EXPECT_TRUE(s.solve(assume_na));
    EXPECT_TRUE(s.model_value(b));
    const Lit assume_both[] = {neg(a), neg(b)};
    EXPECT_FALSE(s.solve(assume_both));
    // Solver is still usable and satisfiable without assumptions.
    EXPECT_TRUE(s.solve());
}

TEST(SatSolver, IncrementalClauseAddition) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_clause({pos(a), pos(b)});
    EXPECT_TRUE(s.solve());
    s.add_clause({neg(a)});
    EXPECT_TRUE(s.solve());
    EXPECT_TRUE(s.model_value(b));
    s.add_clause({neg(b)});
    EXPECT_FALSE(s.solve());
}

TEST(SatSolver, StatsArePopulated) {
    std::mt19937_64 rng(55);
    Solver s = from_cnf(random_3sat(rng, 20, 88));
    (void)s.solve();
    EXPECT_GT(s.stats().decisions + s.stats().propagations, 0u);
}

TEST(Dimacs, RoundTrip) {
    std::mt19937_64 rng(42);
    const Cnf cnf = random_3sat(rng, 10, 30);
    const std::string text = to_dimacs(cnf);
    const Cnf back = sbd::sat::parse_dimacs_string(text);
    EXPECT_EQ(back.num_vars, cnf.num_vars);
    ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i) EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

TEST(Dimacs, ParsesCommentsAndHeader) {
    const Cnf cnf = sbd::sat::parse_dimacs_string("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    EXPECT_EQ(cnf.num_vars, 3u);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[0][1].to_dimacs(), -2);
}

TEST(Dimacs, RejectsMalformed) {
    EXPECT_THROW(sbd::sat::parse_dimacs_string("1 2 0\n"), std::runtime_error);
    EXPECT_THROW(sbd::sat::parse_dimacs_string("p cnf 1 1\n5 0\n"), std::runtime_error);
    EXPECT_THROW(sbd::sat::parse_dimacs_string("p cnf 2 2\n1 0\n"), std::runtime_error);
    EXPECT_THROW(sbd::sat::parse_dimacs_string("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(SatSolver, ConflictBudgetThrows) {
    // A hard instance with a tiny budget must hit BudgetExceeded.
    Solver s = from_cnf(pigeonhole(7, 6));
    s.set_conflict_budget(5);
    EXPECT_THROW((void)s.solve(), Solver::BudgetExceeded);
}

} // namespace
