#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "helpers.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

// -------------------------------------------------------- model generator

TEST(RandomModels, AreWellFormedAndFlattenAcyclic) {
    std::mt19937_64 rng(1001);
    for (int iter = 0; iter < 15; ++iter) {
        suite::RandomModelParams params;
        params.depth = 1 + iter % 3;
        params.subs_per_level = 3 + iter % 5;
        const auto m = suite::random_model(rng, params);
        EXPECT_NO_THROW(m->validate());
        EXPECT_TRUE(is_acyclic_diagram(*m)) << iter;
    }
}

// Maximal-reusability methods are never rejected on acyclic models, and
// their generated code reproduces the reference semantics — across random
// hierarchies, methods and input traces.
struct RandomEquivCase {
    std::uint64_t seed;
    std::size_t depth;
    std::size_t subs;
    Method method;
};

class RandomEquivalence : public ::testing::TestWithParam<RandomEquivCase> {};

TEST_P(RandomEquivalence, GeneratedCodeMatchesSimulator) {
    const auto param = GetParam();
    std::mt19937_64 rng(param.seed);
    suite::RandomModelParams params;
    params.depth = param.depth;
    params.subs_per_level = param.subs;
    for (int iter = 0; iter < 6; ++iter) {
        const auto m = suite::random_model(rng, params);
        sbd::testing::expect_equivalent(
            m, param.method, sbd::testing::random_trace(m->num_inputs(), 30, param.seed + iter));
    }
}

std::string case_name(const ::testing::TestParamInfo<RandomEquivCase>& info) {
    std::string s = to_string(info.param.method);
    for (char& c : s)
        if (c == '-') c = '_';
    return "s" + std::to_string(info.param.seed) + "_d" + std::to_string(info.param.depth) +
           "_" + s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomEquivalence,
    ::testing::Values(RandomEquivCase{2001, 1, 6, Method::Dynamic},
                      RandomEquivCase{2002, 2, 5, Method::Dynamic},
                      RandomEquivCase{2003, 3, 4, Method::Dynamic},
                      RandomEquivCase{2004, 2, 5, Method::DisjointSat},
                      RandomEquivCase{2005, 3, 4, Method::DisjointSat},
                      RandomEquivCase{2006, 2, 5, Method::DisjointGreedy},
                      RandomEquivCase{2007, 2, 6, Method::Singletons},
                      RandomEquivCase{2008, 3, 4, Method::Singletons}),
    case_name);

// Monolithic and step-get on random models: when accepted, they too must be
// semantics-preserving (reusability, not correctness, is what they lose).
TEST(RandomEquivalenceLossy, AcceptedImpliesEquivalent) {
    std::mt19937_64 rng(3001);
    suite::RandomModelParams params;
    params.depth = 2;
    params.subs_per_level = 5;
    int accepted = 0;
    for (int iter = 0; iter < 12; ++iter) {
        const auto m = suite::random_model(rng, params);
        for (const Method method : {Method::Monolithic, Method::StepGet}) {
            try {
                sbd::testing::expect_equivalent(
                    m, method, sbd::testing::random_trace(m->num_inputs(), 20, 77 + iter));
                ++accepted;
            } catch (const SdgCycleError&) {
                // expected sometimes: false deps close a cycle upstream
            }
        }
    }
    EXPECT_GT(accepted, 0);
}

// ----------------------------------------------- clustering-level sweeps

TEST(RandomSdgProperties, DynamicNeverAddsFalseDepsAndRespectsBound) {
    std::mt19937_64 rng(4001);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int iter = 0; iter < 60; ++iter) {
        const std::size_t internals = 4 + static_cast<std::size_t>(unit(rng) * 20);
        const std::size_t nin = 1 + static_cast<std::size_t>(unit(rng) * 5);
        const std::size_t nout = 1 + static_cast<std::size_t>(unit(rng) * 5);
        const Sdg sdg = suite::random_flat_sdg(rng, nin, nout, internals, 0.1 + 0.3 * unit(rng));
        const Clustering dyn = cluster_dynamic(sdg);
        EXPECT_TRUE(false_io_dependencies(sdg, dyn).empty()) << iter;
        EXPECT_LE(dyn.num_clusters(), nout + 1) << iter;
        // Synthesized cluster PDG must be acyclic.
        graph::Digraph pdg(dyn.num_clusters());
        for (const auto& [a, b] : cluster_pdg_edges(sdg, dyn))
            pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
        EXPECT_TRUE(pdg.is_acyclic()) << iter;
    }
}

TEST(RandomSdgProperties, GreedyAndSatAreValidSatIsMinimal) {
    std::mt19937_64 rng(4002);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int iter = 0; iter < 25; ++iter) {
        const std::size_t internals = 4 + static_cast<std::size_t>(unit(rng) * 8);
        const Sdg sdg = suite::random_flat_sdg(rng, 3, 3, internals, 0.25);
        const Clustering sat = cluster_disjoint_sat(sdg);
        const Clustering greedy = cluster_disjoint_greedy(sdg);
        EXPECT_TRUE(check_validity(sdg, sat).valid());
        EXPECT_TRUE(check_validity(sdg, greedy).valid());
        EXPECT_LE(sat.num_clusters(), greedy.num_clusters());
    }
}

TEST(RandomSdgProperties, StepGetAndMonolithicAreAlwaysAlmostPartitioning) {
    std::mt19937_64 rng(4003);
    for (int iter = 0; iter < 25; ++iter) {
        const Sdg sdg = suite::random_flat_sdg(rng, 2, 3, 8, 0.3);
        for (const auto& c : {cluster_stepget(sdg), cluster_monolithic(sdg)}) {
            EXPECT_TRUE(c.is_partition(sdg));
            EXPECT_EQ(c.replicated_nodes(sdg), 0u);
        }
    }
}

// ------------------------------------------------ deep shared hierarchies

TEST(RandomModels, DeepHierarchiesAreWellFormedAndCacheFriendly) {
    std::mt19937_64 rng(5001);
    std::uint64_t total_compiles = 0, total_reuses = 0;
    for (int iter = 0; iter < 8; ++iter) {
        suite::DeepModelParams params;
        params.levels = 6 + iter % 3;
        params.types_per_level = 2 + iter % 3;
        params.subs_per_macro = 3 + iter % 2;
        params.clone_probability = iter % 2 == 0 ? 0.0 : 0.25;
        const auto m = suite::random_deep_model(rng, params);
        EXPECT_NO_THROW(m->validate());
        EXPECT_TRUE(is_acyclic_diagram(*m)) << iter;

        Pipeline p{PipelineOptions{}};
        const auto sys = p.compile(m);
        // Depth check: the instance tree really is `levels` macros deep.
        std::size_t depth = 0;
        const Block* cur = m.get();
        while (!cur->is_atomic()) {
            ++depth;
            const auto& macro = static_cast<const MacroBlock&>(*cur);
            const Block* next = nullptr;
            for (std::size_t s = 0; s < macro.num_subs(); ++s)
                if (!macro.sub(s).type->is_atomic()) next = macro.sub(s).type.get();
            if (next == nullptr) break;
            cur = next;
        }
        EXPECT_GE(depth, params.levels) << iter;

        const auto stats = p.stats();
        total_compiles += stats.macro_compiles;
        total_reuses += stats.macro_reuses;
        // Pointer-shared types deduplicate at discovery (one task per
        // Block*); structural clones are invisible to that and must be
        // caught by the fingerprint cache instead.
        if (params.clone_probability > 0.0) EXPECT_GT(stats.macro_reuses, 0u) << iter;

        // Semantics survive the depth: generated code == reference
        // simulator on the flattened diagram.
        sbd::testing::expect_equivalent(
            m, Method::Dynamic, sbd::testing::random_trace(m->num_inputs(), 10, 5100 + iter));
    }
    const double rate = static_cast<double>(total_reuses) /
                        static_cast<double>(total_compiles + total_reuses);
    std::printf("deep-hierarchy cache hit rate over sweep: %.3f (%llu reuses, %llu compiles)\n",
                rate, static_cast<unsigned long long>(total_reuses),
                static_cast<unsigned long long>(total_compiles));
    EXPECT_GT(rate, 0.3);
}

// Codegen accepts every method's clustering on random hierarchical models
// without violating its internal invariants (backward closure, acyclic
// PDG), which are checked with throws inside generate_code.
TEST(RandomSdgProperties, CompileHierarchyNeverViolatesInvariants) {
    std::mt19937_64 rng(4004);
    suite::RandomModelParams params;
    params.depth = 2;
    params.subs_per_level = 6;
    for (int iter = 0; iter < 10; ++iter) {
        const auto m = suite::random_model(rng, params);
        for (const Method method :
             {Method::Dynamic, Method::DisjointGreedy, Method::Singletons}) {
            EXPECT_NO_THROW((void)compile_hierarchy(m, method)) << iter;
        }
    }
}

} // namespace
