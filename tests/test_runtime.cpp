// Tests of the concurrent runtime engine (src/runtime): instance pools with
// slot reuse, batched multi-threaded stepping, and trace record/replay.
//
// The load-bearing property throughout: everything the engine computes is
// bit-identical to the single-instance interpreter and to the reference
// simulator on the flattened diagram, for every clustering method and every
// thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/compiler.hpp"
#include "runtime/engine.hpp"
#include "runtime/trace.hpp"
#include "sbd/text_format.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;
using namespace sbd::runtime;

constexpr Method kAllMethods[] = {Method::Monolithic,     Method::StepGet,
                                  Method::Dynamic,        Method::DisjointSat,
                                  Method::DisjointGreedy, Method::Singletons};

/// Runs `instances` engine-hosted copies of `root` for `instants` ticks,
/// refilling every instance's inputs each tick from its own seeded stream,
/// and returns all recorded traces in instance order.
std::vector<Trace> engine_traces(const CompiledSystem& sys,
                                 const std::shared_ptr<const MacroBlock>& root,
                                 std::size_t instances, std::size_t instants,
                                 std::size_t threads, std::size_t chunk = 64) {
    EngineConfig cfg;
    cfg.capacity = instances;
    cfg.threads = threads;
    cfg.chunk = chunk;
    Engine engine(sys, root, cfg);
    const auto ids = engine.create(instances);
    std::vector<LcgInputSource> sources;
    std::vector<TraceRecorder> recorders;
    for (std::size_t i = 0; i < instances; ++i) {
        sources.emplace_back(1 + i);
        recorders.emplace_back(root->num_inputs(), root->num_outputs());
    }
    for (std::size_t t = 0; t < instants; ++t) {
        for (std::size_t i = 0; i < instances; ++i)
            sources[i].fill(engine.pool().inputs(ids[i]));
        engine.tick();
        for (std::size_t i = 0; i < instances; ++i)
            recorders[i].record(engine.pool().inputs(ids[i]), engine.pool().outputs(ids[i]));
    }
    EXPECT_EQ(engine.instants(), instants);
    std::vector<Trace> traces;
    for (auto& r : recorders) traces.push_back(r.take());
    return traces;
}

// ---------------------------------------------------------------------------
// Engine vs. reference simulator: every clustering method, every shipped
// model, bit-exact.
// ---------------------------------------------------------------------------

TEST(EngineEquivalence, AllShippedModelsAllMethods) {
    std::size_t checked = 0;
    for (const auto& entry : std::filesystem::directory_iterator(SBD_MODELS_DIR)) {
        if (entry.path().extension() != ".sbd") continue;
        const auto file = text::parse_sbd_file(entry.path().string());
        for (const Method method : kAllMethods) {
            CompiledSystem sys;
            try {
                sys = compile_hierarchy(file.root, method);
            } catch (const SdgCycleError&) {
                continue; // the paper's rejection case; not executable
            }
            std::vector<Trace> traces;
            try {
                traces = engine_traces(sys, file.root, 4, 40, 2);
            } catch (const std::logic_error&) {
                continue; // opaque (interface-only) blocks are not executable
            }
            for (const Trace& t : traces) {
                ASSERT_TRUE(bit_equal(simulate_reference(*file.root, t), t))
                    << entry.path().filename() << " method=" << to_string(method);
                ++checked;
            }
        }
    }
    EXPECT_GE(checked, 4u * 4u); // at least 4 models actually executed
}

TEST(EngineEquivalence, SuiteModelsAllMethods) {
    const std::vector<std::shared_ptr<const MacroBlock>> blocks = {
        suite::fuel_controller(), suite::figure3_p(), suite::shared_chain_sensor(8)};
    for (const auto& block : blocks) {
        for (const Method method : kAllMethods) {
            CompiledSystem sys;
            try {
                sys = compile_hierarchy(block, method);
            } catch (const SdgCycleError&) {
                continue;
            }
            for (const Trace& t : engine_traces(sys, block, 3, 30, 2))
                ASSERT_TRUE(bit_equal(simulate_reference(*block, t), t))
                    << block->type_name() << " method=" << to_string(method);
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism across thread counts.
// ---------------------------------------------------------------------------

TEST(EngineDeterminism, SameSeedOneVsManyThreadsBitIdentical) {
    const auto block = suite::fuel_controller();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    // 257 instances with a chunk of 7: the live list does not divide evenly,
    // so the chunked scheduler's boundary handling is exercised too.
    const auto single = engine_traces(sys, block, 257, 20, 1, 7);
    const auto multi = engine_traces(sys, block, 257, 20, 5, 7);
    ASSERT_EQ(single.size(), multi.size());
    for (std::size_t i = 0; i < single.size(); ++i)
        ASSERT_TRUE(bit_equal(single[i], multi[i])) << "instance " << i;
}

TEST(EngineDeterminism, WorkerExceptionPropagatesToTick) {
    // An atomic block that faults when its input exceeds a threshold.
    auto boom = std::make_shared<AtomicBlock>(
        "Boom", std::vector<std::string>{"u"}, std::vector<std::string>{"y"},
        BlockClass::Combinational, std::vector<double>{},
        [](std::span<const double>, std::span<const double> in, std::span<double> out) {
            if (in[0] > 0.5) throw std::runtime_error("boom");
            out[0] = in[0];
        },
        nullptr);
    auto m = std::make_shared<MacroBlock>("M", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("B", boom);
    m->connect("x", "B.u");
    m->connect("B.y", "y");
    const auto sys = compile_hierarchy(m, Method::Dynamic);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        EngineConfig cfg;
        cfg.capacity = 8;
        cfg.threads = threads;
        cfg.chunk = 2;
        Engine engine(sys, m, cfg);
        const auto ids = engine.create(8);
        engine.tick(); // all inputs 0.0: fine
        engine.pool().inputs(ids[5])[0] = 1.0;
        EXPECT_THROW(engine.tick(), std::runtime_error) << threads << " threads";
        // The engine stays usable after a failed tick.
        engine.pool().inputs(ids[5])[0] = 0.0;
        engine.tick();
    }
}

// ---------------------------------------------------------------------------
// Pool slot reuse and handle safety.
// ---------------------------------------------------------------------------

TEST(InstancePool, DestroyAndRecreateKeepsOtherInstancesIntact) {
    const auto block = suite::figure3_p(); // contains a unit delay: stateful
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    EngineConfig cfg;
    cfg.capacity = 3;
    Engine engine(sys, block, cfg);
    const InstanceId a = engine.create();
    const InstanceId b = engine.create();
    const InstanceId c = engine.create();

    // Mirror every pooled instance with a hand-stepped one on the same
    // input stream.
    InterpInstance ma(sys, block), mb(sys, block), mc(sys, block);
    LcgInputSource sa(11), sb(22), sc(33);
    std::vector<double> in(block->num_inputs()), out(block->num_outputs());

    using Mirror = std::pair<Instance*, LcgInputSource*>;
    const auto run_ticks = [&](std::size_t n, std::vector<std::pair<InstanceId, Mirror>> live) {
        for (std::size_t t = 0; t < n; ++t) {
            for (auto& [id, mirror] : live) mirror.second->fill(engine.pool().inputs(id));
            engine.tick();
            for (auto& [id, mirror] : live) {
                const auto ein = engine.pool().inputs(id);
                in.assign(ein.begin(), ein.end());
                mirror.first->step_instant_into(in, out);
                const auto eout = engine.pool().outputs(id);
                for (std::size_t o = 0; o < out.size(); ++o)
                    ASSERT_EQ(eout[o], out[o]) << "t=" << t << " o=" << o;
            }
        }
    };

    run_ticks(10, {{a, {&ma, &sa}}, {b, {&mb, &sb}}, {c, {&mc, &sc}}});

    // Destroy the middle instance; its slot is recycled by the next create.
    engine.destroy(b);
    EXPECT_FALSE(engine.pool().alive(b));
    EXPECT_THROW(engine.pool().inputs(b), std::invalid_argument);
    const InstanceId d = engine.create();
    EXPECT_EQ(d.slot, b.slot);   // contiguous reuse of the freed slot
    EXPECT_NE(d.generation, b.generation);
    EXPECT_FALSE(engine.pool().alive(b)); // the stale handle stays stale

    // The recycled slot starts from pristine state, and the surviving
    // instances' state is untouched by destroy/create.
    InterpInstance md(sys, block);
    LcgInputSource sd(44);
    run_ticks(10, {{a, {&ma, &sa}}, {c, {&mc, &sc}}, {d, {&md, &sd}}});
}

TEST(InstancePool, CapacityIsEnforcedAndRecycledSlotsComeBack) {
    const auto block = suite::figure3_p();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    InstancePool pool(sys, block, 4);
    std::vector<InstanceId> ids;
    for (int i = 0; i < 4; ++i) ids.push_back(pool.create());
    EXPECT_EQ(pool.size(), 4u);
    EXPECT_THROW(pool.create(), std::length_error);
    pool.destroy(ids[1]);
    pool.destroy(ids[3]);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_NO_THROW(pool.create());
    EXPECT_NO_THROW(pool.create());
    EXPECT_THROW(pool.create(), std::length_error);
}

TEST(InstancePool, ResetRestoresInitialStateAndClearsBuffers) {
    const auto block = suite::figure3_p();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    InstancePool pool(sys, block, 1);
    const InstanceId id = pool.create();
    LcgInputSource src(7);
    for (int t = 0; t < 5; ++t) {
        src.fill(pool.inputs(id));
        pool.step_slot(id.slot);
    }
    pool.reset(id);
    for (const double v : pool.inputs(id)) EXPECT_EQ(v, 0.0);
    for (const double v : pool.outputs(id)) EXPECT_EQ(v, 0.0);
    // After reset the instance behaves like a fresh one.
    InterpInstance fresh(sys, block);
    LcgInputSource src2(9);
    std::vector<double> in(block->num_inputs()), out(block->num_outputs());
    for (int t = 0; t < 5; ++t) {
        src2.fill(pool.inputs(id));
        const auto pin = pool.inputs(id);
        in.assign(pin.begin(), pin.end());
        pool.step_slot(id.slot);
        fresh.step_instant_into(in, out);
        const auto pout = pool.outputs(id);
        for (std::size_t o = 0; o < out.size(); ++o) ASSERT_EQ(pout[o], out[o]);
    }
}

// ---------------------------------------------------------------------------
// Non-allocating step API.
// ---------------------------------------------------------------------------

TEST(StepInto, MatchesAllocatingStepInstant) {
    const auto block = suite::fuel_controller();
    for (const Method method : {Method::Dynamic, Method::DisjointSat, Method::Singletons}) {
        const auto sys = compile_hierarchy(block, method);
        InterpInstance a(sys, block), b(sys, block);
        LcgInputSource src(3);
        std::vector<double> in(block->num_inputs()), out(block->num_outputs());
        for (int t = 0; t < 25; ++t) {
            src.fill(in);
            const auto expected = a.step_instant(in);
            b.step_instant_into(in, out);
            ASSERT_EQ(expected.size(), out.size());
            for (std::size_t o = 0; o < out.size(); ++o) ASSERT_EQ(expected[o], out[o]);
        }
    }
}

TEST(StepInto, ValidatesSpanSizes) {
    const auto block = suite::figure3_p();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    InterpInstance inst(sys, block);
    std::vector<double> in(block->num_inputs() + 1), out(block->num_outputs());
    EXPECT_THROW(inst.step_instant_into(in, out), std::invalid_argument);
    in.resize(block->num_inputs());
    out.resize(block->num_outputs() + 1);
    EXPECT_THROW(inst.step_instant_into(in, out), std::invalid_argument);
    EXPECT_EQ(inst.results_size(0), inst.profile().functions[0].writes.size());
}

// ---------------------------------------------------------------------------
// Trace record / save / load / replay.
// ---------------------------------------------------------------------------

class TraceRoundtrip : public ::testing::Test {
protected:
    std::string tmp_path(const std::string& name) {
        return (std::filesystem::path(::testing::TempDir()) / name).string();
    }
};

TEST_F(TraceRoundtrip, BinaryAndCsvAreBitExact) {
    const auto block = suite::fuel_controller();
    const auto sys = compile_hierarchy(block, Method::DisjointSat);
    const Trace t = engine_traces(sys, block, 1, 50, 1).front();

    const std::string bin = tmp_path("trace_roundtrip.sbdt");
    save_trace(t, bin);
    EXPECT_TRUE(bit_equal(load_trace(bin), t));

    const std::string csv = tmp_path("trace_roundtrip.csv");
    save_trace(t, csv);
    EXPECT_TRUE(bit_equal(load_trace(csv), t));

    std::filesystem::remove(bin);
    std::filesystem::remove(csv);
}

TEST_F(TraceRoundtrip, ReplayReproducesRecordedOutputs) {
    const auto block = suite::fuel_controller();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    const Trace t = engine_traces(sys, block, 1, 40, 1).front();
    EXPECT_TRUE(bit_equal(replay(sys, block, t), t));
    EXPECT_TRUE(bit_equal(simulate_reference(*block, t), t));
    // A different clustering method replays the same inputs to the same
    // outputs: the trace is a method-independent regression artifact.
    const auto sys2 = compile_hierarchy(block, Method::Singletons);
    EXPECT_TRUE(bit_equal(replay(sys2, block, t), t));
}

// ---------------------------------------------------------------------------
// Handle-churn edge cases: generational ids under heavy slot recycling, and
// the generation-exhaustion path — a slot whose generation counter reaches
// UINT32_MAX is retired rather than wrapped to 0, so a handle minted 2^32
// destroys ago can never validate against a fresh occupant (no ABA, ever).

TEST(PoolChurn, StaleHandlesNeverAliasUnderHeavyRecycling) {
    const auto block = suite::thermostat();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    InstancePool pool(sys, block, 4);
    std::vector<InstanceId> stale;
    for (int round = 0; round < 256; ++round) {
        const InstanceId a = pool.create();
        const InstanceId b = pool.create();
        pool.destroy(a);
        pool.destroy(b);
        stale.push_back(a);
        stale.push_back(b);
    }
    // Every handle ever destroyed is dead forever, even though its slot has
    // been recycled hundreds of times since.
    const InstanceId live = pool.create();
    for (const InstanceId id : stale) {
        EXPECT_FALSE(pool.alive(id));
        EXPECT_THROW(pool.inputs(id), std::invalid_argument);
        EXPECT_THROW(pool.destroy(id), std::invalid_argument);
    }
    EXPECT_TRUE(pool.alive(live));
    EXPECT_EQ(pool.retired(), 0u);
}

TEST(PoolChurn, GenerationExhaustionRetiresTheSlot) {
    const auto block = suite::thermostat();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    InstancePool pool(sys, block, 2);
    // Age one slot to the brink of wraparound (the testing hook stands in
    // for 2^32 - 2 real destroys).
    const InstanceId first = pool.create();
    const std::uint32_t slot = first.slot;
    pool.destroy(first);
    pool.debug_set_generation(slot, UINT32_MAX - 1);
    const InstanceId last = pool.create();
    EXPECT_EQ(last.slot, slot);
    EXPECT_EQ(last.generation, UINT32_MAX - 1);
    pool.destroy(last); // generation hits UINT32_MAX: the slot is retired
    EXPECT_EQ(pool.retired(), 1u);
    EXPECT_FALSE(pool.alive(last));
    // Neither the pre-retirement handle nor a hypothetical wrapped one can
    // ever validate again.
    EXPECT_FALSE(pool.alive({slot, 0}));
    EXPECT_FALSE(pool.alive({slot, UINT32_MAX}));
    // The retired slot is out of circulation: the remaining capacity is one
    // slot, and filling it reports a full pool, not a recycled zombie.
    const InstanceId a = pool.create();
    EXPECT_NE(a.slot, slot);
    EXPECT_THROW(pool.create(), std::length_error);
    pool.destroy(a);
    // The hook rejects nonsense: live slots, retired slots, bad indices.
    const InstanceId live = pool.create();
    EXPECT_THROW(pool.debug_set_generation(live.slot, 7), std::invalid_argument);
    EXPECT_THROW(pool.debug_set_generation(slot, 7), std::invalid_argument);
    EXPECT_THROW(pool.debug_set_generation(99, 7), std::invalid_argument);
}

TEST(PoolChurn, SnapshotRestoreRoundTripsBitExact) {
    const auto block = suite::fuel_controller();
    const auto sys = compile_hierarchy(block, Method::Dynamic);
    EngineConfig cfg;
    cfg.capacity = 2;
    Engine engine(sys, block, cfg);
    const InstanceId src = engine.create();
    LcgInputSource in(77);
    for (int t = 0; t < 25; ++t) {
        in.fill(engine.pool().inputs(src));
        engine.tick();
    }
    const std::vector<double> blob = engine.pool().snapshot_state(src);
    EXPECT_EQ(blob.size(), engine.pool().state_size(src));

    // Restore into a brand-new instance and step both in lockstep: the
    // clone must be bit-identical from the restore point onward.
    const InstanceId dst = engine.create();
    engine.pool().restore_state(dst, blob);
    LcgInputSource in2(12345);
    for (int t = 0; t < 25; ++t) {
        in2.fill(engine.pool().inputs(src));
        std::copy_n(engine.pool().inputs(src).data(), block->num_inputs(),
                    engine.pool().inputs(dst).data());
        engine.tick();
        const auto a = engine.pool().outputs(src);
        const auto b = engine.pool().outputs(dst);
        for (std::size_t o = 0; o < a.size(); ++o) {
            std::uint64_t ba, bb;
            std::memcpy(&ba, &a[o], 8);
            std::memcpy(&bb, &b[o], 8);
            ASSERT_EQ(ba, bb) << "tick " << t << " output " << o;
        }
    }
    // A wrong-sized blob is rejected before touching anything.
    std::vector<double> bad = blob;
    bad.pop_back();
    EXPECT_THROW(engine.pool().restore_state(dst, bad), std::invalid_argument);
}

TEST_F(TraceRoundtrip, LoadRejectsGarbage) {
    const std::string path = tmp_path("trace_garbage.sbdt");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely,not,a,trace\n1,2,3,4\n", f);
    std::fclose(f);
    EXPECT_THROW(load_trace(path), std::runtime_error);
    std::filesystem::remove(path);
    EXPECT_THROW(load_trace(tmp_path("no_such_trace.sbdt")), std::runtime_error);
}

} // namespace
