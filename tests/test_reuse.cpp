#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/reuse.hpp"
#include "helpers.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

std::string method_id(Method m) {
    std::string s = to_string(m);
    for (char& c : s)
        if (c == '-') c = '_';
    return s;
}

// The Introduction's running example: P of Figure 1 used with the feedback
// y1 -> x2 (Figure 2). Monolithic code cannot be embedded; modular code
// generated with the dynamic (or optimal disjoint) method can.
TEST(Reuse, Figure2MonolithicRejectedDynamicAccepted) {
    const auto ctx = suite::figure2_context(suite::figure1_p());
    EXPECT_THROW((void)compile_hierarchy(ctx, Method::Monolithic), SdgCycleError);
    EXPECT_THROW((void)compile_hierarchy(ctx, Method::StepGet), SdgCycleError);
    EXPECT_NO_THROW((void)compile_hierarchy(ctx, Method::Dynamic));
    EXPECT_NO_THROW((void)compile_hierarchy(ctx, Method::DisjointSat));
    EXPECT_NO_THROW((void)compile_hierarchy(ctx, Method::DisjointGreedy));
    EXPECT_NO_THROW((void)compile_hierarchy(ctx, Method::Singletons));
}

TEST(Reuse, Figure2DynamicCodeComputesTheFlattenedSemantics) {
    const auto ctx = suite::figure2_context(suite::figure1_p());
    sbd::testing::expect_equivalent(ctx, Method::Dynamic,
                                    sbd::testing::random_trace(1, 30, 41));
    sbd::testing::expect_equivalent(ctx, Method::DisjointSat,
                                    sbd::testing::random_trace(1, 30, 43));
}

TEST(Reuse, SupportsFeedbackChecksFunctionCycles) {
    // Profile with two functions: f(x1)->y1, g(x2)->y2 and no PDG edges
    // supports any single feedback; a monolithic step(x1,x2)->(y1,y2)
    // supports none.
    Profile split;
    split.functions.push_back({"f", {0}, {0}});
    split.functions.push_back({"g", {1}, {1}});
    Profile mono;
    mono.functions.push_back({"step", {0, 1}, {0, 1}});

    const std::pair<std::size_t, std::size_t> y1_to_x2[] = {{0, 1}};
    const std::pair<std::size_t, std::size_t> y2_to_x1[] = {{1, 0}};
    EXPECT_TRUE(supports_feedback(split, y1_to_x2));
    EXPECT_TRUE(supports_feedback(split, y2_to_x1));
    EXPECT_FALSE(supports_feedback(mono, y1_to_x2));
    EXPECT_FALSE(supports_feedback(mono, y2_to_x1));

    // Both feedbacks at once close a cycle even for the split profile.
    const std::pair<std::size_t, std::size_t> both[] = {{0, 1}, {1, 0}};
    EXPECT_FALSE(supports_feedback(split, both));
}

TEST(Reuse, PdgEdgesCountTowardCycles) {
    // f(x1)->y1 must run before g(x2)->y2 (PDG); feeding y2 back to x1
    // closes a cycle through the PDG edge.
    Profile p;
    p.functions.push_back({"f", {0}, {0}});
    p.functions.push_back({"g", {1}, {1}});
    p.pdg_edges.emplace_back(0, 1);
    const std::pair<std::size_t, std::size_t> y2_to_x1[] = {{1, 0}};
    EXPECT_FALSE(supports_feedback(p, y2_to_x1));
    const std::pair<std::size_t, std::size_t> y1_to_x2[] = {{0, 1}};
    EXPECT_TRUE(supports_feedback(p, y1_to_x2));
}

TEST(Reuse, LegalFeedbackPairsComeFromTrueDependencies) {
    const auto p = suite::figure1_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const Sdg& sdg = *sys.at(*p).sdg;
    const auto legal = legal_feedback_pairs(sdg);
    // Dependencies: y1<-x1, y2<-x1, y2<-x2. Legal feedbacks: (y1,x2) only.
    ASSERT_EQ(legal.size(), 1u);
    EXPECT_EQ(legal[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

struct ScoreCase {
    Method method;
    double min_score;
    double max_score;
};

class ReusabilityScore : public ::testing::TestWithParam<ScoreCase> {};

TEST_P(ReusabilityScore, OnWholeSuite) {
    for (const auto& model : suite::demo_suite()) {
        // Score each model's root against its own SDG, compiling bottom-up
        // with the same method (inner rejections count as score 0).
        try {
            const auto sys = compile_hierarchy(model.block, GetParam().method);
            const auto& cb = sys.at(*model.block);
            if (!cb.sdg) continue;
            const auto rep = reusability(*cb.sdg, cb.profile);
            EXPECT_GE(rep.score(), GetParam().min_score) << model.name;
            EXPECT_LE(rep.score(), GetParam().max_score) << model.name;
        } catch (const SdgCycleError&) {
            EXPECT_TRUE(GetParam().method == Method::Monolithic ||
                        GetParam().method == Method::StepGet)
                << model.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ReusabilityScore,
    ::testing::Values(ScoreCase{Method::Dynamic, 1.0, 1.0},
                      ScoreCase{Method::DisjointSat, 1.0, 1.0},
                      ScoreCase{Method::DisjointGreedy, 1.0, 1.0},
                      ScoreCase{Method::Singletons, 1.0, 1.0},
                      ScoreCase{Method::Monolithic, 0.0, 1.0},
                      ScoreCase{Method::StepGet, 0.0, 1.0}),
    [](const auto& info) { return method_id(info.param.method); });

TEST(Reuse, MonolithicScoresStrictlyBelowDynamicSomewhere) {
    // On Figure 1 the monolithic profile supports none of the legal
    // feedback contexts, the dynamic profile all of them.
    const auto p = suite::figure1_p();
    const auto dyn = compile_hierarchy(p, Method::Dynamic);
    const auto mono = compile_hierarchy(p, Method::Monolithic);
    const auto& sdg = *dyn.at(*p).sdg;
    EXPECT_EQ(reusability(sdg, dyn.at(*p).profile).score(), 1.0);
    EXPECT_EQ(reusability(sdg, mono.at(*p).profile).score(), 0.0);
}

TEST(Reuse, ProfileLevelCheckAgreesWithRealEmbedding) {
    // For every legal feedback pair of every suite model and every method,
    // supports_feedback() must agree with actually compiling the context.
    for (const auto& model : suite::demo_suite()) {
        for (const Method method : {Method::Dynamic, Method::StepGet, Method::Monolithic}) {
            codegen::CompiledSystem sys = [&] {
                try {
                    return compile_hierarchy(model.block, method);
                } catch (const SdgCycleError&) {
                    return codegen::CompiledSystem{};
                }
            }();
            if (!sys.root_block()) continue;
            const auto& cb = sys.at(*model.block);
            if (!cb.sdg) continue;
            for (const auto& pair : legal_feedback_pairs(*cb.sdg)) {
                const std::pair<std::size_t, std::size_t> loops[] = {pair};
                const bool profile_ok = supports_feedback(cb.profile, loops);
                bool embed_ok = true;
                try {
                    const auto ctx = suite::feedback_context(model.block, pair.first,
                                                             pair.second);
                    (void)compile_hierarchy(ctx, method);
                } catch (const SdgCycleError&) {
                    embed_ok = false;
                }
                EXPECT_EQ(profile_ok, embed_ok)
                    << model.name << " " << to_string(method) << " feedback y" << pair.first
                    << "->x" << pair.second;
            }
        }
    }
}

} // namespace
