#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/emit_cpp.hpp"
#include "core/exec.hpp"
#include "helpers.hpp"
#include "sbd/library.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

std::string run_command(const std::string& cmd, int* exit_code) {
    std::array<char, 4096> buf{};
    std::string out;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
        *exit_code = -1;
        return out;
    }
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) out.append(buf.data(), n);
    *exit_code = pclose(pipe);
    return out;
}

/// Emits the generated C++ plus driver, compiles with the system compiler,
/// runs it and compares every printed output value against the interpreted
/// generated code (Instance), instant by instant.
void expect_emitted_cpp_equivalent(const std::shared_ptr<const MacroBlock>& block,
                                   Method method, std::size_t steps, std::uint64_t seed) {
    const auto sys = compile_hierarchy(block, method);
    const std::string source = emit_cpp(sys) + emit_cpp_driver(sys, steps, seed);

    const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = std::string(info->test_suite_name()) + "_" + info->name() + "_" +
                      to_string(method);
    for (char& c : tag)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    const std::string dir = ::testing::TempDir();
    const std::string cpp = dir + "/" + tag + ".cpp";
    const std::string bin = dir + "/" + tag + ".bin";
    {
        std::ofstream f(cpp);
        f << source;
    }
    int code = 0;
    const std::string compile_out =
        run_command("c++ -std=c++17 -O1 -o '" + bin + "' '" + cpp + "' 2>&1", &code);
    ASSERT_EQ(code, 0) << "generated code failed to compile:\n"
                       << compile_out << "\n--- source ---\n"
                       << source;
    const std::string run_out = run_command("'" + bin + "'", &code);
    ASSERT_EQ(code, 0);

    // Twin execution through the interpreter.
    const auto trace = lcg_input_trace(block->num_inputs(), steps, seed);
    InterpInstance inst(sys, block);
    std::istringstream lines(run_out);
    for (std::size_t t = 0; t < steps; ++t) {
        const auto expected = inst.step_instant(trace[t]);
        for (std::size_t o = 0; o < expected.size(); ++o) {
            std::string line;
            ASSERT_TRUE(std::getline(lines, line)) << "t=" << t << " o=" << o;
            EXPECT_DOUBLE_EQ(std::strtod(line.c_str(), nullptr), expected[o])
                << "t=" << t << " o=" << o;
        }
    }
}

TEST(EmitCpp, Figure3DynamicCompilesAndRuns) {
    expect_emitted_cpp_equivalent(suite::figure3_p(), Method::Dynamic, 25, 11);
}

TEST(EmitCpp, Figure4DynamicGuardCountersWorkInRealCpp) {
    expect_emitted_cpp_equivalent(suite::figure4_chain(5), Method::Dynamic, 25, 13);
}

TEST(EmitCpp, Figure4DisjointSat) {
    expect_emitted_cpp_equivalent(suite::figure4_chain(5), Method::DisjointSat, 25, 17);
}

TEST(EmitCpp, Figure1Monolithic) {
    expect_emitted_cpp_equivalent(suite::figure1_p(), Method::Monolithic, 25, 19);
}

TEST(EmitCpp, FuelControllerThreeLevels) {
    expect_emitted_cpp_equivalent(suite::fuel_controller(), Method::Dynamic, 40, 23);
}

TEST(EmitCpp, ThermostatWithFeedback) {
    expect_emitted_cpp_equivalent(suite::thermostat(), Method::DisjointSat, 40, 29);
}

TEST(EmitCpp, GearLogicLookupTables) {
    expect_emitted_cpp_equivalent(suite::gear_logic(), Method::Dynamic, 40, 31);
}

TEST(EmitCpp, SignalSelector) {
    expect_emitted_cpp_equivalent(suite::signal_selector(), Method::StepGet, 40, 37);
}

TEST(EmitCpp, EmitsOneClassPerBlockType) {
    const auto p = suite::figure3_p();
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const std::string src = emit_cpp(sys);
    EXPECT_NE(src.find("class P_fig3"), std::string::npos);
    EXPECT_NE(src.find("class UnitDelay"), std::string::npos);
    EXPECT_NE(src.find("namespace gen"), std::string::npos);
    // Macro class exposes the profile's functions.
    EXPECT_NE(src.find("double get()"), std::string::npos);
    EXPECT_NE(src.find("void init()"), std::string::npos);
}

TEST(EmitCpp, AtomicWithoutCppSemanticsIsRejected) {
    const auto blind = lib::make_combinational(
        "Blind", {"u"}, {"y"},
        [](auto, std::span<const double> u, std::span<double> y) { y[0] = u[0]; });
    auto m = std::make_shared<MacroBlock>("M", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"y"});
    m->add_sub("B", blind);
    m->connect("x", "B.u");
    m->connect("B.y", "y");
    const auto sys = compile_hierarchy(std::static_pointer_cast<const Block>(m),
                                       Method::Dynamic);
    EXPECT_THROW((void)emit_cpp(sys), std::runtime_error);
}

TEST(EmitCpp, LcgTraceMatchesDriverFormula) {
    const auto trace = lcg_input_trace(2, 3, 42);
    ASSERT_EQ(trace.size(), 3u);
    ASSERT_EQ(trace[0].size(), 2u);
    std::uint64_t s = 42;
    for (std::size_t t = 0; t < 3; ++t)
        for (std::size_t i = 0; i < 2; ++i) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            EXPECT_EQ(trace[t][i], static_cast<double>((s >> 33) & 0xFFFF) / 4096.0 - 8.0);
        }
}

} // namespace
