// Tests for the triggered-diagram extension (Lublinerman & Tripakis 2008a,
// referenced in Related Work: the clustering methods "can be readily used
// in triggered and timed block diagrams as well").

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "core/reuse.hpp"
#include "sbd/library.hpp"
#include "suite/figures.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

/// gate -> (triggered gain): out holds when the trigger is low.
std::shared_ptr<const MacroBlock> triggered_gain() {
    auto m = std::make_shared<MacroBlock>("TrigGain", std::vector<std::string>{"u", "t"},
                                          std::vector<std::string>{"y"});
    m->add_sub("G", lib::gain(2.0));
    m->connect("u", "G.u");
    m->connect("G.y", "y");
    m->set_trigger("G", "t");
    return m;
}

/// A triggered Moore block (counter) enabled by an internal comparison.
std::shared_ptr<const MacroBlock> triggered_counter() {
    auto m = std::make_shared<MacroBlock>("TrigCounter", std::vector<std::string>{"x"},
                                          std::vector<std::string>{"n"});
    m->add_sub("Pos", lib::relational(">"));
    m->add_sub("Zero", lib::constant(0.0));
    m->add_sub("One", lib::constant(1.0));
    m->add_sub("Cnt", lib::counter());
    m->connect("x", "Pos.u1");
    m->connect("Zero.y", "Pos.u2");
    m->connect("One.y", "Cnt.enable");
    m->connect("Cnt.y", "n");
    m->set_trigger("Cnt", "Pos.y");
    return m;
}

/// Two-level: a triggered subsystem that itself contains a triggered block.
std::shared_ptr<const MacroBlock> nested_triggered() {
    auto inner = std::make_shared<MacroBlock>("InnerTrig",
                                              std::vector<std::string>{"u", "g"},
                                              std::vector<std::string>{"y"});
    inner->add_sub("Acc", lib::integrator(1.0));
    inner->connect("u", "Acc.u");
    inner->connect("Acc.y", "y");
    inner->set_trigger("Acc", "g");

    auto outer = std::make_shared<MacroBlock>("OuterTrig",
                                              std::vector<std::string>{"u", "g1", "g2"},
                                              std::vector<std::string>{"y"});
    outer->add_sub("I", inner);
    outer->connect("u", "I.u");
    outer->connect("g2", "I.g");
    outer->connect("I.y", "y");
    outer->set_trigger("I", "g1");
    return outer;
}

TEST(Triggered, ModelValidation) {
    auto m = std::make_shared<MacroBlock>("M", std::vector<std::string>{"u", "t"},
                                          std::vector<std::string>{"y"});
    m->add_sub("G", lib::gain(1.0));
    m->set_trigger("G", "t");
    EXPECT_THROW(m->set_trigger("G", "u"), ModelError); // already triggered
    EXPECT_THROW(m->set_trigger(5, Endpoint{Endpoint::Kind::MacroInput, -1, 0}), ModelError);
    EXPECT_THROW(m->set_trigger(0, Endpoint{Endpoint::Kind::MacroInput, -1, 9}), ModelError);
    EXPECT_THROW(m->set_trigger(0, Endpoint{Endpoint::Kind::MacroOutput, -1, 0}), ModelError);
}

TEST(Triggered, HoldSemanticsInSimulator) {
    const auto m = triggered_gain();
    const auto out = sim::simulate(
        *m, {{1.0, 1.0}, {2.0, 0.0}, {3.0, 0.0}, {4.0, 1.0}, {5.0, 0.0}});
    // Fired at t=0 (y=2), holds 2, holds 2, fires (y=8), holds 8.
    EXPECT_EQ(out[0][0], 2.0);
    EXPECT_EQ(out[1][0], 2.0);
    EXPECT_EQ(out[2][0], 2.0);
    EXPECT_EQ(out[3][0], 8.0);
    EXPECT_EQ(out[4][0], 8.0);
}

TEST(Triggered, InitialHeldValueIsZero) {
    const auto m = triggered_gain();
    const auto out = sim::simulate(*m, {{7.0, 0.0}, {7.0, 0.0}});
    EXPECT_EQ(out[0][0], 0.0);
    EXPECT_EQ(out[1][0], 0.0);
}

TEST(Triggered, StateFreezesWhileHeld) {
    // Triggered counter with always-enabled input: counts only on instants
    // where x > 0.
    const auto m = triggered_counter();
    const auto out =
        sim::simulate(*m, {{1.0}, {1.0}, {-1.0}, {-1.0}, {1.0}, {1.0}});
    // counter() is Moore: y is the count *before* this instant's update.
    // While held, the *output* freezes at its last emitted value (1), even
    // though the frozen state is already 2; on re-fire the state reappears.
    EXPECT_EQ(out[0][0], 0.0);
    EXPECT_EQ(out[1][0], 1.0);
    EXPECT_EQ(out[2][0], 1.0); // held output (state frozen at 2)
    EXPECT_EQ(out[3][0], 1.0);
    EXPECT_EQ(out[4][0], 2.0); // fires: emits frozen state, then counts on
    EXPECT_EQ(out[5][0], 3.0);
}

TEST(Triggered, MacroClassAccountsForTriggers) {
    // A triggered combinational block holds state -> the macro is
    // sequential; its output depends on the current trigger, which is an
    // input -> not Moore.
    EXPECT_EQ(triggered_gain()->block_class(), BlockClass::Sequential);
    // The triggered counter: output comes from a Moore block, but whether
    // it holds or fires depends on the current input x -> Sequential.
    EXPECT_EQ(triggered_counter()->block_class(), BlockClass::Sequential);
}

TEST(Triggered, FlatteningDistributesAndConjoinsTriggers) {
    const auto m = nested_triggered();
    const auto flat = flatten(*m);
    // Inner Acc must end up triggered by AND(g1, g2) through a synthesized
    // AND block.
    bool found_and = false;
    for (std::size_t s = 0; s < flat->num_subs(); ++s)
        if (flat->sub(s).name.find("trigand/") == 0) found_and = true;
    EXPECT_TRUE(found_and);
    // Semantics: integrates u only when both gates are high.
    const auto out = sim::simulate(*m, {{1.0, 1.0, 1.0},
                                        {1.0, 0.0, 1.0},
                                        {1.0, 1.0, 0.0},
                                        {1.0, 1.0, 1.0}});
    EXPECT_EQ(out[0][0], 0.0); // Moore integrator: pre-update state
    EXPECT_EQ(out[1][0], 0.0); // held output (g1 low; state frozen at 1)
    EXPECT_EQ(out[2][0], 0.0); // held output (g2 low)
    EXPECT_EQ(out[3][0], 1.0); // fires: emits the frozen state
}

TEST(Triggered, SdgGainsTriggerEdges) {
    const auto m = triggered_counter();
    const auto sys = compile_hierarchy(m, Method::Dynamic);
    const Sdg& sdg = *sys.at(*m).sdg;
    // Cnt.get must depend on Pos.step (the trigger writer), making the
    // output n truly dependent on input x.
    const auto deps = sdg.io_dependencies();
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(Triggered, GeneratedCodePredicatesCalls) {
    const auto m = triggered_gain();
    const auto sys = compile_hierarchy(m, Method::Dynamic);
    const std::string code = sys.at(*m).code->to_pseudocode();
    EXPECT_NE(code.find("if (t >= 0.5) G_y := G.step(u);"), std::string::npos);
}

struct TrigEquivCase {
    const char* name;
    std::shared_ptr<const MacroBlock> (*build)();
    Method method;
};

class TriggeredEquivalence : public ::testing::TestWithParam<TrigEquivCase> {};

TEST_P(TriggeredEquivalence, MatchesReferenceSimulator) {
    const auto m = GetParam().build();
    // Bias the trace so triggers flip between high and low.
    auto trace = sbd::testing::random_trace(m->num_inputs(), 60, 4242);
    for (auto& row : trace)
        for (auto& v : row)
            if (v < 0) v *= 0.1; // keep plenty of sub-0.5 values
    sbd::testing::expect_equivalent(m, GetParam().method, trace);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TriggeredEquivalence,
    ::testing::Values(
        TrigEquivCase{"gain_dynamic", triggered_gain, Method::Dynamic},
        TrigEquivCase{"gain_sat", triggered_gain, Method::DisjointSat},
        TrigEquivCase{"gain_mono", triggered_gain, Method::Monolithic},
        TrigEquivCase{"counter_dynamic", triggered_counter, Method::Dynamic},
        TrigEquivCase{"counter_sat", triggered_counter, Method::DisjointSat},
        TrigEquivCase{"counter_single", triggered_counter, Method::Singletons},
        TrigEquivCase{"nested_dynamic", nested_triggered, Method::Dynamic},
        TrigEquivCase{"nested_sat", nested_triggered, Method::DisjointSat},
        TrigEquivCase{"nested_greedy", nested_triggered, Method::DisjointGreedy}),
    [](const auto& info) { return info.param.name; });

TEST(Triggered, TriggerCycleRejected) {
    // M (Moore) triggered by a combinational function of its own output:
    // a real same-instant cycle that untriggered analysis would miss.
    auto m = std::make_shared<MacroBlock>("TrigCycle", std::vector<std::string>{},
                                          std::vector<std::string>{"y"});
    m->add_sub("D", lib::unit_delay(0.0));
    m->add_sub("Pos", lib::relational(">"));
    m->add_sub("Zero", lib::constant(0.0));
    m->connect("D.y", "Pos.u1");
    m->connect("Zero.y", "Pos.u2");
    m->connect("D.y", "D.u");
    m->connect("D.y", "y");
    m->set_trigger("D", "Pos.y");
    EXPECT_FALSE(is_acyclic_diagram(*m));
    EXPECT_THROW((void)compile_hierarchy(std::static_pointer_cast<const Block>(m),
                                         Method::Dynamic),
                 SdgCycleError);
}

/// Multi-rate ("timed") diagram realized with clock triggers: a fast
/// integrator and a slow (rate 1/3) moving average of its output.
std::shared_ptr<const MacroBlock> multirate() {
    auto m = std::make_shared<MacroBlock>("MultiRate", std::vector<std::string>{"u"},
                                          std::vector<std::string>{"fast", "slow"});
    m->add_sub("Clk3", lib::clock_divider(3));
    m->add_sub("Fast", lib::integrator(1.0));
    m->add_sub("Slow", lib::moving_average(2));
    m->connect("u", "Fast.u");
    m->connect("Fast.y", "fast");
    m->connect("Fast.y", "Slow.u");
    m->connect("Slow.y", "slow");
    m->set_trigger("Slow", "Clk3.y");
    return m;
}

TEST(Timed, ClockDividerEmitsPeriodically) {
    auto m = std::make_shared<MacroBlock>("C", std::vector<std::string>{},
                                          std::vector<std::string>{"y"});
    m->add_sub("Clk", lib::clock_divider(3, 1));
    m->connect("Clk.y", "y");
    const auto out = sim::simulate(*m, std::vector<std::vector<double>>(7));
    std::vector<double> got;
    for (const auto& row : out) got.push_back(row[0]);
    EXPECT_EQ(got, (std::vector<double>{0, 1, 0, 0, 1, 0, 0}));
}

TEST(Timed, MultiRateDiagramMatchesReferenceUnderAllMethods) {
    const auto m = multirate();
    for (const Method method : {Method::Dynamic, Method::DisjointSat, Method::StepGet}) {
        sbd::testing::expect_equivalent(m, method,
                                        sbd::testing::random_trace(1, 40, 61 + (int)method));
    }
}

TEST(Timed, SlowPathHoldsBetweenClockTicks) {
    const auto m = multirate();
    const auto out = sim::simulate(*m, std::vector<std::vector<double>>(6, {1.0}));
    // slow output changes only at instants where the clock fires (k % 3 == 0).
    EXPECT_EQ(out[1][1], out[0][1]);
    EXPECT_EQ(out[2][1], out[0][1]);
    EXPECT_NE(out[3][1], out[2][1]);
    EXPECT_EQ(out[4][1], out[3][1]);
    EXPECT_EQ(out[5][1], out[3][1]);
}

TEST(Triggered, ReusabilityAccountsForTriggerDependencies) {
    // y depends on t through the trigger; feeding y back into t must be
    // flagged illegal, feeding it into u is fine for the dynamic profile.
    const auto m = triggered_gain();
    const auto sys = compile_hierarchy(m, Method::Dynamic);
    const auto legal = legal_feedback_pairs(*sys.at(*m).sdg);
    EXPECT_TRUE(legal.empty()); // y depends on both u and t
}

} // namespace
