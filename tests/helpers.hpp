#ifndef SBD_TESTS_HELPERS_HPP
#define SBD_TESTS_HELPERS_HPP

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/compiler.hpp"
#include "core/exec.hpp"
#include "sbd/flatten.hpp"
#include "sim/simulator.hpp"

namespace sbd::testing {

/// Random input trace for a block: `steps` instants of uniform values.
inline std::vector<std::vector<double>> random_trace(std::size_t num_inputs, std::size_t steps,
                                                     std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-4.0, 4.0);
    std::vector<std::vector<double>> trace(steps, std::vector<double>(num_inputs));
    for (auto& row : trace)
        for (auto& v : row) v = dist(rng);
    return trace;
}

/// The central semantic property of the whole framework: executing the
/// modularly generated code (any clustering method) for T instants produces
/// exactly the trace of the reference simulator on the flattened diagram.
inline void expect_equivalent(const std::shared_ptr<const MacroBlock>& block,
                              codegen::Method method,
                              const std::vector<std::vector<double>>& trace) {
    const auto expected = sim::simulate(*block, trace);
    const auto sys = codegen::compile_hierarchy(block, method);
    codegen::InterpInstance inst(sys, block);
    for (std::size_t t = 0; t < trace.size(); ++t) {
        const auto got = inst.step_instant(trace[t]);
        ASSERT_EQ(got.size(), expected[t].size());
        for (std::size_t o = 0; o < got.size(); ++o)
            ASSERT_DOUBLE_EQ(got[o], expected[t][o])
                << "method=" << codegen::to_string(method) << " t=" << t << " output=" << o
                << " block=" << block->type_name();
    }
}

} // namespace sbd::testing

#endif
