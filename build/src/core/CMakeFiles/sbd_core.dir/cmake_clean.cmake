file(REMOVE_RECURSE
  "CMakeFiles/sbd_core.dir/cluster_sat.cpp.o"
  "CMakeFiles/sbd_core.dir/cluster_sat.cpp.o.d"
  "CMakeFiles/sbd_core.dir/clustering.cpp.o"
  "CMakeFiles/sbd_core.dir/clustering.cpp.o.d"
  "CMakeFiles/sbd_core.dir/codegen.cpp.o"
  "CMakeFiles/sbd_core.dir/codegen.cpp.o.d"
  "CMakeFiles/sbd_core.dir/compiler.cpp.o"
  "CMakeFiles/sbd_core.dir/compiler.cpp.o.d"
  "CMakeFiles/sbd_core.dir/emit_cpp.cpp.o"
  "CMakeFiles/sbd_core.dir/emit_cpp.cpp.o.d"
  "CMakeFiles/sbd_core.dir/exec.cpp.o"
  "CMakeFiles/sbd_core.dir/exec.cpp.o.d"
  "CMakeFiles/sbd_core.dir/ir.cpp.o"
  "CMakeFiles/sbd_core.dir/ir.cpp.o.d"
  "CMakeFiles/sbd_core.dir/methods.cpp.o"
  "CMakeFiles/sbd_core.dir/methods.cpp.o.d"
  "CMakeFiles/sbd_core.dir/profile.cpp.o"
  "CMakeFiles/sbd_core.dir/profile.cpp.o.d"
  "CMakeFiles/sbd_core.dir/reuse.cpp.o"
  "CMakeFiles/sbd_core.dir/reuse.cpp.o.d"
  "CMakeFiles/sbd_core.dir/sdg.cpp.o"
  "CMakeFiles/sbd_core.dir/sdg.cpp.o.d"
  "libsbd_core.a"
  "libsbd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
