
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_sat.cpp" "src/core/CMakeFiles/sbd_core.dir/cluster_sat.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/cluster_sat.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/sbd_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/codegen.cpp" "src/core/CMakeFiles/sbd_core.dir/codegen.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/codegen.cpp.o.d"
  "/root/repo/src/core/compiler.cpp" "src/core/CMakeFiles/sbd_core.dir/compiler.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/compiler.cpp.o.d"
  "/root/repo/src/core/emit_cpp.cpp" "src/core/CMakeFiles/sbd_core.dir/emit_cpp.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/emit_cpp.cpp.o.d"
  "/root/repo/src/core/exec.cpp" "src/core/CMakeFiles/sbd_core.dir/exec.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/exec.cpp.o.d"
  "/root/repo/src/core/ir.cpp" "src/core/CMakeFiles/sbd_core.dir/ir.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/ir.cpp.o.d"
  "/root/repo/src/core/methods.cpp" "src/core/CMakeFiles/sbd_core.dir/methods.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/methods.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/sbd_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/reuse.cpp" "src/core/CMakeFiles/sbd_core.dir/reuse.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/reuse.cpp.o.d"
  "/root/repo/src/core/sdg.cpp" "src/core/CMakeFiles/sbd_core.dir/sdg.cpp.o" "gcc" "src/core/CMakeFiles/sbd_core.dir/sdg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sbd/CMakeFiles/sbd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sbd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/sbd_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
