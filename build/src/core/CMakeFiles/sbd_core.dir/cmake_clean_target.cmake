file(REMOVE_RECURSE
  "libsbd_core.a"
)
