# Empty dependencies file for sbd_core.
# This may be replaced when dependencies are built.
