file(REMOVE_RECURSE
  "CMakeFiles/sbd_sim.dir/simulator.cpp.o"
  "CMakeFiles/sbd_sim.dir/simulator.cpp.o.d"
  "libsbd_sim.a"
  "libsbd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
