file(REMOVE_RECURSE
  "libsbd_sim.a"
)
