# Empty compiler generated dependencies file for sbd_sim.
# This may be replaced when dependencies are built.
