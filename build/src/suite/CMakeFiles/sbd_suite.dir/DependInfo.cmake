
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/figures.cpp" "src/suite/CMakeFiles/sbd_suite.dir/figures.cpp.o" "gcc" "src/suite/CMakeFiles/sbd_suite.dir/figures.cpp.o.d"
  "/root/repo/src/suite/models.cpp" "src/suite/CMakeFiles/sbd_suite.dir/models.cpp.o" "gcc" "src/suite/CMakeFiles/sbd_suite.dir/models.cpp.o.d"
  "/root/repo/src/suite/npred.cpp" "src/suite/CMakeFiles/sbd_suite.dir/npred.cpp.o" "gcc" "src/suite/CMakeFiles/sbd_suite.dir/npred.cpp.o.d"
  "/root/repo/src/suite/random_models.cpp" "src/suite/CMakeFiles/sbd_suite.dir/random_models.cpp.o" "gcc" "src/suite/CMakeFiles/sbd_suite.dir/random_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sbd/CMakeFiles/sbd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sbd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/sbd_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
