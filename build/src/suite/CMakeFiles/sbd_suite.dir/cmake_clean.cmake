file(REMOVE_RECURSE
  "CMakeFiles/sbd_suite.dir/figures.cpp.o"
  "CMakeFiles/sbd_suite.dir/figures.cpp.o.d"
  "CMakeFiles/sbd_suite.dir/models.cpp.o"
  "CMakeFiles/sbd_suite.dir/models.cpp.o.d"
  "CMakeFiles/sbd_suite.dir/npred.cpp.o"
  "CMakeFiles/sbd_suite.dir/npred.cpp.o.d"
  "CMakeFiles/sbd_suite.dir/random_models.cpp.o"
  "CMakeFiles/sbd_suite.dir/random_models.cpp.o.d"
  "libsbd_suite.a"
  "libsbd_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbd_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
