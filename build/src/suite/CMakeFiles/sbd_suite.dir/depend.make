# Empty dependencies file for sbd_suite.
# This may be replaced when dependencies are built.
