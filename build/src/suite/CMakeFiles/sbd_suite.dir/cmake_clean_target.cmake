file(REMOVE_RECURSE
  "libsbd_suite.a"
)
