# Empty dependencies file for sbd_graph.
# This may be replaced when dependencies are built.
