file(REMOVE_RECURSE
  "CMakeFiles/sbd_graph.dir/bitset.cpp.o"
  "CMakeFiles/sbd_graph.dir/bitset.cpp.o.d"
  "CMakeFiles/sbd_graph.dir/digraph.cpp.o"
  "CMakeFiles/sbd_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/sbd_graph.dir/undirected.cpp.o"
  "CMakeFiles/sbd_graph.dir/undirected.cpp.o.d"
  "libsbd_graph.a"
  "libsbd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
