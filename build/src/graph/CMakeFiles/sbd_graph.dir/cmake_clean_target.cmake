file(REMOVE_RECURSE
  "libsbd_graph.a"
)
