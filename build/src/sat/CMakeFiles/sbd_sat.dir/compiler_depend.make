# Empty compiler generated dependencies file for sbd_sat.
# This may be replaced when dependencies are built.
