file(REMOVE_RECURSE
  "libsbd_sat.a"
)
