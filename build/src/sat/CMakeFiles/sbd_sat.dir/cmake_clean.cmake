file(REMOVE_RECURSE
  "CMakeFiles/sbd_sat.dir/dimacs.cpp.o"
  "CMakeFiles/sbd_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/sbd_sat.dir/solver.cpp.o"
  "CMakeFiles/sbd_sat.dir/solver.cpp.o.d"
  "libsbd_sat.a"
  "libsbd_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbd_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
