file(REMOVE_RECURSE
  "libsbd_model.a"
)
