# Empty compiler generated dependencies file for sbd_model.
# This may be replaced when dependencies are built.
