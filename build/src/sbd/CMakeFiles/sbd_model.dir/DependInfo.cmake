
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sbd/block.cpp" "src/sbd/CMakeFiles/sbd_model.dir/block.cpp.o" "gcc" "src/sbd/CMakeFiles/sbd_model.dir/block.cpp.o.d"
  "/root/repo/src/sbd/flatten.cpp" "src/sbd/CMakeFiles/sbd_model.dir/flatten.cpp.o" "gcc" "src/sbd/CMakeFiles/sbd_model.dir/flatten.cpp.o.d"
  "/root/repo/src/sbd/library.cpp" "src/sbd/CMakeFiles/sbd_model.dir/library.cpp.o" "gcc" "src/sbd/CMakeFiles/sbd_model.dir/library.cpp.o.d"
  "/root/repo/src/sbd/opaque.cpp" "src/sbd/CMakeFiles/sbd_model.dir/opaque.cpp.o" "gcc" "src/sbd/CMakeFiles/sbd_model.dir/opaque.cpp.o.d"
  "/root/repo/src/sbd/text_format.cpp" "src/sbd/CMakeFiles/sbd_model.dir/text_format.cpp.o" "gcc" "src/sbd/CMakeFiles/sbd_model.dir/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sbd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
