file(REMOVE_RECURSE
  "CMakeFiles/sbd_model.dir/block.cpp.o"
  "CMakeFiles/sbd_model.dir/block.cpp.o.d"
  "CMakeFiles/sbd_model.dir/flatten.cpp.o"
  "CMakeFiles/sbd_model.dir/flatten.cpp.o.d"
  "CMakeFiles/sbd_model.dir/library.cpp.o"
  "CMakeFiles/sbd_model.dir/library.cpp.o.d"
  "CMakeFiles/sbd_model.dir/opaque.cpp.o"
  "CMakeFiles/sbd_model.dir/opaque.cpp.o.d"
  "CMakeFiles/sbd_model.dir/text_format.cpp.o"
  "CMakeFiles/sbd_model.dir/text_format.cpp.o.d"
  "libsbd_model.a"
  "libsbd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
