file(REMOVE_RECURSE
  "../bench/bench_reusability"
  "../bench/bench_reusability.pdb"
  "CMakeFiles/bench_reusability.dir/bench_reusability.cpp.o"
  "CMakeFiles/bench_reusability.dir/bench_reusability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reusability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
