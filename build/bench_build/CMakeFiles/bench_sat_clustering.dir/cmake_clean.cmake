file(REMOVE_RECURSE
  "../bench/bench_sat_clustering"
  "../bench/bench_sat_clustering.pdb"
  "CMakeFiles/bench_sat_clustering.dir/bench_sat_clustering.cpp.o"
  "CMakeFiles/bench_sat_clustering.dir/bench_sat_clustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sat_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
