# Empty dependencies file for bench_sat_clustering.
# This may be replaced when dependencies are built.
