file(REMOVE_RECURSE
  "../bench/bench_fig4_codesize"
  "../bench/bench_fig4_codesize.pdb"
  "CMakeFiles/bench_fig4_codesize.dir/bench_fig4_codesize.cpp.o"
  "CMakeFiles/bench_fig4_codesize.dir/bench_fig4_codesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
