# Empty dependencies file for bench_fig4_codesize.
# This may be replaced when dependencies are built.
