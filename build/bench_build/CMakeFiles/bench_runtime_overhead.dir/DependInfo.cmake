
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_runtime_overhead.cpp" "bench_build/CMakeFiles/bench_runtime_overhead.dir/bench_runtime_overhead.cpp.o" "gcc" "bench_build/CMakeFiles/bench_runtime_overhead.dir/bench_runtime_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/sbd_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sbd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sbd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sbd/CMakeFiles/sbd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/sbd_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sbd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
