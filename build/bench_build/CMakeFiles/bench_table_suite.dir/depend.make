# Empty dependencies file for bench_table_suite.
# This may be replaced when dependencies are built.
