file(REMOVE_RECURSE
  "../bench/bench_np_reduction"
  "../bench/bench_np_reduction.pdb"
  "CMakeFiles/bench_np_reduction.dir/bench_np_reduction.cpp.o"
  "CMakeFiles/bench_np_reduction.dir/bench_np_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_np_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
