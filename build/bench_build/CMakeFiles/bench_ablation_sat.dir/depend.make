# Empty dependencies file for bench_ablation_sat.
# This may be replaced when dependencies are built.
