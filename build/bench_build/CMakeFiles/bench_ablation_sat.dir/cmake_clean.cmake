file(REMOVE_RECURSE
  "../bench/bench_ablation_sat"
  "../bench/bench_ablation_sat.pdb"
  "CMakeFiles/bench_ablation_sat.dir/bench_ablation_sat.cpp.o"
  "CMakeFiles/bench_ablation_sat.dir/bench_ablation_sat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
