file(REMOVE_RECURSE
  "CMakeFiles/sbdc.dir/sbdc.cpp.o"
  "CMakeFiles/sbdc.dir/sbdc.cpp.o.d"
  "sbdc"
  "sbdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
