# Empty dependencies file for sbdc.
# This may be replaced when dependencies are built.
