file(REMOVE_RECURSE
  "CMakeFiles/feedback_reuse.dir/feedback_reuse.cpp.o"
  "CMakeFiles/feedback_reuse.dir/feedback_reuse.cpp.o.d"
  "feedback_reuse"
  "feedback_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
