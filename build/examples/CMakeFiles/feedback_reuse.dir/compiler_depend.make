# Empty compiler generated dependencies file for feedback_reuse.
# This may be replaced when dependencies are built.
