file(REMOVE_RECURSE
  "CMakeFiles/automotive_fuel.dir/automotive_fuel.cpp.o"
  "CMakeFiles/automotive_fuel.dir/automotive_fuel.cpp.o.d"
  "automotive_fuel"
  "automotive_fuel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_fuel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
