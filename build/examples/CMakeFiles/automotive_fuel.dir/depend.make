# Empty dependencies file for automotive_fuel.
# This may be replaced when dependencies are built.
