# Empty compiler generated dependencies file for test_random_property.
# This may be replaced when dependencies are built.
