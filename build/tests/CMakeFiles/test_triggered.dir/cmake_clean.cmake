file(REMOVE_RECURSE
  "CMakeFiles/test_triggered.dir/test_triggered.cpp.o"
  "CMakeFiles/test_triggered.dir/test_triggered.cpp.o.d"
  "test_triggered"
  "test_triggered.pdb"
  "test_triggered[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
