# Empty compiler generated dependencies file for test_triggered.
# This may be replaced when dependencies are built.
