file(REMOVE_RECURSE
  "CMakeFiles/test_opaque.dir/test_opaque.cpp.o"
  "CMakeFiles/test_opaque.dir/test_opaque.cpp.o.d"
  "test_opaque"
  "test_opaque.pdb"
  "test_opaque[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opaque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
