# Empty compiler generated dependencies file for test_opaque.
# This may be replaced when dependencies are built.
