file(REMOVE_RECURSE
  "CMakeFiles/test_emit_cpp.dir/test_emit_cpp.cpp.o"
  "CMakeFiles/test_emit_cpp.dir/test_emit_cpp.cpp.o.d"
  "test_emit_cpp"
  "test_emit_cpp.pdb"
  "test_emit_cpp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emit_cpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
