# Empty compiler generated dependencies file for test_emit_cpp.
# This may be replaced when dependencies are built.
