// sbd-serve — long-running sharded simulation service for one compiled
// model.
//
// Compiles the model through the standard pipeline (honoring --cache-dir
// and --jobs like sbdc), then hosts N engine shards behind the SBDS binary
// protocol on a TCP or Unix socket: CREATE_INSTANCES / DESTROY_INSTANCES /
// POST_INPUTS / TICK / READ_OUTPUTS / SNAPSHOT / STATS / UPGRADE_MODEL /
// SHUTDOWN. A plain HTTP `GET /metrics` on the same port answers the
// Prometheus text exposition. Per-tenant budgets shed CREATE load with
// coded TENANT_BUDGET rejections; a tick deadline rejects whole instants,
// never tears one.
//
// UPGRADE_MODEL hot-swaps a new model version into the running shards at
// an instant boundary: unchanged subtrees are served from the boot-time
// profile cache (only the changed frontier recompiles) and live instance
// state migrates old -> new by stable block path. Rejections are coded
// UPGRADE_REJECTED frames; --no-live-upgrade disables the opcode.
//
//   sbd-serve --listen tcp:127.0.0.1:7070 --shards 4 model.sbd
//   sbd-serve --listen unix:/tmp/sbd.sock --tenant-max-instances 64 model.sbd
//   sbd-serve --listen tcp:127.0.0.1:0 --endpoint-file ep.txt model.sbd &
//
// The daemon runs until SIGINT/SIGTERM or a protocol SHUTDOWN, then drains
// and exits 0.
//
// With --data-dir the service is crash-safe: every mutation (CREATE /
// DESTROY / POST_INPUTS / TICK / UPGRADE_MODEL) is appended to a
// checksummed write-ahead journal before it is applied, and periodic
// durable checkpoints bound replay. On startup the newest valid checkpoint
// is restored and the journal tail replayed, rebuilding the exact acked
// state bit-for-bit — --fsync picks the durability/latency trade-off.
//
//   sbd-serve --listen tcp:127.0.0.1:7070 --shards 4 model.sbd
//   sbd-serve --listen unix:/tmp/sbd.sock --tenant-max-instances 64 model.sbd
//   sbd-serve --listen tcp:127.0.0.1:0 --endpoint-file ep.txt model.sbd &
//   sbd-serve --data-dir /var/lib/sbd --fsync always model.sbd
//   sbd-serve --data-dir /var/lib/sbd --recover-verify model.sbd
//   sbd-serve --journal-dump /var/lib/sbd/journal
//
// The daemon runs until SIGINT/SIGTERM or a protocol SHUTDOWN, then drains
// and exits 0.
//
// Exit codes: 0 ok, 1 error, 2 usage, 3 parse error, 4 compile (cycle)
//             rejection, 5 deep-analysis rejection (a provably broken
//             model: SBD022 guaranteed division by zero or SBD024
//             always-NaN/infinite output), 6 budget exhausted, 7 deadline
//             exceeded (compile-time; serving-time rejections are coded
//             protocol errors the *client* maps to exit 8), 9 native
//             backend unavailable or failed, 11 durable store unusable
//             (journal unwritable at boot or recovery failed).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/absint.hpp"
#include "cli_common.hpp"
#include "core/pipeline.hpp"
#include "durable/durable.hpp"
#include "native/native.hpp"
#include "sbd/text_format.hpp"
#include "serve/server.hpp"
#include "upgrade/upgrade.hpp"

namespace {

using namespace sbd;

std::atomic<serve::Server*> g_server{nullptr};

/// SIGINT/SIGTERM are masked in every thread and consumed by a dedicated
/// sigwait thread, which turns them into a clean request_stop(). No
/// async-signal-safety games: sigwait returns in a normal thread context.
void install_signal_drain() {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    std::thread([set]() mutable {
        int sig = 0;
        sigwait(&set, &sig);
        if (serve::Server* s = g_server.load()) s->request_stop();
    }).detach();
}

/// --journal-dump: human-readable listing of a journal directory (or one
/// segment file). Decodes what it can; the listing itself never mutates
/// the store. Returns a process exit code.
int journal_dump(const std::string& path) {
    try {
        const durable::ScanResult scan = durable::Journal::scan(path);
        for (const durable::Record& rec : scan.records) {
            std::printf("seq=%llu kind=%s len=%zu",
                        static_cast<unsigned long long>(rec.seq), to_string(rec.kind),
                        rec.payload.size());
            try {
                serve::PayloadReader r(rec.payload);
                switch (rec.kind) {
                case durable::RecordKind::Create:
                case durable::RecordKind::Destroy:
                case durable::RecordKind::PostInputs: {
                    const std::uint64_t tenant = r.u64();
                    const std::uint32_t count = r.u32();
                    std::printf(" tenant=%llu count=%u",
                                static_cast<unsigned long long>(tenant), count);
                    break;
                }
                case durable::RecordKind::Tick:
                    break;
                case durable::RecordKind::Upgrade: {
                    const std::uint32_t flags = r.u32();
                    const std::string source = r.str();
                    std::printf(" flags=%u source_bytes=%zu", flags, source.size());
                    break;
                }
                }
            } catch (const serve::ServeError&) {
                std::printf(" (payload not decodable)");
            }
            std::printf("\n");
        }
        std::printf("journal-dump: %zu record(s), %zu segment(s), last_seq=%llu",
                    scan.records.size(), scan.segments,
                    static_cast<unsigned long long>(scan.last_seq));
        if (scan.torn)
            std::printf(", torn tail (%llu byte(s) ignored, %zu later segment(s) skipped)",
                        static_cast<unsigned long long>(scan.torn_bytes),
                        scan.dropped_segments);
        std::printf("\n");
        return cli::kExitOk;
    } catch (const durable::DurableError& e) {
        std::fprintf(stderr, "sbd-serve: %s\n", e.what());
        return cli::kExitDurable;
    }
}

} // namespace

int main(int argc, char** argv) {
    std::string listen_spec = "tcp:127.0.0.1:7070";
    std::string endpoint_file;
    std::size_t shards = 1;
    std::size_t capacity = 1024;
    std::size_t engine_threads = 1;
    std::size_t jobs = 1;
    std::uint64_t tick_deadline_ms = 0;
    std::uint64_t tenant_max = 0;
    std::string method_name = "dynamic";
    std::string backend_name = "interp";
    std::string cache_dir;
    bool live_upgrade = true;
    std::string data_dir;
    std::uint64_t checkpoint_every_ticks = 1024;
    std::string fsync_name = "batch";
    bool recover_verify = false;
    std::string journal_dump_path;
    cli::ObsOptions obs_opts;
    cli::ResilienceOptions res_opts;

    cli::ArgParser parser("sbd-serve", "model.sbd");
    parser.flag("--listen", "EP", "tcp:HOST:PORT (port 0 = ephemeral) or unix:PATH\n"
                                  "                 (default tcp:127.0.0.1:7070)",
                &listen_spec);
    parser.flag("--endpoint-file", "FILE",
                "write the bound endpoint (ephemeral port resolved) to FILE\n"
                "                 once listening — for scripts",
                &endpoint_file);
    parser.flag("--shards", "N", "engine shards                      (default 1)", &shards);
    parser.flag("--capacity", "N", "instance slots per shard           (default 1024)",
                &capacity);
    parser.flag("--engine-threads", "K", "worker threads per shard engine    (default 1)",
                &engine_threads);
    parser.flag("--jobs", "N", "parallel compilation workers       (default 1)", &jobs);
    parser.flag("--method", "M",
                "monolithic | step-get | dynamic | disjoint-sat |\n"
                "                 disjoint-greedy | singletons       (default: dynamic)",
                &method_name);
    parser.flag("--backend", "B",
                "interp | native shard execution; native AOT-compiles\n"
                "                 the generated C++ into one shared .so (default: interp)",
                &backend_name);
    parser.flag("--cache-dir", "D", "reuse compiled profiles from D (shared with sbdc)",
                &cache_dir);
    parser.flag("--tick-deadline-ms", "MS",
                "wall-clock budget per TICK request; expiry is a coded\n"
                "                 DEADLINE_EXCEEDED rejection before the instant runs",
                &tick_deadline_ms);
    parser.flag("--tenant-max-instances", "N",
                "per-tenant live-instance budget; excess CREATEs are shed\n"
                "                 with TENANT_BUDGET (0 = unlimited)",
                &tenant_max);
    parser.flag("--no-live-upgrade",
                "reject UPGRADE_MODEL requests (coded UPGRADE_REJECTED)\n"
                "                 instead of hot-swapping model versions",
                &live_upgrade, false);
    parser.flag("--data-dir", "D",
                "durable store root: write-ahead journal + checkpoints;\n"
                "                 on startup the acked state is recovered bit-for-bit",
                &data_dir);
    parser.flag("--checkpoint-every-ticks", "N",
                "durable checkpoint cadence in server instants; 0 disables\n"
                "                 checkpoints (journal-only)        (default 1024)",
                &checkpoint_every_ticks);
    parser.flag("--fsync", "M",
                "always | batch | off — journal durability: always syncs\n"
                "                 before every ack, batch syncs in the background,\n"
                "                 off leaves it to the OS            (default batch)",
                &fsync_name);
    parser.flag("--recover-verify",
                "recover from --data-dir, print what was rebuilt, then exit\n"
                "                 without serving (for crash-soak verification)",
                &recover_verify);
    parser.flag("--journal-dump", "PATH",
                "print the records in a journal directory (or one .sbdj\n"
                "                 segment) and exit; no model is loaded",
                &journal_dump_path);
    cli::add_obs_flags(parser, &obs_opts);
    cli::add_resilience_flags(parser, &res_opts, /*sat_flags=*/true);
    if (const auto code = parser.parse(argc, argv)) return *code;
    if (const auto code = cli::arm_fault_plan("sbd-serve", res_opts)) return *code;

    if (!journal_dump_path.empty()) return journal_dump(journal_dump_path);

    if (parser.positionals().size() != 1 || shards == 0 || capacity == 0)
        return parser.usage(stderr), cli::kExitUsage;
    const auto fsync_mode = durable::parse_fsync_mode(fsync_name);
    if (!fsync_mode) {
        std::fprintf(stderr, "sbd-serve: unknown --fsync mode '%s'\n", fsync_name.c_str());
        return cli::kExitUsage;
    }
    if (recover_verify && data_dir.empty()) {
        std::fprintf(stderr, "sbd-serve: --recover-verify requires --data-dir\n");
        return cli::kExitUsage;
    }
    const std::string input_path = parser.positionals().front();
    const auto method = cli::parse_method(method_name);
    if (!method) {
        std::fprintf(stderr, "sbd-serve: unknown method '%s'\n", method_name.c_str());
        return cli::kExitUsage;
    }
    const auto backend = cli::parse_backend(backend_name);
    if (!backend) {
        std::fprintf(stderr, "sbd-serve: unknown backend '%s'\n", backend_name.c_str());
        return cli::kExitUsage;
    }
    native::install();

    serve::Endpoint endpoint;
    try {
        endpoint = serve::Endpoint::parse(listen_spec);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "sbd-serve: %s\n", e.what());
        return cli::kExitUsage;
    }

    obs::MetricsRegistry registry;
    cli::ScopedTracing tracing(obs_opts);
    const auto finish = [&](int code) {
        const int obs_code = cli::write_obs_outputs(obs_opts, &registry, tracing);
        return code != cli::kExitOk ? code : obs_code;
    };

    text::ParsedFile file;
    try {
        file = text::parse_sbd_file(input_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "parse error: %s\n", e.what());
        return finish(cli::kExitParse);
    }

    try {
        codegen::PipelineOptions popts;
        popts.method = *method;
        popts.cluster.sat_conflict_budget = res_opts.sat_conflict_budget;
        popts.cluster.sat_budget_degrade = res_opts.sat_budget_degrade;
        popts.cache_dir = cache_dir;
        popts.threads = jobs;
        popts.metrics = &registry;
        popts.budgets.deadline_ms = res_opts.deadline_ms;
        codegen::Pipeline pipeline(popts);
        const codegen::CompiledSystem sys = pipeline.compile(file.root);

        // Deep-analysis load gate: refuse to serve a model whose outputs
        // are provably broken on every instant — a guaranteed division by
        // zero (SBD022) or an always-NaN/infinite output (SBD024). Serving
        // such a model would feed every tenant garbage; failing at load
        // gives the operator the exact site instead.
        for (const auto& d : sbd::analysis::deep_diagnostics(sys, file.root)) {
            if (d.code != "SBD022" && d.code != "SBD024") continue;
            std::fprintf(stderr, "sbd-serve: model rejected: [%s] %s\n", d.code.c_str(),
                         d.message.c_str());
            return finish(cli::kExitLint);
        }

        serve::ServerConfig cfg;
        cfg.endpoint = endpoint;
        cfg.shards = shards;
        if (*backend == codegen::Backend::Native) {
            codegen::BackendConfig bc;
            bc.backend = codegen::Backend::Native;
            bc.method = *method;
            bc.cluster = popts.cluster;
            if (!cache_dir.empty()) bc.cache_dir = cache_dir + "/native";
            bc.metrics = &registry;
            cfg.executable = codegen::make_executable(sys, file.root, bc);
        }
        cfg.shard_capacity = capacity;
        cfg.engine_threads = engine_threads;
        cfg.tick_deadline_ms = tick_deadline_ms;
        cfg.tenant_max_instances = tenant_max;
        cfg.metrics = &registry;
        if (!data_dir.empty()) {
            // The boot source text rides along so recovery can tell whether
            // a checkpoint (or journaled upgrade) refers to a different
            // model version that must be recompiled first.
            std::ifstream in(input_path, std::ios::binary);
            std::ostringstream src;
            src << in.rdbuf();
            cfg.model_source = std::move(src).str();
            durable::Options dopts;
            dopts.data_dir = data_dir;
            dopts.fsync = *fsync_mode;
            dopts.checkpoint_every_ticks = checkpoint_every_ticks;
            cfg.durable = std::move(dopts);
        }
        if (live_upgrade) {
            // New versions must compile exactly like the boot version
            // (same method/options, same profile cache, same backend), or
            // fingerprint-equal subtrees would not be layout-equal and the
            // reuse accounting would be fiction.
            upgrade::CompileContext uctx;
            uctx.method = *method;
            uctx.cluster = popts.cluster;
            uctx.jobs = jobs;
            uctx.cache = pipeline.cache();
            uctx.backend.backend = *backend;
            uctx.backend.method = *method;
            uctx.backend.cluster = popts.cluster;
            if (*backend == codegen::Backend::Native && !cache_dir.empty())
                uctx.backend.cache_dir = cache_dir + "/native";
            uctx.backend.metrics = &registry;
            cfg.upgrade = std::move(uctx);
        }
        serve::Server server(sys, file.root, cfg);

        if (!data_dir.empty()) {
            const serve::RecoveryStats rs = server.recover();
            if (rs.recovered || recover_verify)
                std::printf("sbd-serve: recovered ticks=%llu version=%llu live=%llu "
                            "replayed_records=%llu replayed_ticks=%llu checkpoint_seq=%llu "
                            "fallbacks=%llu aborted=%d recovery_ms=%.3f\n",
                            static_cast<unsigned long long>(rs.recovered_ticks),
                            static_cast<unsigned long long>(rs.recovered_version),
                            static_cast<unsigned long long>(rs.live_instances),
                            static_cast<unsigned long long>(rs.replayed_records),
                            static_cast<unsigned long long>(rs.replayed_ticks),
                            static_cast<unsigned long long>(rs.checkpoint_seq),
                            static_cast<unsigned long long>(rs.checkpoint_fallbacks),
                            rs.replay_aborted ? 1 : 0,
                            static_cast<double>(rs.recovery_ns) / 1e6);
            if (recover_verify) return finish(cli::kExitOk);
        }

        const std::string bound = server.endpoint().to_string();
        if (!endpoint_file.empty()) {
            std::FILE* f = std::fopen(endpoint_file.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr, "sbd-serve: cannot write %s\n", endpoint_file.c_str());
                return finish(cli::kExitError);
            }
            std::fprintf(f, "%s\n", bound.c_str());
            std::fclose(f);
        }
        std::printf("sbd-serve: %zu shard(s) x %zu slots, listening on %s\n", shards,
                    capacity, bound.c_str());
        std::fflush(stdout);

        install_signal_drain();
        g_server.store(&server);
        server.run();
        g_server.store(nullptr);

        const serve::ServerStats st = server.stats_view();
        std::printf("sbd-serve: drained after %llu requests, %llu ticks, %llu shed, "
                    "%llu coded errors\n",
                    static_cast<unsigned long long>(st.requests),
                    static_cast<unsigned long long>(st.ticks),
                    static_cast<unsigned long long>(st.shed),
                    static_cast<unsigned long long>(st.errors));
        return finish(cli::kExitOk);
    } catch (const durable::DurableError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitDurable);
    } catch (const codegen::SdgCycleError& e) {
        std::fprintf(stderr, "rejected: %s\n", e.what());
        return finish(cli::kExitCycle);
    } catch (const codegen::BackendError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitNative);
    } catch (const resilience::BudgetExhausted& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitBudget);
    } catch (const resilience::DeadlineExceeded& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitDeadline);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitError);
    }
}
