// sbdc — modular code generator for synchronous block diagrams.
//
// Reads a textual .sbd model, compiles every macro block bottom-up with the
// selected clustering method and prints (or writes) the requested artifact.
//
//   sbdc model.sbd                          # pseudocode, dynamic method
//   sbdc --method disjoint-sat model.sbd    # optimal disjoint clustering
//   sbdc --emit cpp --out gen.cpp model.sbd # deployable C++
//   sbdc --emit profile model.sbd           # the exported interfaces
//   sbdc --emit dot model.sbd               # root SDG in GraphViz form
//   sbdc --simulate 10 model.sbd            # run the generated code
//   sbdc --simulate 10 --backend native model.sbd   # ...as a compiled .so
//   sbdc --stats model.sbd                  # per-block metrics table
//   sbdc --lint model.sbd                   # static analysis only
//   sbdc --metrics-out m.prom model.sbd     # export the metrics registry
//   sbdc --trace-out t.json model.sbd       # record compile trace spans
//   sbdc --diff-model old.sbd new.sbd       # upgrade diff + migration plan
//
// Exit codes: 0 ok, 1 other error, 2 usage, 3 parse error,
//             4 compile (cycle) rejection, 5 lint errors (--lint),
//             6 resource budget exhausted, 7 deadline exceeded,
//             9 native backend unavailable or failed,
//             10 upgrade incompatible (--diff-model: drain-and-replace).

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/lint.hpp"
#include "cli_common.hpp"
#include "core/emit_cpp.hpp"
#include "core/pipeline.hpp"
#include "core/exec.hpp"
#include "core/reuse.hpp"
#include "native/native.hpp"
#include "runtime/engine.hpp"
#include "sbd/text_format.hpp"
#include "upgrade/upgrade.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

} // namespace

int main(int argc, char** argv) {
    std::string method_name = "dynamic";
    std::string backend_name = "interp";
    std::string emit = "pseudo";
    std::string root_name;
    std::string out_path;
    std::string cache_dir;
    std::size_t simulate = 0;
    std::size_t instances = 1;
    std::size_t threads = 1;
    std::size_t jobs = 1;
    std::uint64_t seed = 1;
    bool stats = false;
    bool lint = false;
    bool diff_model = false;
    bool deep = false;
    bool verify_contracts = false;
    std::string format = "text";
    cli::ObsOptions obs_opts;
    cli::ResilienceOptions res_opts;

    cli::ArgParser parser("sbdc", "model.sbd");
    parser.flag("--method", "M",
                "monolithic | step-get | dynamic | disjoint-sat |\n"
                "                 disjoint-greedy | singletons        (default: dynamic)",
                &method_name);
    parser.flag("--root", "NAME", "compile this block as the root (default: last defined)",
                &root_name);
    parser.flag("--emit", "WHAT", "pseudo | cpp | profile | dot | sbd  (default: pseudo)",
                &emit);
    parser.flag("--simulate", "N", "execute N instants with deterministic random inputs",
                &simulate);
    parser.flag("--backend", "B",
                "interp | native execution for --simulate; native\n"
                "                 AOT-compiles the generated C++    (default: interp)",
                &backend_name);
    parser.flag("--seed", "S", "input seed for --simulate (default 1)", &seed);
    parser.flag("--instances", "N",
                "host N concurrent instances during --simulate (default 1;\n"
                "                 instance i is driven with seed S+i, instance 0 is printed)",
                &instances);
    parser.flag("--threads", "K", "step --simulate instances with K threads (default 1)",
                &threads);
    parser.flag("--stats",
                "print the per-block metrics table and the pipeline\n"
                "                 cache/timing counters as JSON",
                &stats);
    parser.flag("--cache-dir", "D",
                "persist compiled profiles in D (content-addressed;\n"
                "                 reused across runs and shared between tools)",
                &cache_dir);
    parser.flag("--jobs", "K",
                "compile independent sub-diagrams with K threads\n"
                "                 (default 1; results are identical for every K)",
                &jobs);
    parser.flag("--lint",
                "run static analysis instead of compiling; exit 5 on\n"
                "                 errors (--method selects the cycle-analysis method)",
                &lint);
    parser.flag("--deep",
                "with --lint: add interval abstract interpretation\n"
                "                 over the generated code (SBD022..SBD028)",
                &deep);
    parser.flag("--format", "F", "text | json diagnostics for --lint    (default: text)",
                &format);
    parser.flag("--diff-model",
                "take two models OLD.sbd NEW.sbd: print the structural\n"
                "                 upgrade diff, the incremental-recompile reuse and the state\n"
                "                 migration plan; exit 10 if the upgrade needs drain-and-replace",
                &diff_model);
    parser.flag("--verify-contracts",
                "re-check every generated profile against the\n"
                "                 modular compilation contract while compiling",
                &verify_contracts);
    parser.flag("--out", "FILE", "write the artifact to FILE instead of stdout", &out_path);
    cli::add_obs_flags(parser, &obs_opts);
    cli::add_resilience_flags(parser, &res_opts);
    if (const auto code = parser.parse(argc, argv)) return *code;
    if (const auto code = cli::arm_fault_plan("sbdc", res_opts)) return *code;

    if (parser.positionals().size() != (diff_model ? 2u : 1u) || instances == 0)
        return parser.usage(stderr), cli::kExitUsage;
    const std::string input_path = parser.positionals().front();
    if (format != "text" && format != "json") return parser.usage(stderr), cli::kExitUsage;
    const auto method = cli::parse_method(method_name);
    if (!method) {
        std::fprintf(stderr, "sbdc: unknown method '%s'\n", method_name.c_str());
        return cli::kExitUsage;
    }
    const auto backend = cli::parse_backend(backend_name);
    if (!backend) {
        std::fprintf(stderr, "sbdc: unknown backend '%s'\n", backend_name.c_str());
        return cli::kExitUsage;
    }
    native::install();

    // One registry for everything this invocation does (pipeline, cache,
    // engine); --stats and --metrics-out both read it.
    obs::MetricsRegistry registry;
    cli::ScopedTracing tracing(obs_opts);
    const auto finish = [&](int code) {
        const int obs_code = cli::write_obs_outputs(obs_opts, &registry, tracing);
        return code != cli::kExitOk ? code : obs_code;
    };

    if (diff_model) {
        // Upgrade preflight: compile OLD, then compile NEW through the same
        // profile cache — the NEW pipeline's reuse counters are exactly the
        // incremental-recompile measure a live upgrade would achieve — and
        // print the structural diff plus the state migration plan.
        text::ParsedFile old_file, new_file;
        try {
            old_file = text::parse_sbd_file(parser.positionals()[0]);
            new_file = text::parse_sbd_file(parser.positionals()[1]);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "parse error: %s\n", e.what());
            return finish(cli::kExitParse);
        }
        try {
            PipelineOptions popts;
            popts.method = *method;
            popts.cluster.sat_conflict_budget = res_opts.sat_conflict_budget;
            popts.cluster.sat_budget_degrade = res_opts.sat_budget_degrade;
            popts.threads = jobs > 0 ? jobs : 1;
            popts.metrics = &registry;
            popts.budgets.deadline_ms = res_opts.deadline_ms;
            auto cache = std::make_shared<ProfileCache>(0, cache_dir, &registry);
            Pipeline old_pipe(popts, cache);
            const CompiledSystem old_sys = old_pipe.compile(old_file.root);
            PipelineOptions npopts = popts;
            npopts.metrics = nullptr; // private registry: per-run reuse counters
            Pipeline new_pipe(npopts, cache);
            const CompiledSystem new_sys = new_pipe.compile(new_file.root);
            const PipelineStats nst = new_pipe.stats();

            const upgrade::ModelDiff diff = upgrade::diff_models(old_file.root, new_file.root);
            const upgrade::MigrationPlan plan =
                upgrade::plan_migration(old_sys, old_file.root, new_sys, new_file.root);

            std::ostringstream body;
            if (format == "json") {
                body << "{\n\"diff\": " << diff.to_json() << ",\n\"recompile\": {"
                     << "\"macro_compiles\": " << nst.macro_compiles
                     << ", \"macro_reuses\": " << nst.macro_reuses << "},\n\"plan\": "
                     << plan.to_json() << "}\n";
            } else {
                body << "diff: " << diff.summary() << "\n";
                for (const upgrade::DiffEntry& e : diff.entries)
                    if (e.change != upgrade::SubtreeChange::Unchanged)
                        body << "  " << to_string(e.change) << " "
                             << (e.path.empty() ? "<root>" : e.path) << " (" << e.type_name
                             << ")\n";
                body << "recompile: " << nst.macro_compiles << " units compiled, "
                     << nst.macro_reuses << " reused from cache\n";
                body << "plan: " << plan.summary() << "\n";
            }
            if (out_path.empty()) {
                std::fputs(body.str().c_str(), stdout);
            } else {
                std::ofstream f(out_path);
                if (!f) throw ModelError("cannot write '" + out_path + "'");
                f << body.str();
            }
            if (plan.drain_and_replace()) {
                std::fprintf(stderr, "sbdc: upgrade requires drain-and-replace: %s\n",
                             plan.drain_reason().c_str());
                return finish(cli::kExitUpgrade);
            }
            return finish(cli::kExitOk);
        } catch (const SdgCycleError& e) {
            std::fprintf(stderr, "rejected: %s\n", e.what());
            return finish(cli::kExitCycle);
        } catch (const resilience::BudgetExhausted& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return finish(cli::kExitBudget);
        } catch (const resilience::DeadlineExceeded& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return finish(cli::kExitDeadline);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return finish(cli::kExitError);
        }
    }

    if (lint) {
        // Static analysis replaces compilation entirely: lenient parse,
        // all passes, diagnostics to stdout.
        try {
            analysis::LintOptions lopts;
            lopts.method = *method;
            lopts.deep = deep;
            lopts.jobs = jobs > 0 ? jobs : 1;
            if (!cache_dir.empty())
                lopts.cache = std::make_shared<ProfileCache>(0, cache_dir, &registry);
            const auto report = analysis::lint_file(input_path, lopts);
            std::fputs((format == "json" ? analysis::render_json(report)
                                         : analysis::render_text(report))
                           .c_str(),
                       stdout);
            return finish(report.has_errors() ? cli::kExitLint : cli::kExitOk);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return finish(cli::kExitError);
        }
    }

    text::ParsedFile file;
    try {
        file = text::parse_sbd_file(input_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "parse error: %s\n", e.what());
        return finish(cli::kExitParse);
    }

    try {
        std::shared_ptr<const MacroBlock> root = file.root;
        if (!root_name.empty()) {
            const auto it = file.blocks.find(root_name);
            if (it == file.blocks.end()) throw ModelError("no block named '" + root_name + "'");
            if (it->second->is_atomic()) throw ModelError("root must be a macro block");
            root = std::static_pointer_cast<const MacroBlock>(it->second);
        }
        PipelineOptions popts;
        popts.method = *method;
        popts.cluster.verify_contracts = verify_contracts;
        popts.cluster.sat_conflict_budget = res_opts.sat_conflict_budget;
        popts.cluster.sat_budget_degrade = res_opts.sat_budget_degrade;
        popts.threads = jobs;
        popts.cache_dir = cache_dir;
        popts.metrics = &registry;
        popts.budgets.deadline_ms = res_opts.deadline_ms;
        Pipeline pipeline(popts);
        SatClusterStats sat_stats;
        const CompiledSystem sys = pipeline.compile(root, &sat_stats);
        if (sat_stats.budget_exhausted)
            // Degraded, not wrong: the emitted code is valid but the SAT
            // clustering gave up, so modularity is below optimal (SBD021).
            std::fprintf(stderr,
                         "sbdc: warning: SBD021: SAT conflict budget exhausted; emitted a "
                         "degraded (valid, non-optimal) clustering\n");

        std::ostringstream body;
        if (emit == "pseudo") {
            for (const Block* b : sys.order()) {
                const auto& cb = sys.at(*b);
                if (cb.code) body << "// ---- " << b->type_name() << " ----\n"
                                  << cb.code->to_pseudocode() << "\n";
            }
        } else if (emit == "cpp") {
            body << emit_cpp(sys);
        } else if (emit == "profile") {
            for (const Block* b : sys.order()) {
                const auto& cb = sys.at(*b);
                if (cb.code)
                    body << "profile " << b->type_name() << " {\n"
                         << cb.profile.to_string() << "}\n\n";
            }
        } else if (emit == "dot") {
            const auto& cb = sys.root();
            body << cb.sdg->graph.to_dot(cb.sdg->labels());
        } else if (emit == "sbd") {
            body << text::to_sbd(*root);
        } else {
            throw ModelError("unknown --emit kind '" + emit + "'");
        }

        if (stats) {
            std::printf("%-20s | %9s | %5s | %5s | %6s | %11s | %11s\n", "block", "SDG nodes",
                        "fns", "LoC", "repl", "false deps", "reusability");
            for (const Block* b : sys.order()) {
                const auto& cb = sys.at(*b);
                if (!cb.code) continue;
                const auto rep = reusability(*cb.sdg, cb.profile);
                std::printf("%-20s | %9zu | %5zu | %5zu | %6zu | %11zu | %8.2f\n",
                            b->type_name().c_str(), cb.sdg->internal_nodes.size(),
                            cb.code->functions.size(), cb.code->line_count(),
                            cb.clustering->replicated_nodes(*cb.sdg),
                            false_io_dependencies(*cb.sdg, *cb.clustering).size(), rep.score());
            }
            // stats() is a registry read: the same numbers --metrics-out
            // exports, rendered in the stable JSON shape.
            std::printf("\npipeline: %s\n", pipeline.stats().to_json().c_str());
            std::printf("options: {\"method\": \"%s\", \"jobs\": %zu, \"cluster\": \"%s\"}\n\n",
                        to_string(popts.method), jobs,
                        canonical_options(popts.cluster).c_str());
        }

        if (out_path.empty()) {
            std::fputs(body.str().c_str(), stdout);
        } else {
            std::ofstream f(out_path);
            if (!f) throw ModelError("cannot write '" + out_path + "'");
            f << body.str();
            std::fprintf(stderr, "wrote %s\n", out_path.c_str());
        }

        if (simulate > 0) {
            // Host the requested number of concurrent instances on the
            // runtime engine; instance i runs with input seed S+i, and
            // instance 0 (seed S, identical to the single-instance run)
            // is the one printed.
            runtime::EngineConfig cfg;
            cfg.capacity = instances;
            cfg.threads = threads;
            if (*backend == Backend::Native) {
                BackendConfig bc;
                bc.backend = Backend::Native;
                bc.method = *method;
                bc.cluster = popts.cluster;
                if (!cache_dir.empty()) bc.cache_dir = cache_dir + "/native";
                bc.metrics = &registry;
                cfg.executable = make_executable(sys, root, bc);
            }
            if (obs_opts.enabled()) cfg.metrics = &registry;
            runtime::Engine engine(sys, root, cfg);
            const std::vector<runtime::InstanceId> ids = engine.create(instances);
            std::vector<runtime::LcgInputSource> sources;
            sources.reserve(instances);
            for (std::size_t i = 0; i < instances; ++i) sources.emplace_back(seed + i);
            std::printf("# t");
            for (std::size_t o = 0; o < root->num_outputs(); ++o)
                std::printf(" %s", root->output_name(o).c_str());
            std::printf("\n");
            for (std::size_t t = 0; t < simulate; ++t) {
                for (std::size_t i = 0; i < instances; ++i)
                    sources[i].fill(engine.pool().inputs(ids[i]));
                engine.tick();
                std::printf("%zu", t);
                for (const double v : engine.pool().outputs(ids[0])) std::printf(" %.10g", v);
                std::printf("\n");
            }
        }
        return finish(cli::kExitOk);
    } catch (const SdgCycleError& e) {
        std::fprintf(stderr, "rejected: %s\n(hint: use --method dynamic or disjoint-sat for "
                             "maximal reusability)\n",
                     e.what());
        return finish(cli::kExitCycle);
    } catch (const BackendError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitNative);
    } catch (const resilience::BudgetExhausted& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitBudget);
    } catch (const resilience::DeadlineExceeded& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitDeadline);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitError);
    }
}
