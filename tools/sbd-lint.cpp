// sbd-lint — static analyzer for textual .sbd block-diagram models.
//
// Parses each model leniently, runs every analysis pass (see
// src/analysis/diagnostics.hpp for the SBD001..SBD021 catalog) and prints
// the diagnostics, compiler-style or as JSON.
//
//   sbd-lint model.sbd                     # text diagnostics
//   sbd-lint --format json model.sbd       # machine-readable
//   sbd-lint --method monolithic *.sbd     # cycle analysis under a method
//
// A "# lint-method: NAME" comment inside a model overrides --method for
// that file. Exit codes: 0 clean (warnings allowed), 5 some file has
// errors, 2 usage, 1 I/O or internal error.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "cli_common.hpp"

int main(int argc, char** argv) {
    std::string format = "text";
    std::string method_name = "dynamic";
    std::string cache_dir;
    std::string fault_plan;
    bool no_contracts = false;
    bool quiet = false;

    sbd::cli::ArgParser parser("sbd-lint", "model.sbd...");
    parser.flag("--format", "F", "text | json                          (default: text)",
                &format);
    parser.flag("--method", "M",
                "monolithic | step-get | dynamic | disjoint-sat |\n"
                "                 disjoint-greedy | singletons         (default: dynamic)",
                &method_name);
    parser.flag("--no-contracts", "skip profile contract checking (SBD019/SBD020)",
                &no_contracts);
    parser.flag("--cache-dir", "D",
                "share compiled profiles across the SBD013 method\n"
                "                 probes, files and runs (content-addressed, on disk)",
                &cache_dir);
    parser.flag("--quiet", "print nothing for clean files", &quiet);
    // Hidden chaos-testing hook (same spec as sbdc --fault-plan); lint
    // reports injected SAT budget exhaustion as SBD021.
    parser.flag("--fault-plan", "SPEC", nullptr, &fault_plan);
    if (const auto code = parser.parse(argc, argv)) return *code;
    {
        sbd::cli::ResilienceOptions res;
        res.fault_plan = fault_plan;
        if (const auto code = sbd::cli::arm_fault_plan("sbd-lint", res)) return *code;
    }

    const std::vector<std::string>& inputs = parser.positionals();
    if (inputs.empty()) return parser.usage(stderr), sbd::cli::kExitUsage;
    if (format != "text" && format != "json")
        return parser.usage(stderr), sbd::cli::kExitUsage;
    const auto method = sbd::cli::parse_method(method_name);
    if (!method) {
        std::fprintf(stderr, "sbd-lint: unknown method '%s'\n", method_name.c_str());
        return sbd::cli::kExitUsage;
    }

    sbd::analysis::LintOptions opts;
    opts.check_contracts = !no_contracts;
    opts.method = *method;
    try {
        // One cache for the whole batch: every false-cycle probe of every
        // file shares it (and, with --cache-dir, every future run too).
        opts.cache = std::make_shared<sbd::codegen::ProfileCache>(0, cache_dir);

        bool any_errors = false;
        for (const std::string& path : inputs) {
            const auto report = sbd::analysis::lint_file(path, opts);
            any_errors = any_errors || report.has_errors();
            if (quiet && report.diagnostics.empty()) continue;
            if (format == "json")
                std::fputs(sbd::analysis::render_json(report).c_str(), stdout);
            else
                std::fputs(sbd::analysis::render_text(report).c_str(), stdout);
        }
        return any_errors ? sbd::cli::kExitLint : sbd::cli::kExitOk;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return sbd::cli::kExitError;
    }
}
