// sbd-lint — static analyzer for textual .sbd block-diagram models.
//
// Parses each model leniently, runs every analysis pass (see
// src/analysis/diagnostics.hpp for the SBD001..SBD020 catalog) and prints
// the diagnostics, compiler-style or as JSON.
//
//   sbd-lint model.sbd                     # text diagnostics
//   sbd-lint --format json model.sbd       # machine-readable
//   sbd-lint --method monolithic *.sbd     # cycle analysis under a method
//
// A "# lint-method: NAME" comment inside a model overrides --method for
// that file. Exit codes: 0 clean (warnings allowed), 5 some file has
// errors, 2 usage, 1 I/O or internal error.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/lint.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [options] model.sbd...\n"
                 "  --format F     text | json                          (default: text)\n"
                 "  --method M     monolithic | step-get | dynamic | disjoint-sat |\n"
                 "                 disjoint-greedy | singletons         (default: dynamic)\n"
                 "  --no-contracts skip profile contract checking (SBD019/SBD020)\n"
                 "  --cache-dir D  share compiled profiles across the SBD013 method\n"
                 "                 probes, files and runs (content-addressed, on disk)\n"
                 "  --quiet        print nothing for clean files\n",
                 argv0);
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    std::string format = "text";
    std::string method_name = "dynamic";
    std::string cache_dir;
    std::vector<std::string> inputs;
    bool contracts = true;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--format") format = value();
        else if (arg == "--method") method_name = value();
        else if (arg == "--no-contracts") contracts = false;
        else if (arg == "--cache-dir") cache_dir = value();
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--help" || arg == "-h") return usage(argv[0]);
        else if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
        else inputs.push_back(arg);
    }
    if (inputs.empty()) return usage(argv[0]);
    if (format != "text" && format != "json") return usage(argv[0]);

    sbd::analysis::LintOptions opts;
    opts.check_contracts = contracts;
    try {
        // One cache for the whole batch: every false-cycle probe of every
        // file shares it (and, with --cache-dir, every future run too).
        opts.cache = std::make_shared<sbd::codegen::ProfileCache>(0, cache_dir);
        bool found = false;
        for (const sbd::codegen::Method m :
             {sbd::codegen::Method::Monolithic, sbd::codegen::Method::StepGet,
              sbd::codegen::Method::Dynamic, sbd::codegen::Method::DisjointSat,
              sbd::codegen::Method::DisjointGreedy, sbd::codegen::Method::Singletons})
            if (method_name == sbd::codegen::to_string(m)) {
                opts.method = m;
                found = true;
            }
        if (!found) {
            std::fprintf(stderr, "unknown method '%s'\n", method_name.c_str());
            return 2;
        }

        bool any_errors = false;
        for (const std::string& path : inputs) {
            const auto report = sbd::analysis::lint_file(path, opts);
            any_errors = any_errors || report.has_errors();
            if (quiet && report.diagnostics.empty()) continue;
            if (format == "json")
                std::fputs(sbd::analysis::render_json(report).c_str(), stdout);
            else
                std::fputs(sbd::analysis::render_text(report).c_str(), stdout);
        }
        return any_errors ? 5 : 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
