// sbd-lint — static analyzer for textual .sbd block-diagram models.
//
// Parses each model leniently, runs every analysis pass (see
// src/analysis/diagnostics.hpp for the SBD001..SBD028 catalog) and prints
// the diagnostics, compiler-style, as JSON or as SARIF 2.1.0.
//
//   sbd-lint model.sbd                     # text diagnostics
//   sbd-lint --format json model.sbd       # machine-readable
//   sbd-lint --format sarif *.sbd          # one SARIF log for the batch
//   sbd-lint --method monolithic *.sbd     # cycle analysis under a method
//   sbd-lint --deep model.sbd              # interval abstract interpretation
//                                          # (SBD022..SBD028)
//   sbd-lint --report-cost model.sbd       # per-method static cost table
//
// A "# lint-method: NAME" comment inside a model overrides --method for
// that file; "# lint-deep" turns --deep on for that file. Exit codes:
// 0 clean (warnings allowed), 5 some file has errors, 2 usage, 1 I/O or
// internal error.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/cost.hpp"
#include "analysis/lint.hpp"
#include "cli_common.hpp"

int main(int argc, char** argv) {
    std::string format = "text";
    std::string method_name = "dynamic";
    std::string cache_dir;
    std::string fault_plan;
    std::string assume_inputs;
    bool no_contracts = false;
    bool quiet = false;
    bool deep = false;
    bool report_cost = false;
    unsigned jobs = 1;

    sbd::cli::ArgParser parser("sbd-lint", "model.sbd...");
    parser.flag("--format", "F", "text | json | sarif                  (default: text)",
                &format);
    parser.flag("--method", "M",
                "monolithic | step-get | dynamic | disjoint-sat |\n"
                "                 disjoint-greedy | singletons         (default: dynamic)",
                &method_name);
    parser.flag("--deep", "interval abstract interpretation over the generated\n"
                "                 code (SBD022..SBD028 deep diagnostics)",
                &deep);
    parser.flag("--assume-inputs", "LO,HI",
                "input range assumed by --deep             (default: -8,8)", &assume_inputs);
    parser.flag("--report-cost", "per-method static cost/code-size report instead\n"
                "                 of diagnostics (text table, or JSON with --format json)",
                &report_cost);
    parser.flag("--jobs", "N", "pipeline worker threads for --deep/--report-cost",
                &jobs);
    parser.flag("--no-contracts", "skip profile contract checking (SBD019/SBD020)",
                &no_contracts);
    parser.flag("--cache-dir", "D",
                "share compiled profiles across the SBD013 method\n"
                "                 probes, files and runs (content-addressed, on disk)",
                &cache_dir);
    parser.flag("--quiet", "print nothing for clean files", &quiet);
    // Hidden chaos-testing hook (same spec as sbdc --fault-plan); lint
    // reports injected SAT budget exhaustion as SBD021.
    parser.flag("--fault-plan", "SPEC", nullptr, &fault_plan);
    if (const auto code = parser.parse(argc, argv)) return *code;
    {
        sbd::cli::ResilienceOptions res;
        res.fault_plan = fault_plan;
        if (const auto code = sbd::cli::arm_fault_plan("sbd-lint", res)) return *code;
    }

    const std::vector<std::string>& inputs = parser.positionals();
    if (inputs.empty()) return parser.usage(stderr), sbd::cli::kExitUsage;
    if (format != "text" && format != "json" && format != "sarif")
        return parser.usage(stderr), sbd::cli::kExitUsage;
    if (report_cost && format == "sarif")
        return parser.usage(stderr), sbd::cli::kExitUsage;
    const auto method = sbd::cli::parse_method(method_name);
    if (!method) {
        std::fprintf(stderr, "sbd-lint: unknown method '%s'\n", method_name.c_str());
        return sbd::cli::kExitUsage;
    }

    sbd::analysis::LintOptions opts;
    opts.check_contracts = !no_contracts;
    opts.method = *method;
    opts.deep = deep;
    opts.jobs = jobs > 0 ? jobs : 1;
    if (!assume_inputs.empty()) {
        double lo = 0.0, hi = 0.0;
        if (std::sscanf(assume_inputs.c_str(), "%lf,%lf", &lo, &hi) != 2 || lo > hi) {
            std::fprintf(stderr, "sbd-lint: bad --assume-inputs '%s' (want LO,HI)\n",
                         assume_inputs.c_str());
            return sbd::cli::kExitUsage;
        }
        opts.abs.assumed_inputs = sbd::analysis::Interval::make(lo, hi);
    }
    try {
        // One cache and one summary memo for the whole batch: every
        // false-cycle probe and every deep summary of every file shares
        // them (and, with --cache-dir, profiles persist across runs).
        opts.cache = std::make_shared<sbd::codegen::ProfileCache>(0, cache_dir);
        opts.abs.memo = std::make_shared<sbd::analysis::SummaryMemo>();

        if (report_cost) {
            for (const std::string& path : inputs) {
                const auto parsed =
                    sbd::text::parse_sbd_file(path, sbd::text::ParseMode::Strict);
                const auto report =
                    sbd::analysis::cost_report(parsed.root, path, opts.cache);
                if (format == "json")
                    std::fputs((sbd::analysis::render_cost_json(report) + "\n").c_str(),
                               stdout);
                else
                    std::fputs(sbd::analysis::render_cost_table(report).c_str(), stdout);
            }
            return sbd::cli::kExitOk;
        }

        bool any_errors = false;
        std::vector<sbd::analysis::LintReport> reports;
        for (const std::string& path : inputs) {
            auto report = sbd::analysis::lint_file(path, opts);
            any_errors = any_errors || report.has_errors();
            if (format == "sarif") {
                reports.push_back(std::move(report));
                continue;
            }
            if (quiet && report.diagnostics.empty()) continue;
            if (format == "json")
                std::fputs(sbd::analysis::render_json(report).c_str(), stdout);
            else
                std::fputs(sbd::analysis::render_text(report).c_str(), stdout);
        }
        if (format == "sarif") {
            sbd::analysis::SarifOptions sarif;
            sarif.tool_version = sbd::cli::kVersion;
            std::fputs(sbd::analysis::render_sarif(reports, sarif).c_str(), stdout);
        }
        return any_errors ? sbd::cli::kExitLint : sbd::cli::kExitOk;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return sbd::cli::kExitError;
    }
}
