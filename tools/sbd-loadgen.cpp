// sbd-loadgen — open-loop load generator for a running sbd-serve.
//
// Each tenant gets its own connection and thread. Requests are scheduled on
// a fixed open-loop timeline (--rps per tenant): a tick request that finds
// the generator behind schedule fires immediately instead of sliding the
// timeline, so server queueing delay shows up in the measured latency
// rather than being hidden by coordinated omission. Per request the tenant
// posts fresh deterministic inputs (seeded LCG, --inputs doubles per
// instance), issues one TICK, and reads every instance's outputs back.
//
//   sbd-loadgen --connect tcp:127.0.0.1:7070 --tenants 4 --instances 16
//               --rps 200 --duration-ms 5000 --inputs 2
//   sbd-loadgen --connect unix:/tmp/sbd.sock --shutdown   # drain the server
//
// Coded server rejections (budget shed, deadlines, injected faults) are
// counted per code and reported — they are an expected outcome under
// overload, not a generator failure. --fail-on-reject turns any coded
// rejection into exit 8 for tests that assert a clean run.
//
// --upgrade-at N --upgrade-model new.sbd turns a run into an
// upgrade-under-load soak: once N successful TICKs have been observed
// across all tenants, a dedicated control connection issues UPGRADE_MODEL
// and retries coded rejections (conflicts, injected faults) until the swap
// lands or the run ends. Rejections are counted by code; an upgrade that
// never applies exits 10.
//
// Exit codes: 0 ok, 1 transport/internal error, 2 usage,
//             8 coded protocol rejection (only with --fail-on-reject),
//             10 requested upgrade never applied.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "runtime/engine.hpp" // LcgInputSource
#include "serve/client.hpp"

namespace {

using namespace sbd;
using Clock = std::chrono::steady_clock;

struct TenantResult {
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::map<serve::Err, std::uint64_t> rejected; ///< coded rejections by code
    std::vector<std::uint64_t> tick_ns;           ///< latency of each TICK round-trip
    std::uint64_t transport_errors = 0;
    std::size_t instances = 0;
};

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
    if (sorted.empty()) return 0;
    const std::size_t i = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[i];
}

/// Outcome of the optional mid-run UPGRADE_MODEL (see --upgrade-at).
struct UpgradeOutcome {
    bool requested = false;
    bool applied = false;
    std::uint64_t fired_at_tick = 0; ///< observed ok-tick count at send time
    serve::UpgradeResult result;     ///< valid iff applied
    std::map<serve::Err, std::uint64_t> rejected; ///< retry rejections by code
};

} // namespace

int main(int argc, char** argv) {
    std::string connect_spec;
    std::size_t tenants = 1;
    std::size_t instances = 8;
    std::uint64_t rps = 100;
    std::uint64_t duration_ms = 5000;
    std::uint64_t seed = 1;
    std::size_t num_inputs = 0;
    std::string json_out;
    std::string stats_out;
    bool do_shutdown = false;
    bool fail_on_reject = false;
    std::uint64_t upgrade_at = 0;
    std::string upgrade_model_path;
    bool upgrade_allow_drain = false;
    cli::ResilienceOptions res_opts;

    cli::ArgParser parser("sbd-loadgen", "");
    parser.flag("--connect", "EP", "server endpoint, tcp:HOST:PORT or unix:PATH (required)",
                &connect_spec);
    parser.flag("--tenants", "N", "concurrent tenants, one connection each (default 1)",
                &tenants);
    parser.flag("--instances", "N", "instances each tenant creates       (default 8)",
                &instances);
    parser.flag("--rps", "R", "target TICK requests/sec per tenant (default 100)", &rps);
    parser.flag("--duration-ms", "MS", "load duration                       (default 5000)",
                &duration_ms);
    parser.flag("--seed", "S", "input seed; tenant t instance i uses S+t*1e6+i (default 1)",
                &seed);
    parser.flag("--inputs", "N",
                "model input count for POST_INPUTS rows (0 = skip posting\n"
                "                 inputs and tick against zeros)",
                &num_inputs);
    parser.flag("--json-out", "FILE", "write a JSON result summary to FILE", &json_out);
    parser.flag("--stats-out", "FILE", "fetch STATS after the run and write the text to FILE",
                &stats_out);
    parser.flag("--shutdown", "send SHUTDOWN after the run (drains the server)",
                &do_shutdown);
    parser.flag("--fail-on-reject", "exit 8 if any request was rejected with a coded error",
                &fail_on_reject);
    parser.flag("--upgrade-at", "N",
                "after N successful TICKs (across all tenants), send\n"
                "                 UPGRADE_MODEL with --upgrade-model and retry coded\n"
                "                 rejections until it lands (0 = no upgrade)",
                &upgrade_at);
    parser.flag("--upgrade-model", "FILE", "new model source for --upgrade-at",
                &upgrade_model_path);
    parser.flag("--upgrade-allow-drain",
                "permit a drain-and-replace upgrade (instances restart\n"
                "                 from init when the port interface changed)",
                &upgrade_allow_drain);
    cli::add_resilience_flags(parser, &res_opts, /*sat_flags=*/false);
    if (const auto code = parser.parse(argc, argv)) return *code;
    if (const auto code = cli::arm_fault_plan("sbd-loadgen", res_opts)) return *code;
    if (connect_spec.empty() || !parser.positionals().empty() || tenants == 0 || rps == 0)
        return parser.usage(stderr), cli::kExitUsage;
    if ((upgrade_at != 0) != !upgrade_model_path.empty()) {
        std::fprintf(stderr,
                     "sbd-loadgen: --upgrade-at and --upgrade-model go together\n");
        return cli::kExitUsage;
    }
    std::string upgrade_source;
    if (upgrade_at != 0) {
        std::ifstream in(upgrade_model_path);
        if (!in) {
            std::fprintf(stderr, "sbd-loadgen: cannot read %s\n",
                         upgrade_model_path.c_str());
            return cli::kExitError;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        upgrade_source = buf.str();
    }

    serve::Endpoint endpoint;
    try {
        endpoint = serve::Endpoint::parse(connect_spec);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "sbd-loadgen: %s\n", e.what());
        return cli::kExitUsage;
    }

    std::vector<TenantResult> results(tenants);
    std::vector<std::thread> threads;
    threads.reserve(tenants);
    std::atomic<std::uint64_t> ok_ticks{0}; ///< fires the --upgrade-at trigger
    std::atomic<bool> load_done{false};
    UpgradeOutcome upgrade;
    upgrade.requested = upgrade_at != 0;
    const Clock::time_point start = Clock::now();
    const Clock::duration duration = std::chrono::milliseconds(duration_ms);
    const Clock::duration period =
        std::chrono::nanoseconds(1'000'000'000ULL / rps == 0 ? 1 : 1'000'000'000ULL / rps);

    for (std::size_t t = 0; t < tenants; ++t) {
        threads.emplace_back([&, t] {
            TenantResult& res = results[t];
            const std::uint64_t tenant_id = t + 1; // 0 is reserved for control calls
            try {
                serve::Client client = serve::Client::connect(endpoint);
                std::vector<serve::WireHandle> handles;
                try {
                    handles = client.create_instances(
                        tenant_id, static_cast<std::uint32_t>(instances));
                } catch (const serve::ServeError& e) {
                    // Admission shed the whole tenant: report it, keep the
                    // thread alive so the run still measures the others.
                    ++res.rejected[e.code()];
                    return;
                }
                res.instances = handles.size();
                std::vector<runtime::LcgInputSource> sources;
                sources.reserve(handles.size());
                for (std::size_t i = 0; i < handles.size(); ++i)
                    sources.emplace_back(seed + t * 1'000'000 + i);
                std::vector<double> rows(handles.size() * num_inputs);

                for (std::uint64_t n = 0;; ++n) {
                    const Clock::time_point due = start + period * n;
                    if (due - start >= duration) break;
                    std::this_thread::sleep_until(due); // no-op when behind
                    ++res.sent;
                    try {
                        if (num_inputs != 0) {
                            for (std::size_t i = 0; i < handles.size(); ++i)
                                sources[i].fill(std::span(rows).subspan(i * num_inputs,
                                                                        num_inputs));
                            client.post_inputs(tenant_id, handles, rows);
                        }
                        const Clock::time_point t0 = Clock::now();
                        client.tick(tenant_id, 1);
                        res.tick_ns.push_back(static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - t0)
                                .count()));
                        (void)client.read_outputs(tenant_id, handles);
                        ++res.ok;
                        ok_ticks.fetch_add(1, std::memory_order_relaxed);
                    } catch (const serve::ServeError& e) {
                        ++res.rejected[e.code()];
                    }
                }
                client.destroy_instances(tenant_id, handles);
            } catch (const std::exception& e) {
                ++res.transport_errors;
                std::fprintf(stderr, "sbd-loadgen: tenant %llu: %s\n",
                             static_cast<unsigned long long>(tenant_id), e.what());
            }
        });
    }
    // The upgrader runs on its own control connection (tenant 0) so the
    // swap competes with live traffic, not with a quiet server. Coded
    // rejections (version conflicts, injected serve.upgrade faults) are
    // retried: under chaos an upgrade is *expected* to bounce a few times.
    std::thread upgrader;
    if (upgrade.requested) {
        upgrader = std::thread([&] {
            while (ok_ticks.load(std::memory_order_relaxed) < upgrade_at &&
                   !load_done.load(std::memory_order_relaxed))
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            upgrade.fired_at_tick = ok_ticks.load(std::memory_order_relaxed);
            try {
                serve::Client control = serve::Client::connect(endpoint);
                for (int grace = 5; grace > 0;) {
                    try {
                        upgrade.result =
                            control.upgrade_model(0, upgrade_source, upgrade_allow_drain);
                        upgrade.applied = true;
                        return;
                    } catch (const serve::ServeError& e) {
                        ++upgrade.rejected[e.code()];
                        // Keep retrying while load runs; once it stops, a
                        // few grace attempts settle injected-fault flakes.
                        if (load_done.load(std::memory_order_relaxed)) --grace;
                    }
                    std::this_thread::sleep_for(std::chrono::milliseconds(25));
                }
            } catch (const std::exception& e) {
                std::fprintf(stderr, "sbd-loadgen: upgrade: %s\n", e.what());
            }
        });
    }

    for (std::thread& th : threads) th.join();
    load_done.store(true);
    if (upgrader.joinable()) upgrader.join();
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    // Aggregate.
    std::uint64_t sent = 0, ok = 0, transport_errors = 0;
    std::map<serve::Err, std::uint64_t> rejected;
    std::vector<std::uint64_t> all_ns;
    for (const TenantResult& r : results) {
        sent += r.sent;
        ok += r.ok;
        transport_errors += r.transport_errors;
        for (const auto& [code, n] : r.rejected) rejected[code] += n;
        all_ns.insert(all_ns.end(), r.tick_ns.begin(), r.tick_ns.end());
    }
    std::sort(all_ns.begin(), all_ns.end());
    const std::uint64_t p50 = percentile(all_ns, 0.50);
    const std::uint64_t p99 = percentile(all_ns, 0.99);
    std::uint64_t shed = 0;
    for (const auto& [code, n] : rejected) shed += n;

    std::printf("sbd-loadgen: %zu tenant(s) x %zu instance(s), target %llu rps each, "
                "%.2f s\n",
                tenants, instances, static_cast<unsigned long long>(rps), elapsed_s);
    std::printf("  sent %llu, ok %llu (%.0f/s achieved), rejected %llu, transport errors "
                "%llu\n",
                static_cast<unsigned long long>(sent), static_cast<unsigned long long>(ok),
                elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0.0,
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(transport_errors));
    for (const auto& [code, n] : rejected)
        std::printf("    %s: %llu\n", serve::to_string(code),
                    static_cast<unsigned long long>(n));
    std::printf("  tick latency p50 %.3f ms, p99 %.3f ms (%zu samples)\n",
                static_cast<double>(p50) / 1e6, static_cast<double>(p99) / 1e6,
                all_ns.size());
    if (upgrade.requested) {
        std::uint64_t upgrade_rejects = 0;
        for (const auto& [code, n] : upgrade.rejected) upgrade_rejects += n;
        if (upgrade.applied)
            std::printf("  upgrade: applied v%llu at tick %llu after %llu rejection(s) "
                        "(%llu/%llu units reused, swap %.3f ms%s)\n",
                        static_cast<unsigned long long>(upgrade.result.version),
                        static_cast<unsigned long long>(upgrade.fired_at_tick),
                        static_cast<unsigned long long>(upgrade_rejects),
                        static_cast<unsigned long long>(upgrade.result.units_reused),
                        static_cast<unsigned long long>(upgrade.result.units_total),
                        static_cast<double>(upgrade.result.swap_ns) / 1e6,
                        upgrade.result.drained ? ", drained" : "");
        else
            std::printf("  upgrade: NOT applied after %llu rejection(s)\n",
                        static_cast<unsigned long long>(upgrade_rejects));
        for (const auto& [code, n] : upgrade.rejected)
            std::printf("    %s: %llu\n", serve::to_string(code),
                        static_cast<unsigned long long>(n));
    }

    if (!json_out.empty()) {
        std::FILE* f = std::fopen(json_out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "sbd-loadgen: cannot write %s\n", json_out.c_str());
            return cli::kExitError;
        }
        std::fprintf(f,
                     "{\n  \"tenants\": %zu,\n  \"instances\": %zu,\n  \"target_rps\": %llu,"
                     "\n  \"duration_s\": %.3f,\n  \"sent\": %llu,\n  \"ok\": %llu,\n"
                     "  \"achieved_rps\": %.1f,\n  \"rejected\": {",
                     tenants, instances, static_cast<unsigned long long>(rps), elapsed_s,
                     static_cast<unsigned long long>(sent),
                     static_cast<unsigned long long>(ok),
                     elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0.0);
        bool first = true;
        for (const auto& [code, n] : rejected) {
            std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ", serve::to_string(code),
                         static_cast<unsigned long long>(n));
            first = false;
        }
        std::fprintf(f,
                     "},\n  \"transport_errors\": %llu,\n  \"tick_p50_ns\": %llu,\n"
                     "  \"tick_p99_ns\": %llu",
                     static_cast<unsigned long long>(transport_errors),
                     static_cast<unsigned long long>(p50),
                     static_cast<unsigned long long>(p99));
        if (upgrade.requested) {
            std::fprintf(f,
                         ",\n  \"upgrade\": {\n    \"applied\": %s,\n"
                         "    \"fired_at_tick\": %llu,\n    \"rejected\": {",
                         upgrade.applied ? "true" : "false",
                         static_cast<unsigned long long>(upgrade.fired_at_tick));
            first = true;
            for (const auto& [code, n] : upgrade.rejected) {
                std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ",
                             serve::to_string(code), static_cast<unsigned long long>(n));
                first = false;
            }
            std::fprintf(f, "}");
            if (upgrade.applied)
                std::fprintf(
                    f,
                    ",\n    \"version\": %llu,\n    \"units_total\": %llu,\n"
                    "    \"units_reused\": %llu,\n    \"reuse_ratio\": %.4f,\n"
                    "    \"drained\": %s,\n    \"state_copied\": %llu,\n"
                    "    \"compile_ns\": %llu,\n    \"swap_ns\": %llu",
                    static_cast<unsigned long long>(upgrade.result.version),
                    static_cast<unsigned long long>(upgrade.result.units_total),
                    static_cast<unsigned long long>(upgrade.result.units_reused),
                    upgrade.result.reuse_ratio(), upgrade.result.drained ? "true" : "false",
                    static_cast<unsigned long long>(upgrade.result.state_copied),
                    static_cast<unsigned long long>(upgrade.result.compile_ns),
                    static_cast<unsigned long long>(upgrade.result.swap_ns));
            std::fprintf(f, "\n  }");
        }
        std::fprintf(f, "\n}\n");
        std::fclose(f);
    }

    try {
        if (!stats_out.empty()) {
            serve::Client c = serve::Client::connect(endpoint);
            const std::string text = c.stats(0);
            std::FILE* f = std::fopen(stats_out.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr, "sbd-loadgen: cannot write %s\n", stats_out.c_str());
                return cli::kExitError;
            }
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
        }
        if (do_shutdown) {
            serve::Client c = serve::Client::connect(endpoint);
            c.shutdown(0);
        }
    } catch (const serve::ServeError& e) {
        std::fprintf(stderr, "sbd-loadgen: %s\n", e.what());
        return cli::kExitProtocol;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "sbd-loadgen: %s\n", e.what());
        return cli::kExitError;
    }

    if (transport_errors != 0) return cli::kExitError;
    if (upgrade.requested && !upgrade.applied) return cli::kExitUpgrade;
    if (fail_on_reject && shed != 0) return cli::kExitProtocol;
    return cli::kExitOk;
}
