// Shared command-line plumbing for the sbd* tools: one flag-table parser,
// one usage printer, the common exit-code contract, --version, and the
// observability flags (--metrics-out / --metrics-format / --trace-out)
// every instrumented tool exposes the same way.
#ifndef SBD_TOOLS_CLI_COMMON_HPP
#define SBD_TOOLS_CLI_COMMON_HPP

#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "core/methods.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"

namespace sbd::cli {

/// One released artifact, one version: every tool reports this via
/// --version as "<tool> <version>".
inline constexpr const char* kVersion = "0.11.0";

// Exit-code contract shared by every tool (tools use the subset that
// applies to them; no tool assigns a different meaning to these values).
inline constexpr int kExitOk = 0;       ///< success
inline constexpr int kExitError = 1;    ///< I/O, runtime or internal error
inline constexpr int kExitUsage = 2;    ///< bad command line
inline constexpr int kExitParse = 3;    ///< model parse error
inline constexpr int kExitCycle = 4;    ///< compile (cycle) rejection
inline constexpr int kExitLint = 5;     ///< lint diagnostics with errors
inline constexpr int kExitBudget = 6;   ///< resource budget exhausted (SBD021)
inline constexpr int kExitDeadline = 7; ///< wall-clock deadline exceeded
inline constexpr int kExitProtocol = 8; ///< coded wire-protocol error (serve)
inline constexpr int kExitNative = 9;   ///< native backend unavailable/failed
inline constexpr int kExitUpgrade = 10; ///< model upgrade rejected (diff/migration)
inline constexpr int kExitDurable = 11; ///< durable store unusable (journal/recovery)

/// Flag-table argument parser. Flags are registered against variables; the
/// table then drives both parsing and the usage text, so the two cannot
/// drift apart. Conventions (identical across tools): unknown flags and
/// malformed values print usage and exit kExitUsage; --help prints usage
/// and exits kExitOk; --version prints the tool name and version and exits
/// kExitOk; everything else is collected as a positional.
class ArgParser {
public:
    /// `positional` names the operand(s) in the usage line, e.g.
    /// "model.sbd" or "model.sbd...".
    ArgParser(std::string tool, std::string positional)
        : tool_(std::move(tool)), positional_(std::move(positional)) {}

    void flag(const char* name, const char* value_name, const char* help, std::string* out) {
        add(name, value_name, help, [out](const std::string& v) {
            *out = v;
            return true;
        });
    }
    /// Unsigned integer flag (std::size_t, std::uint64_t, ...). Rejects
    /// non-digit input and overflow instead of crashing through stoull.
    template <typename T>
        requires std::unsigned_integral<T>
    void flag(const char* name, const char* value_name, const char* help, T* out) {
        add(name, value_name, help, [out](const std::string& v) { return parse_u64_into(v, out); });
    }
    /// Value-less switch; `value` is what the switch sets `*out` to.
    void flag(const char* name, const char* help, bool* out, bool value = true) {
        Entry e;
        e.name = name;
        e.help = help;
        e.apply = [out, value](const std::string&) {
            *out = value;
            return true;
        };
        entries_.push_back(std::move(e));
    }

    /// Parses argv. Returns nullopt to continue running, or the process
    /// exit code (--help/--version/usage errors).
    std::optional<int> parse(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") return usage(stdout), kExitOk;
            if (arg == "--version") {
                std::printf("%s %s\n", tool_.c_str(), kVersion);
                return kExitOk;
            }
            const Entry* hit = nullptr;
            for (const Entry& e : entries_)
                if (arg == e.name) {
                    hit = &e;
                    break;
                }
            if (hit == nullptr) {
                if (!arg.empty() && arg[0] == '-') return usage(stderr), kExitUsage;
                positionals_.push_back(arg);
                continue;
            }
            std::string value;
            if (hit->value_name != nullptr) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s: missing value for %s\n", tool_.c_str(),
                                 arg.c_str());
                    return kExitUsage;
                }
                value = argv[++i];
            }
            if (!hit->apply(value)) {
                std::fprintf(stderr, "%s: bad value '%s' for %s\n", tool_.c_str(),
                             value.c_str(), arg.c_str());
                return kExitUsage;
            }
        }
        return std::nullopt;
    }

    /// Prints usage built from the flag table (plus the implicit
    /// --help/--version every tool has).
    void usage(std::FILE* to) const {
        std::fprintf(to, "usage: %s [options] %s\n", tool_.c_str(), positional_.c_str());
        // help == nullptr marks a hidden (testing-only) flag: parsed but
        // not advertised.
        for (const Entry& e : entries_)
            if (e.help != nullptr) print_entry(to, e.name, e.value_name, e.help);
        print_entry(to, "--version", nullptr, "print tool name and version, then exit");
        print_entry(to, "--help", nullptr, "print this help, then exit");
    }

    const std::vector<std::string>& positionals() const { return positionals_; }

private:
    struct Entry {
        const char* name = nullptr;
        const char* value_name = nullptr; ///< nullptr = boolean switch
        const char* help = nullptr;
        std::function<bool(const std::string&)> apply;
    };

    template <typename T> static bool parse_u64_into(const std::string& v, T* out) {
        if (v.empty()) return false;
        std::uint64_t x = 0;
        for (const char c : v) {
            if (c < '0' || c > '9') return false;
            const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
            if (x > (UINT64_MAX - d) / 10) return false; // overflow
            x = x * 10 + d;
        }
        *out = static_cast<T>(x);
        return true;
    }

    static void print_entry(std::FILE* to, const char* name, const char* value_name,
                            const char* help) {
        std::string head = "  ";
        head += name;
        if (value_name != nullptr) {
            head += ' ';
            head += value_name;
        }
        std::fprintf(to, "%-17s", head.c_str());
        // Multi-line help: continuation lines are pre-indented by callers.
        std::fprintf(to, "%s\n", help);
    }

    void add(const char* name, const char* value_name, const char* help,
             std::function<bool(const std::string&)> apply) {
        Entry e;
        e.name = name;
        e.value_name = value_name;
        e.help = help;
        e.apply = std::move(apply);
        entries_.push_back(std::move(e));
    }

    std::string tool_;
    std::string positional_;
    std::vector<Entry> entries_;
    std::vector<std::string> positionals_;
};

/// Parses a clustering-method name; returns nullopt for unknown names (the
/// caller decides between usage exit and ModelError).
inline std::optional<codegen::Method> parse_method(const std::string& name) {
    using codegen::Method;
    for (const Method m : {Method::Monolithic, Method::StepGet, Method::Dynamic,
                           Method::DisjointSat, Method::DisjointGreedy, Method::Singletons})
        if (name == to_string(m)) return m;
    return std::nullopt;
}

/// Parses an execution-backend name (every tool spells the choice the same
/// way: --backend interp | native); nullopt for unknown names.
inline std::optional<codegen::Backend> parse_backend(const std::string& name) {
    using codegen::Backend;
    for (const Backend b : {Backend::Interp, Backend::Native})
        if (name == to_string(b)) return b;
    return std::nullopt;
}

/// The observability surface shared by sbdc and sbd-run.
struct ObsOptions {
    std::string metrics_out;    ///< metrics snapshot file ("" = off)
    std::string metrics_format; ///< "prom" | "json" | "table" ("" = by extension)
    std::string trace_out;      ///< span trace file ("" = off)

    bool enabled() const { return !metrics_out.empty() || !trace_out.empty(); }
};

inline void add_obs_flags(ArgParser& p, ObsOptions* o) {
    p.flag("--metrics-out", "FILE",
           "write a metrics snapshot on exit (.json = JSON, .txt = table,\n"
           "                 else Prometheus text exposition)",
           &o->metrics_out);
    p.flag("--metrics-format", "F", "prom | json | table (overrides the extension rule)",
           &o->metrics_format);
    p.flag("--trace-out", "FILE",
           "record trace spans and write them on exit (.json = Chrome\n"
           "                 about:tracing, else compact SBDO binary)",
           &o->trace_out);
}

/// The resilience surface shared by the tools: budgets (user-facing) and
/// the hidden deterministic fault-plan flag the chaos tests drive.
struct ResilienceOptions {
    std::uint64_t deadline_ms = 0;           ///< 0 = no deadline
    std::uint64_t sat_conflict_budget = 0;   ///< 0 = unlimited
    bool sat_budget_degrade = false;         ///< degrade instead of exit 6
    std::string fault_plan;                  ///< testing: FaultPlan text spec
};

inline void add_resilience_flags(ArgParser& p, ResilienceOptions* r, bool sat_flags = true) {
    p.flag("--deadline-ms", "MS",
           "wall-clock budget; expiry exits 7 with a partial-result error", &r->deadline_ms);
    if (sat_flags) {
        p.flag("--sat-conflict-budget", "N",
               "per-instance SAT conflict budget for the sat method;\n"
               "                 exhaustion exits 6 (see --sat-degrade)",
               &r->sat_conflict_budget);
        p.flag("--sat-degrade",
               "on SAT budget exhaustion degrade to a valid non-optimal\n"
               "                 clustering (warns SBD021) instead of exiting 6",
               &r->sat_budget_degrade);
    }
    // --fault-plan is intentionally absent from the usage text (DESIGN.md
    // "Testing hooks" documents the grammar and seed semantics): it is the
    // chaos-testing hook (tests/test_resilience.cpp), not a user feature.
    p.flag("--fault-plan", "SPEC", nullptr, &r->fault_plan);
}

/// Arms the process-global fault registry when --fault-plan was given.
/// Returns kExitUsage on a malformed spec, nullopt to continue.
inline std::optional<int> arm_fault_plan(const char* tool, const ResilienceOptions& r) {
    if (r.fault_plan.empty()) return std::nullopt;
    try {
        resilience::FaultRegistry::instance().arm(resilience::FaultPlan::parse(r.fault_plan));
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: %s\n", tool, e.what());
        return kExitUsage;
    }
    return std::nullopt;
}

/// RAII activation of span collection for the duration of a tool run:
/// installs a collector iff --trace-out was given (otherwise TraceSpan
/// stays a no-op costing one relaxed atomic load).
class ScopedTracing {
public:
    explicit ScopedTracing(const ObsOptions& o) {
        if (!o.trace_out.empty()) {
            collector_.emplace();
            collector_->install();
        }
    }
    obs::TraceCollector* collector() { return collector_ ? &*collector_ : nullptr; }

private:
    std::optional<obs::TraceCollector> collector_;
};

/// Writes the requested --metrics-out/--trace-out files. Returns kExitOk,
/// or kExitError if any write failed (the tool's real exit code wins if it
/// is already nonzero).
inline int write_obs_outputs(const ObsOptions& o, obs::MetricsRegistry* reg,
                             ScopedTracing& tracing) {
    bool ok = true;
    if (reg != nullptr && resilience::fault_armed())
        resilience::FaultRegistry::instance().export_metrics(*reg);
    if (!o.metrics_out.empty() && reg != nullptr)
        ok = obs::write_metrics_file(reg->snapshot(), o.metrics_out, o.metrics_format) && ok;
    if (!o.trace_out.empty() && tracing.collector() != nullptr) {
        obs::TraceCollector* col = tracing.collector();
        col->uninstall(); // stop recording before the drain
        ok = obs::write_trace_file(col->drain(), o.trace_out) && ok;
    }
    return ok ? kExitOk : kExitError;
}

} // namespace sbd::cli

#endif
