// sbd-run — concurrent runtime engine driver for compiled block diagrams.
//
// Hosts a pool of independent instances of one compiled model and advances
// all of them in lockstep, one synchronous instant per tick, batched across
// a thread pool. Each instance is driven by its own deterministic input
// stream (seed + instance index), so any run is reproducible bit-for-bit
// at every thread count.
//
//   sbd-run --instances 1000 --instants 500 --threads 8 model.sbd
//   sbd-run --method disjoint-sat --record trace.sbdt model.sbd
//   sbd-run --replay trace.sbdt model.sbd     # bit-exact regression check
//
// Exit codes: 0 ok, 1 runtime/replay mismatch, 2 usage,
//             3 parse error, 4 compile (cycle) rejection.

#include <chrono>
#include <cstdio>
#include <string>

#include "core/pipeline.hpp"
#include "runtime/engine.hpp"
#include "runtime/trace.hpp"
#include "sbd/text_format.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [options] model.sbd\n"
                 "  --instances N  concurrent instances to host       (default 1)\n"
                 "  --instants T   synchronous instants to execute    (default 100)\n"
                 "  --threads K    threads stepping each tick         (default 1)\n"
                 "  --method M     monolithic | step-get | dynamic | disjoint-sat |\n"
                 "                 disjoint-greedy | singletons       (default: dynamic)\n"
                 "  --seed S       base input seed; instance i uses S+i (default 1)\n"
                 "  --record FILE  save instance 0's I/O trace (.csv for text,\n"
                 "                 anything else for SBDT binary)\n"
                 "  --replay FILE  replay a recorded trace through a fresh instance\n"
                 "                 and the reference simulator; fail on any bit diff\n"
                 "  --cache-dir D  reuse compiled profiles from D (shared with sbdc)\n"
                 "  --print        print instance 0's outputs per instant\n",
                 argv0);
    return 2;
}

Method parse_method(const std::string& name) {
    for (const Method m : {Method::Monolithic, Method::StepGet, Method::Dynamic,
                           Method::DisjointSat, Method::DisjointGreedy, Method::Singletons})
        if (name == to_string(m)) return m;
    throw ModelError("unknown method '" + name + "'");
}

int run_replay(const CompiledSystem& sys, const std::shared_ptr<const MacroBlock>& root,
               const std::string& path) {
    const runtime::Trace recorded = runtime::load_trace(path);
    if (recorded.num_inputs != root->num_inputs() ||
        recorded.num_outputs != root->num_outputs()) {
        std::fprintf(stderr, "replay: trace is %zux%zu but model has %zu inputs, %zu outputs\n",
                     recorded.num_inputs, recorded.num_outputs, root->num_inputs(),
                     root->num_outputs());
        return 1;
    }
    const runtime::Trace generated = runtime::replay(sys, root, recorded);
    const runtime::Trace reference = runtime::simulate_reference(*root, recorded);
    const bool gen_ok = runtime::bit_equal(generated, recorded);
    const bool sim_ok = runtime::bit_equal(reference, recorded);
    std::printf("replay: %zu instants, generated code %s, reference simulator %s\n",
                recorded.instants(), gen_ok ? "MATCH" : "MISMATCH",
                sim_ok ? "MATCH" : "MISMATCH");
    return gen_ok && sim_ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::size_t instances = 1;
    std::size_t instants = 100;
    std::size_t threads = 1;
    std::uint64_t seed = 1;
    std::string method_name = "dynamic";
    std::string record_path;
    std::string replay_path;
    std::string input_path;
    std::string cache_dir;
    bool print = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--instances") instances = std::stoull(value());
        else if (arg == "--instants") instants = std::stoull(value());
        else if (arg == "--threads") threads = std::stoull(value());
        else if (arg == "--method") method_name = value();
        else if (arg == "--seed") seed = std::stoull(value());
        else if (arg == "--record") record_path = value();
        else if (arg == "--replay") replay_path = value();
        else if (arg == "--cache-dir") cache_dir = value();
        else if (arg == "--print") print = true;
        else if (arg == "--help" || arg == "-h") return usage(argv[0]);
        else if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
        else input_path = arg;
    }
    if (input_path.empty() || instances == 0) return usage(argv[0]);

    text::ParsedFile file;
    try {
        file = text::parse_sbd_file(input_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "parse error: %s\n", e.what());
        return 3;
    }

    try {
        const std::shared_ptr<const MacroBlock> root = file.root;
        PipelineOptions popts;
        popts.method = parse_method(method_name);
        popts.cache_dir = cache_dir;
        Pipeline pipeline(popts);
        const CompiledSystem sys = pipeline.compile(root);

        if (!replay_path.empty()) return run_replay(sys, root, replay_path);

        runtime::EngineConfig cfg;
        cfg.capacity = instances;
        cfg.threads = threads;
        runtime::Engine engine(sys, root, cfg);
        const std::vector<runtime::InstanceId> ids = engine.create(instances);

        std::vector<runtime::LcgInputSource> sources;
        sources.reserve(instances);
        for (std::size_t i = 0; i < instances; ++i) sources.emplace_back(seed + i);

        runtime::TraceRecorder recorder(root->num_inputs(), root->num_outputs());
        if (print) {
            std::printf("# t");
            for (std::size_t o = 0; o < root->num_outputs(); ++o)
                std::printf(" %s", root->output_name(o).c_str());
            std::printf("\n");
        }

        double checksum = 0.0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t t = 0; t < instants; ++t) {
            for (std::size_t i = 0; i < instances; ++i)
                sources[i].fill(engine.pool().inputs(ids[i]));
            engine.tick();
            for (std::size_t i = 0; i < instances; ++i)
                for (const double v : engine.pool().outputs(ids[i])) checksum += v;
            if (!record_path.empty())
                recorder.record(engine.pool().inputs(ids[0]), engine.pool().outputs(ids[0]));
            if (print) {
                std::printf("%zu", t);
                for (const double v : engine.pool().outputs(ids[0])) std::printf(" %.10g", v);
                std::printf("\n");
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double sec = std::chrono::duration<double>(t1 - t0).count();

        if (!record_path.empty()) {
            runtime::save_trace(recorder.trace(), record_path);
            std::fprintf(stderr, "recorded %zu instants of instance 0 to %s\n", instants,
                         record_path.c_str());
        }

        const double total = static_cast<double>(instances) * static_cast<double>(instants);
        std::fprintf(stderr,
                     "%zu instances x %zu instants, %zu thread(s), method %s: "
                     "%.3f s, %.0f instance-instants/s (checksum %.6g)\n",
                     instances, instants, engine.threads(), method_name.c_str(), sec,
                     sec > 0 ? total / sec : 0.0, checksum);
        return 0;
    } catch (const SdgCycleError& e) {
        std::fprintf(stderr, "rejected: %s\n", e.what());
        return 4;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
