// sbd-run — concurrent runtime engine driver for compiled block diagrams.
//
// Hosts a pool of independent instances of one compiled model and advances
// all of them in lockstep, one synchronous instant per tick, batched across
// a thread pool. Each instance is driven by its own deterministic input
// stream (seed + instance index), so any run is reproducible bit-for-bit
// at every thread count.
//
//   sbd-run --instances 1000 --instants 500 --threads 8 model.sbd
//   sbd-run --method disjoint-sat --record trace.sbdt model.sbd
//   sbd-run --replay trace.sbdt model.sbd     # bit-exact regression check
//   sbd-run --metrics-out m.prom --trace-out t.json model.sbd
//   sbd-run --backend native model.sbd        # AOT-compiled .so execution
//
// Exit codes: 0 ok, 1 runtime/replay mismatch, 2 usage,
//             3 parse error, 4 compile (cycle) rejection,
//             6 resource budget exhausted, 7 deadline exceeded,
//             9 native backend unavailable or failed.

#include <chrono>
#include <cstdio>
#include <string>

#include "cli_common.hpp"
#include "core/pipeline.hpp"
#include "native/native.hpp"
#include "runtime/engine.hpp"
#include "runtime/trace.hpp"
#include "sbd/text_format.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

int run_replay(const CompiledSystem& sys, const std::shared_ptr<const MacroBlock>& root,
               const std::string& path,
               const std::shared_ptr<const codegen::Executable>& executable) {
    const runtime::Trace recorded = runtime::load_trace(path);
    if (recorded.num_inputs != root->num_inputs() ||
        recorded.num_outputs != root->num_outputs()) {
        std::fprintf(stderr, "replay: trace is %zux%zu but model has %zu inputs, %zu outputs\n",
                     recorded.num_inputs, recorded.num_outputs, root->num_inputs(),
                     root->num_outputs());
        return cli::kExitError;
    }
    const runtime::Trace generated = runtime::replay(sys, root, recorded, executable);
    const runtime::Trace reference = runtime::simulate_reference(*root, recorded);
    const bool gen_ok = runtime::bit_equal(generated, recorded);
    const bool sim_ok = runtime::bit_equal(reference, recorded);
    std::printf("replay: %zu instants, generated code %s, reference simulator %s\n",
                recorded.instants(), gen_ok ? "MATCH" : "MISMATCH",
                sim_ok ? "MATCH" : "MISMATCH");
    return gen_ok && sim_ok ? cli::kExitOk : cli::kExitError;
}

} // namespace

int main(int argc, char** argv) {
    std::size_t instances = 1;
    std::size_t instants = 100;
    std::size_t threads = 1;
    std::uint64_t seed = 1;
    std::string method_name = "dynamic";
    std::string backend_name = "interp";
    std::string record_path;
    std::string replay_path;
    std::string cache_dir;
    bool print = false;
    cli::ObsOptions obs_opts;
    cli::ResilienceOptions res_opts;

    cli::ArgParser parser("sbd-run", "model.sbd");
    parser.flag("--instances", "N", "concurrent instances to host       (default 1)",
                &instances);
    parser.flag("--instants", "T", "synchronous instants to execute    (default 100)",
                &instants);
    parser.flag("--threads", "K", "threads stepping each tick         (default 1)", &threads);
    parser.flag("--method", "M",
                "monolithic | step-get | dynamic | disjoint-sat |\n"
                "                 disjoint-greedy | singletons       (default: dynamic)",
                &method_name);
    parser.flag("--backend", "B",
                "interp | native (AOT-compile the generated C++\n"
                "                 into a shared object and run it)  (default: interp)",
                &backend_name);
    parser.flag("--seed", "S", "base input seed; instance i uses S+i (default 1)", &seed);
    parser.flag("--record", "FILE",
                "save instance 0's I/O trace (.csv for text,\n"
                "                 anything else for SBDT binary)",
                &record_path);
    parser.flag("--replay", "FILE",
                "replay a recorded trace through a fresh instance\n"
                "                 and the reference simulator; fail on any bit diff",
                &replay_path);
    parser.flag("--cache-dir", "D", "reuse compiled profiles from D (shared with sbdc)",
                &cache_dir);
    parser.flag("--print", "print instance 0's outputs per instant", &print);
    cli::add_obs_flags(parser, &obs_opts);
    cli::add_resilience_flags(parser, &res_opts);
    if (const auto code = parser.parse(argc, argv)) return *code;
    if (const auto code = cli::arm_fault_plan("sbd-run", res_opts)) return *code;

    if (parser.positionals().size() != 1 || instances == 0)
        return parser.usage(stderr), cli::kExitUsage;
    const std::string input_path = parser.positionals().front();
    const auto method = cli::parse_method(method_name);
    if (!method) {
        std::fprintf(stderr, "sbd-run: unknown method '%s'\n", method_name.c_str());
        return cli::kExitUsage;
    }
    const auto backend = cli::parse_backend(backend_name);
    if (!backend) {
        std::fprintf(stderr, "sbd-run: unknown backend '%s'\n", backend_name.c_str());
        return cli::kExitUsage;
    }
    native::install();

    obs::MetricsRegistry registry;
    cli::ScopedTracing tracing(obs_opts);
    const auto finish = [&](int code) {
        const int obs_code = cli::write_obs_outputs(obs_opts, &registry, tracing);
        return code != cli::kExitOk ? code : obs_code;
    };

    text::ParsedFile file;
    try {
        file = text::parse_sbd_file(input_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "parse error: %s\n", e.what());
        return finish(cli::kExitParse);
    }

    try {
        const std::shared_ptr<const MacroBlock> root = file.root;
        PipelineOptions popts;
        popts.method = *method;
        popts.cluster.sat_conflict_budget = res_opts.sat_conflict_budget;
        popts.cluster.sat_budget_degrade = res_opts.sat_budget_degrade;
        popts.cache_dir = cache_dir;
        popts.metrics = &registry;
        popts.budgets.deadline_ms = res_opts.deadline_ms;
        Pipeline pipeline(popts);
        const CompiledSystem sys = pipeline.compile(root);

        std::shared_ptr<const Executable> executable;
        if (*backend == Backend::Native) {
            BackendConfig bc;
            bc.backend = Backend::Native;
            bc.method = *method;
            bc.cluster = popts.cluster;
            if (!cache_dir.empty()) bc.cache_dir = cache_dir + "/native";
            bc.metrics = &registry;
            executable = make_executable(sys, root, bc);
        }

        if (!replay_path.empty()) return finish(run_replay(sys, root, replay_path, executable));

        runtime::EngineConfig cfg;
        cfg.capacity = instances;
        cfg.threads = threads;
        cfg.deadline_ms = res_opts.deadline_ms;
        cfg.executable = executable;
        if (obs_opts.enabled()) cfg.metrics = &registry;
        runtime::Engine engine(sys, root, cfg);
        const std::vector<runtime::InstanceId> ids = engine.create(instances);

        std::vector<runtime::LcgInputSource> sources;
        sources.reserve(instances);
        for (std::size_t i = 0; i < instances; ++i) sources.emplace_back(seed + i);

        runtime::TraceRecorder recorder(root->num_inputs(), root->num_outputs());
        if (print) {
            std::printf("# t");
            for (std::size_t o = 0; o < root->num_outputs(); ++o)
                std::printf(" %s", root->output_name(o).c_str());
            std::printf("\n");
        }

        double checksum = 0.0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t t = 0; t < instants; ++t) {
            for (std::size_t i = 0; i < instances; ++i)
                sources[i].fill(engine.pool().inputs(ids[i]));
            engine.tick();
            for (std::size_t i = 0; i < instances; ++i)
                for (const double v : engine.pool().outputs(ids[i])) checksum += v;
            if (!record_path.empty())
                recorder.record(engine.pool().inputs(ids[0]), engine.pool().outputs(ids[0]));
            if (print) {
                std::printf("%zu", t);
                for (const double v : engine.pool().outputs(ids[0])) std::printf(" %.10g", v);
                std::printf("\n");
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double sec = std::chrono::duration<double>(t1 - t0).count();

        if (!record_path.empty()) {
            runtime::save_trace(recorder.trace(), record_path);
            std::fprintf(stderr, "recorded %zu instants of instance 0 to %s\n", instants,
                         record_path.c_str());
        }

        const double total = static_cast<double>(instances) * static_cast<double>(instants);
        std::fprintf(stderr,
                     "%zu instances x %zu instants, %zu thread(s), method %s, backend %s: "
                     "%.3f s, %.0f instance-instants/s (checksum %.6g)\n",
                     instances, instants, engine.threads(), method_name.c_str(),
                     engine.pool().executable().backend_name(), sec,
                     sec > 0 ? total / sec : 0.0, checksum);
        return finish(cli::kExitOk);
    } catch (const SdgCycleError& e) {
        std::fprintf(stderr, "rejected: %s\n", e.what());
        return finish(cli::kExitCycle);
    } catch (const BackendError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitNative);
    } catch (const resilience::BudgetExhausted& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitBudget);
    } catch (const resilience::DeadlineExceeded& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitDeadline);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return finish(cli::kExitError);
    }
}
