// Regenerates the paper's Figures 4-6 series: modularity vs code size on
// the chain example P = A1..An + B + C.
//
//   dynamic:  2 interface functions, chain replicated in both, one modulo-2
//             guard counter  (Figure 4(c) / Figure 5)
//   disjoint: 3 interface functions, zero replication, no counter
//             (Figure 4(d) / Figure 6)
//   step-get: at most 2 functions but false input-output dependencies.
//
// Expected shape: dynamic LoC ~ 2n, disjoint LoC ~ n, constant function
// counts, crossover never (disjoint always smaller for this family).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/clustering.hpp"
#include "core/compiler.hpp"
#include "suite/figures.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

void print_series() {
    std::printf("Figure 4-6: modularity vs code size on the chain example (sweep n)\n");
    sbd::bench::rule();
    std::printf("%6s | %22s | %22s | %22s\n", "", "dynamic", "optimal disjoint", "step-get");
    std::printf("%6s | %6s %6s %8s | %6s %6s %8s | %6s %6s %8s\n", "n", "fns", "LoC", "repl",
                "fns", "LoC", "repl", "fns", "LoC", "falseIO");
    sbd::bench::rule();
    for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const auto p = suite::figure4_chain(n);
        const auto dyn = compile_hierarchy(p, Method::Dynamic);
        const auto dis = compile_hierarchy(p, Method::DisjointSat);
        const auto sg = compile_hierarchy(p, Method::StepGet);
        const auto& dcb = dyn.at(*p);
        const auto& scb = dis.at(*p);
        const auto& gcb = sg.at(*p);
        std::printf("%6zu | %6zu %6zu %8zu | %6zu %6zu %8zu | %6zu %6zu %8zu\n", n,
                    dcb.code->functions.size(), dcb.code->line_count(),
                    dcb.clustering->replicated_nodes(*dcb.sdg), scb.code->functions.size(),
                    scb.code->line_count(), scb.clustering->replicated_nodes(*scb.sdg),
                    gcb.code->functions.size(), gcb.code->line_count(),
                    false_io_dependencies(*gcb.sdg, *gcb.clustering).size());
    }
    sbd::bench::rule();
    std::printf("shape check: dynamic LoC grows ~2n (replicated chain + guards), disjoint ~n,\n"
                "             function counts stay 2 vs 3, step-get trades false deps for 2 fns\n\n");
}

void BM_CompileChainDynamic(benchmark::State& state) {
    const auto p = suite::figure4_chain(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(compile_hierarchy(p, Method::Dynamic));
}
BENCHMARK(BM_CompileChainDynamic)->Arg(8)->Arg(32)->Arg(128);

void BM_CompileChainDisjointSat(benchmark::State& state) {
    const auto p = suite::figure4_chain(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(compile_hierarchy(p, Method::DisjointSat));
}
BENCHMARK(BM_CompileChainDisjointSat)->Arg(8)->Arg(32)->Arg(128);

} // namespace

int main(int argc, char** argv) {
    print_series();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
