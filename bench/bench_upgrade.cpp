// Live-upgrade benchmark: how incremental the recompile is and how long
// the swap pause lasts.
//
// Reuse: for each model, a single deep-subtree edit (one leaf subsystem
// replaced, everything else untouched) is recompiled through the profile
// cache that compiled v1; the cell records the structural diff's reuse
// ratio and the pipeline's actual cache-hit counters. Swap pause: a
// 256-instance engine is rebound old<->new repeatedly and each pause
// (prepare + migrate + commit, the window in which no instant can run) is
// timed; a second table measures the served path's UPGRADE_MODEL swap_ns
// over a live loopback connection.
//
// Machine-readable output: BENCH_upgrade.json. Gates (exit code): every
// single-subtree edit of a model with >= 6 macro units must reuse >= 50%
// of them, the engine-level p99 swap pause must stay under the 100 ms
// tick deadline, and the served swap p99 must too.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "runtime/engine.hpp"
#include "sbd/library.hpp"
#include "sbd/text_format.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "suite/models.hpp"
#include "suite/random_models.hpp"
#include "upgrade/upgrade.hpp"

namespace {

using namespace sbd;
using codegen::Method;

constexpr std::uint64_t kTickDeadlineNs = 100ull * 1000 * 1000; // 100 ms

std::uint64_t percentile_ns(std::vector<std::uint64_t> v, double q) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t idx =
        std::min(v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
    return v[idx];
}

// --- single-deep-subtree editor -------------------------------------------

std::shared_ptr<MacroBlock> shell_of(const MacroBlock& m) {
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < m.num_inputs(); ++i) ins.push_back(m.input_name(i));
    for (std::size_t o = 0; o < m.num_outputs(); ++o) outs.push_back(m.output_name(o));
    return std::make_shared<MacroBlock>(m.type_name(), std::move(ins), std::move(outs));
}

/// Same-interface Moore stand-in: each output an integrator of one input,
/// so the edit can never introduce an algebraic loop in any parent.
BlockPtr stand_in_for(const MacroBlock& victim, double seed) {
    auto repl = shell_of(victim);
    for (std::size_t o = 0; o < victim.num_outputs(); ++o) {
        const std::string inst = "Upg" + std::to_string(o);
        repl->add_sub(inst, lib::integrator(0.1, seed + static_cast<double>(o)));
        repl->connect(victim.input_name(o % victim.num_inputs()), inst + ".u");
        repl->connect(inst + ".y", victim.output_name(o));
    }
    repl->validate();
    return repl;
}

BlockPtr rebuild_with(const MacroBlock& m, std::size_t index, const BlockPtr& repl) {
    auto c = shell_of(m);
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const auto& sub = m.sub(s);
        const auto id = c->add_sub(sub.name, s == index ? repl : sub.type);
        if (sub.trigger) c->set_trigger(id, *sub.trigger);
    }
    for (const Connection& conn : m.connections()) c->connect(conn.src, conn.dst);
    c->validate();
    return c;
}

/// Replaces the deepest nested subsystem reachable from the first macro
/// child and rebuilds only the spine above it — the minimal "one subsystem
/// edited in the editor" delta. Returns nullptr if `m` has no usable
/// macro child.
BlockPtr replace_deepest(const MacroBlock& m, double seed) {
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        if (m.sub(s).type->is_atomic()) continue;
        const auto& sub = static_cast<const MacroBlock&>(*m.sub(s).type);
        if (sub.num_inputs() == 0 || sub.num_outputs() == 0) continue;
        const BlockPtr deeper = replace_deepest(sub, seed);
        return rebuild_with(m, s, deeper ? deeper : stand_in_for(sub, seed));
    }
    return nullptr;
}

// --- reuse cells ----------------------------------------------------------

struct ReuseCell {
    std::string model;
    std::uint64_t units_total = 0;
    std::uint64_t units_reused = 0;
    std::uint64_t cache_reuses = 0;   ///< pipeline counters for the v2 compile
    std::uint64_t cache_compiles = 0;
    double reuse_ratio = 0.0;
    bool gated = false; ///< counts toward the >= 50% gate
};

ReuseCell measure_reuse(const std::string& name, const BlockPtr& root) {
    ReuseCell cell;
    cell.model = name;
    const BlockPtr v2 = replace_deepest(static_cast<const MacroBlock&>(*root), 2.5);
    if (!v2) return cell; // flat model: no single-subtree edit exists

    auto cache = std::make_shared<codegen::ProfileCache>(0);
    codegen::PipelineOptions popts;
    popts.method = Method::Dynamic;
    codegen::Pipeline p1(popts, cache);
    (void)p1.compile(root);

    codegen::Pipeline p2(popts, cache);
    (void)p2.compile(v2);
    cell.cache_reuses = p2.stats().macro_reuses;
    cell.cache_compiles = p2.stats().macro_compiles;

    const upgrade::ModelDiff diff = upgrade::diff_models(root, v2);
    cell.units_total = diff.units_total;
    cell.units_reused = diff.units_reused;
    cell.reuse_ratio = diff.reuse_ratio();
    cell.gated = diff.units_total >= 6;
    return cell;
}

// --- swap pause -----------------------------------------------------------

struct SwapStats {
    std::size_t swaps = 0;
    std::size_t instances = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
};

/// Engine-level pause: the wall-clock cost of rebind() itself — the window
/// during which the pool is pinned and no instant can start — with 256
/// live instances carrying state both ways.
SwapStats measure_engine_swap(std::size_t instances, std::size_t swaps) {
    using clock = std::chrono::steady_clock;
    const auto old_root = suite::thermostat();
    const BlockPtr new_root = replace_deepest(*old_root, 3.5);

    codegen::PipelineOptions popts;
    popts.method = Method::Dynamic;
    codegen::Pipeline p(popts);
    const codegen::CompiledSystem sys_old = p.compile(old_root);
    const codegen::CompiledSystem sys_new = p.compile(new_root);
    const upgrade::MigrationPlan fwd =
        upgrade::plan_migration(sys_old, old_root, sys_new, new_root);
    const upgrade::MigrationPlan back =
        upgrade::plan_migration(sys_new, new_root, sys_old, old_root);

    runtime::EngineConfig ecfg;
    ecfg.capacity = instances;
    runtime::Engine eng(sys_old, old_root, ecfg);
    eng.create(instances);
    eng.tick(5);

    SwapStats st;
    st.instances = instances;
    std::vector<std::uint64_t> pauses;
    for (std::size_t n = 0; n < swaps; ++n) {
        const bool forward = n % 2 == 0;
        const auto t0 = clock::now();
        if (forward)
            eng.rebind(sys_new, new_root, nullptr, fwd);
        else
            eng.rebind(sys_old, old_root, nullptr, back);
        pauses.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
                .count()));
        eng.tick(2); // keep real state flowing between swaps
    }
    st.swaps = pauses.size();
    st.p50_ns = percentile_ns(pauses, 0.50);
    st.p99_ns = percentile_ns(pauses, 0.99);
    return st;
}

/// Served pause: the server's own swap_ns (exclusive-lock prepare+commit
/// across all shards) over repeated UPGRADE_MODEL round-trips while the
/// instances stay live.
SwapStats measure_served_swap(std::size_t instances, std::size_t swaps) {
    const auto root = suite::thermostat();
    auto cache = std::make_shared<codegen::ProfileCache>(0);
    codegen::PipelineOptions popts;
    popts.method = Method::Dynamic;
    codegen::Pipeline pipeline(popts, cache);
    const codegen::CompiledSystem sys = pipeline.compile(root);

    serve::ServerConfig cfg;
    cfg.endpoint = serve::Endpoint::parse("tcp:127.0.0.1:0");
    cfg.shards = 2;
    cfg.shard_capacity = instances;
    upgrade::CompileContext uctx;
    uctx.method = Method::Dynamic;
    uctx.cache = cache;
    cfg.upgrade = std::move(uctx);
    serve::Server server(sys, root, cfg);
    server.start();
    auto client = serve::Client::connect(server.endpoint());
    (void)client.create_instances(1, static_cast<std::uint32_t>(instances));
    (void)client.tick(1, 5);

    const std::string v1 = text::to_sbd(*root);
    const BlockPtr edited = replace_deepest(*root, 4.5);
    const std::string v2 = text::to_sbd(static_cast<const MacroBlock&>(*edited));

    SwapStats st;
    st.instances = instances;
    std::vector<std::uint64_t> pauses;
    for (std::size_t n = 0; n < swaps; ++n) {
        const serve::UpgradeResult r =
            client.upgrade_model(1, n % 2 == 0 ? v2 : v1);
        pauses.push_back(r.swap_ns);
        (void)client.tick(1, 2);
    }
    st.swaps = pauses.size();
    st.p50_ns = percentile_ns(pauses, 0.50);
    st.p99_ns = percentile_ns(pauses, 0.99);
    server.request_stop();
    server.wait();
    return st;
}

void write_json(const std::vector<ReuseCell>& cells, const SwapStats& engine,
                const SwapStats& served, bool gates_pass) {
    std::FILE* f = std::fopen("BENCH_upgrade.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_upgrade.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"upgrade\",\n");
    std::fprintf(f, "  \"tick_deadline_ns\": %llu,\n",
                 static_cast<unsigned long long>(kTickDeadlineNs));
    std::fprintf(f, "  \"gates_pass\": %s,\n  \"reuse\": [\n", gates_pass ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ReuseCell& c = cells[i];
        std::fprintf(f,
                     "    {\"model\": \"%s\", \"units_total\": %llu, "
                     "\"units_reused\": %llu, \"reuse_ratio\": %.3f, "
                     "\"cache_reuses\": %llu, \"cache_compiles\": %llu, "
                     "\"gated\": %s}%s\n",
                     c.model.c_str(), static_cast<unsigned long long>(c.units_total),
                     static_cast<unsigned long long>(c.units_reused), c.reuse_ratio,
                     static_cast<unsigned long long>(c.cache_reuses),
                     static_cast<unsigned long long>(c.cache_compiles),
                     c.gated ? "true" : "false", i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    const auto swap_obj = [&](const char* key, const SwapStats& s, const char* tail) {
        std::fprintf(f,
                     "  \"%s\": {\"instances\": %zu, \"swaps\": %zu, "
                     "\"p50_ns\": %llu, \"p99_ns\": %llu}%s\n",
                     key, s.instances, s.swaps, static_cast<unsigned long long>(s.p50_ns),
                     static_cast<unsigned long long>(s.p99_ns), tail);
    };
    swap_obj("engine_swap", engine, ",");
    swap_obj("served_swap", served, "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_upgrade.json\n");
}

} // namespace

int main() {
    std::printf("live upgrades: subtree reuse on single-subsystem edits, swap pause\n");

    std::vector<ReuseCell> cells;
    cells.push_back(measure_reuse("thermostat", suite::thermostat()));
    cells.push_back(measure_reuse("fuel_controller", suite::fuel_controller()));
    cells.push_back(measure_reuse("shared_chain_sensor", suite::shared_chain_sensor()));
    {
        std::mt19937_64 rng(42);
        suite::RandomModelParams params;
        params.depth = 3;
        params.subs_per_level = 5;
        params.macro_probability = 0.6;
        cells.push_back(measure_reuse("random_deep_42", suite::random_model(rng, params)));
    }

    sbd::bench::rule('-', 84);
    std::printf("%-22s | %11s | %12s | %11s | %6s\n", "model", "units", "reused",
                "reuse ratio", "gated");
    sbd::bench::rule('-', 84);
    for (const ReuseCell& c : cells)
        std::printf("%-22s | %11llu | %12llu | %10.0f%% | %6s\n", c.model.c_str(),
                    static_cast<unsigned long long>(c.units_total),
                    static_cast<unsigned long long>(c.units_reused), 100.0 * c.reuse_ratio,
                    c.gated ? "yes" : "no");
    sbd::bench::rule('-', 84);

    const SwapStats engine = measure_engine_swap(/*instances=*/256, /*swaps=*/30);
    const SwapStats served = measure_served_swap(/*instances=*/64, /*swaps=*/20);
    std::printf("engine rebind pause (%zu instances, %zu swaps): p50 %.3f ms, p99 %.3f ms\n",
                engine.instances, engine.swaps, engine.p50_ns / 1e6, engine.p99_ns / 1e6);
    std::printf("served swap pause  (%zu instances, %zu swaps): p50 %.3f ms, p99 %.3f ms\n",
                served.instances, served.swaps, served.p50_ns / 1e6, served.p99_ns / 1e6);

    // Gates: a single-subsystem edit of any model with >= 6 macro units
    // must reuse at least half of them, and the swap pause — both the raw
    // engine rebind and the served exclusive-lock window — must fit inside
    // one 100 ms tick deadline at p99.
    bool gates = engine.swaps > 0 && served.swaps > 0;
    std::size_t gated_cells = 0;
    for (const ReuseCell& c : cells) {
        if (!c.gated) continue;
        ++gated_cells;
        if (c.reuse_ratio < 0.5) {
            std::printf("GATE: %s reuse %.0f%% < 50%%\n", c.model.c_str(),
                        100.0 * c.reuse_ratio);
            gates = false;
        }
    }
    if (gated_cells == 0) {
        std::printf("GATE: no model large enough to gate reuse\n");
        gates = false;
    }
    if (engine.p99_ns > kTickDeadlineNs || served.p99_ns > kTickDeadlineNs) {
        std::printf("GATE: p99 swap pause exceeds the tick deadline\n");
        gates = false;
    }
    write_json(cells, engine, served, gates);
    std::printf("gates: %s\n", gates ? "PASS" : "FAIL");
    return gates ? 0 : 1;
}
