// Regenerates the DATE'08 headline experiment: modularity vs reusability.
//
// For each suite model and method: the number of generated interface
// functions (modularity: fewer = more modular) against the fraction of
// semantically legal single-wire feedback contexts the generated profile
// supports (reusability). Profile-level verdicts are cross-validated by
// actually compiling each embedding.
//
// Expected shape: monolithic = most modular / least reusable; singletons =
// least modular / maximally reusable; dynamic = maximal reusability at the
// provably minimal function count; the n+1 bound holds everywhere.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "core/reuse.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

void print_table() {
    const Method methods[] = {Method::Monolithic, Method::StepGet, Method::Dynamic,
                              Method::DisjointSat, Method::Singletons};
    std::printf("DATE'08 trade-off: interface functions (root block) vs supported feedback "
                "contexts\n");
    sbd::bench::rule('-', 112);
    std::printf("%-16s %6s |", "model", "legal");
    for (const Method m : methods) std::printf(" %16s |", to_string(m));
    std::printf("\n%-16s %6s |", "", "ctxts");
    for (int i = 0; i < 5; ++i) std::printf(" %7s %8s |", "fns", "score");
    std::printf("\n");
    sbd::bench::rule('-', 112);

    for (const auto& model : suite::demo_suite()) {
        // Count legal contexts once (method independent).
        const auto probe = compile_hierarchy(model.block, Method::Dynamic);
        const auto& sdg = *probe.at(*model.block).sdg;
        const auto legal = legal_feedback_pairs(sdg);
        std::printf("%-16s %6zu |", model.name.c_str(), legal.size());
        for (const Method method : methods) {
            try {
                const auto sys = compile_hierarchy(model.block, method);
                const auto& cb = sys.at(*model.block);
                const auto rep = reusability(*cb.sdg, cb.profile);
                std::printf(" %7zu %8.2f |", cb.profile.functions.size(), rep.score());
            } catch (const SdgCycleError&) {
                std::printf(" %7s %8s |", "REJ", "0.00");
            }
        }
        std::printf("\n");
    }
    sbd::bench::rule('-', 112);

    // Cross-validate the profile-level check with real embeddings
    // (Figure 2 style) for the dynamic method: every legal context must be
    // accepted by an actual compile of the feedback diagram.
    std::size_t contexts = 0, accepted = 0;
    for (const auto& model : suite::demo_suite()) {
        const auto probe = compile_hierarchy(model.block, Method::Dynamic);
        for (const auto& pair : legal_feedback_pairs(*probe.at(*model.block).sdg)) {
            ++contexts;
            try {
                const auto ctx =
                    suite::feedback_context(model.block, pair.first, pair.second);
                (void)compile_hierarchy(ctx, Method::Dynamic);
                ++accepted;
            } catch (const SdgCycleError&) {
            }
        }
    }
    std::printf("real-embedding cross-check (dynamic): %zu / %zu legal contexts accepted\n",
                accepted, contexts);
    std::printf("shape check: dynamic & disjoint-sat & singletons score 1.00 everywhere;\n"
                "monolithic/step-get drop below 1.00 (or REJ) exactly on the models whose\n"
                "outputs have distinct input dependencies.\n\n");
}

void BM_ReusabilityAnalysis(benchmark::State& state) {
    const auto models = suite::demo_suite();
    const auto& model = models.at(static_cast<std::size_t>(state.range(0)));
    const auto sys = compile_hierarchy(model.block, Method::Dynamic);
    const auto& cb = sys.at(*model.block);
    for (auto _ : state) benchmark::DoNotOptimize(reusability(*cb.sdg, cb.profile));
    state.SetLabel(model.name);
}
BENCHMARK(BM_ReusabilityAnalysis)->Arg(0)->Arg(5)->Arg(11);

} // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
