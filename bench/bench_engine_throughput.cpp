// Throughput of the concurrent runtime engine: instance-instants per second
// when hosting a large pool of independent instances of one compiled model,
// single- vs multi-threaded, across clustering methods.
//
// Also verifies the engine's core guarantee before timing anything: the
// multi-threaded engine's output traces are bit-identical to the
// single-threaded run and to the reference simulator on the flattened
// diagram, for every method measured.
//
// Machine-readable output: BENCH_engine.json in the working directory, one
// record per (model, method, threads) cell, so the perf trajectory can be
// tracked across PRs.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "runtime/engine.hpp"
#include "runtime/trace.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

struct Cell {
    std::string model;
    std::string method;
    std::size_t threads = 0;
    std::size_t instances = 0;
    std::size_t instants = 0;
    double instants_per_sec = 0.0; ///< instance-instants per wall second
};

/// Runs `instances` copies for `instants` ticks with per-instance seeded
/// inputs re-filled every tick, recording every instance; returns all
/// traces in instance order.
std::vector<runtime::Trace> traced_run(const CompiledSystem& sys,
                                       const std::shared_ptr<const MacroBlock>& root,
                                       std::size_t instances, std::size_t instants,
                                       std::size_t threads) {
    runtime::EngineConfig cfg;
    cfg.capacity = instances;
    cfg.threads = threads;
    runtime::Engine engine(sys, root, cfg);
    const auto ids = engine.create(instances);
    std::vector<runtime::LcgInputSource> sources;
    std::vector<runtime::TraceRecorder> recorders;
    for (std::size_t i = 0; i < instances; ++i) {
        sources.emplace_back(1 + i);
        recorders.emplace_back(root->num_inputs(), root->num_outputs());
    }
    for (std::size_t t = 0; t < instants; ++t) {
        for (std::size_t i = 0; i < instances; ++i)
            sources[i].fill(engine.pool().inputs(ids[i]));
        engine.tick();
        for (std::size_t i = 0; i < instances; ++i)
            recorders[i].record(engine.pool().inputs(ids[i]), engine.pool().outputs(ids[i]));
    }
    std::vector<runtime::Trace> traces;
    traces.reserve(instances);
    for (auto& r : recorders) traces.push_back(r.take());
    return traces;
}

/// Multi-threaded output == single-threaded output == reference simulator,
/// bitwise, on a small pool.
bool verify_bit_exact(const CompiledSystem& sys, const std::shared_ptr<const MacroBlock>& root,
                      std::size_t threads) {
    const std::size_t instances = 16;
    const std::size_t instants = 25;
    const auto single = traced_run(sys, root, instances, instants, 1);
    const auto multi = traced_run(sys, root, instances, instants, threads);
    for (std::size_t i = 0; i < instances; ++i) {
        if (!runtime::bit_equal(single[i], multi[i])) return false;
        if (!runtime::bit_equal(runtime::simulate_reference(*root, single[i]), single[i]))
            return false;
    }
    return true;
}

double measure_instants_per_sec(const CompiledSystem& sys,
                                const std::shared_ptr<const MacroBlock>& root,
                                std::size_t instances, std::size_t instants,
                                std::size_t threads) {
    runtime::EngineConfig cfg;
    cfg.capacity = instances;
    cfg.threads = threads;
    runtime::Engine engine(sys, root, cfg);
    const auto ids = engine.create(instances);
    // One seeded fill, held constant across ticks: the timing isolates the
    // batched stepping itself from the single-threaded input generation.
    std::vector<runtime::LcgInputSource> sources;
    for (std::size_t i = 0; i < instances; ++i) sources.emplace_back(1 + i);
    for (std::size_t i = 0; i < instances; ++i)
        sources[i].fill(engine.pool().inputs(ids[i]));
    engine.tick(3); // warm-up: faults the arenas, sizes every scratch buffer
    const double ms = sbd::bench::time_ms([&] { engine.tick(instants); });
    return static_cast<double>(instances) * static_cast<double>(instants) / (ms / 1000.0);
}

void write_json(const std::vector<Cell>& cells, bool bit_exact) {
    std::FILE* f = std::fopen("BENCH_engine.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_engine.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"engine_throughput\",\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"bit_exact\": %s,\n  \"cells\": [\n", bit_exact ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        std::fprintf(f,
                     "    {\"model\": \"%s\", \"method\": \"%s\", \"threads\": %zu, "
                     "\"instances\": %zu, \"instants\": %zu, \"instants_per_sec\": %.0f}%s\n",
                     c.model.c_str(), c.method.c_str(), c.threads, c.instances, c.instants,
                     c.instants_per_sec, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_engine.json\n");
}

} // namespace

int main() {
    struct Row {
        std::string name;
        std::shared_ptr<const MacroBlock> block;
    };
    const std::vector<Row> rows = {{"fuel_controller", suite::fuel_controller()},
                                   {"fig4_chain_n32", suite::figure4_chain(32)}};
    const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
    const std::size_t instances = 1000;
    const std::size_t instants = 100;

    std::printf("Concurrent runtime engine: instance-instants/second "
                "(%zu instances, %zu instants, %u hardware threads)\n",
                instances, instants, std::thread::hardware_concurrency());
    sbd::bench::rule('-', 100);
    std::printf("%-18s | %-14s", "model", "method");
    for (const std::size_t k : thread_counts) std::printf(" | %8zu thr", k);
    std::printf(" | %7s\n", "8t/1t");
    sbd::bench::rule('-', 100);

    std::vector<Cell> cells;
    bool all_bit_exact = true;
    for (const Row& row : rows) {
        for (const Method method : {Method::Dynamic, Method::DisjointSat, Method::Singletons}) {
            const auto sys = compile_hierarchy(row.block, method);
            if (!verify_bit_exact(sys, row.block, thread_counts.back())) {
                all_bit_exact = false;
                std::printf("%-18s | %-14s | BIT-EXACTNESS FAILED\n", row.name.c_str(),
                            to_string(method));
                continue;
            }
            std::printf("%-18s | %-14s", row.name.c_str(), to_string(method));
            double first = 0.0, last = 0.0;
            for (const std::size_t k : thread_counts) {
                const double ips = measure_instants_per_sec(sys, row.block, instances,
                                                            instants, k);
                if (k == thread_counts.front()) first = ips;
                last = ips;
                cells.push_back({row.name, to_string(method), k, instances, instants, ips});
                std::printf(" | %12.0f", ips);
            }
            std::printf(" | %6.2fx\n", first > 0 ? last / first : 0.0);
        }
    }
    sbd::bench::rule('-', 100);
    std::printf("bit-exactness (K threads == 1 thread == reference simulator): %s\n",
                all_bit_exact ? "PASS" : "FAIL");
    write_json(cells, all_bit_exact);
    return all_bit_exact ? 0 : 1;
}
