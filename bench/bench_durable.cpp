// Durability benchmark: what the write-ahead journal costs per served
// tick, and what recovery costs per journaled record.
//
// Four configurations of the same loopback serving loop (post one input
// row per instance, then TICK) are timed: no durable store at all, and a
// store with --fsync off / batch / always. The headline gate is the
// p99 tick round-trip of *batch* mode against the no-store baseline:
// batch is the recommended production mode, and it must stay within +25%
// (plus a small absolute allowance for timer noise on loaded CI machines).
// fsync=always is reported but not gated — its cost is the disk's honest
// fsync latency, which varies by orders of magnitude across machines.
//
// The second table grows a journal (checkpoints disabled) and measures
// boot-time recovery against its length, plus one checkpointed variant to
// show the cadence collapsing replay to the post-checkpoint tail.
//
// Machine-readable output: BENCH_durable.json in the working directory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "durable/durable.hpp"
#include "runtime/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "suite/models.hpp"
#include "sbd/text_format.hpp"
#include "upgrade/upgrade.hpp"

namespace {

using namespace sbd;
namespace fs = std::filesystem;
using serve::Client;
using serve::Endpoint;
using serve::Server;
using serve::ServerConfig;
using serve::WireHandle;

constexpr std::size_t kInstances = 8;
constexpr std::size_t kWarmup = 20;
constexpr std::size_t kTicks = 300;

struct ModeResult {
    std::string mode; ///< "none" | "off" | "batch" | "always"
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    double ticks_per_sec = 0.0;
    std::uint64_t journal_bytes = 0; ///< appended during the measured loop
};

struct RecoveryResult {
    std::size_t ticks = 0;
    std::uint64_t checkpoint_every = 0; ///< 0 = journal-only
    std::uint64_t replayed_records = 0;
    double recovery_ms = 0.0;
    bool exact = false; ///< recovered tick counter matches the session
};

std::uint64_t percentile_ns(std::vector<std::uint64_t> v, double q) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t idx =
        std::min(v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
    return v[idx];
}

struct TempDir {
    fs::path path;
    explicit TempDir(const char* tag) {
        static std::size_t serial = 0;
        path = fs::temp_directory_path() /
               ("sbd_bench_durable_" + std::string(tag) + "_" + std::to_string(serial++));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

ServerConfig base_config(const std::string& source) {
    ServerConfig cfg;
    cfg.endpoint = Endpoint::parse("tcp:127.0.0.1:0");
    cfg.shards = 2;
    cfg.shard_capacity = kInstances;
    upgrade::CompileContext uctx;
    cfg.upgrade = std::move(uctx);
    cfg.model_source = source;
    return cfg;
}

/// One post-row-then-tick serving loop; returns per-iteration round trips.
ModeResult run_mode(const codegen::CompiledSystem& sys, const BlockPtr& root,
                    const std::string& source, const char* mode) {
    using clock = std::chrono::steady_clock;
    ModeResult r;
    r.mode = mode;

    TempDir dir(mode);
    ServerConfig cfg = base_config(source);
    const bool store = std::strcmp(mode, "none") != 0;
    if (store) {
        durable::Options dopts;
        dopts.data_dir = dir.path / "data";
        dopts.fsync = *durable::parse_fsync_mode(mode);
        dopts.checkpoint_every_ticks = 256;
        cfg.durable = dopts;
    }
    Server server(sys, root, cfg);
    server.start();
    Client client = Client::connect(server.endpoint());

    const auto handles = client.create_instances(1, kInstances);
    const std::size_t nin = root->num_inputs();
    std::vector<double> rows(kInstances * nin);
    std::vector<runtime::LcgInputSource> srcs;
    for (std::size_t i = 0; i < kInstances; ++i) srcs.emplace_back(300 + i);

    const auto iteration = [&] {
        for (std::size_t i = 0; i < kInstances; ++i)
            srcs[i].fill({rows.data() + i * nin, nin});
        client.post_inputs(1, handles, rows);
        client.tick(1, 1);
    };
    for (std::size_t t = 0; t < kWarmup; ++t) iteration();

    const std::uint64_t bytes_before =
        store ? server.durable_store()->journal().appended_bytes() : 0;
    std::vector<std::uint64_t> lat;
    lat.reserve(kTicks);
    const auto loop_start = clock::now();
    for (std::size_t t = 0; t < kTicks; ++t) {
        const auto t0 = clock::now();
        iteration();
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0).count()));
    }
    const double total_s =
        std::chrono::duration<double>(clock::now() - loop_start).count();
    r.p50_ns = percentile_ns(lat, 0.50);
    r.p99_ns = percentile_ns(lat, 0.99);
    r.ticks_per_sec = static_cast<double>(kTicks) / total_s;
    if (store)
        r.journal_bytes = server.durable_store()->journal().appended_bytes() - bytes_before;
    server.request_stop();
    server.wait();
    return r;
}

/// Grows a journal of `ticks` instants, then measures a cold recover().
RecoveryResult run_recovery(const codegen::CompiledSystem& sys, const BlockPtr& root,
                            const std::string& source, std::size_t ticks,
                            std::uint64_t checkpoint_every) {
    RecoveryResult r;
    r.ticks = ticks;
    r.checkpoint_every = checkpoint_every;

    TempDir dir("recover");
    ServerConfig cfg = base_config(source);
    durable::Options dopts;
    dopts.data_dir = dir.path / "data";
    dopts.fsync = durable::FsyncMode::Off; // journal length, not disk latency
    dopts.checkpoint_every_ticks = checkpoint_every;
    cfg.durable = dopts;
    {
        Server server(sys, root, cfg);
        server.start();
        Client client = Client::connect(server.endpoint());
        const auto handles = client.create_instances(1, 4);
        const std::size_t nin = root->num_inputs();
        std::vector<double> rows(handles.size() * nin);
        std::vector<runtime::LcgInputSource> srcs;
        for (std::size_t i = 0; i < handles.size(); ++i) srcs.emplace_back(700 + i);
        for (std::size_t t = 0; t < ticks; ++t) {
            for (std::size_t i = 0; i < handles.size(); ++i)
                srcs[i].fill({rows.data() + i * nin, nin});
            client.post_inputs(1, handles, rows);
            client.tick(1, 1);
        }
        server.request_stop();
        server.wait();
    }
    Server recovered(sys, root, cfg);
    const serve::RecoveryStats rs = recovered.recover();
    r.replayed_records = rs.replayed_records;
    r.recovery_ms = static_cast<double>(rs.recovery_ns) / 1e6;
    r.exact = !rs.replay_aborted && rs.recovered_ticks == ticks && rs.live_instances == 4;
    return r;
}

void write_json(const std::vector<ModeResult>& modes,
                const std::vector<RecoveryResult>& recoveries, double batch_ratio,
                bool gates_pass) {
    std::FILE* f = std::fopen("BENCH_durable.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_durable.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"durable\",\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"instances\": %zu,\n  \"ticks\": %zu,\n", kInstances, kTicks);
    std::fprintf(f, "  \"batch_p99_over_baseline\": %.3f,\n", batch_ratio);
    std::fprintf(f, "  \"gates_pass\": %s,\n  \"modes\": [\n", gates_pass ? "true" : "false");
    for (std::size_t i = 0; i < modes.size(); ++i) {
        const ModeResult& m = modes[i];
        std::fprintf(f,
                     "    {\"mode\": \"%s\", \"tick_p50_ns\": %llu, \"tick_p99_ns\": %llu, "
                     "\"ticks_per_sec\": %.0f, \"journal_bytes\": %llu}%s\n",
                     m.mode.c_str(), static_cast<unsigned long long>(m.p50_ns),
                     static_cast<unsigned long long>(m.p99_ns), m.ticks_per_sec,
                     static_cast<unsigned long long>(m.journal_bytes),
                     i + 1 < modes.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"recovery\": [\n");
    for (std::size_t i = 0; i < recoveries.size(); ++i) {
        const RecoveryResult& r = recoveries[i];
        std::fprintf(f,
                     "    {\"ticks\": %zu, \"checkpoint_every\": %llu, "
                     "\"replayed_records\": %llu, \"recovery_ms\": %.3f, \"exact\": %s}%s\n",
                     r.ticks, static_cast<unsigned long long>(r.checkpoint_every),
                     static_cast<unsigned long long>(r.replayed_records), r.recovery_ms,
                     r.exact ? "true" : "false", i + 1 < recoveries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_durable.json\n");
}

} // namespace

int main() {
    const auto root = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(root, codegen::Method::Dynamic);
    const std::string source = text::to_sbd(*root);

    std::printf("durable serving: journal overhead per tick and recovery cost\n");
    sbd::bench::rule('-', 76);
    std::printf("%8s | %12s | %12s | %12s | %14s\n", "fsync", "p50 (ms)", "p99 (ms)",
                "ticks/sec", "journal bytes");
    sbd::bench::rule('-', 76);

    std::vector<ModeResult> modes;
    for (const char* mode : {"none", "off", "batch", "always"}) {
        modes.push_back(run_mode(sys, root, source, mode));
        const ModeResult& m = modes.back();
        std::printf("%8s | %12.3f | %12.3f | %12.0f | %14llu\n", m.mode.c_str(),
                    m.p50_ns / 1e6, m.p99_ns / 1e6, m.ticks_per_sec,
                    static_cast<unsigned long long>(m.journal_bytes));
    }
    sbd::bench::rule('-', 76);

    std::printf("recovery vs. journal length (fsync off):\n");
    sbd::bench::rule('-', 64);
    std::printf("%8s | %16s | %16s | %12s\n", "ticks", "ckpt cadence", "replayed recs",
                "recover ms");
    sbd::bench::rule('-', 64);
    std::vector<RecoveryResult> recoveries;
    for (const auto& [ticks, cadence] :
         std::vector<std::pair<std::size_t, std::uint64_t>>{
             {200, 0}, {800, 0}, {3200, 0}, {3200, 64}}) {
        recoveries.push_back(run_recovery(sys, root, source, ticks, cadence));
        const RecoveryResult& r = recoveries.back();
        std::printf("%8zu | %16llu | %16llu | %12.3f%s\n", r.ticks,
                    static_cast<unsigned long long>(r.checkpoint_every),
                    static_cast<unsigned long long>(r.replayed_records), r.recovery_ms,
                    r.exact ? "" : "  (INEXACT)");
    }
    sbd::bench::rule('-', 64);

    // Gates. The +25% batch ceiling gets a 2 ms absolute allowance: at
    // sub-millisecond loopback latencies a scheduler hiccup is bigger than
    // the whole budget, and the gate is after the journal's cost, not the
    // kernel's mood. Checkpointed recovery must also beat the same-length
    // journal-only replay's record count — that is the cadence's whole job.
    const std::uint64_t none_p99 = modes[0].p99_ns;
    const std::uint64_t batch_p99 = modes[2].p99_ns;
    const double batch_ratio =
        none_p99 ? static_cast<double>(batch_p99) / static_cast<double>(none_p99) : 0.0;
    bool gates = batch_p99 <= none_p99 + none_p99 / 4 + 2'000'000ull;
    for (const RecoveryResult& r : recoveries)
        if (!r.exact) gates = false;
    if (recoveries.back().replayed_records >= recoveries[2].replayed_records) gates = false;
    if (recoveries.back().recovery_ms > 5000.0) gates = false;

    std::printf("batch p99 / baseline p99: %.2fx (gate: <= 1.25x + 2ms)\n", batch_ratio);
    write_json(modes, recoveries, batch_ratio, gates);
    std::printf("gates: %s\n", gates ? "PASS" : "FAIL");
    return gates ? 0 : 1;
}
