// Regenerates the Proposition 2 / Figure 7 result empirically: optimal
// disjoint clustering is as hard as partition-into-cliques.
//
// For random undirected graphs G, the SDG gadget G_f is built and solved
// with the iterated SAT method; the optimum must equal (minimum clique
// partition of G) + 2|E(G)|, and the instances inherit the combinatorial
// hardness of the source problem.
//
// Expected shape: exact agreement with the clique-partition oracle on every
// instance; solver work grows with graph density and size.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.hpp"
#include "core/methods.hpp"
#include "suite/npred.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

graph::Undirected random_graph(std::mt19937_64& rng, std::size_t n, double p) {
    graph::Undirected g(n);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b)
            if (unit(rng) < p) g.add_edge(a, b);
    return g;
}

void print_table() {
    std::printf("Figure 7 reduction: clique partition of G  <=>  optimal disjoint clustering "
                "of G_f\n");
    sbd::bench::rule('-', 104);
    std::printf("%4s %6s %5s | %8s %8s | %10s %10s %7s | %9s %9s | %8s\n", "|V|", "dens",
                "|E|", "cliques", "expected", "SDG nodes", "SAT k*", "match", "conflicts",
                "iters", "time ms");
    sbd::bench::rule('-', 104);
    std::mt19937_64 rng(4242);
    for (const std::size_t n : {3u, 4u, 5u, 6u, 7u}) {
        for (const double density : {0.3, 0.6}) {
            const auto g = random_graph(rng, n, density);
            std::size_t cliques = 0;
            g.min_clique_partition(&cliques);
            const std::size_t expected = suite::reduction_expected_clusters(g, cliques);
            const Sdg sdg = suite::reduction_sdg(g);
            SatClusterStats stats;
            Clustering sat;
            const double ms =
                sbd::bench::time_ms([&] { sat = cluster_disjoint_sat(sdg, {}, &stats); });
            std::printf("%4zu %6.1f %5zu | %8zu %8zu | %10zu %10zu %7s | %9llu %9zu | %8.2f\n",
                        n, density, g.num_edges(), cliques, expected,
                        sdg.graph.num_nodes(), sat.num_clusters(),
                        sat.num_clusters() == expected ? "yes" : "NO",
                        static_cast<unsigned long long>(stats.conflicts), stats.iterations,
                        ms);
        }
    }
    sbd::bench::rule('-', 104);
    std::printf("shape check: every row matches (the reduction is exact); work grows with\n"
                "|V| and |E| — the NP-hardness is inherited, the SAT solver absorbs it.\n\n");
}

void BM_ReductionSolve(benchmark::State& state) {
    std::mt19937_64 rng(99);
    const auto g = random_graph(rng, static_cast<std::size_t>(state.range(0)), 0.5);
    const Sdg sdg = suite::reduction_sdg(g);
    for (auto _ : state) benchmark::DoNotOptimize(cluster_disjoint_sat(sdg));
}
BENCHMARK(BM_ReductionSolve)->Arg(4)->Arg(6);

} // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
