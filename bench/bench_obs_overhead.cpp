// Observability overhead benchmark: what does instrumentation cost on the
// runtime engine's hot path?
//
// Three configurations of the same workload (a pool of instances ticking a
// compiled model):
//   disabled — EngineConfig::metrics == nullptr, no collector installed:
//              the shipped default. One branch per tick.
//   metrics  — registry attached: tick/step counters, gauges, latency
//              histograms (step latency sampled 1-in-16).
//   full     — metrics plus an installed TraceCollector (spans recording).
//
// Gates (exit 1 on failure, so CI can run this as a check):
//   * full instrumentation within 10% of the disabled baseline (best-of-R
//     timing, so scheduler noise does not fail the gate spuriously);
//   * disabled-mode outputs bit-identical to instrumented-mode outputs —
//     observation must never perturb the computation.
//
// Machine-readable output: BENCH_obs.json in the working directory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

constexpr std::size_t kInstances = 256;
constexpr std::size_t kInstants = 400;
constexpr int kRepeats = 7;

/// Runs the workload once; returns the output checksum stream (one double
/// per instant) so configurations can be compared bit-for-bit.
std::vector<double> run_workload(const CompiledSystem& sys,
                                 const std::shared_ptr<const MacroBlock>& root,
                                 obs::MetricsRegistry* metrics) {
    runtime::EngineConfig cfg;
    cfg.capacity = kInstances;
    cfg.threads = 2;
    cfg.metrics = metrics;
    runtime::Engine engine(sys, root, cfg);
    const std::vector<runtime::InstanceId> ids = engine.create(kInstances);

    std::vector<runtime::LcgInputSource> sources;
    sources.reserve(kInstances);
    for (std::size_t i = 0; i < kInstances; ++i) sources.emplace_back(1 + i);

    std::vector<double> checksums;
    checksums.reserve(kInstants);
    for (std::size_t t = 0; t < kInstants; ++t) {
        for (std::size_t i = 0; i < kInstances; ++i)
            sources[i].fill(engine.pool().inputs(ids[i]));
        engine.tick();
        double sum = 0.0;
        for (std::size_t i = 0; i < kInstances; ++i)
            for (const double v : engine.pool().outputs(ids[i])) sum += v;
        checksums.push_back(sum);
    }
    return checksums;
}

/// Best-of-R wall clock for one configuration (min filters out scheduler
/// noise, which only ever adds time).
double best_ms(const std::function<std::vector<double>()>& fn) {
    double best = 1e300;
    for (int r = 0; r < kRepeats; ++r) best = std::min(best, sbd::bench::time_ms(fn));
    return best;
}

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void write_json(double disabled_ms, double metrics_ms, double full_ms, bool bit_exact,
                std::uint64_t spans_recorded, bool pass) {
    std::FILE* f = std::fopen("BENCH_obs.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_obs.json\n");
        return;
    }
    const double m_pct = (metrics_ms / disabled_ms - 1.0) * 100.0;
    const double f_pct = (full_ms / disabled_ms - 1.0) * 100.0;
    std::fprintf(f, "{\n  \"bench\": \"obs_overhead\",\n");
    std::fprintf(f, "  \"instances\": %zu,\n  \"instants\": %zu,\n  \"repeats\": %d,\n",
                 kInstances, kInstants, kRepeats);
    std::fprintf(f, "  \"disabled_ms\": %.3f,\n", disabled_ms);
    std::fprintf(f, "  \"metrics_ms\": %.3f,\n  \"metrics_overhead_pct\": %.2f,\n",
                 metrics_ms, m_pct);
    std::fprintf(f, "  \"full_ms\": %.3f,\n  \"full_overhead_pct\": %.2f,\n", full_ms, f_pct);
    std::fprintf(f, "  \"spans_recorded\": %llu,\n",
                 static_cast<unsigned long long>(spans_recorded));
    std::fprintf(f, "  \"bit_exact\": %s,\n", bit_exact ? "true" : "false");
    std::fprintf(f, "  \"overhead_gate_pct\": 10.0,\n");
    std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_obs.json\n");
}

} // namespace

int main() {
    const auto root = suite::fuel_controller();
    const CompiledSystem sys = Pipeline(PipelineOptions{}).compile(root);

    std::printf("Observability overhead: %zu instances x %zu instants, best of %d\n",
                kInstances, kInstants, kRepeats);
    sbd::bench::rule('-', 72);

    // Bit-exactness first: instrumented and uninstrumented runs must
    // produce the same bits before any timing is worth reporting.
    const std::vector<double> ref = run_workload(sys, root, nullptr);
    obs::MetricsRegistry probe_reg;
    obs::TraceCollector probe_col;
    probe_col.install();
    const std::vector<double> probed = run_workload(sys, root, &probe_reg);
    probe_col.uninstall();
    const bool bit_exact = bit_equal(ref, probed);
    const std::uint64_t spans_recorded = probe_col.drain().size();

    const double disabled_ms = best_ms([&] { return run_workload(sys, root, nullptr); });

    obs::MetricsRegistry metrics_reg;
    const double metrics_ms = best_ms([&] { return run_workload(sys, root, &metrics_reg); });

    obs::MetricsRegistry full_reg;
    obs::TraceCollector collector;
    collector.install();
    const double full_ms = best_ms([&] { return run_workload(sys, root, &full_reg); });
    collector.uninstall();

    const double m_pct = (metrics_ms / disabled_ms - 1.0) * 100.0;
    const double f_pct = (full_ms / disabled_ms - 1.0) * 100.0;
    std::printf("%-28s | %9.2f ms |\n", "disabled (baseline)", disabled_ms);
    std::printf("%-28s | %9.2f ms | %+6.2f%%\n", "metrics", metrics_ms, m_pct);
    std::printf("%-28s | %9.2f ms | %+6.2f%%\n", "metrics + trace spans", full_ms, f_pct);
    sbd::bench::rule('-', 72);
    std::printf("bit-exact (instrumented == disabled): %s\n", bit_exact ? "PASS" : "FAIL");
    std::printf("overhead gate (full <= +10%%): %s\n", f_pct <= 10.0 ? "PASS" : "FAIL");

    const bool pass = bit_exact && f_pct <= 10.0;
    write_json(disabled_ms, metrics_ms, full_ms, bit_exact, spans_recorded, pass);
    return pass ? 0 : 1;
}
