// Regenerates the Section 5 efficiency remark: the disjoint code "is not
// only smaller ... it is also more efficient. Indeed, it avoids the use of
// counter c, which results in savings of memory, as well as time".
//
// Measures per-instant execution cost of the generated code (interpreted)
// for the chain example and the suite models, per method, plus the
// persistent-memory footprint (slots + counters).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "core/exec.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

std::size_t total_slots(const CompiledSystem& sys) {
    std::size_t n = 0;
    for (const Block* b : sys.order()) {
        const auto& cb = sys.at(*b);
        if (cb.code) n += cb.code->num_slots;
    }
    return n;
}

std::size_t total_counters(const CompiledSystem& sys) {
    std::size_t n = 0;
    for (const Block* b : sys.order()) {
        const auto& cb = sys.at(*b);
        if (cb.code) n += cb.code->counter_mods.size();
    }
    return n;
}

void print_table() {
    std::printf("Section 5 efficiency: per-instant cost and memory of generated code\n");
    sbd::bench::rule('-', 104);
    std::printf("%-18s | %-14s | %10s | %8s | %9s | %12s\n", "model", "method", "calls/inst",
                "slots", "counters", "us/instant");
    sbd::bench::rule('-', 104);
    struct Row {
        std::string name;
        BlockPtr block;
    };
    std::vector<Row> rows = {{"fig4_chain_n32", suite::figure4_chain(32)},
                             {"shared_chain", suite::shared_chain_sensor(12)},
                             {"fuel_controller", suite::fuel_controller()}};
    for (const auto& row : rows) {
        for (const Method method : {Method::Dynamic, Method::DisjointSat, Method::Singletons}) {
            const auto sys = compile_hierarchy(row.block, method);
            InterpInstance inst(sys, row.block);
            const std::vector<double> in(row.block->num_inputs(), 1.0);
            // Warm up, then time many instants.
            for (int t = 0; t < 100; ++t) (void)inst.step_instant(in);
            const int iters = 20000;
            const double ms = sbd::bench::time_ms([&] {
                for (int t = 0; t < iters; ++t) benchmark::DoNotOptimize(inst.step_instant(in));
            });
            std::size_t calls = 0;
            for (const Block* b : sys.order()) {
                const auto& cb = sys.at(*b);
                if (cb.code && b == row.block.get()) calls = cb.code->call_count();
            }
            std::printf("%-18s | %-14s | %10zu | %8zu | %9zu | %12.3f\n", row.name.c_str(),
                        to_string(method), calls, total_slots(sys), total_counters(sys),
                        ms * 1000.0 / iters);
        }
    }
    sbd::bench::rule('-', 104);
    std::printf("shape check: disjoint-sat needs no counters and fewer static calls than the\n"
                "dynamic method on chain-sharing models; per-instant cost tracks call count.\n\n");
}

void BM_StepInstant(benchmark::State& state) {
    const auto block = suite::figure4_chain(static_cast<std::size_t>(state.range(0)));
    const Method method = static_cast<Method>(state.range(1));
    const auto sys = compile_hierarchy(block, method);
    InterpInstance inst(sys, block);
    const std::vector<double> in(block->num_inputs(), 1.0);
    for (auto _ : state) benchmark::DoNotOptimize(inst.step_instant(in));
    state.SetLabel(std::string("chain/") + to_string(method));
}
BENCHMARK(BM_StepInstant)
    ->Args({32, static_cast<int>(Method::Dynamic)})
    ->Args({32, static_cast<int>(Method::DisjointSat)});

} // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
