// Regenerates the Section 7 data: solving optimal disjoint clustering with
// the iterated SAT encoding F_k (paper Figure 8).
//
// For random SDGs of growing size and for the suite models: formula size
// (variables, clauses), number of F_k iterations, solver work (conflicts,
// decisions, propagations), wall time, and the gap between the greedy
// heuristic and the SAT optimum.
//
// Expected shape: formula size grows ~ |E| * k^2; almost all instances are
// easy for a CDCL solver despite NP-completeness; greedy is often but not
// always optimal.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "core/methods.hpp"
#include "suite/models.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

void print_random_table() {
    std::printf("Optimal disjoint clustering by iterated SAT on random flat SDGs\n");
    sbd::bench::rule('-', 116);
    std::printf("%5s %4s %4s | %5s %5s | %6s %9s | %6s %6s | %9s %9s %11s | %9s\n", "|Vint|",
                "in", "out", "k*", "iters", "vars", "clauses", "greedy", "gap", "conflicts",
                "decisions", "propagations", "time ms");
    sbd::bench::rule('-', 116);
    std::mt19937_64 rng(777);
    for (const std::size_t internals : {6u, 10u, 14u, 18u, 24u, 30u, 40u}) {
        const Sdg sdg = suite::random_flat_sdg(rng, 4, 4, internals, 0.12);
        SatClusterStats stats;
        Clustering sat;
        const double ms =
            sbd::bench::time_ms([&] { sat = cluster_disjoint_sat(sdg, {}, &stats); });
        const Clustering greedy = cluster_disjoint_greedy(sdg);
        std::printf("%5zu %4zu %4zu | %5zu %5zu | %6zu %9zu | %6zu %6zu | %9llu %9llu %11llu "
                    "| %9.2f\n",
                    internals, sdg.num_inputs(), sdg.num_outputs(), sat.num_clusters(),
                    stats.iterations, stats.vars, stats.clauses, greedy.num_clusters(),
                    greedy.num_clusters() - sat.num_clusters(),
                    static_cast<unsigned long long>(stats.conflicts),
                    static_cast<unsigned long long>(stats.decisions),
                    static_cast<unsigned long long>(stats.propagations), ms);
    }
    sbd::bench::rule('-', 116);
}

void print_suite_table() {
    std::printf("\nIterated SAT on the model suite (stats accumulated over the whole hierarchy)\n");
    sbd::bench::rule('-', 96);
    std::printf("%-16s | %6s %5s %5s | %7s %9s | %9s | %9s\n", "model", "|Vint|", "k*",
                "iters", "vars", "clauses", "conflicts", "time ms");
    sbd::bench::rule('-', 96);
    for (const auto& model : suite::demo_suite()) {
        // Compile sub-blocks with the SAT method, then time the root alone.
        SatClusterStats stats;
        CompiledSystem sys;
        const double ms = sbd::bench::time_ms(
            [&] { sys = compile_hierarchy(model.block, Method::DisjointSat, {}, &stats); });
        const auto& cb = sys.at(*model.block);
        std::printf("%-16s | %6zu %5zu %5zu | %7zu %9zu | %9llu | %9.2f\n", model.name.c_str(),
                    cb.sdg->internal_nodes.size(), cb.clustering->num_clusters(),
                    stats.iterations, stats.vars, stats.clauses,
                    static_cast<unsigned long long>(stats.conflicts), ms);
    }
    sbd::bench::rule('-', 96);
    std::printf("shape check: k* and iteration counts stay small on real-shaped models; the\n"
                "SAT work is dominated by the (rare) UNSAT iterations below k*.\n\n");
}

void BM_SatClustering(benchmark::State& state) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(state.range(0)) * 13 + 7);
    const Sdg sdg =
        suite::random_flat_sdg(rng, 4, 4, static_cast<std::size_t>(state.range(0)), 0.12);
    for (auto _ : state) benchmark::DoNotOptimize(cluster_disjoint_sat(sdg));
}
BENCHMARK(BM_SatClustering)->Arg(8)->Arg(16)->Arg(24);

void BM_GreedyClustering(benchmark::State& state) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(state.range(0)) * 13 + 7);
    const Sdg sdg =
        suite::random_flat_sdg(rng, 4, 4, static_cast<std::size_t>(state.range(0)), 0.12);
    for (auto _ : state) benchmark::DoNotOptimize(cluster_disjoint_greedy(sdg));
}
BENCHMARK(BM_GreedyClustering)->Arg(8)->Arg(16)->Arg(24);

} // namespace

int main(int argc, char** argv) {
    print_random_table();
    print_suite_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
