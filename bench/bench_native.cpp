// The native AOT backend's performance claim, measured: generated-code size
// (emitted TU and built .so) and single-instance execution throughput per
// clustering method, interpreter vs. dlopen'ed native module, on the
// fuel_controller-class demo models.
//
// The headline gate: native execution must beat the interpreter by >= 10x
// on every accepted (model, method) cell of the fuel_controller-class
// models — that is what justifies paying a host-compiler invocation at
// load time.
//
// Machine-readable output: BENCH_native.json in the working directory, one
// record per (model, method) cell plus the gate verdict, so the perf
// trajectory can be tracked across PRs.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "core/exec.hpp"
#include "native/native.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

constexpr double kSpeedupGate = 10.0;

struct Cell {
    std::string model;
    std::string method;
    bool accepted = false;
    std::size_t tu_bytes = 0;
    std::size_t so_bytes = 0;
    double compile_ms = 0.0;
    bool cache_hit = false;
    double interp_ips = 0.0; ///< instants per second, single instance
    double native_ips = 0.0;
    double speedup = 0.0;
};

double measure_ips(Instance& inst, std::span<const double> in, std::span<double> out) {
    inst.init();
    for (int t = 0; t < 200; ++t) inst.step_instant_into(in, out); // warm-up
    // Scale the iteration count so slow interpreter cells still get a
    // multi-millisecond window.
    int iters = 2000;
    double ms = 0.0;
    for (;;) {
        ms = sbd::bench::time_ms([&] {
            for (int t = 0; t < iters; ++t) inst.step_instant_into(in, out);
        });
        if (ms >= 20.0 || iters >= 2000000) break;
        iters *= 4;
    }
    return static_cast<double>(iters) / (ms / 1000.0);
}

void write_json(const std::string& compiler, const std::vector<Cell>& cells,
                double min_speedup, bool pass) {
    std::FILE* f = std::fopen("BENCH_native.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_native.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"native_backend\",\n");
    std::fprintf(f, "  \"compiler\": \"%s\",\n", compiler.c_str());
    std::fprintf(f, "  \"speedup_gate\": %.1f,\n", kSpeedupGate);
    std::fprintf(f, "  \"min_speedup\": %.2f,\n", min_speedup);
    std::fprintf(f, "  \"pass\": %s,\n  \"cells\": [\n", pass ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        if (!c.accepted) {
            std::fprintf(f, "    {\"model\": \"%s\", \"method\": \"%s\", \"accepted\": false}%s\n",
                         c.model.c_str(), c.method.c_str(),
                         i + 1 < cells.size() ? "," : "");
            continue;
        }
        std::fprintf(f,
                     "    {\"model\": \"%s\", \"method\": \"%s\", \"accepted\": true, "
                     "\"tu_bytes\": %zu, \"so_bytes\": %zu, \"compile_ms\": %.1f, "
                     "\"cache_hit\": %s, \"interp_ips\": %.0f, \"native_ips\": %.0f, "
                     "\"speedup\": %.2f}%s\n",
                     c.model.c_str(), c.method.c_str(), c.tu_bytes, c.so_bytes, c.compile_ms,
                     c.cache_hit ? "true" : "false", c.interp_ips, c.native_ips, c.speedup,
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_native.json\n");
}

} // namespace

int main() {
    constexpr Method kMethods[] = {Method::Monolithic,     Method::StepGet,
                                   Method::Dynamic,        Method::DisjointSat,
                                   Method::DisjointGreedy, Method::Singletons};
    struct Row {
        std::string name;
        std::shared_ptr<const MacroBlock> block;
    };
    const std::vector<Row> rows = {{"fuel_controller", suite::fuel_controller()},
                                   {"pi_cruise", suite::pi_cruise()},
                                   {"abs_brake", suite::abs_brake()}};

    const auto store =
        std::filesystem::temp_directory_path() / "sbd-native-bench";
    BackendConfig base;
    base.backend = Backend::Native;
    base.cache_dir = store.string();
    const std::string driver = native::compiler_driver(base);
    const auto version = native::compiler_version(driver);
    if (!version) {
        std::fprintf(stderr, "bench_native: no usable C++ compiler, cannot measure\n");
        return 1;
    }

    std::printf("Native AOT backend vs interpreter: code size and single-instance "
                "throughput\ncompiler: %s\n",
                version->c_str());
    sbd::bench::rule('-', 112);
    std::printf("%-16s | %-15s | %8s | %8s | %9s | %12s | %12s | %8s\n", "model", "method",
                "TU B", ".so B", "compile", "interp i/s", "native i/s", "speedup");
    sbd::bench::rule('-', 112);

    std::vector<Cell> cells;
    double min_speedup = 1e300;
    for (const Row& row : rows) {
        for (const Method method : kMethods) {
            Cell c;
            c.model = row.name;
            c.method = to_string(method);
            CompiledSystem sys;
            try {
                sys = compile_hierarchy(row.block, method);
            } catch (const SdgCycleError&) {
                std::printf("%-16s | %-15s | rejected\n", row.name.c_str(), to_string(method));
                cells.push_back(c);
                continue;
            }
            c.accepted = true;

            BackendConfig cfg = base;
            cfg.method = method;
            const auto exe = native::make_native_executable(sys, row.block, cfg);
            const native::BuildInfo& info = *native::build_info(*exe);
            c.tu_bytes = info.tu_bytes;
            c.so_bytes = info.so_bytes;
            c.compile_ms = static_cast<double>(info.compile_ns) / 1e6;
            c.cache_hit = info.cache_hit;

            InterpInstance interp(sys, row.block);
            const std::unique_ptr<Instance> nat = exe->instantiate();
            const std::vector<double> in(row.block->num_inputs(), 1.0);
            std::vector<double> out(row.block->num_outputs());
            c.interp_ips = measure_ips(interp, in, out);
            c.native_ips = measure_ips(*nat, in, out);
            c.speedup = c.interp_ips > 0 ? c.native_ips / c.interp_ips : 0.0;
            min_speedup = std::min(min_speedup, c.speedup);

            std::printf("%-16s | %-15s | %8zu | %8zu | %7.0fms | %12.0f | %12.0f | %7.1fx\n",
                        row.name.c_str(), to_string(method), c.tu_bytes, c.so_bytes,
                        c.compile_ms, c.interp_ips, c.native_ips, c.speedup);
            cells.push_back(c);
        }
    }
    sbd::bench::rule('-', 112);
    const bool pass = min_speedup >= kSpeedupGate;
    std::printf("gate: native >= %.0fx interpreter on every accepted cell: %s "
                "(min %.1fx)\n",
                kSpeedupGate, pass ? "PASS" : "FAIL", min_speedup);
    write_json(driver, cells, min_speedup, pass);
    return pass ? 0 : 1;
}
