// Regenerates the paper's Section 8 experiments table on the offline model
// suite (the stand-in for the Simulink demo suite + industrial automotive
// models; see DESIGN.md substitutions).
//
// Per model and per clustering method: whether modular code generation
// succeeds, the number of generated interface functions, total generated
// code size, replication, and generation time. The paper's findings that
// this table must reproduce in shape:
//   - monolithic / step-get get rejected (or lose contexts) on models with
//     Moore feedback across levels;
//   - the dynamic method accepts everything with the fewest functions but
//     replicates code where output cones share logic;
//   - optimal disjoint clustering accepts everything, never replicates and
//     pays at most a small number of extra functions.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "sbd/flatten.hpp"
#include "suite/figures.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

std::size_t hierarchy_depth(const Block& b) {
    if (b.is_atomic()) return 0;
    const auto& m = static_cast<const MacroBlock&>(b);
    std::size_t d = 0;
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        d = std::max(d, hierarchy_depth(*m.sub(s).type));
    return d + 1;
}

void print_table() {
    const Method methods[] = {Method::Monolithic, Method::StepGet, Method::Dynamic,
                              Method::DisjointSat};
    std::printf("Section 8 experiments: the model suite under all code generation methods\n");
    std::printf("(cells: functions/LoC/replication, or REJ when the SDG is cyclic)\n");
    sbd::bench::rule('-', 118);
    std::printf("%-16s %6s %5s | %14s | %14s | %14s | %16s | %9s\n", "model", "atoms",
                "depth", "monolithic", "step-get", "dynamic", "disjoint-sat", "sat ms");
    sbd::bench::rule('-', 118);
    for (const auto& model : suite::demo_suite()) {
        const auto& m = static_cast<const MacroBlock&>(*model.block);
        const auto flat = flatten(m);
        std::printf("%-16s %6zu %5zu |", model.name.c_str(), flat->num_subs(),
                    hierarchy_depth(m));
        double sat_ms = 0.0;
        for (const Method method : methods) {
            try {
                CompiledSystem sys;
                const double ms =
                    sbd::bench::time_ms([&] { sys = compile_hierarchy(model.block, method); });
                if (method == Method::DisjointSat) sat_ms = ms;
                std::printf(" %4zu/%4zu/%3zu |", sys.total_functions(), sys.total_lines(),
                            sys.total_replication());
            } catch (const SdgCycleError&) {
                std::printf(" %14s |", "REJ");
            }
        }
        std::printf(" %9.2f\n", sat_ms);
    }
    sbd::bench::rule('-', 118);
    std::printf("shape check: no REJ in the dynamic/disjoint columns; dynamic functions <=\n"
                "disjoint functions; disjoint replication is always 0.\n\n");
}

void BM_CompileSuiteModel(benchmark::State& state) {
    const auto models = suite::demo_suite();
    const auto& model = models.at(static_cast<std::size_t>(state.range(0)));
    const Method method = static_cast<Method>(state.range(1));
    for (auto _ : state) {
        try {
            benchmark::DoNotOptimize(compile_hierarchy(model.block, method));
        } catch (const SdgCycleError&) {
        }
    }
    state.SetLabel(model.name + "/" + to_string(method));
}
BENCHMARK(BM_CompileSuiteModel)
    ->Args({5, static_cast<int>(Method::Dynamic)})
    ->Args({5, static_cast<int>(Method::DisjointSat)})
    ->Args({10, static_cast<int>(Method::Dynamic)})
    ->Args({10, static_cast<int>(Method::DisjointSat)});

} // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
