// End-to-end serving benchmark: sustained TICK throughput and request
// latency of sbd_serve over a real loopback TCP connection, across shard
// and pool-size configurations.
//
// Before timing anything it verifies the serving invariant: outputs read
// back over the wire are bit-identical to a direct single-threaded Engine
// fed the same seeded inputs. It also measures the admission path: an
// over-budget tenant must be shed with coded TENANT_BUDGET rejections
// while the in-budget tenant's results stay untouched.
//
// Machine-readable output: BENCH_serve.json in the working directory, one
// record per (shards, instances) cell. Gates (exit code): bit-exactness,
// shed-rate > 0 for the over-budget tenant, and generous throughput /
// latency floors chosen to catch order-of-magnitude regressions without
// flaking on loaded CI machines.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "runtime/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "suite/models.hpp"

namespace {

using namespace sbd;
using serve::Client;
using serve::Endpoint;
using serve::Server;
using serve::ServerConfig;
using serve::WireHandle;

struct Cell {
    std::size_t shards = 0;
    std::size_t instances = 0;
    std::size_t ticks = 0;
    double ticks_per_sec = 0.0; ///< closed-loop sustained TICK requests/sec
    std::uint64_t p50_ns = 0;   ///< open-loop TICK round-trip latency
    std::uint64_t p99_ns = 0;
};

std::uint64_t percentile_ns(std::vector<std::uint64_t> v, double q) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t idx =
        std::min(v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
    return v[idx];
}

/// One server + one client, `instances` slots spread over `shards` shards.
struct Harness {
    Harness(const codegen::CompiledSystem& sys, const BlockPtr& root,
            std::size_t shards, std::size_t instances, std::uint64_t tenant_cap = 0)
        : server(sys, root, make_config(shards, instances, tenant_cap)), client(connect()) {}

    static ServerConfig make_config(std::size_t shards, std::size_t instances,
                                    std::uint64_t tenant_cap) {
        ServerConfig cfg;
        cfg.endpoint = Endpoint::parse("tcp:127.0.0.1:0");
        cfg.shards = shards;
        cfg.shard_capacity = (instances + shards - 1) / shards + 1;
        cfg.tenant_max_instances = tenant_cap;
        return cfg;
    }

    Client connect() {
        server.start();
        return Client::connect(server.endpoint());
    }

    ~Harness() {
        server.request_stop();
        server.wait();
    }

    Server server;
    Client client;
};

/// Served outputs == direct single-threaded Engine outputs, bitwise, with
/// per-instance seeded inputs re-posted every instant.
bool verify_bit_exact(const codegen::CompiledSystem& sys, const BlockPtr& root,
                      std::size_t shards) {
    const std::size_t instances = 8;
    const std::size_t instants = 30;
    const std::size_t nin = root->num_inputs();
    const std::size_t nout = root->num_outputs();

    runtime::EngineConfig ecfg;
    ecfg.capacity = instances;
    runtime::Engine ref(sys, root, ecfg);
    const auto ref_ids = ref.create(instances);

    Harness h(sys, root, shards, instances);
    const auto handles = h.client.create_instances(1, static_cast<std::uint32_t>(instances));

    std::vector<runtime::LcgInputSource> served_src, ref_src;
    for (std::size_t i = 0; i < instances; ++i) {
        served_src.emplace_back(100 + i);
        ref_src.emplace_back(100 + i);
    }
    std::vector<double> rows(instances * nin);
    for (std::size_t t = 0; t < instants; ++t) {
        for (std::size_t i = 0; i < instances; ++i) {
            served_src[i].fill({rows.data() + i * nin, nin});
            ref_src[i].fill(ref.pool().inputs(ref_ids[i]));
        }
        h.client.post_inputs(1, handles, rows);
        h.client.tick(1, 1);
        ref.tick();
        const auto got = h.client.read_outputs(1, handles);
        for (std::size_t i = 0; i < instances; ++i) {
            const auto want = ref.pool().outputs(ref_ids[i]);
            if (std::memcmp(got.data() + i * nout, want.data(), nout * sizeof(double)) != 0)
                return false;
        }
    }
    return true;
}

/// Closed-loop: TICK requests back-to-back over the wire; the rate is the
/// serving ceiling for this configuration.
double measure_ticks_per_sec(Harness& h, std::size_t ticks) {
    h.client.tick(1, 5); // warm-up: faults arenas, primes the connection
    const double ms = sbd::bench::time_ms([&] {
        for (std::size_t t = 0; t < ticks; ++t) h.client.tick(1, 1);
    });
    return static_cast<double>(ticks) / (ms / 1000.0);
}

/// Open-loop at a fixed request timeline (no coordinated omission): each
/// TICK's round-trip is measured against its scheduled send time.
void measure_open_loop(Harness& h, double rps, std::size_t requests,
                       std::uint64_t* p50, std::uint64_t* p99) {
    using clock = std::chrono::steady_clock;
    const auto period =
        std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(1.0 / rps));
    std::vector<std::uint64_t> lat;
    lat.reserve(requests);
    const auto start = clock::now();
    for (std::size_t n = 0; n < requests; ++n) {
        std::this_thread::sleep_until(start + period * static_cast<long>(n));
        const auto t0 = clock::now();
        h.client.tick(1, 1);
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0).count()));
    }
    *p50 = percentile_ns(lat, 0.50);
    *p99 = percentile_ns(lat, 0.99);
}

struct ShedResult {
    std::size_t attempts = 0;
    std::size_t shed = 0;
    bool good_tenant_intact = false;
};

/// Tenant 2 hammers CREATE past its budget; every overage must come back
/// as a coded TENANT_BUDGET rejection and tenant 1's instances must keep
/// producing reference-exact outputs.
ShedResult measure_shed(const codegen::CompiledSystem& sys, const BlockPtr& root) {
    const std::size_t instants = 10;
    const std::size_t nout = root->num_outputs();

    runtime::EngineConfig ecfg;
    ecfg.capacity = 1;
    runtime::Engine ref(sys, root, ecfg);
    const auto ref_id = ref.create(1).front();

    ShedResult r;
    Harness h(sys, root, /*shards=*/2, /*instances=*/16, /*tenant_cap=*/4);
    const auto good = h.client.create_instances(1, 1);
    for (std::size_t n = 0; n < 8; ++n) {
        ++r.attempts;
        try {
            h.client.create_instances(2, 2); // 4 allowed, then budget-shed
        } catch (const serve::ServeError& e) {
            if (e.code() == serve::Err::TenantBudget) ++r.shed;
        }
        h.client.tick(1, 1);
        ref.tick();
    }
    for (std::size_t t = 8; t < instants; ++t) {
        h.client.tick(1, 1);
        ref.tick();
    }
    const auto got = h.client.read_outputs(1, good);
    const auto want = ref.pool().outputs(ref_id);
    r.good_tenant_intact =
        std::memcmp(got.data(), want.data(), nout * sizeof(double)) == 0;
    return r;
}

void write_json(const std::vector<Cell>& cells, bool bit_exact, const ShedResult& shed,
                bool gates_pass) {
    std::FILE* f = std::fopen("BENCH_serve.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_serve.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"bit_exact\": %s,\n", bit_exact ? "true" : "false");
    std::fprintf(f,
                 "  \"shed\": {\"attempts\": %zu, \"shed\": %zu, \"rate\": %.3f, "
                 "\"good_tenant_intact\": %s},\n",
                 shed.attempts, shed.shed,
                 shed.attempts ? static_cast<double>(shed.shed) / shed.attempts : 0.0,
                 shed.good_tenant_intact ? "true" : "false");
    std::fprintf(f, "  \"gates_pass\": %s,\n  \"cells\": [\n", gates_pass ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        std::fprintf(f,
                     "    {\"shards\": %zu, \"instances\": %zu, \"ticks\": %zu, "
                     "\"ticks_per_sec\": %.0f, \"tick_p50_ns\": %llu, \"tick_p99_ns\": %llu}%s\n",
                     c.shards, c.instances, c.ticks, c.ticks_per_sec,
                     static_cast<unsigned long long>(c.p50_ns),
                     static_cast<unsigned long long>(c.p99_ns),
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");
}

} // namespace

int main() {
    const auto root = suite::thermostat();
    const auto sys = codegen::compile_hierarchy(root, codegen::Method::Dynamic);

    const std::vector<std::pair<std::size_t, std::size_t>> configs = {
        {1, 32}, {2, 64}, {4, 128}};
    const std::size_t closed_ticks = 400;
    const double open_rps = 200.0;
    const std::size_t open_requests = 120;

    std::printf("sbd-serve loopback TCP: TICK throughput and latency "
                "(%u hardware threads)\n",
                std::thread::hardware_concurrency());

    bool bit_exact = true;
    for (const auto& [shards, instances] : configs) {
        (void)instances;
        if (!verify_bit_exact(sys, root, shards)) {
            bit_exact = false;
            std::printf("%zu shard(s): BIT-EXACTNESS FAILED\n", shards);
        }
    }

    sbd::bench::rule('-', 84);
    std::printf("%6s | %9s | %12s | %12s | %12s\n", "shards", "instances", "ticks/sec",
                "p50 (ms)", "p99 (ms)");
    sbd::bench::rule('-', 84);

    std::vector<Cell> cells;
    for (const auto& [shards, instances] : configs) {
        Cell c;
        c.shards = shards;
        c.instances = instances;
        c.ticks = closed_ticks;
        {
            Harness h(sys, root, shards, instances);
            h.client.create_instances(1, static_cast<std::uint32_t>(instances));
            c.ticks_per_sec = measure_ticks_per_sec(h, closed_ticks);
            measure_open_loop(h, open_rps, open_requests, &c.p50_ns, &c.p99_ns);
        }
        cells.push_back(c);
        std::printf("%6zu | %9zu | %12.0f | %12.3f | %12.3f\n", c.shards, c.instances,
                    c.ticks_per_sec, c.p50_ns / 1e6, c.p99_ns / 1e6);
    }
    sbd::bench::rule('-', 84);

    const ShedResult shed = measure_shed(sys, root);
    std::printf("over-budget tenant: %zu/%zu creates shed (TENANT_BUDGET), "
                "in-budget tenant bit-exact: %s\n",
                shed.shed, shed.attempts, shed.good_tenant_intact ? "yes" : "NO");
    std::printf("bit-exactness (served outputs == direct engine): %s\n",
                bit_exact ? "PASS" : "FAIL");

    // Gates: generous floors — they catch a broken serving path or an
    // order-of-magnitude regression, not a noisy CI neighbour.
    bool gates = bit_exact && shed.shed > 0 && shed.good_tenant_intact;
    for (const Cell& c : cells) {
        if (c.ticks_per_sec < 50.0) gates = false;
        if (c.p99_ns > 500ull * 1000 * 1000) gates = false;
    }
    write_json(cells, bit_exact, shed, gates);
    std::printf("gates: %s\n", gates ? "PASS" : "FAIL");
    return gates ? 0 : 1;
}
