// Compilation-pipeline benchmark: cold vs. warm vs. parallel compilation of
// deep shared-type hierarchies through the content-addressed profile cache.
//
// Verifies bit-exactness before timing anything (warm and parallel compiles
// must render identically to the cold serial one), then measures:
//   cold       — serial, empty cache: every distinct structure is compiled
//   warm       — same pipeline again: every macro block served from memory
//   disk-warm  — fresh process state, cache dir populated by the cold run
//   parallel   — empty cache, task-graph driver with N worker threads
//
// Machine-readable output: BENCH_pipeline.json in the working directory,
// one record per (model, method, mode) cell with cache counters.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/emit_cpp.hpp"
#include "core/pipeline.hpp"
#include "suite/random_models.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sbd;
using namespace sbd::codegen;

struct Cell {
    std::string model;
    std::string method;
    std::string mode;
    double ms = 0.0;
    double speedup_vs_cold = 0.0;
    std::uint64_t macro_compiles = 0;
    std::uint64_t macro_reuses = 0;
    std::uint64_t disk_hits = 0;
    double hit_rate = 0.0;
};

std::string render(const CompiledSystem& sys) {
    std::string out;
    for (const Block* b : sys.order()) {
        const auto& cb = sys.at(*b);
        out += cb.profile.to_string();
        if (cb.code) out += cb.code->to_pseudocode();
    }
    return out;
}

void write_json(const std::vector<Cell>& cells, bool bit_exact, double min_warm_speedup) {
    std::FILE* f = std::fopen("BENCH_pipeline.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"bit_exact\": %s,\n", bit_exact ? "true" : "false");
    std::fprintf(f, "  \"min_warm_speedup\": %.2f,\n  \"cells\": [\n", min_warm_speedup);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        std::fprintf(f,
                     "    {\"model\": \"%s\", \"method\": \"%s\", \"mode\": \"%s\", "
                     "\"ms\": %.3f, \"speedup_vs_cold\": %.2f, \"macro_compiles\": %llu, "
                     "\"macro_reuses\": %llu, \"disk_hits\": %llu, \"hit_rate\": %.4f}%s\n",
                     c.model.c_str(), c.method.c_str(), c.mode.c_str(), c.ms,
                     c.speedup_vs_cold, static_cast<unsigned long long>(c.macro_compiles),
                     static_cast<unsigned long long>(c.macro_reuses),
                     static_cast<unsigned long long>(c.disk_hits), c.hit_rate,
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_pipeline.json\n");
}

} // namespace

int main() {
    struct Shape {
        std::string name;
        suite::DeepModelParams params;
    };
    std::vector<Shape> shapes(2);
    shapes[0].name = "deep_shared_l7";
    shapes[0].params.levels = 7;
    shapes[0].params.types_per_level = 5;
    shapes[0].params.subs_per_macro = 5;
    shapes[0].params.clone_probability = 0.5;
    shapes[1].name = "deep_wide_l6";
    shapes[1].params.levels = 6;
    shapes[1].params.types_per_level = 8;
    shapes[1].params.subs_per_macro = 4;
    shapes[1].params.clone_probability = 0.25;

    const std::size_t par_threads =
        std::max<std::size_t>(2, std::min<std::size_t>(8, std::thread::hardware_concurrency()));
    const fs::path disk_root =
        fs::temp_directory_path() / ("sbd_bench_pipeline_" + std::to_string(::getpid()));

    std::printf("Compilation pipeline: cold vs warm vs parallel (%zu worker threads)\n",
                par_threads);
    sbd::bench::rule('-', 110);
    std::printf("%-16s | %-12s | %9s | %9s | %9s | %9s | %7s | %7s | %8s\n", "model", "method",
                "cold ms", "warm ms", "disk ms", "par ms", "warm x", "par x", "hit rate");
    sbd::bench::rule('-', 110);

    std::vector<Cell> cells;
    bool bit_exact = true;
    double min_warm_speedup = 1e30;
    for (const Shape& shape : shapes) {
        std::mt19937_64 rng(90210);
        const auto model = suite::random_deep_model(rng, shape.params);
        for (const Method method : {Method::Dynamic, Method::DisjointSat}) {
            const std::string cache_dir =
                (disk_root / (shape.name + "_" + to_string(method))).string();

            PipelineOptions cold_opts;
            cold_opts.method = method;
            cold_opts.cache_dir = cache_dir; // populates the disk store
            Pipeline cold_pipeline(cold_opts);
            CompiledSystem cold_sys;
            const double cold_ms =
                sbd::bench::time_ms([&] { cold_sys = cold_pipeline.compile(model); });
            const auto cold_stats = cold_pipeline.stats();
            const std::string expected = render(cold_sys);

            // Warm: the same pipeline object compiles again — every macro
            // block is a memory hit.
            CompiledSystem warm_sys;
            const double warm_ms =
                sbd::bench::time_ms([&] { warm_sys = cold_pipeline.compile(model); });
            const auto warm_stats = cold_pipeline.stats();

            // Disk-warm: fresh pipeline and memory cache, loads every entry
            // from the cache directory the cold run wrote.
            PipelineOptions disk_opts = cold_opts;
            Pipeline disk_pipeline(disk_opts);
            CompiledSystem disk_sys;
            const double disk_ms =
                sbd::bench::time_ms([&] { disk_sys = disk_pipeline.compile(model); });
            const auto disk_stats = disk_pipeline.stats();

            // Parallel: empty cache, concurrent task-graph execution.
            PipelineOptions par_opts;
            par_opts.method = method;
            par_opts.threads = par_threads;
            Pipeline par_pipeline(par_opts);
            CompiledSystem par_sys;
            const double par_ms =
                sbd::bench::time_ms([&] { par_sys = par_pipeline.compile(model); });

            if (render(warm_sys) != expected || render(disk_sys) != expected ||
                render(par_sys) != expected) {
                bit_exact = false;
                std::printf("%-16s | %-12s | BIT-EXACTNESS FAILED\n", shape.name.c_str(),
                            to_string(method));
                continue;
            }

            const double warm_x = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
            const double par_x = par_ms > 0 ? cold_ms / par_ms : 0.0;
            min_warm_speedup = std::min(min_warm_speedup, warm_x);
            std::printf("%-16s | %-12s | %9.2f | %9.2f | %9.2f | %9.2f | %6.1fx | %6.2fx | %8.3f\n",
                        shape.name.c_str(), to_string(method), cold_ms, warm_ms, disk_ms,
                        par_ms, warm_x, par_x, cold_stats.hit_rate());

            cells.push_back({shape.name, to_string(method), "cold", cold_ms, 1.0,
                             cold_stats.macro_compiles, cold_stats.macro_reuses,
                             cold_stats.disk_hits, cold_stats.hit_rate()});
            cells.push_back({shape.name, to_string(method), "warm", warm_ms, warm_x,
                             warm_stats.macro_compiles - cold_stats.macro_compiles,
                             warm_stats.macro_reuses - cold_stats.macro_reuses, 0,
                             warm_stats.hit_rate()});
            cells.push_back({shape.name, to_string(method), "disk_warm", disk_ms,
                             disk_ms > 0 ? cold_ms / disk_ms : 0.0,
                             disk_stats.macro_compiles, disk_stats.macro_reuses,
                             disk_stats.disk_hits, disk_stats.hit_rate()});
            cells.push_back({shape.name, to_string(method), "parallel", par_ms, par_x,
                             par_pipeline.stats().macro_compiles,
                             par_pipeline.stats().macro_reuses, 0,
                             par_pipeline.stats().hit_rate()});
        }
    }
    sbd::bench::rule('-', 110);
    std::printf("bit-exactness (warm == disk-warm == parallel == cold): %s\n",
                bit_exact ? "PASS" : "FAIL");
    std::printf("min warm speedup vs cold: %.1fx (target >= 5x)\n", min_warm_speedup);
    write_json(cells, bit_exact, min_warm_speedup);
    std::error_code ec;
    fs::remove_all(disk_root, ec);
    return bit_exact && min_warm_speedup >= 5.0 ? 0 : 1;
}
