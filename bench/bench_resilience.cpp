// Resilience overhead benchmark: what do the compiled-in fault points cost
// when nothing is armed (the shipped default)?
//
// The unarmed check is one relaxed atomic load and a branch, so its cost
// cannot be measured by differencing two noisy end-to-end timings — the
// delta drowns in scheduler jitter. Instead this bench measures the two
// factors directly and multiplies:
//   * per-check cost  — a tight microbenchmark of SBD_FAULT_HIT against a
//     point that is never scheduled (best-of-R, amortized over 2^24 checks);
//   * checks per run  — counted exactly, by arming an all-"off" plan (every
//     catalog point scheduled Never, so behaviour is unchanged) around one
//     cold compile + engine workload and reading the registry snapshot.
// overhead_pct = per_check_ns * checks_per_run / unarmed_run_ns.
//
// Gates (exit 1 on failure, so CI can run this as a check):
//   * projected unarmed overhead on the cold-compile workload <= +1%;
//   * armed-with-off-schedules runs render bit-identically to unarmed runs
//     (a plan that injects nothing must change nothing).
//
// Also reported (not gated): the measured wall-clock of the armed-off
// configuration, whose per-hit mutex is the documented testing-mode cost.
//
// Machine-readable output: BENCH_resilience.json in the working directory.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "resilience/fault.hpp"
#include "runtime/engine.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;
using namespace sbd::resilience;

constexpr int kRepeats = 7;
constexpr std::uint64_t kMicroChecks = 1u << 24;
constexpr std::size_t kEngineInstances = 64;
constexpr std::size_t kEngineInstants = 50;

std::string render(const CompiledSystem& sys) {
    std::string out;
    for (const Block* b : sys.order()) {
        const auto& cb = sys.at(*b);
        out += cb.profile.to_string();
        if (cb.code) out += cb.code->to_pseudocode();
    }
    return out;
}

/// The gated workload: one cold compile (fresh pipeline, no cache reuse)
/// plus a short engine run — every fault point on the normal path executes.
std::string run_workload(const std::shared_ptr<const MacroBlock>& root) {
    Pipeline pipeline{PipelineOptions{}};
    const CompiledSystem sys = pipeline.compile(root);
    runtime::EngineConfig cfg;
    cfg.capacity = kEngineInstances;
    runtime::Engine engine(sys, root, cfg);
    const auto ids = engine.create(kEngineInstances);
    std::vector<runtime::LcgInputSource> sources;
    sources.reserve(kEngineInstances);
    for (std::size_t i = 0; i < kEngineInstances; ++i) sources.emplace_back(1 + i);
    for (std::size_t t = 0; t < kEngineInstants; ++t) {
        for (std::size_t i = 0; i < kEngineInstances; ++i)
            sources[i].fill(engine.pool().inputs(ids[i]));
        engine.tick();
    }
    return render(sys);
}

double best_ms(const std::function<void()>& fn) {
    double best = 1e300;
    for (int r = 0; r < kRepeats; ++r) best = std::min(best, sbd::bench::time_ms(fn));
    return best;
}

/// ns per unarmed SBD_FAULT_HIT, amortized over a tight loop. The volatile
/// sink keeps the optimizer from hoisting the whole check.
double per_check_ns() {
    volatile bool sink = false;
    double best = 1e300;
    for (int r = 0; r < kRepeats; ++r) {
        const double ms = sbd::bench::time_ms([&] {
            for (std::uint64_t i = 0; i < kMicroChecks; ++i)
                sink = sink | SBD_FAULT_HIT("bench.unarmed");
        });
        best = std::min(best, ms);
    }
    (void)sink;
    return best * 1e6 / static_cast<double>(kMicroChecks);
}

FaultPlan all_off_plan() {
    FaultPlan plan;
    plan.seed = 1;
    for (const char* point : kFaultPointCatalog)
        plan.points.emplace_back(point, Schedule{}); // ScheduleKind::Never
    return plan;
}

} // namespace

int main() {
    std::mt19937_64 rng(17);
    suite::DeepModelParams params;
    params.levels = 5;
    const auto root = suite::random_deep_model(rng, params);

    std::printf("Resilience overhead: cold compile + %zu x %zu engine ticks, best of %d\n",
                kEngineInstances, kEngineInstants, kRepeats);
    sbd::bench::rule('-', 72);

    // Behavioural gate first: an armed plan that injects nothing must not
    // change one bit of the output.
    const std::string unarmed_render = run_workload(root);
    std::string armed_render;
    std::uint64_t checks_per_run = 0;
    {
        ScopedFaultPlan armed(all_off_plan());
        armed_render = run_workload(root);
        for (const PointStats& pt : FaultRegistry::instance().snapshot())
            checks_per_run += pt.hits;
    }
    const bool bit_exact = armed_render == unarmed_render;

    const double unarmed_ms = best_ms([&] { (void)run_workload(root); });
    double armed_ms = 0.0;
    {
        ScopedFaultPlan armed(all_off_plan());
        armed_ms = best_ms([&] { (void)run_workload(root); });
    }
    const double check_ns = per_check_ns();
    const double projected_pct =
        check_ns * static_cast<double>(checks_per_run) / (unarmed_ms * 1e6) * 100.0;
    const double armed_pct = (armed_ms / unarmed_ms - 1.0) * 100.0;

    std::printf("%-34s | %9.2f ms |\n", "unarmed (shipped default)", unarmed_ms);
    std::printf("%-34s | %9.2f ms | %+6.2f%%\n", "armed, all schedules off", armed_ms,
                armed_pct);
    std::printf("%-34s | %9.3f ns/check x %llu checks\n", "unarmed check (microbench)",
                check_ns, static_cast<unsigned long long>(checks_per_run));
    sbd::bench::rule('-', 72);
    std::printf("bit-exact (armed-off == unarmed): %s\n", bit_exact ? "PASS" : "FAIL");
    std::printf("projected unarmed overhead: %.4f%% (gate: <= 1%%): %s\n", projected_pct,
                projected_pct <= 1.0 ? "PASS" : "FAIL");

    const bool pass = bit_exact && projected_pct <= 1.0;
    std::FILE* f = std::fopen("BENCH_resilience.json", "w");
    if (f != nullptr) {
        std::fprintf(f, "{\n  \"bench\": \"resilience_overhead\",\n");
        std::fprintf(f, "  \"repeats\": %d,\n", kRepeats);
        std::fprintf(f, "  \"unarmed_ms\": %.3f,\n", unarmed_ms);
        std::fprintf(f, "  \"armed_off_ms\": %.3f,\n  \"armed_off_overhead_pct\": %.2f,\n",
                     armed_ms, armed_pct);
        std::fprintf(f, "  \"per_check_ns\": %.4f,\n  \"checks_per_run\": %llu,\n", check_ns,
                     static_cast<unsigned long long>(checks_per_run));
        std::fprintf(f, "  \"projected_unarmed_overhead_pct\": %.4f,\n", projected_pct);
        std::fprintf(f, "  \"bit_exact\": %s,\n", bit_exact ? "true" : "false");
        std::fprintf(f, "  \"overhead_gate_pct\": 1.0,\n");
        std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
        std::fclose(f);
        std::printf("wrote BENCH_resilience.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_resilience.json\n");
    }
    return pass ? 0 : 1;
}
