// Scalability of modular code generation (both papers' motivation: the
// complexity at each level is a function of sub-block *profile* sizes, not
// of the flattened diagram).
//
// Two series:
//   (a) clustering time vs SDG size for dynamic / step-get / greedy /
//       iterated-SAT on random flat SDGs;
//   (b) whole-hierarchy compile time vs hierarchy size for the dynamic
//       method, against the size of the flattened diagram — modular
//       compilation touches each block type once, so shared subsystems
//       make it sublinear in the flat size.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "sbd/flatten.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

void print_clustering_series() {
    std::printf("(a) clustering time [ms] vs SDG size (random flat SDGs, edge p = 0.08)\n");
    sbd::bench::rule('-', 96);
    std::printf("%7s | %10s %10s %10s %12s | %6s %6s %6s\n", "|Vint|", "dynamic", "step-get",
                "greedy", "sat-optimal", "k_dyn", "k_sat", "k_grd");
    sbd::bench::rule('-', 96);
    std::mt19937_64 rng(31337);
    for (const std::size_t internals : {10u, 20u, 40u, 80u, 120u}) {
        const Sdg sdg = suite::random_flat_sdg(rng, 5, 5, internals, 0.08);
        Clustering dyn, sg, grd, sat;
        const double t_dyn = sbd::bench::time_ms([&] { dyn = cluster_dynamic(sdg); });
        const double t_sg = sbd::bench::time_ms([&] { sg = cluster_stepget(sdg); });
        const double t_grd = sbd::bench::time_ms([&] { grd = cluster_disjoint_greedy(sdg); });
        const double t_sat = sbd::bench::time_ms([&] { sat = cluster_disjoint_sat(sdg); });
        std::printf("%7zu | %10.2f %10.2f %10.2f %12.2f | %6zu %6zu %6zu\n", internals, t_dyn,
                    t_sg, t_grd, t_sat, dyn.num_clusters(), sat.num_clusters(),
                    grd.num_clusters());
    }
    sbd::bench::rule('-', 96);
}

void print_hierarchy_series() {
    std::printf("\n(b) modular compile time vs hierarchy size (dynamic method)\n");
    sbd::bench::rule('-', 86);
    std::printf("%6s %6s | %10s %11s | %12s %12s\n", "depth", "subs", "flat atoms",
                "block types", "compile ms", "flatten ms");
    sbd::bench::rule('-', 86);
    std::mt19937_64 rng(999);
    for (const auto& [depth, subs] : std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 4}, {2, 8}, {3, 6}, {3, 8}, {4, 6}}) {
        suite::RandomModelParams params;
        params.depth = depth;
        params.subs_per_level = subs;
        params.macro_probability = 0.4;
        const auto m = suite::random_model(rng, params);
        std::shared_ptr<const MacroBlock> flat;
        const double t_flat = sbd::bench::time_ms([&] { flat = flatten(*m); });
        CompiledSystem sys;
        const double t_compile =
            sbd::bench::time_ms([&] { sys = compile_hierarchy(m, Method::Dynamic); });
        std::printf("%6zu %6zu | %10zu %11zu | %12.2f %12.2f\n", depth, subs,
                    flat->num_subs(), sys.order().size(), t_compile, t_flat);
    }
    sbd::bench::rule('-', 86);
    std::printf("shape check: all polynomial-time methods scale gently; SAT cost tracks the\n"
                "optimum k (iterations), not the raw SDG size; compile cost follows the\n"
                "number of distinct block types, not the flattened diagram size.\n\n");
}

void BM_DynamicClustering(benchmark::State& state) {
    std::mt19937_64 rng(5);
    const Sdg sdg =
        suite::random_flat_sdg(rng, 5, 5, static_cast<std::size_t>(state.range(0)), 0.08);
    for (auto _ : state) benchmark::DoNotOptimize(cluster_dynamic(sdg));
}
BENCHMARK(BM_DynamicClustering)->Arg(20)->Arg(80)->Arg(320);

void BM_ValidityCheck(benchmark::State& state) {
    std::mt19937_64 rng(6);
    const Sdg sdg =
        suite::random_flat_sdg(rng, 5, 5, static_cast<std::size_t>(state.range(0)), 0.08);
    const Clustering c = cluster_disjoint_greedy(sdg);
    for (auto _ : state) benchmark::DoNotOptimize(check_validity(sdg, c));
}
BENCHMARK(BM_ValidityCheck)->Arg(20)->Arg(80);

void BM_FlattenHierarchy(benchmark::State& state) {
    std::mt19937_64 rng(7);
    suite::RandomModelParams params;
    params.depth = static_cast<std::size_t>(state.range(0));
    params.subs_per_level = 6;
    params.macro_probability = 0.4;
    const auto m = suite::random_model(rng, params);
    for (auto _ : state) benchmark::DoNotOptimize(flatten(*m));
}
BENCHMARK(BM_FlattenHierarchy)->Arg(2)->Arg(3)->Arg(4);

} // namespace

int main(int argc, char** argv) {
    print_clustering_series();
    print_hierarchy_series();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
