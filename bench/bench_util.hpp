#ifndef SBD_BENCH_UTIL_HPP
#define SBD_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <functional>

namespace sbd::bench {

/// Wall-clock of one call, in milliseconds.
inline double time_ms(const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

inline void rule(char c = '-', int width = 100) {
    for (int i = 0; i < width; ++i) std::putchar(c);
    std::putchar('\n');
}

} // namespace sbd::bench

#endif
