// Ablation study of the design choices inside the iterated-SAT optimal
// disjoint clustering (DESIGN.md "ablation benches for the design choices"):
//
//   - symmetry breaking (cluster ids ordered by minimal member node)
//   - the In-class lower bound for the starting k (vs starting at k = 1)
//
// Reported per configuration: F_k iterations, total conflicts/decisions and
// wall time. Expected shape: symmetry breaking shrinks the search space of
// the (UNSAT) iterations dramatically as instances grow; the lower bound
// removes the cheap-but-useless small-k iterations; neither changes the
// computed optimum (verified on every row).

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.hpp"
#include "core/methods.hpp"
#include "suite/figures.hpp"
#include "suite/random_models.hpp"

namespace {

using namespace sbd;
using namespace sbd::codegen;

struct Config {
    const char* name;
    ClusterOptions opts;
};

void print_table() {
    const Config configs[] = {
        {"full (sym+lb)", {}},
        {"no symmetry", {.sat_symmetry_breaking = false}},
        {"no lower bound", {.sat_start_k = 1}},
        {"neither", {.sat_start_k = 1, .sat_symmetry_breaking = false}},
    };
    std::printf("Ablation: iterated-SAT optimal disjoint clustering\n");
    sbd::bench::rule('-', 108);
    std::printf("%-22s | %-16s | %4s %6s | %10s %10s | %9s\n", "instance", "config", "k*",
                "iters", "conflicts", "decisions", "time ms");
    sbd::bench::rule('-', 108);

    struct Row {
        std::string name;
        Sdg sdg;
    };
    std::vector<Row> rows;
    {
        std::mt19937_64 rng(2718);
        rows.push_back({"fig4 chain n=12", [] {
                            const auto p = suite::figure4_chain(12);
                            std::vector<Profile> storage;
                            std::vector<const Profile*> ptrs;
                            for (std::size_t s = 0; s < p->num_subs(); ++s)
                                storage.push_back(atomic_profile(
                                    static_cast<const AtomicBlock&>(*p->sub(s).type)));
                            for (const auto& pr : storage) ptrs.push_back(&pr);
                            return build_sdg(*p, ptrs);
                        }()});
        rows.push_back({"random |Vint|=16", suite::random_flat_sdg(rng, 4, 4, 16, 0.15)});
        rows.push_back({"random |Vint|=24", suite::random_flat_sdg(rng, 5, 5, 24, 0.12)});
        rows.push_back({"random |Vint|=32", suite::random_flat_sdg(rng, 5, 5, 32, 0.10)});
    }

    for (const auto& row : rows) {
        std::size_t reference_k = 0;
        for (const Config& cfg : configs) {
            SatClusterStats stats;
            Clustering c;
            const double ms = sbd::bench::time_ms(
                [&] { c = cluster_disjoint_sat(row.sdg, cfg.opts, &stats); });
            if (reference_k == 0) reference_k = c.num_clusters();
            std::printf("%-22s | %-16s | %4zu %6zu | %10llu %10llu | %9.2f%s\n",
                        row.name.c_str(), cfg.name, c.num_clusters(), stats.iterations,
                        static_cast<unsigned long long>(stats.conflicts),
                        static_cast<unsigned long long>(stats.decisions), ms,
                        c.num_clusters() == reference_k ? "" : "  << OPTIMUM CHANGED (BUG)");
        }
        sbd::bench::rule('-', 108);
    }
    std::printf("shape check: k* identical across configs (the ablations only change cost,\n"
                "never the optimum); the lower bound removes the useless small-k rounds. On\n"
                "real-shaped models all configs are cheap -- the combinatorial cost lives in\n"
                "the clique-partition gadgets (see bench_np_reduction), where UNSAT rounds\n"
                "dominate.\n\n");
}

void BM_SatFullConfig(benchmark::State& state) {
    std::mt19937_64 rng(11);
    const Sdg sdg = suite::random_flat_sdg(rng, 4, 4, 20, 0.12);
    for (auto _ : state) benchmark::DoNotOptimize(cluster_disjoint_sat(sdg));
}
BENCHMARK(BM_SatFullConfig);

void BM_SatNoSymmetry(benchmark::State& state) {
    std::mt19937_64 rng(11);
    const Sdg sdg = suite::random_flat_sdg(rng, 4, 4, 20, 0.12);
    const ClusterOptions opts{.sat_symmetry_breaking = false};
    for (auto _ : state) benchmark::DoNotOptimize(cluster_disjoint_sat(sdg, opts));
}
BENCHMARK(BM_SatNoSymmetry);

} // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
