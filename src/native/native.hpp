// The native AOT backend: emit a self-contained C++ translation unit for a
// compiled system, build it with the host C++ compiler into a shared
// object, dlopen it, and bind the exported interface functions behind the
// backend-neutral codegen::Instance contract.
//
// Artifacts live in a content-addressed on-disk store next to the profile
// cache: keyed by structural fingerprint x clustering method/options (the
// human-auditable prefix) x emitted-source hash x compiler version x flags
// x ABI version (the full content key). Writes are atomic renames; a
// corrupted or stale artifact never loads — its content key cannot match —
// and is silently rebuilt. Within a process, builds are memoized and
// concurrent builders of the same key share one compile, so an engine or
// serve shard fleet pays for each distinct artifact once.
#ifndef SBD_NATIVE_NATIVE_HPP
#define SBD_NATIVE_NATIVE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/exec.hpp"

namespace sbd::native {

/// Version of the extern "C" contract between the loader and generated
/// modules. Bumped whenever the exported symbol set or a signature changes;
/// a module built by an older emitter then fails validation and is rebuilt.
inline constexpr std::uint32_t kAbiVersion = 1;

/// Registers the native backend with codegen::make_executable, making
/// `--backend=native` resolvable. Idempotent; binaries that link sbd_native
/// call this once at startup (a static library cannot self-register —
/// nothing would pull the object file in).
void install();

/// The complete translation unit for a compiled system: emit_cpp() plus the
/// extern "C" ABI shim (create/destroy/init/step/call/save/load + identity
/// exports) the loader binds to. Throws std::runtime_error for systems that
/// cannot be emitted (opaque blocks, atomics without C++ semantics).
std::string emit_native_module(const codegen::CompiledSystem& sys);

/// The compiler driver the backend will invoke: cfg.compiler if set, else
/// $SBD_NATIVE_CXX, else $CXX, else "c++".
std::string compiler_driver(const codegen::BackendConfig& cfg);

/// First line of `driver --version`, or nullopt when the driver cannot be
/// executed — the probe behind BackendError::Code::NoCompiler.
std::optional<std::string> compiler_version(const std::string& driver);

/// What one make_native_executable() call did, for observability and the
/// code-size experiments.
struct BuildInfo {
    std::string artifact_path;    ///< final .so path in the store
    std::string key;              ///< structural key (fingerprint x method x options), hex
    std::string store_key;        ///< full content key (adds source/compiler/flags/ABI), hex
    std::string compiler;         ///< resolved driver
    std::string compiler_version; ///< first line of `driver --version`
    std::size_t tu_bytes = 0;     ///< emitted translation-unit size
    std::size_t so_bytes = 0;     ///< built shared-object size
    bool cache_hit = false;       ///< loaded from store without compiling
    std::uint64_t compile_ns = 0; ///< 0 on cache hit
    std::uint64_t load_ns = 0;    ///< dlopen + validation
};

/// Emits, compiles (or cache-hits) and loads the native module for `root`,
/// returning a reusable Executable. Throws codegen::BackendError on every
/// failure path (no compiler, emission rejected, compile failed, artifact
/// unloadable even after a rebuild). Thread-safe; concurrent calls with the
/// same content key share one build.
std::shared_ptr<const codegen::Executable>
make_native_executable(const codegen::CompiledSystem& sys, BlockPtr root,
                       const codegen::BackendConfig& cfg);

/// The build record behind a native executable; nullptr when `e` is not
/// native. Valid for the executable's lifetime.
const BuildInfo* build_info(const codegen::Executable& e);

} // namespace sbd::native

#endif
