#include "native/module.hpp"

#include <dlfcn.h>

#include <cstring>

#include "native/native.hpp"

namespace sbd::native {

namespace {

template <typename Fn>
bool resolve(void* dl, const char* name, Fn* out, std::string* error) {
    // POSIX guarantees object pointers can represent function pointers for
    // dlsym; the reinterpret_cast is the sanctioned idiom.
    void* sym = ::dlsym(dl, name);
    if (sym == nullptr) {
        *error = std::string("missing symbol ") + name;
        return false;
    }
    *out = reinterpret_cast<Fn>(sym);
    return true;
}

} // namespace

std::shared_ptr<const NativeModule> NativeModule::load(const std::string& path,
                                                       const ModuleExpectation& expect,
                                                       std::string* error) {
    void* dl = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (dl == nullptr) {
        const char* e = ::dlerror();
        *error = e != nullptr ? e : "dlopen failed";
        return nullptr;
    }
    // shared_ptr so a resolution failure below still closes the handle.
    std::shared_ptr<NativeModule> m(new NativeModule());
    m->dl_ = dl;
    m->path_ = path;

    using U32Fn = std::uint32_t (*)();
    using U64Fn = std::uint64_t (*)();
    U32Fn abi = nullptr;
    using KeyFn = const char* (*)();
    KeyFn key = nullptr;
    U64Fn nin = nullptr;
    U64Fn nout = nullptr;
    U64Fn nfn = nullptr;
    U64Fn ssize = nullptr;
    if (!resolve(dl, "sbd_nat_abi", &abi, error) || !resolve(dl, "sbd_nat_key", &key, error) ||
        !resolve(dl, "sbd_nat_num_inputs", &nin, error) ||
        !resolve(dl, "sbd_nat_num_outputs", &nout, error) ||
        !resolve(dl, "sbd_nat_num_functions", &nfn, error) ||
        !resolve(dl, "sbd_nat_state_size", &ssize, error) ||
        !resolve(dl, "sbd_nat_create", &m->create, error) ||
        !resolve(dl, "sbd_nat_destroy", &m->destroy, error) ||
        !resolve(dl, "sbd_nat_init", &m->init, error) ||
        !resolve(dl, "sbd_nat_step", &m->step, error) ||
        !resolve(dl, "sbd_nat_call", &m->call, error) ||
        !resolve(dl, "sbd_nat_save", &m->save, error) ||
        !resolve(dl, "sbd_nat_load", &m->load_state, error))
        return nullptr;

    // Identity validation: a module that fails any of these is stale,
    // truncated or built for a different model — reject, never execute.
    if (abi() != kAbiVersion) {
        *error = "ABI version mismatch (module " + std::to_string(abi()) + ", loader " +
                 std::to_string(kAbiVersion) + ")";
        return nullptr;
    }
    if (expect.key != key()) {
        *error = std::string("structural key mismatch (module ") + key() + ")";
        return nullptr;
    }
    if (nin() != expect.num_inputs || nout() != expect.num_outputs ||
        nfn() != expect.num_functions || ssize() != expect.state_size) {
        *error = "module shape mismatch (ports/functions/state)";
        return nullptr;
    }
    m->state_size = static_cast<std::size_t>(ssize());
    return m;
}

NativeModule::~NativeModule() {
    if (dl_ != nullptr) ::dlclose(dl_);
}

NativeInstance::NativeInstance(const codegen::CompiledSystem& sys, BlockPtr block,
                               std::shared_ptr<const NativeModule> module)
    : Instance(sys, std::move(block)), module_(std::move(module)),
      handle_(module_->create()) {
    if (handle_ == nullptr) throw std::bad_alloc();
}

NativeInstance::~NativeInstance() {
    if (handle_ != nullptr) module_->destroy(handle_);
}

void NativeInstance::do_init() { module_->init(handle_); }

void NativeInstance::do_call_into(std::size_t fn, std::span<const double> args,
                                  std::span<double> results) {
    module_->call(handle_, static_cast<std::uint32_t>(fn), args.data(), results.data());
}

void NativeInstance::do_step_instant_into(std::span<const double> inputs,
                                          std::span<double> outputs) {
    module_->step(handle_, inputs.data(), outputs.data());
}

std::size_t NativeInstance::do_state_size() const { return module_->state_size; }

void NativeInstance::do_save_state(std::vector<double>& out) const {
    const std::size_t at = out.size();
    out.resize(at + module_->state_size);
    module_->save(handle_, out.data() + at);
}

void NativeInstance::do_restore_state(std::span<const double> in) {
    module_->load_state(handle_, in.data());
}

} // namespace sbd::native
