// Emission of the native module translation unit: the portable generated
// code from core/emit_cpp plus the extern "C" ABI shim that exposes one
// root-block class through a C symbol table dlopen can bind.
#include <functional>
#include <sstream>
#include <stdexcept>

#include "core/emit_cpp.hpp"
#include "core/fingerprint.hpp"
#include "native/native.hpp"

namespace sbd::native {

namespace {

/// A PDG-consistent interface-function order for the root profile — the
/// same order the interpreter precomputes, so the exported step() visits
/// functions identically on both backends.
std::vector<std::size_t> pdg_order(const codegen::Profile& p) {
    graph::Digraph pdg(p.functions.size());
    for (const auto& [a, b] : p.pdg_edges)
        pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    const auto order = pdg.topological_order();
    if (!order) throw std::runtime_error("emit_native_module: cyclic PDG");
    return {order->begin(), order->end()};
}

/// `root.fn(args[i]...)` with arguments drawn via `arg(i)`.
std::string invocation(const codegen::InterfaceFunction& fn,
                       const std::string& obj,
                       const std::function<std::string(std::size_t)>& arg) {
    std::string call = obj + "." + fn.name + "(";
    for (std::size_t i = 0; i < fn.reads.size(); ++i) call += (i ? ", " : "") + arg(i);
    call += ")";
    return call;
}

void emit_call_result(std::ostream& os, const codegen::InterfaceFunction& fn,
                      const std::string& call,
                      const std::function<std::string(std::size_t)>& dst) {
    if (fn.writes.empty()) {
        os << "    " << call << ";\n";
    } else if (fn.writes.size() == 1) {
        os << "    " << dst(0) << " = " << call << ";\n";
    } else {
        os << "    { const auto r = " << call << ";";
        for (std::size_t i = 0; i < fn.writes.size(); ++i)
            os << " " << dst(i) << " = r[" << i << "];";
        os << " }\n";
    }
}

} // namespace

std::string emit_native_module(const codegen::CompiledSystem& sys) {
    const codegen::CompiledBlock& root = sys.root();
    const codegen::Profile& p = root.profile;
    const std::string cls = "gen::" + codegen::emit_cpp_class_name(sys, *root.block);
    const std::vector<std::size_t> order = pdg_order(p);
    const std::string key =
        codegen::fingerprint_block(*root.block).hex(); // method/options mixed in by the store

    std::ostringstream os;
    os << emit_cpp(sys);
    os << "\n// --- sbdgen native ABI shim (see src/native/module.hpp) ---\n"
       << "#include <cstdint>\n\n"
       << "extern \"C\" {\n\n"
       << "std::uint32_t sbd_nat_abi() { return " << kAbiVersion << "u; }\n"
       << "const char* sbd_nat_key() { return \"" << key << "\"; }\n"
       << "std::uint64_t sbd_nat_num_inputs() { return " << root.block->num_inputs()
       << "u; }\n"
       << "std::uint64_t sbd_nat_num_outputs() { return " << root.block->num_outputs()
       << "u; }\n"
       << "std::uint64_t sbd_nat_num_functions() { return " << p.functions.size() << "u; }\n"
       << "std::uint64_t sbd_nat_state_size() { return " << cls << "::k_state_size; }\n\n"
       << "void* sbd_nat_create() { return new " << cls << "(); }\n"
       << "void sbd_nat_destroy(void* h) { delete static_cast<" << cls << "*>(h); }\n"
       << "void sbd_nat_init(void* h) { static_cast<" << cls << "*>(h)->init(); }\n"
       << "void sbd_nat_save(const void* h, double* out) {\n"
       << "  double* p = out;\n"
       << "  static_cast<const " << cls << "*>(h)->save_state(p);\n"
       << "}\n"
       << "void sbd_nat_load(void* h, const double* in) {\n"
       << "  const double* p = in;\n"
       << "  static_cast<" << cls << "*>(h)->load_state(p);\n"
       << "}\n\n";

    // sbd_nat_call: one switch case per interface function. Arguments arrive
    // in reads order, results leave in writes order — exactly the
    // codegen::Instance::call_into contract.
    os << "void sbd_nat_call(void* h, std::uint32_t fn, const double* args, double* results) "
          "{\n"
       << "  " << cls << "& root = *static_cast<" << cls << "*>(h);\n"
       << "  (void)args; (void)results;\n"
       << "  switch (fn) {\n";
    for (std::size_t f = 0; f < p.functions.size(); ++f) {
        const codegen::InterfaceFunction& fn = p.functions[f];
        os << "  case " << f << ":\n";
        const std::string call = invocation(
            fn, "root", [](std::size_t i) { return "args[" + std::to_string(i) + "]"; });
        emit_call_result(os, fn, call,
                         [](std::size_t i) { return "results[" + std::to_string(i) + "]"; });
        os << "    break;\n";
    }
    os << "  default: break;\n  }\n}\n\n";

    // sbd_nat_step: one full synchronous instant in PDG order, outputs
    // zero-filled first — the interpreter's step_instant_into, compiled.
    os << "void sbd_nat_step(void* h, const double* in, double* out) {\n"
       << "  " << cls << "& root = *static_cast<" << cls << "*>(h);\n"
       << "  (void)in;\n";
    if (root.block->num_outputs() > 0)
        os << "  for (std::uint64_t o = 0; o < " << root.block->num_outputs()
           << "u; ++o) out[o] = 0.0;\n";
    else
        os << "  (void)out;\n";
    for (const std::size_t f : order) {
        const codegen::InterfaceFunction& fn = p.functions[f];
        const std::string call = invocation(fn, "root", [&](std::size_t i) {
            return "in[" + std::to_string(fn.reads[i]) + "]";
        });
        emit_call_result(os, fn, call, [&](std::size_t i) {
            return "out[" + std::to_string(fn.writes[i]) + "]";
        });
    }
    os << "}\n\n} // extern \"C\"\n";
    return os.str();
}

} // namespace sbd::native
