// Internal to the native backend: the RAII dlopen handle with its resolved
// symbol table, and the Instance implementation that calls through it.
#ifndef SBD_NATIVE_MODULE_HPP
#define SBD_NATIVE_MODULE_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "core/exec.hpp"

namespace sbd::native {

/// What a module must prove about itself before the loader trusts it: the
/// structural key the caller expects, the ABI version, and the root block's
/// port/function counts. A mismatch (stale artifact, truncated file, wrong
/// model) is a validation failure, never undefined behavior later.
struct ModuleExpectation {
    std::string key;
    std::size_t num_inputs = 0;
    std::size_t num_outputs = 0;
    std::size_t num_functions = 0;
    std::size_t state_size = 0;
};

/// A loaded generated module: the dlopen handle plus every resolved export.
/// Instances hold a shared_ptr to their module, so the shared object stays
/// mapped for as long as any instance created from it is alive.
class NativeModule {
public:
    /// dlopens `path` and resolves + validates the ABI. Returns nullptr and
    /// fills `error` on any failure (missing symbol, ABI/key/shape
    /// mismatch); the caller decides whether that means "rebuild" or
    /// "give up".
    static std::shared_ptr<const NativeModule> load(const std::string& path,
                                                    const ModuleExpectation& expect,
                                                    std::string* error);

    ~NativeModule();

    NativeModule(const NativeModule&) = delete;
    NativeModule& operator=(const NativeModule&) = delete;

    // The extern "C" surface of a generated module (see emit.cpp).
    using CreateFn = void* (*)();
    using DestroyFn = void (*)(void*);
    using InitFn = void (*)(void*);
    using StepFn = void (*)(void*, const double*, double*);
    using CallFn = void (*)(void*, std::uint32_t, const double*, double*);
    using SaveFn = void (*)(const void*, double*);
    using LoadFn = void (*)(void*, const double*);

    CreateFn create = nullptr;
    DestroyFn destroy = nullptr;
    InitFn init = nullptr;
    StepFn step = nullptr;
    CallFn call = nullptr;
    SaveFn save = nullptr;
    LoadFn load_state = nullptr;
    std::size_t state_size = 0;

    const std::string& path() const { return path_; }

private:
    NativeModule() = default;

    void* dl_ = nullptr;
    std::string path_;
};

/// The native backend's Instance: one opaque handle into the generated
/// module. All validation already happened in the codegen::Instance entry
/// points; these overrides are straight calls through the symbol table.
class NativeInstance final : public codegen::Instance {
public:
    NativeInstance(const codegen::CompiledSystem& sys, BlockPtr block,
                   std::shared_ptr<const NativeModule> module);
    ~NativeInstance() override;

protected:
    void do_init() override;
    void do_call_into(std::size_t fn, std::span<const double> args,
                      std::span<double> results) override;
    void do_step_instant_into(std::span<const double> inputs,
                              std::span<double> outputs) override;
    std::size_t do_state_size() const override;
    void do_save_state(std::vector<double>& out) const override;
    void do_restore_state(std::span<const double> in) override;

private:
    std::shared_ptr<const NativeModule> module_;
    void* handle_ = nullptr;
};

} // namespace sbd::native

#endif
