// The native backend's build pipeline and artifact store.
//
// Store layout: one file per artifact, `<structural>-<content>.so`, where
// `structural` is the profile-cache key (block fingerprint x method x
// canonical options — human-auditable: every artifact family for one
// clustering of one diagram shares the prefix) and `content` hashes the
// emitted source, compiler version, flags and ABI version. Equal file name
// therefore implies equal file content, so writes are atomic renames and
// concurrent writers are harmless; a truncated or stale file simply fails
// validation on load and is rebuilt in place (degradation ladder:
// cache hit -> rebuild -> coded BackendError).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <optional>

#include "core/fingerprint.hpp"
#include "core/fsio.hpp"
#include "native/module.hpp"
#include "native/native.hpp"
#include "obs/metrics.hpp"

namespace sbd::native {

namespace fs = std::filesystem;
using codegen::BackendConfig;
using codegen::BackendError;

namespace {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
}

std::string shell_quote(const std::string& s) {
    std::string out = "'";
    for (const char c : s)
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    out += "'";
    return out;
}

/// Runs `cmd` with stderr folded into stdout; returns the exit status and
/// fills `output`. -1 = could not spawn.
int run_command(const std::string& cmd, std::string* output) {
    std::FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
    if (pipe == nullptr) return -1;
    char buf[4096];
    while (std::fgets(buf, sizeof buf, pipe) != nullptr) *output += buf;
    const int status = ::pclose(pipe);
    return status;
}

/// The fixed flag set. -ffp-contract=off matters for bit-exactness: GCC
/// defaults to contracting a*b+c into fused multiply-add at -O2, which
/// rounds once where the interpreter rounds twice — the differential
/// harness would see one-ulp drift on every fused expression.
constexpr const char* kBaseFlags = "-std=c++17 -O2 -shared -fPIC -fno-fast-math "
                                   "-ffp-contract=off";

/// The interpreter's state_size(), computed statically from the compiled
/// system — what the module's exported k_state_size must equal.
std::size_t expected_state_size(const codegen::CompiledSystem& sys, const Block& b) {
    if (b.is_atomic()) return static_cast<const AtomicBlock&>(b).initial_state().size();
    const auto& m = static_cast<const MacroBlock&>(b);
    const codegen::CodeUnit& code = *sys.at(b).code;
    std::size_t n = code.num_slots + code.counter_mods.size();
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        n += expected_state_size(sys, *m.sub(s).type);
    return n;
}

struct BuildResult {
    std::shared_ptr<const NativeModule> module;
    bool compiled = false; ///< false = loaded from the store untouched
    std::uint64_t compile_ns = 0;
    std::uint64_t load_ns = 0;
    std::size_t so_bytes = 0;
    bool rejected_artifact = false; ///< an existing artifact failed to load
};

/// Compiles (or loads) one artifact. Runs outside any lock; uniqueness of
/// the temp names keeps concurrent builders of *different* keys apart, and
/// the in-flight map below keeps builders of the *same* key to one.
BuildResult build_artifact(const fs::path& path, const std::string& tu,
                           const std::string& driver, const std::string& extra_flags,
                           const ModuleExpectation& expect) {
    BuildResult r;
    std::string error;
    if (fs::exists(path)) {
        const std::uint64_t t0 = now_ns();
        r.module = NativeModule::load(path.string(), expect, &error);
        r.load_ns = now_ns() - t0;
        if (r.module != nullptr) {
            r.so_bytes = static_cast<std::size_t>(fs::file_size(path));
            return r;
        }
        // Corrupted/stale artifact: degrade to a rebuild.
        r.rejected_artifact = true;
        std::error_code ec;
        fs::remove(path, ec);
    }

    static std::atomic<std::uint64_t> seq{0};
    const std::string stem = path.string() + ".build-" +
                             std::to_string(static_cast<std::uint64_t>(::getpid())) + "-" +
                             std::to_string(seq.fetch_add(1));
    const fs::path tmp_cpp = stem + ".cpp";
    const fs::path tmp_so = stem + ".so";
    {
        std::ofstream out(tmp_cpp, std::ios::binary);
        out << tu;
        if (!out) {
            std::error_code ec;
            fs::remove(tmp_cpp, ec);
            throw BackendError(BackendError::Code::CompileFailed,
                               "native backend: cannot write " + tmp_cpp.string());
        }
    }
    std::string cmd = driver + " " + kBaseFlags;
    if (!extra_flags.empty()) cmd += " " + extra_flags;
    cmd += " -o " + shell_quote(tmp_so.string()) + " " + shell_quote(tmp_cpp.string());

    const std::uint64_t t0 = now_ns();
    std::string output;
    const int status = run_command(cmd, &output);
    r.compile_ns = now_ns() - t0;
    std::error_code ec;
    fs::remove(tmp_cpp, ec);
    if (status != 0) {
        fs::remove(tmp_so, ec);
        if (output.size() > 2000) output.resize(2000);
        throw BackendError(BackendError::Code::CompileFailed,
                           "native backend: compiler failed (" + driver + "): " + output);
    }
    r.so_bytes = static_cast<std::size_t>(fs::file_size(tmp_so, ec));

    // Durable atomic publish: fsync(tmp) + rename within one directory +
    // fsync(dir) never exposes a partial file, even across a power cut. A
    // concurrent publisher of the same key wrote identical bytes, so whoever
    // wins the rename is irrelevant. (A corrupt survivor is still handled:
    // the load path above rejects and rebuilds.)
    if (!fsio::publish_file_durable(tmp_so, path)) {
        fs::remove(tmp_so, ec);
        throw BackendError(BackendError::Code::CompileFailed,
                           "native backend: cannot publish artifact " + path.string());
    }

    const std::uint64_t t1 = now_ns();
    r.module = NativeModule::load(path.string(), expect, &error);
    r.load_ns = now_ns() - t1;
    if (r.module == nullptr)
        throw BackendError(BackendError::Code::LoadFailed,
                           "native backend: freshly built module rejected: " + error);
    r.compiled = true;
    return r;
}

/// Process-wide build memoization: one shared_future per artifact path.
/// Concurrent requests for the same key wait on the first builder
/// (Pipeline-style task dedup); distinct keys build fully in parallel.
/// Failures are not memoized — the entry is erased so a later attempt can
/// retry (e.g. after the operator fixes the compiler).
class BuildScheduler {
public:
    static BuildScheduler& instance() {
        static BuildScheduler s;
        return s;
    }

    std::pair<BuildResult, bool /*first*/> get(const fs::path& path, const std::string& tu,
                                               const std::string& driver,
                                               const std::string& extra_flags,
                                               const ModuleExpectation& expect) {
        std::shared_future<BuildResult> fut;
        std::optional<std::promise<BuildResult>> mine;
        {
            const std::lock_guard<std::mutex> lock(m_);
            const auto it = built_.find(path.string());
            if (it == built_.end()) {
                mine.emplace();
                fut = mine->get_future().share();
                built_.emplace(path.string(), fut);
            } else {
                fut = it->second;
            }
        }
        if (mine) {
            // Build outside the lock: distinct keys compile fully in
            // parallel; same-key callers wait on this future.
            try {
                mine->set_value(build_artifact(path, tu, driver, extra_flags, expect));
            } catch (...) {
                mine->set_exception(std::current_exception());
                const std::lock_guard<std::mutex> lock(m_);
                built_.erase(path.string());
            }
        }
        return {fut.get(), mine.has_value()};
    }

private:
    std::mutex m_;
    /// Successful builds stay memoized for the process lifetime — the
    /// result's NativeModule keeps the shared object mapped, so a later
    /// request is a pure map lookup, no dlopen.
    std::map<std::string, std::shared_future<BuildResult>> built_;
};

class NativeExecutable final : public codegen::Executable {
public:
    NativeExecutable(const codegen::CompiledSystem& sys, BlockPtr root,
                     std::shared_ptr<const NativeModule> module, BuildInfo info)
        : Executable(sys, std::move(root)), module_(std::move(module)),
          info_(std::move(info)) {}

    std::unique_ptr<codegen::Instance> instantiate() const override {
        return std::make_unique<NativeInstance>(*sys_, root_, module_);
    }
    const char* backend_name() const override { return "native"; }

    const BuildInfo& info() const { return info_; }

private:
    std::shared_ptr<const NativeModule> module_;
    BuildInfo info_;
};

} // namespace

std::string compiler_driver(const BackendConfig& cfg) {
    if (!cfg.compiler.empty()) return cfg.compiler;
    if (const char* e = std::getenv("SBD_NATIVE_CXX"); e != nullptr && *e != '\0') return e;
    if (const char* e = std::getenv("CXX"); e != nullptr && *e != '\0') return e;
    return "c++";
}

std::optional<std::string> compiler_version(const std::string& driver) {
    std::string output;
    const int status = run_command(shell_quote(driver) + " --version", &output);
    if (status != 0) return std::nullopt;
    const std::size_t eol = output.find('\n');
    if (eol != std::string::npos) output.resize(eol);
    if (output.empty()) return std::nullopt;
    return output;
}

std::shared_ptr<const codegen::Executable>
make_native_executable(const codegen::CompiledSystem& sys, BlockPtr root,
                       const BackendConfig& cfg) {
    const std::string driver = compiler_driver(cfg);
    const std::optional<std::string> version = compiler_version(driver);
    if (!version)
        throw BackendError(BackendError::Code::NoCompiler,
                           "native backend: no usable C++ compiler ('" + driver +
                               "' failed; set $SBD_NATIVE_CXX or $CXX)");

    std::string tu;
    try {
        tu = emit_native_module(sys);
    } catch (const std::exception& e) {
        throw BackendError(BackendError::Code::EmitFailed,
                           std::string("native backend: ") + e.what());
    }

    BuildInfo info;
    info.compiler = driver;
    info.compiler_version = *version;
    info.tu_bytes = tu.size();
    info.key =
        codegen::compile_key(codegen::fingerprint_block(*root), cfg.method, cfg.cluster).hex();
    {
        codegen::Hasher h;
        h.str(tu);
        h.str(*version);
        h.str(kBaseFlags);
        h.str(cfg.extra_flags);
        h.u32(kAbiVersion);
        info.store_key = h.digest().hex();
    }

    fs::path dir = cfg.cache_dir.empty() ? fs::temp_directory_path() / "sbd-native"
                                         : fs::path(cfg.cache_dir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path path = dir / (info.key + "-" + info.store_key + ".so");
    info.artifact_path = path.string();

    ModuleExpectation expect;
    expect.key = codegen::fingerprint_block(*root).hex();
    expect.num_inputs = root->num_inputs();
    expect.num_outputs = root->num_outputs();
    expect.num_functions = sys.root().profile.functions.size();
    expect.state_size = expected_state_size(sys, *root);

    const auto [result, first] =
        BuildScheduler::instance().get(path, tu, driver, cfg.extra_flags, expect);
    // A request is a cache hit unless *this call* compiled the artifact —
    // loaded-from-store and served-from-the-build-memo both count.
    const bool compiled_here = first && result.compiled;
    info.cache_hit = !compiled_here;
    info.compile_ns = compiled_here ? result.compile_ns : 0;
    info.load_ns = result.load_ns;
    info.so_bytes = result.so_bytes;

    if (cfg.metrics != nullptr && first) {
        obs::MetricsRegistry& reg = *cfg.metrics;
        if (result.compiled)
            reg.counter("sbd_native_compiles_total", "native module compilations").inc();
        else
            reg.counter("sbd_native_cache_hits_total", "artifacts reused from the store")
                .inc();
        if (result.rejected_artifact)
            reg.counter("sbd_native_cache_rejects_total",
                        "stored artifacts that failed validation and were rebuilt")
                .inc();
        if (result.compiled)
            reg.histogram("sbd_native_compile_ns", obs::exponential_bounds(1000000, 4.0, 12),
                          "native module compile latency")
                .observe(result.compile_ns);
        reg.histogram("sbd_native_load_ns", obs::exponential_bounds(1000, 4.0, 14),
                      "native module dlopen+validate latency")
            .observe(result.load_ns);
        reg.gauge("sbd_native_tu_bytes", "emitted translation-unit size")
            .set(static_cast<std::int64_t>(info.tu_bytes));
        reg.gauge("sbd_native_so_bytes", "built shared-object size")
            .set(static_cast<std::int64_t>(info.so_bytes));
    }

    return std::make_shared<NativeExecutable>(sys, std::move(root), result.module,
                                              std::move(info));
}

const BuildInfo* build_info(const codegen::Executable& e) {
    const auto* ne = dynamic_cast<const NativeExecutable*>(&e);
    return ne != nullptr ? &ne->info() : nullptr;
}

void install() { codegen::register_native_backend(&make_native_executable); }

} // namespace sbd::native
