#include "suite/random_models.hpp"

#include <algorithm>

#include "sbd/library.hpp"

namespace sbd::suite {

namespace {

using codegen::Sdg;
using codegen::SdgNode;

BlockPtr random_atomic(std::mt19937_64& rng, double moore_probability) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    if (unit(rng) < moore_probability) {
        switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
        case 0: return lib::unit_delay(unit(rng));
        case 1: return lib::integrator(0.1, unit(rng));
        default: return lib::sample_hold(unit(rng));
        }
    }
    switch (std::uniform_int_distribution<int>(0, 9)(rng)) {
    case 0: return lib::gain(0.25 + unit(rng));
    case 1: return lib::sum("++");
    case 2: return lib::sum("+-");
    case 3: return lib::product(2);
    case 4: return lib::saturation(-20.0, 20.0);
    case 5: return lib::abs_block();
    case 6: return lib::min_block();
    case 7: return lib::max_block();
    case 8: return lib::fir2(0.5 + unit(rng), 0.25);
    default: return lib::moving_average(3);
    }
}

// Wires every sub input and every macro output of `m` (subs already added),
// then validates. Shared by the flat-ish and the deep generator.
void wire_macro(std::mt19937_64& rng, MacroBlock& macro, double backward_wire_probability,
                double trigger_probability = 0.0) {
    auto* m = &macro;
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    // Wire every sub input. Forward sources (macro inputs + outputs of
    // earlier subs) always keep the flattened diagram acyclic; outputs of
    // Moore-classed subs are additionally allowed as backward sources
    // (feedback through state), which is exactly the pattern SCADE-style
    // same-level delay rules forbid and this framework supports.
    std::vector<std::size_t> moore_subs;
    for (std::size_t s = 0; s < m->num_subs(); ++s)
        if (m->sub(s).type->block_class() == BlockClass::MooreSequential &&
            m->sub(s).type->num_outputs() > 0)
            moore_subs.push_back(s);

    const auto random_source = [&](std::size_t consumer) -> Endpoint {
        std::uniform_real_distribution<double> u01(0.0, 1.0);
        if (!moore_subs.empty() && u01(rng) < backward_wire_probability) {
            const std::size_t s =
                moore_subs[std::uniform_int_distribution<std::size_t>(0, moore_subs.size() - 1)(
                    rng)];
            const auto port = std::uniform_int_distribution<std::int32_t>(
                0, static_cast<std::int32_t>(m->sub(s).type->num_outputs()) - 1)(rng);
            return Endpoint{Endpoint::Kind::SubOutput, static_cast<std::int32_t>(s), port};
        }
        // Forward pool: macro inputs + outputs of subs with index < consumer.
        std::vector<Endpoint> pool;
        for (std::size_t i = 0; i < m->num_inputs(); ++i)
            pool.push_back(Endpoint{Endpoint::Kind::MacroInput, -1, static_cast<std::int32_t>(i)});
        for (std::size_t s = 0; s < consumer; ++s)
            for (std::size_t o = 0; o < m->sub(s).type->num_outputs(); ++o)
                pool.push_back(Endpoint{Endpoint::Kind::SubOutput, static_cast<std::int32_t>(s),
                                        static_cast<std::int32_t>(o)});
        return pool[std::uniform_int_distribution<std::size_t>(0, pool.size() - 1)(rng)];
    };

    for (std::size_t s = 0; s < m->num_subs(); ++s)
        for (std::size_t i = 0; i < m->sub(s).type->num_inputs(); ++i)
            m->connect(random_source(s),
                       Endpoint{Endpoint::Kind::SubInput, static_cast<std::int32_t>(s),
                                static_cast<std::int32_t>(i)});

    // Triggered sub-blocks: the trigger rides a macro input, which is
    // always an acyclic source. Guarded so that probability 0 draws no
    // randomness — existing seeded model streams stay bit-identical.
    if (trigger_probability > 0.0 && m->num_inputs() > 0)
        for (std::size_t s = 0; s < m->num_subs(); ++s)
            if (unit(rng) < trigger_probability)
                m->set_trigger(static_cast<std::int32_t>(s),
                               Endpoint{Endpoint::Kind::MacroInput, -1,
                                           std::uniform_int_distribution<std::int32_t>(
                                               0, static_cast<std::int32_t>(m->num_inputs()) -
                                                      1)(rng)});

    // Macro outputs from any sub output (or a pass-through occasionally).
    std::vector<Endpoint> out_pool;
    for (std::size_t s = 0; s < m->num_subs(); ++s)
        for (std::size_t o = 0; o < m->sub(s).type->num_outputs(); ++o)
            out_pool.push_back(Endpoint{Endpoint::Kind::SubOutput, static_cast<std::int32_t>(s),
                                        static_cast<std::int32_t>(o)});
    for (std::size_t o = 0; o < m->num_outputs(); ++o) {
        Endpoint src;
        if (out_pool.empty() || unit(rng) < 0.05)
            src = Endpoint{Endpoint::Kind::MacroInput, -1,
                           std::uniform_int_distribution<std::int32_t>(
                               0, static_cast<std::int32_t>(m->num_inputs()) - 1)(rng)};
        else
            src = out_pool[std::uniform_int_distribution<std::size_t>(0, out_pool.size() - 1)(
                rng)];
        m->connect(src, Endpoint{Endpoint::Kind::MacroOutput, -1, static_cast<std::int32_t>(o)});
    }
    m->validate();
}

BlockPtr gen_block(std::mt19937_64& rng, const RandomModelParams& p, std::size_t level,
                   int& serial) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < p.inputs; ++i) ins.push_back("i" + std::to_string(i));
    for (std::size_t o = 0; o < p.outputs; ++o) outs.push_back("o" + std::to_string(o));
    auto m = std::make_shared<MacroBlock>("Rnd" + std::to_string(serial++) + "_L" +
                                              std::to_string(level),
                                          ins, outs);

    // Sub-blocks: nested macros while depth remains, atomics otherwise.
    for (std::size_t s = 0; s < p.subs_per_level; ++s) {
        BlockPtr sub;
        if (level + 1 < p.depth && unit(rng) < p.macro_probability)
            sub = gen_block(rng, p, level + 1, serial);
        else
            sub = random_atomic(rng, p.moore_probability);
        m->add_sub("s" + std::to_string(s), sub);
    }

    wire_macro(rng, *m, p.backward_wire_probability, p.trigger_probability);
    return m;
}

} // namespace

std::shared_ptr<const MacroBlock> random_model(std::mt19937_64& rng,
                                               const RandomModelParams& params) {
    int serial = 0;
    auto b = gen_block(rng, params, 0, serial);
    return std::static_pointer_cast<const MacroBlock>(b);
}

std::shared_ptr<const MacroBlock> clone_macro(const MacroBlock& m) {
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < m.num_inputs(); ++i) ins.push_back(m.input_name(i));
    for (std::size_t o = 0; o < m.num_outputs(); ++o) outs.push_back(m.output_name(o));
    auto c = std::make_shared<MacroBlock>(m.type_name(), ins, outs);
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const auto& sub = m.sub(s);
        const auto id = c->add_sub(sub.name, sub.type);
        if (sub.trigger) c->set_trigger(id, *sub.trigger);
    }
    for (const Connection& conn : m.connections()) c->connect(conn.src, conn.dst);
    c->validate();
    return c;
}

std::shared_ptr<const MacroBlock> random_deep_model(std::mt19937_64& rng,
                                                    const DeepModelParams& p) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < p.inputs; ++i) ins.push_back("i" + std::to_string(i));
    for (std::size_t o = 0; o < p.outputs; ++o) outs.push_back("o" + std::to_string(o));

    // Level 0: a library of atomic leaf types.
    std::vector<BlockPtr> library;
    for (std::size_t t = 0; t < std::max<std::size_t>(p.types_per_level, 2); ++t)
        library.push_back(random_atomic(rng, p.moore_probability));

    // Each higher level defines a few macro types over the level below; the
    // whole level below is the shared pool, so most instances repeat types.
    for (std::size_t level = 1; level <= p.levels; ++level) {
        const bool top = level == p.levels;
        std::vector<BlockPtr> next;
        const std::size_t ntypes = top ? 1 : std::max<std::size_t>(p.types_per_level, 1);
        for (std::size_t t = 0; t < ntypes; ++t) {
            auto m = std::make_shared<MacroBlock>(
                "Deep_L" + std::to_string(level) + "_T" + std::to_string(t), ins, outs);
            for (std::size_t s = 0; s < p.subs_per_macro; ++s) {
                BlockPtr type = library[std::uniform_int_distribution<std::size_t>(
                    0, library.size() - 1)(rng)];
                // Occasionally hand out a structurally identical but
                // physically distinct copy: invisible to a pointer memo,
                // a guaranteed hit for the fingerprint cache.
                if (!type->is_atomic() && unit(rng) < p.clone_probability)
                    type = clone_macro(static_cast<const MacroBlock&>(*type));
                m->add_sub("s" + std::to_string(s), type);
            }
            wire_macro(rng, *m, p.backward_wire_probability, p.trigger_probability);
            next.push_back(m);
        }
        library = std::move(next);
    }
    return std::static_pointer_cast<const MacroBlock>(library.front());
}

Sdg random_flat_sdg(std::mt19937_64& rng, std::size_t inputs, std::size_t outputs,
                    std::size_t internals, double edge_probability) {
    Sdg sdg;
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (std::size_t i = 0; i < inputs; ++i) {
        const auto v = sdg.graph.add_node();
        sdg.nodes.push_back(SdgNode{SdgNode::Kind::Input, static_cast<std::int32_t>(i), -1, -1, -1});
        sdg.input_nodes.push_back(v);
    }
    for (std::size_t o = 0; o < outputs; ++o) {
        const auto v = sdg.graph.add_node();
        sdg.nodes.push_back(
            SdgNode{SdgNode::Kind::Output, static_cast<std::int32_t>(o), -1, -1, -1});
        sdg.output_nodes.push_back(v);
    }
    for (std::size_t b = 0; b < internals; ++b) {
        const auto v = sdg.graph.add_node();
        sdg.nodes.push_back(SdgNode{SdgNode::Kind::Internal, -1, static_cast<std::int32_t>(v), 0,
                                    -1});
        sdg.internal_nodes.push_back(v);
    }
    // DAG edges between internal nodes (index order).
    for (std::size_t a = 0; a < internals; ++a)
        for (std::size_t b = a + 1; b < internals; ++b)
            if (unit(rng) < edge_probability)
                sdg.graph.add_edge(sdg.internal_nodes[a], sdg.internal_nodes[b]);
    // Each input feeds 1..3 internal nodes (biased to early ones).
    for (std::size_t i = 0; i < inputs; ++i) {
        const int fanout = std::uniform_int_distribution<int>(1, 3)(rng);
        for (int f = 0; f < fanout; ++f) {
            const std::size_t target = std::min<std::size_t>(
                internals - 1,
                static_cast<std::size_t>(unit(rng) * unit(rng) * static_cast<double>(internals)));
            sdg.graph.add_edge(sdg.input_nodes[i], sdg.internal_nodes[target]);
        }
    }
    // Each output reads exactly one internal node (unique writer), biased
    // to late ones.
    for (std::size_t o = 0; o < outputs; ++o) {
        const std::size_t writer = internals - 1 -
                                   std::min<std::size_t>(
                                       internals - 1, static_cast<std::size_t>(
                                                          unit(rng) * unit(rng) *
                                                          static_cast<double>(internals)));
        sdg.graph.add_edge(sdg.internal_nodes[writer], sdg.output_nodes[o]);
    }
    return sdg;
}

} // namespace sbd::suite
