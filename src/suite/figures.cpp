#include "suite/figures.hpp"

#include "sbd/library.hpp"

namespace sbd::suite {

using lib::make_combinational;

namespace {

/// A(x) -> (z1, z2): the 1-in/2-out combinational splitter of Figure 1.
BlockPtr splitter() { return lib::splitter2(0.5, 1.0, 0.25, -1.0); }

} // namespace

std::shared_ptr<const MacroBlock> figure1_p() {
    auto p = std::make_shared<MacroBlock>("P_fig1", std::vector<std::string>{"x1", "x2"},
                                          std::vector<std::string>{"y1", "y2"});
    p->add_sub("A", splitter());
    p->add_sub("B", lib::gain(2.0));
    p->add_sub("C", lib::sum("++"));
    p->connect("x1", "A.x");
    p->connect("A.z1", "B.u");
    p->connect("A.z2", "C.u1");
    p->connect("x2", "C.u2");
    p->connect("B.y", "y1");
    p->connect("C.y", "y2");
    return p;
}

std::shared_ptr<const MacroBlock> figure2_context(BlockPtr inner) {
    auto ctx = std::make_shared<MacroBlock>("Fig2Context", std::vector<std::string>{"x1"},
                                            std::vector<std::string>{"y1", "y2"});
    const auto p = ctx->add_sub("P", std::move(inner));
    ctx->connect(Endpoint{Endpoint::Kind::MacroInput, -1, 0},
                 Endpoint{Endpoint::Kind::SubInput, p, 0});
    // The feedback wire of Figure 2: y1 -> x2.
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, 0},
                 Endpoint{Endpoint::Kind::SubInput, p, 1});
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, 0},
                 Endpoint{Endpoint::Kind::MacroOutput, -1, 0});
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, 1},
                 Endpoint{Endpoint::Kind::MacroOutput, -1, 1});
    return ctx;
}

std::shared_ptr<const MacroBlock> figure3_p() {
    auto p = std::make_shared<MacroBlock>("P_fig3", std::vector<std::string>{"P_in"},
                                          std::vector<std::string>{"P_out"});
    p->add_sub("A", lib::gain(3.0));
    p->add_sub("U", lib::unit_delay(0.0));
    p->add_sub("C", lib::gain(0.5));
    p->connect("P_in", "C.u");
    p->connect("C.y", "U.u");
    p->connect("U.y", "A.u");
    p->connect("A.y", "P_out");
    return p;
}

std::shared_ptr<const MacroBlock> figure4_chain(std::size_t n) {
    auto p = std::make_shared<MacroBlock>("P_fig4_" + std::to_string(n),
                                          std::vector<std::string>{"x1", "x2", "x3"},
                                          std::vector<std::string>{"y1", "y2"});
    // A1 .. A(n-1): unary combinational stages; An: splits into (z_b, z_c).
    for (std::size_t i = 1; i + 1 <= n; ++i) {
        if (i == n) break;
        p->add_sub("A" + std::to_string(i), lib::gain(0.9));
    }
    p->add_sub("A" + std::to_string(n), splitter());
    p->add_sub("B", lib::sum("++"));
    p->add_sub("C", lib::sum("+-"));

    p->connect("x2", "A1." + std::string(n == 1 ? "x" : "u"));
    for (std::size_t i = 1; i < n; ++i) {
        const std::string from = "A" + std::to_string(i) + ".y";
        const std::string to =
            "A" + std::to_string(i + 1) + (i + 1 == n ? ".x" : ".u");
        p->connect(from, to);
    }
    const std::string an = "A" + std::to_string(n);
    p->connect("x1", "B.u1");
    p->connect(an + ".z1", "B.u2");
    p->connect(an + ".z2", "C.u1");
    p->connect("x3", "C.u2");
    p->connect("B.y", "y1");
    p->connect("C.y", "y2");
    return p;
}

std::shared_ptr<const MacroBlock> feedback_context(BlockPtr inner, std::size_t out,
                                                   std::size_t in) {
    std::vector<std::string> ins, outs;
    for (std::size_t i = 0; i < inner->num_inputs(); ++i)
        if (i != in) ins.push_back("c_" + inner->input_name(i));
    for (std::size_t o = 0; o < inner->num_outputs(); ++o)
        outs.push_back("c_" + inner->output_name(o));
    auto ctx = std::make_shared<MacroBlock>("FeedbackCtx", ins, outs);
    const auto p = ctx->add_sub("P", std::move(inner));
    std::int32_t next_in = 0;
    const Block& b = *ctx->sub(p).type;
    for (std::size_t i = 0; i < b.num_inputs(); ++i) {
        if (i == in) continue;
        ctx->connect(Endpoint{Endpoint::Kind::MacroInput, -1, next_in++},
                     Endpoint{Endpoint::Kind::SubInput, p, static_cast<std::int32_t>(i)});
    }
    ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, static_cast<std::int32_t>(out)},
                 Endpoint{Endpoint::Kind::SubInput, p, static_cast<std::int32_t>(in)});
    for (std::size_t o = 0; o < b.num_outputs(); ++o)
        ctx->connect(Endpoint{Endpoint::Kind::SubOutput, p, static_cast<std::int32_t>(o)},
                     Endpoint{Endpoint::Kind::MacroOutput, -1, static_cast<std::int32_t>(o)});
    return ctx;
}

} // namespace sbd::suite
