#include "suite/models.hpp"

#include "sbd/library.hpp"
#include "suite/figures.hpp"

namespace sbd::suite {

namespace {
using namespace sbd::lib;

std::shared_ptr<MacroBlock> macro(std::string name, std::vector<std::string> ins,
                                  std::vector<std::string> outs) {
    return std::make_shared<MacroBlock>(std::move(name), std::move(ins), std::move(outs));
}

} // namespace

std::shared_ptr<const MacroBlock> counter_limited() {
    // Gate subsystem: en_out = enable AND NOT at_limit.
    auto gate = macro("CounterGate", {"enable", "at_limit"}, {"en_out"});
    gate->add_sub("Not", logic("NOT"));
    gate->add_sub("And", logic("AND", 2));
    gate->connect("at_limit", "Not.u1");
    gate->connect("enable", "And.u1");
    gate->connect("Not.y", "And.u2");
    gate->connect("And.y", "en_out");

    auto top = macro("CounterLimited", {"enable", "limit"}, {"count", "at_limit"});
    top->add_sub("Core", counter());
    top->add_sub("Cmp", relational(">="));
    top->add_sub("Gate", gate);
    top->connect("Core.y", "Cmp.u1");
    top->connect("limit", "Cmp.u2");
    top->connect("enable", "Gate.enable");
    top->connect("Cmp.y", "Gate.at_limit");
    top->connect("Gate.en_out", "Core.enable");
    top->connect("Core.y", "count");
    top->connect("Cmp.y", "at_limit");
    return top;
}

std::shared_ptr<const MacroBlock> pi_cruise() {
    // PI controller: u = kp*err + ki * integral(err).
    auto pi = macro("PiController", {"err"}, {"u"});
    pi->add_sub("Kp", gain(5.0));
    pi->add_sub("Ki", gain(1.0));
    pi->add_sub("Int", integrator(0.1));
    pi->add_sub("Add", sum("++"));
    pi->connect("err", "Kp.u");
    pi->connect("err", "Int.u");
    pi->connect("Int.y", "Ki.u");
    pi->connect("Kp.y", "Add.u1");
    pi->connect("Ki.y", "Add.u2");
    pi->connect("Add.y", "u");

    // Plant: v' = (force - drag*v) / m, forward Euler; output v is a state,
    // so the plant is Moore-sequential.
    auto plant = macro("Plant", {"force"}, {"v"});
    plant->add_sub("Drag", gain(1.0));
    plant->add_sub("Net", sum("+-"));
    plant->add_sub("InvM", gain(0.05));
    plant->add_sub("Int", integrator(0.1));
    plant->connect("force", "Net.u1");
    plant->connect("Int.y", "Drag.u");
    plant->connect("Drag.y", "Net.u2");
    plant->connect("Net.y", "InvM.u");
    plant->connect("InvM.y", "Int.u");
    plant->connect("Int.y", "v");

    auto top = macro("PiCruise", {"setpoint"}, {"speed"});
    top->add_sub("Err", sum("+-"));
    top->add_sub("Ctrl", pi);
    top->add_sub("Sat", saturation(-1000.0, 1000.0));
    top->add_sub("Veh", plant);
    top->connect("setpoint", "Err.u1");
    top->connect("Veh.v", "Err.u2"); // feedback through the Moore plant
    top->connect("Err.y", "Ctrl.err");
    top->connect("Ctrl.u", "Sat.u");
    top->connect("Sat.y", "Veh.force");
    top->connect("Veh.v", "speed");
    return top;
}

std::shared_ptr<const MacroBlock> fuel_controller() {
    // Sensor correction: throttle/map -> corrected airflow command; the EGO
    // sensor is normalized with a (non-Moore) filter and thresholded into a
    // mode flag.
    auto sensors = macro("SensorCorrection", {"throttle", "speed", "ego", "map"},
                         {"air_cmd", "o2_norm", "mode"});
    sensors->add_sub("ThrMap", lookup1d({0, 20, 40, 60, 80, 100}, {0.0, 0.15, 0.35, 0.6, 0.85, 1.0}));
    sensors->add_sub("MapGain", gain(0.01));
    sensors->add_sub("Mix", product(2));
    sensors->add_sub("EgoFilt", first_order_filter(0.3, 0.2, -0.5));
    sensors->add_sub("Rich", relational(">="));
    sensors->add_sub("Half", constant(0.5));
    sensors->connect("throttle", "ThrMap.u");
    sensors->connect("map", "MapGain.u");
    sensors->connect("ThrMap.y", "Mix.u1");
    sensors->connect("MapGain.y", "Mix.u2");
    sensors->connect("Mix.y", "air_cmd");
    sensors->connect("ego", "EgoFilt.u");
    sensors->connect("EgoFilt.y", "o2_norm");
    sensors->connect("EgoFilt.y", "Rich.u1");
    sensors->connect("Half.y", "Rich.u2");
    sensors->connect("Rich.y", "mode");

    // Airflow estimation: speed-density with a short moving average.
    auto airflow = macro("AirflowCalc", {"air_cmd", "speed"}, {"est_air"});
    airflow->add_sub("SpeedNorm", gain(0.002));
    airflow->add_sub("Density", product(2));
    airflow->add_sub("Avg", moving_average(3));
    airflow->connect("air_cmd", "Density.u1");
    airflow->connect("speed", "SpeedNorm.u");
    airflow->connect("SpeedNorm.y", "Density.u2");
    airflow->connect("Density.y", "Avg.u");
    airflow->connect("Avg.y", "est_air");

    // Closed-loop correction (3rd level): integrating the mixture error.
    auto corr = macro("ClosedLoopCorr", {"o2_norm", "mode"}, {"corr"});
    corr->add_sub("Target", constant(0.5));
    corr->add_sub("MixErr", sum("+-"));
    corr->add_sub("Int", integrator(0.05));
    corr->add_sub("Enable", switch_block(0.5));
    corr->add_sub("Zero", constant(0.0));
    corr->connect("Target.y", "MixErr.u1");
    corr->connect("o2_norm", "MixErr.u2");
    corr->connect("MixErr.y", "Enable.u1");
    corr->connect("mode", "Enable.ctrl");
    corr->connect("Zero.y", "Enable.u2");
    corr->connect("Enable.y", "Int.u");
    corr->connect("Int.y", "corr");

    // Fuel computation: base fuel plus correction, rate-limited by a filter.
    auto fuel = macro("FuelCalc", {"est_air", "o2_norm", "mode"}, {"fuel_rate"});
    fuel->add_sub("Base", gain(1.6));
    fuel->add_sub("Corr", corr);
    fuel->add_sub("Apply", sum("++"));
    fuel->add_sub("Limit", saturation(0.0, 10.0));
    fuel->connect("est_air", "Base.u");
    fuel->connect("o2_norm", "Corr.o2_norm");
    fuel->connect("mode", "Corr.mode");
    fuel->connect("Base.y", "Apply.u1");
    fuel->connect("Corr.corr", "Apply.u2");
    fuel->connect("Apply.y", "Limit.u");
    fuel->connect("Limit.y", "fuel_rate");

    auto top = macro("FuelController", {"throttle", "speed", "ego", "map"},
                     {"fuel_rate", "o2_mode"});
    top->add_sub("Sensors", sensors);
    top->add_sub("Airflow", airflow);
    top->add_sub("Fuel", fuel);
    top->connect("throttle", "Sensors.throttle");
    top->connect("speed", "Sensors.speed");
    top->connect("ego", "Sensors.ego");
    top->connect("map", "Sensors.map");
    top->connect("Sensors.air_cmd", "Airflow.air_cmd");
    top->connect("speed", "Airflow.speed");
    top->connect("Airflow.est_air", "Fuel.est_air");
    top->connect("Sensors.o2_norm", "Fuel.o2_norm");
    top->connect("Sensors.mode", "Fuel.mode");
    top->connect("Fuel.fuel_rate", "fuel_rate");
    top->connect("Sensors.mode", "o2_mode");
    return top;
}

std::shared_ptr<const MacroBlock> abs_brake() {
    auto slip_calc = macro("SlipCalc", {"v", "w"}, {"slip"});
    slip_calc->add_sub("Diff", sum("+-"));
    slip_calc->add_sub("Norm", gain(0.02));
    slip_calc->connect("v", "Diff.u1");
    slip_calc->connect("w", "Diff.u2");
    slip_calc->connect("Diff.y", "Norm.u");
    slip_calc->connect("Norm.y", "slip");

    auto ctrl = macro("BangBang", {"slip"}, {"torque"});
    ctrl->add_sub("Thresh", constant(0.2));
    ctrl->add_sub("Over", relational(">"));
    ctrl->add_sub("Hi", constant(40.0));
    ctrl->add_sub("Lo", constant(120.0));
    ctrl->add_sub("Sel", switch_block(0.5));
    ctrl->add_sub("Smooth", first_order_filter(0.5, 0.25, -0.25));
    ctrl->connect("slip", "Over.u1");
    ctrl->connect("Thresh.y", "Over.u2");
    ctrl->connect("Hi.y", "Sel.u1");
    ctrl->connect("Over.y", "Sel.ctrl");
    ctrl->connect("Lo.y", "Sel.u2");
    ctrl->connect("Sel.y", "Smooth.u");
    ctrl->connect("Smooth.y", "torque");

    auto top = macro("AbsBrake", {"vehicle_speed", "wheel_speed"}, {"brake_torque", "slip"});
    top->add_sub("Slip", slip_calc);
    top->add_sub("Ctrl", ctrl);
    top->connect("vehicle_speed", "Slip.v");
    top->connect("wheel_speed", "Slip.w");
    top->connect("Slip.slip", "Ctrl.slip");
    top->connect("Ctrl.torque", "brake_torque");
    top->connect("Slip.slip", "slip");
    return top;
}

std::shared_ptr<const MacroBlock> aircraft_pitch() {
    auto top = macro("AircraftPitch", {"elevator"}, {"pitch", "pitch_rate"});
    top->add_sub("Kd", gain(1.151));
    top->add_sub("Mix", sum("+-"));
    top->add_sub("QInt", integrator(0.02));   // pitch rate q
    top->add_sub("Damp", gain(0.426));
    top->add_sub("ThetaInt", integrator(0.02)); // pitch angle theta
    top->connect("elevator", "Kd.u");
    top->connect("Kd.y", "Mix.u1");
    top->connect("QInt.y", "Damp.u");
    top->connect("Damp.y", "Mix.u2");
    top->connect("Mix.y", "QInt.u");
    top->connect("QInt.y", "ThetaInt.u");
    top->connect("ThetaInt.y", "pitch");
    top->connect("QInt.y", "pitch_rate");
    return top;
}

std::shared_ptr<const MacroBlock> thermostat() {
    // Hysteresis relay: on if temp < sp-1, off if temp > sp+1, else hold.
    auto relay = macro("Relay", {"temp", "setpoint"}, {"on"});
    relay->add_sub("One", constant(1.0));
    relay->add_sub("SpLow", sum("+-"));
    relay->add_sub("SpHigh", sum("++"));
    relay->add_sub("Below", relational("<"));
    relay->add_sub("Above", relational(">"));
    relay->add_sub("Prev", unit_delay(0.0));
    relay->add_sub("HoldOrOff", switch_block(0.5));
    relay->add_sub("OnOr", switch_block(0.5));
    relay->add_sub("OneC", constant(1.0));
    relay->add_sub("Zero", constant(0.0));
    relay->connect("setpoint", "SpLow.u1");
    relay->connect("One.y", "SpLow.u2");
    relay->connect("setpoint", "SpHigh.u1");
    relay->connect("One.y", "SpHigh.u2");
    relay->connect("temp", "Below.u1");
    relay->connect("SpLow.y", "Below.u2");
    relay->connect("temp", "Above.u1");
    relay->connect("SpHigh.y", "Above.u2");
    // on = Below ? 1 : (Above ? 0 : Prev)
    relay->connect("Zero.y", "HoldOrOff.u1");
    relay->connect("Above.y", "HoldOrOff.ctrl");
    relay->connect("Prev.y", "HoldOrOff.u2");
    relay->connect("OneC.y", "OnOr.u1");
    relay->connect("Below.y", "OnOr.ctrl");
    relay->connect("HoldOrOff.y", "OnOr.u2");
    relay->connect("OnOr.y", "on");
    relay->connect("OnOr.y", "Prev.u");

    // Room thermal model: temp' = heater_gain*on + leak*(outside - temp);
    // the temperature is a state, so the room is Moore-sequential.
    auto room = macro("RoomModel", {"heater_on", "outside"}, {"temp"});
    room->add_sub("HeatGain", gain(2.0));
    room->add_sub("LeakDiff", sum("+-"));
    room->add_sub("Leak", gain(0.1));
    room->add_sub("Net", sum("++"));
    room->add_sub("TempInt", integrator(0.05, 15.0));
    room->connect("heater_on", "HeatGain.u");
    room->connect("outside", "LeakDiff.u1");
    room->connect("TempInt.y", "LeakDiff.u2");
    room->connect("LeakDiff.y", "Leak.u");
    room->connect("HeatGain.y", "Net.u1");
    room->connect("Leak.y", "Net.u2");
    room->connect("Net.y", "TempInt.u");
    room->connect("TempInt.y", "temp");

    auto top = macro("Thermostat", {"setpoint", "outside_temp"}, {"room_temp", "heater_on"});
    top->add_sub("Relay", relay);
    top->add_sub("Room", room);
    top->connect("Room.temp", "Relay.temp"); // feedback through the Moore room
    top->connect("setpoint", "Relay.setpoint");
    top->connect("Relay.on", "Room.heater_on");
    top->connect("outside_temp", "Room.outside");
    top->connect("Room.temp", "room_temp");
    top->connect("Relay.on", "heater_on");
    return top;
}

std::shared_ptr<const MacroBlock> gear_logic() {
    auto top = macro("GearLogic", {"speed", "throttle"}, {"gear", "shifting"});
    top->add_sub("UpTh", lookup1d({1, 2, 3, 4, 5}, {12, 25, 40, 60, 1e9}));
    top->add_sub("DownTh", lookup1d({1, 2, 3, 4, 5}, {-1e9, 8, 18, 32, 50}));
    top->add_sub("Hold", unit_delay(1.0));
    top->add_sub("Up", relational(">"));
    top->add_sub("Down", relational("<"));
    top->add_sub("ThrBias", gain(0.08));
    top->add_sub("EffSpeed", sum("+-"));
    top->add_sub("One", constant(1.0));
    top->add_sub("IncGear", sum("++"));
    top->add_sub("DecGear", sum("+-"));
    top->add_sub("SelUp", switch_block(0.5));
    top->add_sub("SelDown", switch_block(0.5));
    top->add_sub("AnyShift", logic("OR", 2));
    // effective speed = speed - bias(throttle)
    top->connect("speed", "EffSpeed.u1");
    top->connect("throttle", "ThrBias.u");
    top->connect("ThrBias.y", "EffSpeed.u2");
    // thresholds from held gear
    top->connect("Hold.y", "UpTh.u");
    top->connect("Hold.y", "DownTh.u");
    top->connect("EffSpeed.y", "Up.u1");
    top->connect("UpTh.y", "Up.u2");
    top->connect("EffSpeed.y", "Down.u1");
    top->connect("DownTh.y", "Down.u2");
    // next gear = up ? gear+1 : (down ? gear-1 : gear)
    top->connect("Hold.y", "IncGear.u1");
    top->connect("One.y", "IncGear.u2");
    top->connect("Hold.y", "DecGear.u1");
    top->connect("One.y", "DecGear.u2");
    top->connect("DecGear.y", "SelDown.u1");
    top->connect("Down.y", "SelDown.ctrl");
    top->connect("Hold.y", "SelDown.u2");
    top->connect("IncGear.y", "SelUp.u1");
    top->connect("Up.y", "SelUp.ctrl");
    top->connect("SelDown.y", "SelUp.u2");
    top->connect("SelUp.y", "Hold.u");
    top->connect("Hold.y", "gear");
    top->connect("Up.y", "AnyShift.u1");
    top->connect("Down.y", "AnyShift.u2");
    top->connect("AnyShift.y", "shifting");
    return top;
}

std::shared_ptr<const MacroBlock> shared_chain_sensor(std::size_t chain_length) {
    auto top = macro("SharedChainSensor", {"raw", "trim1", "trim2"}, {"chan1", "chan2"});
    for (std::size_t i = 1; i < chain_length; ++i)
        top->add_sub("F" + std::to_string(i),
                     i % 2 == 0 ? lib::saturation(-50.0, 50.0) : lib::gain(0.95));
    top->add_sub("Split", lib::splitter2(1.0, 0.0, 0.5, 0.0));
    top->add_sub("B", sum("++"));
    top->add_sub("C", product(2));
    top->connect("raw", chain_length > 1 ? "F1.u" : "Split.x");
    for (std::size_t i = 1; i + 1 < chain_length; ++i)
        top->connect("F" + std::to_string(i) + ".y", "F" + std::to_string(i + 1) + ".u");
    if (chain_length > 1)
        top->connect("F" + std::to_string(chain_length - 1) + ".y", "Split.x");
    top->connect("trim1", "B.u1");
    top->connect("Split.z1", "B.u2");
    top->connect("Split.z2", "C.u1");
    top->connect("trim2", "C.u2");
    top->connect("B.y", "chan1");
    top->connect("C.y", "chan2");
    return top;
}

std::shared_ptr<const MacroBlock> signal_selector() {
    // Median of three: med = max(min(a,b), min(max(a,b), c)).
    auto median = macro("Median3", {"a", "b", "c"}, {"med"});
    median->add_sub("MinAB", min_block());
    median->add_sub("MaxAB", max_block());
    median->add_sub("MinMC", min_block());
    median->add_sub("MaxOut", max_block());
    median->connect("a", "MinAB.u1");
    median->connect("b", "MinAB.u2");
    median->connect("a", "MaxAB.u1");
    median->connect("b", "MaxAB.u2");
    median->connect("MaxAB.y", "MinMC.u1");
    median->connect("c", "MinMC.u2");
    median->connect("MinAB.y", "MaxOut.u1");
    median->connect("MinMC.y", "MaxOut.u2");
    median->connect("MaxOut.y", "med");

    auto monitor = macro("Monitor", {"a", "b", "med"}, {"dev", "latched"});
    monitor->add_sub("DevA", sum("+-"));
    monitor->add_sub("AbsA", abs_block());
    monitor->add_sub("DevB", sum("+-"));
    monitor->add_sub("AbsB", abs_block());
    monitor->add_sub("Worst", max_block());
    monitor->add_sub("Tol", constant(5.0));
    monitor->add_sub("Bad", relational(">"));
    monitor->add_sub("Faults", counter());
    monitor->connect("a", "DevA.u1");
    monitor->connect("med", "DevA.u2");
    monitor->connect("DevA.y", "AbsA.u");
    monitor->connect("b", "DevB.u1");
    monitor->connect("med", "DevB.u2");
    monitor->connect("DevB.y", "AbsB.u");
    monitor->connect("AbsA.y", "Worst.u1");
    monitor->connect("AbsB.y", "Worst.u2");
    monitor->connect("Worst.y", "Bad.u1");
    monitor->connect("Tol.y", "Bad.u2");
    monitor->connect("Bad.y", "Faults.enable");
    monitor->connect("Worst.y", "dev");
    monitor->connect("Faults.y", "latched");

    auto top = macro("SignalSelector", {"s1", "s2", "s3"}, {"selected", "deviation", "faults"});
    top->add_sub("Vote", median);
    top->add_sub("Mon", monitor);
    top->connect("s1", "Vote.a");
    top->connect("s2", "Vote.b");
    top->connect("s3", "Vote.c");
    top->connect("s1", "Mon.a");
    top->connect("s2", "Mon.b");
    top->connect("Vote.med", "Mon.med");
    top->connect("Vote.med", "selected");
    top->connect("Mon.dev", "deviation");
    top->connect("Mon.latched", "faults");
    return top;
}

std::vector<NamedModel> demo_suite() {
    std::vector<NamedModel> suite;
    suite.push_back({"fig1", "paper Figure 1 (A/B/C splitter)", figure1_p()});
    suite.push_back({"fig3", "paper Figure 3 (Moore feedback interface)", figure3_p()});
    suite.push_back({"fig4_n8", "paper Figure 4 chain, n=8", figure4_chain(8)});
    suite.push_back({"counter_limited", "gated saturating counter", counter_limited()});
    suite.push_back({"pi_cruise", "PI cruise control with Moore plant", pi_cruise()});
    suite.push_back({"fuel_controller", "sldemo_fuelsys-style fuel rate controller",
                     fuel_controller()});
    suite.push_back({"abs_brake", "anti-lock brake bang-bang controller", abs_brake()});
    suite.push_back({"aircraft_pitch", "pitch dynamics (Moore macro block)", aircraft_pitch()});
    suite.push_back({"thermostat", "hysteresis thermostat with room model", thermostat()});
    suite.push_back({"gear_logic", "gear shift logic with lookup thresholds", gear_logic()});
    suite.push_back({"shared_chain", "shared sensor chain (Figure 10 pattern)",
                     shared_chain_sensor()});
    suite.push_back({"signal_selector", "triplex redundancy voter", signal_selector()});
    return suite;
}

} // namespace sbd::suite
