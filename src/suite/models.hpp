#ifndef SBD_SUITE_MODELS_HPP
#define SBD_SUITE_MODELS_HPP

#include <string>
#include <vector>

#include "sbd/block.hpp"

namespace sbd::suite {

/// A model of the experiment suite. These models are the offline stand-in
/// for the paper's Simulink-demo-suite and industrial automotive examples:
/// each reproduces a structural signature that motivates one of the
/// clustering methods (see DESIGN.md, substitutions table).
struct NamedModel {
    std::string name;
    std::string description;
    BlockPtr block;
};

/// Gated saturating counter (2 levels; Moore feedback; three distinct
/// input-dependency classes, so even the dynamic method needs 3 functions).
std::shared_ptr<const MacroBlock> counter_limited();

/// Cruise control: PI controller + first-order plant closed at the top
/// level through a Moore plant (2 levels).
std::shared_ptr<const MacroBlock> pi_cruise();

/// Fuel-rate controller in the style of sldemo_fuelsys: sensor correction,
/// airflow estimation and fuel computation subsystems (3 levels; mixed
/// Moore/non-Moore; distinct In-classes for its two outputs).
std::shared_ptr<const MacroBlock> fuel_controller();

/// Anti-lock braking: slip computation + bang-bang controller with a
/// smoothing filter (2 levels; both outputs share one In-class).
std::shared_ptr<const MacroBlock> abs_brake();

/// Aircraft pitch dynamics: chain of integrators; a Moore-sequential macro
/// block (outputs independent of current input).
std::shared_ptr<const MacroBlock> aircraft_pitch();

/// Thermostat with hysteresis relay and first-order room model (2 levels;
/// Moore feedback loop at the top level).
std::shared_ptr<const MacroBlock> thermostat();

/// Shared preprocessing chain feeding two trimmed output channels: the
/// Figure 4 / Figure 10 pattern as it "actually occurs in practice" —
/// the dynamic method replicates the chain, disjoint clustering does not.
std::shared_ptr<const MacroBlock> shared_chain_sensor(std::size_t chain_length = 6);

/// Gear-shift logic: lookup-table thresholds and a unit-delay-held gear
/// state (flat; outputs in different In-classes).
std::shared_ptr<const MacroBlock> gear_logic();

/// Triplex signal selector with fault latching (avionics-flavored
/// redundancy management; median voting plus a Moore fault counter).
std::shared_ptr<const MacroBlock> signal_selector();

/// The whole suite (all of the above plus the paper's figure models).
std::vector<NamedModel> demo_suite();

} // namespace sbd::suite

#endif
