#ifndef SBD_SUITE_NPRED_HPP
#define SBD_SUITE_NPRED_HPP

#include "core/sdg.hpp"
#include "graph/undirected.hpp"

namespace sbd::suite {

/// The NP-hardness construction of Proposition 2 / Figure 7: builds the
/// flat SDG G_f of an undirected graph G such that
///   G can be partitioned into k cliques
///     <=>  G_f admits a valid disjoint clustering with k + 2|E| clusters.
///
/// Node layout of the returned SDG's internal nodes: first the |V| "vertex"
/// nodes v (one per node of G, in order), then for each edge (u, v) of G
/// (in Undirected::edges() order) the two "edge" nodes e'_u, e'_v.
codegen::Sdg reduction_sdg(const graph::Undirected& g);

/// Expected optimal cluster count for reduction_sdg(g): the minimum clique
/// partition size of g plus 2|E(g)|.
std::size_t reduction_expected_clusters(const graph::Undirected& g, std::size_t clique_count);

} // namespace sbd::suite

#endif
