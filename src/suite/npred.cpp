#include "suite/npred.hpp"

namespace sbd::suite {

using codegen::Sdg;
using codegen::SdgNode;

namespace {

graph::NodeId add_node(Sdg& sdg, SdgNode::Kind kind, std::int32_t port) {
    const auto v = sdg.graph.add_node();
    SdgNode n;
    n.kind = kind;
    n.port = port;
    // Non-pass-through internal marker (sub/fn unused by clustering code,
    // set to synthetic ids so labels stay distinct).
    if (kind == SdgNode::Kind::Internal) {
        n.sub = static_cast<std::int32_t>(v);
        n.fn = 0;
    }
    sdg.nodes.push_back(n);
    switch (kind) {
    case SdgNode::Kind::Input: sdg.input_nodes.push_back(v); break;
    case SdgNode::Kind::Output: sdg.output_nodes.push_back(v); break;
    case SdgNode::Kind::Internal: sdg.internal_nodes.push_back(v); break;
    }
    return v;
}

} // namespace

Sdg reduction_sdg(const graph::Undirected& g) {
    Sdg sdg;
    const std::size_t n = g.num_nodes();
    const auto edges = g.edges();

    // Per vertex v of G: internal node v, input v_i, output v_o,
    // edges v_i -> v -> v_o.
    std::vector<graph::NodeId> vert(n), vert_in(n), vert_out(n);
    std::int32_t in_port = 0, out_port = 0;
    for (std::size_t v = 0; v < n; ++v) {
        vert[v] = add_node(sdg, SdgNode::Kind::Internal, -1);
        vert_in[v] = add_node(sdg, SdgNode::Kind::Input, in_port++);
        vert_out[v] = add_node(sdg, SdgNode::Kind::Output, out_port++);
        sdg.graph.add_edge(vert_in[v], vert[v]);
        sdg.graph.add_edge(vert[v], vert_out[v]);
    }
    // Per edge (u, v) of G: internal nodes e'_u, e'_v with private
    // input/output pairs, plus the cross wires u_i -> e'_u -> v_o and
    // v_i -> e'_v -> u_o that make u, v mergeable exactly when adjacent.
    for (const auto& [u, v] : edges) {
        const auto epu = add_node(sdg, SdgNode::Kind::Internal, -1);
        const auto epu_in = add_node(sdg, SdgNode::Kind::Input, in_port++);
        const auto epu_out = add_node(sdg, SdgNode::Kind::Output, out_port++);
        const auto epv = add_node(sdg, SdgNode::Kind::Internal, -1);
        const auto epv_in = add_node(sdg, SdgNode::Kind::Input, in_port++);
        const auto epv_out = add_node(sdg, SdgNode::Kind::Output, out_port++);
        sdg.graph.add_edge(epu_in, epu);
        sdg.graph.add_edge(epu, epu_out);
        sdg.graph.add_edge(epv_in, epv);
        sdg.graph.add_edge(epv, epv_out);
        sdg.graph.add_edge(vert_in[u], epu);
        sdg.graph.add_edge(epu, vert_out[v]);
        sdg.graph.add_edge(vert_in[v], epv);
        sdg.graph.add_edge(epv, vert_out[u]);
    }
    return sdg;
}

std::size_t reduction_expected_clusters(const graph::Undirected& g, std::size_t clique_count) {
    return clique_count + 2 * g.num_edges();
}

} // namespace sbd::suite
