#ifndef SBD_SUITE_FIGURES_HPP
#define SBD_SUITE_FIGURES_HPP

#include <memory>

#include "sbd/block.hpp"

namespace sbd::suite {

/// Figure 1: macro block P with three combinational sub-blocks.
///   A(x1) -> (z1, z2);  B(z1) -> y1;  C(z2, x2) -> y2.
/// Monolithic code for P cannot be embedded with the feedback y1 -> x2
/// (Figure 2) although the flattened diagram allows it.
std::shared_ptr<const MacroBlock> figure1_p();

/// Figure 2: the context using P of Figure 1, closing the loop y1 -> x2.
/// `inner` is the block to embed (pass figure1_p()). The context has one
/// input (x1) and both outputs.
std::shared_ptr<const MacroBlock> figure2_context(BlockPtr inner);

/// Figure 3: macro block P with sub-blocks A (combinational), U
/// (Moore-sequential unit delay) and C (combinational):
///   P_in -> C -> U -> A -> P_out.
/// The dynamic method clusters its SDG into {U.get, A.step} (P.get) and
/// {C.step, U.step} (P.step), with P.get before P.step in the PDG.
std::shared_ptr<const MacroBlock> figure3_p();

/// Figure 4: macro block P with a chain A1 ... An feeding both B and C:
///   inputs x1, x2, x3; chain driven by x2; An -> (z_b, z_c);
///   B(x1, z_b) -> y1;  C(z_c, x3) -> y2.
/// The dynamic method produces 2 overlapping clusters (code of Figure 5,
/// size ~2n); optimal disjoint clustering produces 3 clusters (code of
/// Figure 6, size ~n) — the modularity-vs-code-size trade-off.
std::shared_ptr<const MacroBlock> figure4_chain(std::size_t n);

/// A context wiring `inner`'s output `out` back to its input `in`, exposing
/// the remaining inputs/outputs. Used to probe reusability of generated
/// profiles through real embeddings (not just the profile-level check).
std::shared_ptr<const MacroBlock> feedback_context(BlockPtr inner, std::size_t out,
                                                   std::size_t in);

} // namespace sbd::suite

#endif
