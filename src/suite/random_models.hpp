#ifndef SBD_SUITE_RANDOM_MODELS_HPP
#define SBD_SUITE_RANDOM_MODELS_HPP

#include <cstdint>
#include <random>

#include "core/sdg.hpp"
#include "sbd/block.hpp"

namespace sbd::suite {

/// Parameters of the random hierarchical model generator. The generator is
/// the stand-in for the paper's proprietary industrial models: it produces
/// structurally diverse, always-well-formed, always-acyclic hierarchies.
struct RandomModelParams {
    std::size_t depth = 2;           ///< hierarchy levels (1 = flat)
    std::size_t subs_per_level = 5;  ///< sub-blocks per macro block
    std::size_t inputs = 2;          ///< ports per macro block
    std::size_t outputs = 2;
    double macro_probability = 0.35; ///< chance a sub-block is a nested macro
    double moore_probability = 0.3;  ///< chance an atomic sub is Moore-sequential
    double backward_wire_probability = 0.25; ///< feedback through Moore subs
    /// Chance a sub-block gets a trigger wired from a macro input (fires
    /// iff trigger >= 0.5, holds its outputs otherwise). 0 (the default)
    /// consumes no randomness, so existing seeded streams are unchanged.
    double trigger_probability = 0.0;
};

/// Builds a random, validated, flattenable, acyclic hierarchical model.
/// All atomic blocks come from the standard library (with C++ semantics),
/// so the result works with the simulator, the interpreter and the C++
/// emitter alike.
std::shared_ptr<const MacroBlock> random_model(std::mt19937_64& rng,
                                               const RandomModelParams& params);

/// Parameters of the deep shared-type hierarchy generator (the profile
/// cache's stress shape: many macro instances, few distinct structures).
struct DeepModelParams {
    std::size_t levels = 6;          ///< hierarchy depth (all-macro spine)
    std::size_t types_per_level = 3; ///< distinct macro types defined per level
    std::size_t subs_per_macro = 4;  ///< sub-block instances per macro
    std::size_t inputs = 2;
    std::size_t outputs = 2;
    double moore_probability = 0.4;  ///< Moore share of the atomic leaf library
    double backward_wire_probability = 0.15;
    /// Chance a sub-block instance references a *structural clone* of its
    /// type instead of sharing the object: a distinct Block with an
    /// identical fingerprint, so only a content-addressed cache (not a
    /// pointer-keyed memo) can deduplicate the compile.
    double clone_probability = 0.0;
    /// As RandomModelParams::trigger_probability, applied at every level.
    double trigger_probability = 0.0;
};

/// Builds a validated hierarchy exactly `levels` deep in which every level
/// draws its sub-blocks from a small library of shared types defined one
/// level below — so the number of distinct compilations is
/// O(levels * types_per_level) while the instance tree is exponential.
std::shared_ptr<const MacroBlock> random_deep_model(std::mt19937_64& rng,
                                                    const DeepModelParams& params);

/// Rebuilds a macro block as a new object with identical structure (same
/// type name, ports, sub instances — shared, not cloned — triggers and
/// connections in order). The clone fingerprints identically to the
/// original but compares unequal by address.
std::shared_ptr<const MacroBlock> clone_macro(const MacroBlock& m);

/// Builds a random *flat SDG* directly (for clustering-only tests and
/// benchmarks): layered DAG over `internals` internal nodes with the given
/// edge probability; inputs feed early layers, outputs read late layers.
/// Every output has a unique writer and no input-output edge exists, so the
/// result satisfies all Section 6 assumptions.
codegen::Sdg random_flat_sdg(std::mt19937_64& rng, std::size_t inputs, std::size_t outputs,
                             std::size_t internals, double edge_probability);

} // namespace sbd::suite

#endif
