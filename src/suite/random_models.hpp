#ifndef SBD_SUITE_RANDOM_MODELS_HPP
#define SBD_SUITE_RANDOM_MODELS_HPP

#include <cstdint>
#include <random>

#include "core/sdg.hpp"
#include "sbd/block.hpp"

namespace sbd::suite {

/// Parameters of the random hierarchical model generator. The generator is
/// the stand-in for the paper's proprietary industrial models: it produces
/// structurally diverse, always-well-formed, always-acyclic hierarchies.
struct RandomModelParams {
    std::size_t depth = 2;           ///< hierarchy levels (1 = flat)
    std::size_t subs_per_level = 5;  ///< sub-blocks per macro block
    std::size_t inputs = 2;          ///< ports per macro block
    std::size_t outputs = 2;
    double macro_probability = 0.35; ///< chance a sub-block is a nested macro
    double moore_probability = 0.3;  ///< chance an atomic sub is Moore-sequential
    double backward_wire_probability = 0.25; ///< feedback through Moore subs
};

/// Builds a random, validated, flattenable, acyclic hierarchical model.
/// All atomic blocks come from the standard library (with C++ semantics),
/// so the result works with the simulator, the interpreter and the C++
/// emitter alike.
std::shared_ptr<const MacroBlock> random_model(std::mt19937_64& rng,
                                               const RandomModelParams& params);

/// Builds a random *flat SDG* directly (for clustering-only tests and
/// benchmarks): layered DAG over `internals` internal nodes with the given
/// edge probability; inputs feed early layers, outputs read late layers.
/// Every output has a unique writer and no input-output edge exists, so the
/// result satisfies all Section 6 assumptions.
codegen::Sdg random_flat_sdg(std::mt19937_64& rng, std::size_t inputs, std::size_t outputs,
                             std::size_t internals, double edge_probability);

} // namespace sbd::suite

#endif
