#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbd::sat {

namespace {

constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr std::int64_t kRestartBase = 100;

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
double luby(double y, int x) {
    int size = 1;
    int seq = 0;
    while (size < x + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        --seq;
        x = x % size;
    }
    return std::pow(y, seq);
}

} // namespace

Solver::Solver() = default;

Var Solver::new_var() {
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::Undef);
    polarity_.push_back(false);
    level_.push_back(0);
    reason_.push_back(kNoReason);
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
    return v;
}

bool Solver::add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
}

bool Solver::add_clause(std::span<const Lit> lits) {
    assert(decision_level() == 0);
    if (!ok_) return false;

    std::vector<Lit> cl(lits.begin(), lits.end());
    std::sort(cl.begin(), cl.end());
    // Remove duplicates, detect tautologies, drop level-0-false literals and
    // discard clauses already satisfied at level 0.
    std::vector<Lit> out;
    out.reserve(cl.size());
    for (std::size_t i = 0; i < cl.size(); ++i) {
        if (i > 0 && cl[i] == cl[i - 1]) continue;
        if (i > 0 && cl[i] == ~cl[i - 1]) return true; // tautology
        const LBool v = value(cl[i]);
        if (v == LBool::True) return true; // already satisfied
        if (v == LBool::False) continue;   // falsified at level 0, drop
        out.push_back(cl[i]);
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kNoReason);
        if (propagate() != kNoReason) {
            ok_ = false;
            return false;
        }
        ++num_problem_clauses_;
        return true;
    }

    const ClauseIdx idx = static_cast<ClauseIdx>(clauses_.size());
    clauses_.push_back(ClauseData{std::move(out), 0.0, false, false});
    attach_clause(idx);
    ++num_problem_clauses_;
    return true;
}

void Solver::attach_clause(ClauseIdx idx) {
    const ClauseData& c = clauses_[idx];
    assert(c.lits.size() >= 2);
    watches_[(~c.lits[0]).code()].push_back(Watcher{idx, c.lits[1]});
    watches_[(~c.lits[1]).code()].push_back(Watcher{idx, c.lits[0]});
}

void Solver::enqueue(Lit l, ClauseIdx reason) {
    assert(value(l) == LBool::Undef);
    const Var v = l.var();
    assigns_[v] = lbool_from(!l.negated());
    level_[v] = decision_level();
    reason_[v] = reason;
    trail_.push_back(l);
}

Solver::ClauseIdx Solver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;
        std::vector<Watcher>& ws = watches_[p.code()];
        std::size_t i = 0, j = 0;
        while (i < ws.size()) {
            const Watcher w = ws[i++];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = w;
                continue;
            }
            ClauseData& c = clauses_[w.clause];
            if (c.deleted) continue; // lazily unhook deleted clauses
            const Lit false_lit = ~p;
            if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
            assert(c.lits[1] == false_lit);
            const Lit first = c.lits[0];
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = Watcher{w.clause, first};
                continue;
            }
            bool found_watch = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k) {
                if (value(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[(~c.lits[1]).code()].push_back(Watcher{w.clause, first});
                    found_watch = true;
                    break;
                }
            }
            if (found_watch) continue;
            // Clause is unit or conflicting under the current assignment.
            ws[j++] = Watcher{w.clause, first};
            if (value(first) == LBool::False) {
                // Conflict: flush the remaining watchers and report.
                while (i < ws.size()) ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return w.clause;
            }
            enqueue(first, w.clause);
        }
        ws.resize(j);
    }
    return kNoReason;
}

void Solver::bump_var(Var v) {
    activity_[v] += var_inc_;
    if (activity_[v] > kRescaleLimit) {
        for (auto& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[v] >= 0) heap_update(v);
}

void Solver::bump_clause(ClauseIdx ci) {
    ClauseData& c = clauses_[ci];
    c.activity += cla_inc_;
    if (c.activity > kRescaleLimit) {
        for (ClauseIdx l : learnts_) clauses_[l].activity *= 1e-100;
        cla_inc_ *= 1e-100;
    }
}

void Solver::decay_var_activity() {
    var_inc_ /= kVarDecay;
    cla_inc_ /= kClauseDecay;
}

bool Solver::lit_redundant(Lit l) const {
    const ClauseIdx r = reason_[l.var()];
    if (r == kNoReason) return false;
    const ClauseData& c = clauses_[r];
    for (std::size_t i = 1; i < c.lits.size(); ++i) {
        const Lit q = c.lits[i];
        if (!seen_[q.var()] && level_[q.var()] > 0) return false;
    }
    return true;
}

void Solver::analyze(ClauseIdx conflict, std::vector<Lit>& out_learnt, int& out_level) {
    out_learnt.clear();
    out_learnt.push_back(Lit()); // slot for the asserting literal
    int path_count = 0;
    Lit p;
    bool have_p = false;
    std::size_t index = trail_.size();
    ClauseIdx c = conflict;
    std::vector<Var> to_clear;

    for (;;) {
        assert(c != kNoReason);
        if (clauses_[c].learnt) bump_clause(c);
        const auto& lits = clauses_[c].lits;
        for (std::size_t i = have_p ? 1 : 0; i < lits.size(); ++i) {
            const Lit q = lits[i];
            if (seen_[q.var()] || level_[q.var()] == 0) continue;
            bump_var(q.var());
            seen_[q.var()] = 1;
            to_clear.push_back(q.var());
            if (level_[q.var()] >= decision_level())
                ++path_count;
            else
                out_learnt.push_back(q);
        }
        // Select the next implication-graph node to expand.
        while (!seen_[trail_[index - 1].var()]) --index;
        --index;
        p = trail_[index];
        have_p = true;
        c = reason_[p.var()];
        seen_[p.var()] = 0;
        --path_count;
        if (path_count == 0) break;
    }
    out_learnt[0] = ~p;

    // Local conflict-clause minimization (self-subsumption with reasons).
    std::size_t kept = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        if (!lit_redundant(out_learnt[i])) out_learnt[kept++] = out_learnt[i];
    out_learnt.resize(kept);

    // Find backtrack level = max level among out_learnt[1..] and put that
    // literal at index 1 (second watch).
    if (out_learnt.size() == 1) {
        out_level = 0;
    } else {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i)
            if (level_[out_learnt[i].var()] > level_[out_learnt[max_i].var()]) max_i = i;
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_level = level_[out_learnt[1].var()];
    }

    for (Var v : to_clear) seen_[v] = 0;
}

void Solver::cancel_until(int target_level) {
    if (decision_level() <= target_level) return;
    const std::size_t lim = trail_lim_[target_level];
    for (std::size_t i = trail_.size(); i > lim; --i) {
        const Var v = trail_[i - 1].var();
        polarity_[v] = (assigns_[v] == LBool::True);
        assigns_[v] = LBool::Undef;
        reason_[v] = kNoReason;
        if (heap_pos_[v] < 0) heap_insert(v);
    }
    trail_.resize(lim);
    trail_lim_.resize(target_level);
    qhead_ = lim;
}

std::optional<Lit> Solver::pick_branch_lit() {
    while (!heap_empty()) {
        const Var v = heap_pop();
        if (assigns_[v] == LBool::Undef) return Lit(v, !polarity_[v]);
    }
    return std::nullopt;
}

void Solver::reduce_db() {
    // Sort learned clauses by activity ascending and delete the weaker half,
    // keeping reasons of current assignments.
    std::sort(learnts_.begin(), learnts_.end(), [this](ClauseIdx a, ClauseIdx b) {
        return clauses_[a].activity < clauses_[b].activity;
    });
    const std::size_t target = learnts_.size() / 2;
    std::size_t kept = 0;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < learnts_.size(); ++i) {
        const ClauseIdx ci = learnts_[i];
        ClauseData& c = clauses_[ci];
        const bool locked =
            value(c.lits[0]) == LBool::True && reason_[c.lits[0].var()] == ci;
        if (removed < target && !locked && c.lits.size() > 2) {
            c.deleted = true;
            c.lits.clear();
            c.lits.shrink_to_fit();
            ++removed;
            ++stats_.deleted_clauses;
        } else {
            learnts_[kept++] = ci;
        }
    }
    learnts_.resize(kept);
}

LBool Solver::search(std::int64_t conflict_limit, std::span<const Lit> assumptions) {
    std::vector<Lit> learnt;
    std::int64_t conflicts_here = 0;
    for (;;) {
        const ClauseIdx confl = propagate();
        if (confl != kNoReason) {
            ++stats_.conflicts;
            ++conflicts_here;
            if (conflict_budget_ != 0 && stats_.conflicts > conflict_budget_)
                throw BudgetExceeded{};
            if (decision_level() == 0) return LBool::False;
            int back_level = 0;
            analyze(confl, learnt, back_level);
            cancel_until(back_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], kNoReason);
            } else {
                const ClauseIdx idx = static_cast<ClauseIdx>(clauses_.size());
                clauses_.push_back(ClauseData{learnt, 0.0, true, false});
                learnts_.push_back(idx);
                attach_clause(idx);
                bump_clause(idx);
                enqueue(learnt[0], idx);
            }
            ++stats_.learned_clauses;
            stats_.learned_literals += learnt.size();
            decay_var_activity();
            continue;
        }
        if (conflict_limit >= 0 && conflicts_here >= conflict_limit) {
            cancel_until(0);
            ++stats_.restarts;
            return LBool::Undef;
        }
        if (max_learnts_ > 0 && static_cast<double>(learnts_.size()) >= max_learnts_) {
            reduce_db();
            max_learnts_ *= 1.1;
        }
        // Place assumptions as pseudo-decisions, then branch.
        Lit next;
        bool have_next = false;
        while (decision_level() < static_cast<int>(assumptions.size())) {
            const Lit a = assumptions[decision_level()];
            if (value(a) == LBool::True) {
                trail_lim_.push_back(trail_.size()); // dummy level
            } else if (value(a) == LBool::False) {
                return LBool::False; // conflicts with assumptions
            } else {
                next = a;
                have_next = true;
                break;
            }
        }
        if (!have_next) {
            const auto picked = pick_branch_lit();
            if (!picked) return LBool::True; // all variables assigned
            next = *picked;
            ++stats_.decisions;
        }
        trail_lim_.push_back(trail_.size());
        enqueue(next, kNoReason);
    }
}

bool Solver::solve(std::span<const Lit> assumptions) {
    model_.clear();
    if (!ok_) return false;
    cancel_until(0);
    if (propagate() != kNoReason) {
        ok_ = false;
        return false;
    }
    max_learnts_ = 4000.0 + 0.3 * static_cast<double>(num_problem_clauses_);
    LBool status = LBool::Undef;
    for (int restart = 0; status == LBool::Undef; ++restart) {
        const auto limit =
            static_cast<std::int64_t>(luby(2.0, restart) * kRestartBase);
        status = search(limit, assumptions);
    }
    if (status == LBool::True) {
        model_.assign(assigns_.begin(), assigns_.end());
        // Unbranched variables (eliminated from the heap before assignment)
        // cannot exist here: search() only returns True when every variable
        // is assigned.
        cancel_until(0);
        return true;
    }
    cancel_until(0);
    return false;
}

// ---- activity-ordered max-heap ------------------------------------------

void Solver::heap_insert(Var v) {
    heap_pos_[v] = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(v);
    heap_sift_up(heap_.size() - 1);
}

void Solver::heap_update(Var v) {
    heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
}

Var Solver::heap_pop() {
    const Var top = heap_[0];
    heap_pos_[top] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_pos_[heap_[0]] = 0;
        heap_sift_down(0);
    }
    return top;
}

void Solver::heap_sift_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[v]) break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
    const Var v = heap_[i];
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= heap_.size()) break;
        if (child + 1 < heap_.size() && activity_[heap_[child + 1]] > activity_[heap_[child]])
            ++child;
        if (activity_[heap_[child]] <= activity_[v]) break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<std::int32_t>(i);
}

} // namespace sbd::sat
