#ifndef SBD_SAT_LITERAL_HPP
#define SBD_SAT_LITERAL_HPP

#include <cstdint>
#include <vector>

namespace sbd::sat {

/// Boolean variable index, 0-based.
using Var = std::int32_t;

/// A literal is a variable with a sign, packed MiniSat-style as 2*var+neg.
class Lit {
public:
    Lit() = default;
    Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

    static Lit from_code(std::int32_t code) {
        Lit l;
        l.code_ = code;
        return l;
    }

    Var var() const { return code_ >> 1; }
    bool negated() const { return (code_ & 1) != 0; }
    std::int32_t code() const { return code_; }

    Lit operator~() const { return from_code(code_ ^ 1); }
    bool operator==(const Lit&) const = default;
    auto operator<=>(const Lit&) const = default;

    /// DIMACS form: +/-(var+1).
    std::int64_t to_dimacs() const { return negated() ? -(var() + 1) : (var() + 1); }

private:
    std::int32_t code_ = -2;
};

/// Positive literal of variable v.
inline Lit pos(Var v) { return Lit(v, false); }
/// Negative literal of variable v.
inline Lit neg(Var v) { return Lit(v, true); }

/// Ternary truth value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::True : LBool::False; }
inline LBool operator^(LBool v, bool flip) {
    if (v == LBool::Undef || !flip) return v;
    return v == LBool::True ? LBool::False : LBool::True;
}

using Clause = std::vector<Lit>;

} // namespace sbd::sat

#endif
