#ifndef SBD_SAT_SOLVER_HPP
#define SBD_SAT_SOLVER_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "sat/literal.hpp"

namespace sbd::sat {

/// Aggregate solver statistics, exposed for the paper's experiment tables.
struct SolverStats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned_clauses = 0;
    std::uint64_t learned_literals = 0;
    std::uint64_t deleted_clauses = 0;
};

/// Conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-watched-literal propagation, first-UIP learning with local clause
/// minimization, exponential VSIDS decision heuristic, phase saving, Luby
/// restarts and activity-based learned-clause deletion.
///
/// This is the offline stand-in for the MiniSat instance the paper's
/// prototype used to decide satisfiability of the clustering formulas F_k.
class Solver {
public:
    Solver();

    /// Creates a fresh variable and returns it.
    Var new_var();
    std::size_t num_vars() const { return assigns_.size(); }
    std::size_t num_clauses() const { return num_problem_clauses_; }

    /// Adds a clause over existing variables. Returns false if the clause
    /// (together with what is already known at level 0) makes the instance
    /// trivially unsatisfiable. Tautologies and duplicate literals are
    /// handled internally.
    bool add_clause(std::span<const Lit> lits);
    bool add_clause(std::initializer_list<Lit> lits);

    /// Solves under optional assumptions. Returns true iff satisfiable.
    bool solve(std::span<const Lit> assumptions = {});

    /// Model access after a satisfiable solve().
    bool model_value(Var v) const { return model_[v] == LBool::True; }
    const std::vector<LBool>& model() const { return model_; }

    const SolverStats& stats() const { return stats_; }

    /// Hard bound on conflicts per solve() call; 0 = unlimited. When the
    /// bound is hit, solve() throws BudgetExceeded.
    void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }

    /// Derives std::runtime_error so a budget trip that escapes a caller
    /// still lands in generic catch(std::exception) handlers instead of
    /// terminating; core/cluster_sat translates it into the coded
    /// resilience::BudgetExhausted before it ever leaves the clustering API.
    struct BudgetExceeded : std::runtime_error {
        BudgetExceeded() : std::runtime_error("sat: conflict budget exceeded") {}
    };

private:
    using ClauseIdx = std::uint32_t;
    static constexpr ClauseIdx kNoReason = static_cast<ClauseIdx>(-1);

    struct ClauseData {
        std::vector<Lit> lits;
        double activity = 0.0;
        bool learnt = false;
        bool deleted = false;
    };

    struct Watcher {
        ClauseIdx clause;
        Lit blocker;
    };

    LBool value(Lit l) const {
        const LBool v = assigns_[l.var()];
        return v ^ l.negated();
    }

    void enqueue(Lit l, ClauseIdx reason);
    ClauseIdx propagate();
    void analyze(ClauseIdx conflict, std::vector<Lit>& out_learnt, int& out_level);
    bool lit_redundant(Lit l) const;
    void cancel_until(int level);
    std::optional<Lit> pick_branch_lit();
    void bump_var(Var v);
    void bump_clause(ClauseIdx c);
    void decay_var_activity();
    void reduce_db();
    void attach_clause(ClauseIdx idx);
    int decision_level() const { return static_cast<int>(trail_lim_.size()); }
    LBool search(std::int64_t conflict_limit, std::span<const Lit> assumptions);

    // Heap keyed on var activity (max-heap).
    void heap_insert(Var v);
    void heap_update(Var v);
    Var heap_pop();
    bool heap_empty() const { return heap_.empty(); }
    void heap_sift_up(std::size_t i);
    void heap_sift_down(std::size_t i);

    std::vector<ClauseData> clauses_;
    std::vector<ClauseIdx> learnts_;
    std::vector<std::vector<Watcher>> watches_; // indexed by Lit::code of the *false* literal watched
    std::vector<LBool> assigns_;
    std::vector<bool> polarity_; // saved phase; true = last assigned true
    std::vector<int> level_;
    std::vector<ClauseIdx> reason_;
    std::vector<Lit> trail_;
    std::vector<std::size_t> trail_lim_;
    std::size_t qhead_ = 0;

    std::vector<double> activity_;
    double var_inc_ = 1.0;
    double cla_inc_ = 1.0;

    std::vector<std::int32_t> heap_;     // heap of vars
    std::vector<std::int32_t> heap_pos_; // var -> index in heap_, -1 if absent

    std::vector<LBool> model_;
    bool ok_ = true;
    std::size_t num_problem_clauses_ = 0;
    double max_learnts_ = 0;
    std::uint64_t conflict_budget_ = 0;

    // scratch for analyze()
    std::vector<char> seen_;

    SolverStats stats_;
};

} // namespace sbd::sat

#endif
