#ifndef SBD_SAT_DIMACS_HPP
#define SBD_SAT_DIMACS_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/literal.hpp"

namespace sbd::sat {

/// A CNF formula in memory: variable count plus clause list. Used for
/// DIMACS interchange and for the brute-force reference solver in tests.
struct Cnf {
    std::size_t num_vars = 0;
    std::vector<Clause> clauses;

    void add(Clause c) { clauses.push_back(std::move(c)); }
};

/// Parses DIMACS CNF text. Throws std::runtime_error on malformed input.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs_string(const std::string& text);

/// Serializes to DIMACS CNF text.
std::string to_dimacs(const Cnf& cnf);

} // namespace sbd::sat

#endif
