#include "sat/dimacs.hpp"

#include <sstream>
#include <stdexcept>

namespace sbd::sat {

Cnf parse_dimacs(std::istream& in) {
    Cnf cnf;
    std::string token;
    bool header_seen = false;
    std::size_t expected_clauses = 0;
    Clause current;
    while (in >> token) {
        if (token == "c") {
            std::string line;
            std::getline(in, line);
            continue;
        }
        if (token == "p") {
            std::string fmt;
            long long nv = 0, nc = 0;
            if (!(in >> fmt >> nv >> nc) || fmt != "cnf" || nv < 0 || nc < 0)
                throw std::runtime_error("dimacs: malformed problem line");
            cnf.num_vars = static_cast<std::size_t>(nv);
            expected_clauses = static_cast<std::size_t>(nc);
            header_seen = true;
            continue;
        }
        long long v = 0;
        try {
            v = std::stoll(token);
        } catch (const std::exception&) {
            throw std::runtime_error("dimacs: bad token '" + token + "'");
        }
        if (!header_seen) throw std::runtime_error("dimacs: clause before problem line");
        if (v == 0) {
            cnf.clauses.push_back(current);
            current.clear();
        } else {
            const auto var = static_cast<Var>(std::llabs(v) - 1);
            if (static_cast<std::size_t>(var) >= cnf.num_vars)
                throw std::runtime_error("dimacs: variable out of range");
            current.push_back(Lit(var, v < 0));
        }
    }
    if (!current.empty()) throw std::runtime_error("dimacs: unterminated clause");
    if (header_seen && cnf.clauses.size() != expected_clauses)
        throw std::runtime_error("dimacs: clause count mismatch");
    return cnf;
}

Cnf parse_dimacs_string(const std::string& text) {
    std::istringstream is(text);
    return parse_dimacs(is);
}

std::string to_dimacs(const Cnf& cnf) {
    std::ostringstream os;
    os << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
    for (const auto& clause : cnf.clauses) {
        for (const Lit l : clause) os << l.to_dimacs() << ' ';
        os << "0\n";
    }
    return os.str();
}

} // namespace sbd::sat
