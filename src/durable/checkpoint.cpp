#include "durable/durable.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>

#include "core/fsio.hpp"
#include "resilience/fault.hpp"

namespace sbd::durable {

namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'B', 'D', 'K'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeader = 4 + 4 + 8 + 8;
constexpr std::uint64_t kMaxPayload = 1ull << 32;

void put_u32(std::uint8_t* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::string checkpoint_name(std::uint64_t seq) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "ckpt-%016llx.sbdk",
                  static_cast<unsigned long long>(seq));
    return buf;
}

std::optional<std::uint64_t> parse_checkpoint_name(const std::string& name) {
    if (name.size() != 5 + 16 + 5 || name.rfind("ckpt-", 0) != 0 ||
        name.substr(5 + 16) != ".sbdk")
        return std::nullopt;
    std::uint64_t v = 0;
    for (std::size_t i = 5; i < 5 + 16; ++i) {
        const char c = name[i];
        int d = 0;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else return std::nullopt;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    return v;
}

/// Newest first.
std::vector<std::pair<std::uint64_t, fs::path>> list_checkpoints(const fs::path& dir) {
    std::vector<std::pair<std::uint64_t, fs::path>> v;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(dir, ec)) {
        if (!e.is_regular_file(ec)) continue;
        if (const auto seq = parse_checkpoint_name(e.path().filename().string()))
            v.emplace_back(*seq, e.path());
    }
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
}

} // namespace

CheckpointStore::CheckpointStore(const Options& opts) : opts_(opts) {
    c_checkpoints_ = obs::counter_in(opts_.metrics, "sbd_durable_checkpoints_total",
                                     "checkpoints durably published");
    c_failures_ = obs::counter_in(opts_.metrics, "sbd_durable_checkpoint_failures_total",
                                  "failed or injected checkpoint writes");
    c_fallbacks_ = obs::counter_in(opts_.metrics, "sbd_durable_checkpoint_fallbacks_total",
                                   "invalid checkpoints skipped during recovery");
    h_checkpoint_ns_ = obs::histogram_in(opts_.metrics, "sbd_durable_checkpoint_ns",
                                         obs::exponential_bounds(4000, 4.0, 12),
                                         "checkpoint publish duration (ns)");
    std::error_code ec;
    fs::create_directories(opts_.data_dir, ec);
    if (ec)
        throw DurableError("durable: cannot create data dir '" + opts_.data_dir.string() +
                           "': " + ec.message());
}

bool CheckpointStore::write(std::uint64_t seq, std::span<const std::uint8_t> payload) {
    obs::ScopedNsTimer timer(h_checkpoint_ns_);
    if (SBD_FAULT_HIT("durable.checkpoint")) {
        timer.cancel();
        c_failures_.inc();
        return false;
    }
    std::vector<std::uint8_t> buf(kHeader + payload.size() + 8);
    std::memcpy(buf.data(), kMagic, 4);
    put_u32(buf.data() + 4, kFormatVersion);
    put_u64(buf.data() + 8, seq);
    put_u64(buf.data() + 16, payload.size());
    std::copy(payload.begin(), payload.end(), buf.begin() + kHeader);
    // Checksum covers seq + length + payload, same discipline as the journal.
    const std::uint64_t check =
        fnv1a64(payload, fnv1a64({buf.data() + 8, 16}));
    put_u64(buf.data() + kHeader + payload.size(), check);

    std::uint64_t serial = 0;
    {
        std::lock_guard lock(m_);
        serial = ++tmp_serial_;
    }
    const fs::path final_path = opts_.data_dir / checkpoint_name(seq);
    const fs::path tmp_path =
        opts_.data_dir / (checkpoint_name(seq) + ".tmp" + std::to_string(serial));
    // Checkpoints are always published with the full fsync discipline —
    // a checkpoint that might vanish in a crash is worse than none, because
    // truncate_until() deletes the journal prefix it supposedly covers.
    if (!fsio::write_file_durable(final_path, tmp_path, buf,
                                  /*durable_sync=*/opts_.fsync != FsyncMode::Off)) {
        timer.cancel();
        c_failures_.inc();
        return false;
    }
    c_checkpoints_.inc();
    return true;
}

std::optional<CheckpointStore::Loaded> CheckpointStore::load_latest() {
    Loaded out;
    for (const auto& [seq, path] : list_checkpoints(opts_.data_dir)) {
        const auto reject = [&] {
            ++out.fallbacks;
            c_fallbacks_.inc();
        };
        if (SBD_FAULT_HIT("durable.recover")) { // simulated unreadable checkpoint
            reject();
            continue;
        }
        std::vector<std::uint8_t> raw;
        {
            std::ifstream f(path, std::ios::binary);
            if (!f) {
                reject();
                continue;
            }
            raw.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
            if (f.bad()) {
                reject();
                continue;
            }
        }
        if (raw.size() < kHeader + 8 || std::memcmp(raw.data(), kMagic, 4) != 0 ||
            get_u32(raw.data() + 4) != kFormatVersion) {
            reject();
            continue;
        }
        const std::uint64_t stored_seq = get_u64(raw.data() + 8);
        const std::uint64_t len = get_u64(raw.data() + 16);
        if (stored_seq != seq || len > kMaxPayload ||
            raw.size() != kHeader + len + 8) {
            reject();
            continue;
        }
        const std::span<const std::uint8_t> payload{raw.data() + kHeader,
                                                    static_cast<std::size_t>(len)};
        const std::uint64_t check = get_u64(raw.data() + kHeader + len);
        if (check != fnv1a64(payload, fnv1a64({raw.data() + 8, 16}))) {
            reject();
            continue;
        }
        out.seq = seq;
        out.payload.assign(payload.begin(), payload.end());
        return out;
    }
    return std::nullopt;
}

void CheckpointStore::retain(std::size_t keep) {
    const auto all = list_checkpoints(opts_.data_dir);
    for (std::size_t i = keep; i < all.size(); ++i) {
        std::error_code ec;
        fs::remove(all[i].second, ec);
    }
    if (all.size() > keep && opts_.fsync != FsyncMode::Off)
        fsio::fsync_file(opts_.data_dir);
}

} // namespace sbd::durable
