#ifndef SBD_DURABLE_DURABLE_HPP
#define SBD_DURABLE_DURABLE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace sbd::durable {

/// Crash-safe persistence for the serve tier: a checksummed, length-prefixed
/// write-ahead journal plus periodic durable checkpoints. The serving layer
/// journals every mutation *before* applying it (journal-then-apply), so a
/// recovered process replays a prefix of the exact request timeline against
/// the newest valid checkpoint; the generated step functions are
/// deterministic state machines, so the replay reproduces pre-crash state
/// bit-for-bit.
///
/// On-disk layout under one `--data-dir`:
///   journal/wal-<first-seq, 16 hex>.sbdj   journal segments
///   ckpt-<seq, 16 hex>.sbdk                checkpoints (2 newest retained)
///
/// Segment format: 16-byte header (magic "SBDJ", u32 version, u64 first
/// record seq), then records back to back. Record: u32 payload length,
/// u32 kind, u64 seq, u64 FNV-1a-64 checksum over (length, kind, seq,
/// payload), payload bytes. A torn tail — short header, short payload, bad
/// checksum or a sequence gap — truncates the segment at the last valid
/// record on open; later segments are beyond the torn point and deleted.

/// When appends become durable relative to the client's ack.
enum class FsyncMode {
    Always, ///< fsync before every ack: zero acked work can be lost
    Batch,  ///< background flusher syncs on a short cadence; an ack may
            ///< precede durability by up to that interval
    Off,    ///< no fsync (tests/benchmarks; page cache only)
};

std::optional<FsyncMode> parse_fsync_mode(const std::string& s);
const char* to_string(FsyncMode m);

/// What one journal record describes. Values are stable on-disk identifiers.
enum class RecordKind : std::uint32_t {
    Create = 1,
    Destroy = 2,
    PostInputs = 3,
    Tick = 4,
    Upgrade = 5,
};

const char* to_string(RecordKind k);

struct Record {
    std::uint64_t seq = 0;
    RecordKind kind = RecordKind::Tick;
    std::vector<std::uint8_t> payload;
};

/// A durable-store operation failed (real I/O error or injected fault).
/// The serving layer maps this to the coded DURABLE_FAILED rejection —
/// nothing has been applied when an append throws.
class DurableError : public std::runtime_error {
public:
    explicit DurableError(const std::string& what) : std::runtime_error(what) {}
};

struct Options {
    std::filesystem::path data_dir;
    FsyncMode fsync = FsyncMode::Batch;
    /// Checkpoint after this many server ticks; 0 disables the cadence.
    std::uint64_t checkpoint_every_ticks = 1024;
    /// Rotate the active journal segment past this size.
    std::uint64_t segment_bytes = 8ull << 20;
    /// Batch-mode flusher period.
    std::uint64_t batch_flush_ms = 5;
    obs::MetricsRegistry* metrics = nullptr;

    std::filesystem::path journal_dir() const { return data_dir / "journal"; }
};

/// FNV-1a-64 over a byte span, resumable via the running-hash overload.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t h = 14695981039346656037ull);

/// Result of scanning a journal directory (read-only; recovery and
/// `--journal-dump` both use it).
struct ScanResult {
    std::vector<Record> records; ///< valid records with seq > from_seq, in order
    std::uint64_t last_seq = 0;  ///< highest valid seq seen (0 if none)
    std::size_t segments = 0;    ///< segment files visited
    std::uint64_t torn_bytes = 0;     ///< bytes past the last valid record
    std::size_t dropped_segments = 0; ///< segments beyond a torn/corrupt point
    bool torn = false;                ///< a torn tail or corrupt record was found
};

class Journal {
public:
    /// Opens (creating directories as needed) and repairs the journal:
    /// scans existing segments, truncates any torn tail, deletes segments
    /// beyond it, and positions the next append after the last valid
    /// record. Throws DurableError only when the directory itself is
    /// unusable.
    explicit Journal(const Options& opts);
    ~Journal();
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// Appends one record, rotating segments as needed; in FsyncMode::Always
    /// the record is fsynced before returning. Returns the record's seq.
    /// Throws DurableError on write/sync failure (or an injected
    /// durable.append / durable.fsync fault) — the caller must not apply
    /// the mutation it was about to journal.
    std::uint64_t append(RecordKind kind, std::span<const std::uint8_t> payload);

    /// fsyncs the active segment if it has unsynced bytes. Throws
    /// DurableError on failure (or injected durable.fsync).
    void sync();

    /// Deletes whole segments every record of which has seq <= `seq`
    /// (called after a checkpoint covering `seq` became durable). The
    /// active segment is never deleted. Best effort.
    void truncate_until(std::uint64_t seq);

    std::uint64_t next_seq() const;
    std::uint64_t appended_bytes() const { return appended_bytes_.load(std::memory_order_relaxed); }

    /// Read-only scan of a journal directory; returns records with
    /// seq > from_seq. Never modifies files (the constructor is what
    /// repairs). Also accepts a single segment file.
    static ScanResult scan(const std::filesystem::path& journal_dir_or_segment,
                           std::uint64_t from_seq = 0);

private:
    struct Segment {
        std::filesystem::path path;
        std::uint64_t first_seq = 0;
    };

    void open_segment_locked(std::uint64_t first_seq);
    void rotate_locked();
    void sync_locked();

    Options opts_;
    mutable std::mutex m_;
    std::vector<Segment> segments_;
    int fd_ = -1;                   ///< active segment
    std::uint64_t active_bytes_ = 0; ///< size of active segment file
    std::uint64_t next_seq_ = 1;
    bool dirty_ = false; ///< unsynced bytes in the active segment
    std::atomic<std::uint64_t> appended_bytes_{0};

    obs::Counter c_records_;
    obs::Counter c_bytes_;
    obs::Counter c_fsyncs_;
    obs::Counter c_fsync_failures_;
    obs::Counter c_append_failures_;
    obs::Counter c_rotations_;
    obs::Histogram h_fsync_ns_;
};

class CheckpointStore {
public:
    explicit CheckpointStore(const Options& opts);

    /// Durably publishes a checkpoint covering journal records up to and
    /// including `seq`: temp file + fsync(file) + atomic rename +
    /// fsync(dir), content-checksummed. Returns false on failure (including
    /// an injected durable.checkpoint fault) — the caller keeps serving and
    /// keeps its journal; a missed checkpoint only lengthens replay.
    bool write(std::uint64_t seq, std::span<const std::uint8_t> payload);

    struct Loaded {
        std::uint64_t seq = 0;
        std::vector<std::uint8_t> payload;
        std::size_t fallbacks = 0; ///< newer checkpoints skipped as invalid
    };

    /// Loads the newest valid checkpoint, falling back to older ones when a
    /// candidate is unreadable or fails its checksum (or an injected
    /// durable.recover fault). nullopt when no valid checkpoint exists —
    /// recovery then replays the whole journal. Never throws.
    std::optional<Loaded> load_latest();

    /// Deletes all but the `keep` newest checkpoints. Best effort.
    void retain(std::size_t keep = 2);

private:
    Options opts_;
    std::uint64_t tmp_serial_ = 0;
    std::mutex m_;
    obs::Counter c_checkpoints_;
    obs::Counter c_failures_;
    obs::Counter c_fallbacks_;
    obs::Histogram h_checkpoint_ns_;
};

/// One handle owning the journal, the checkpoint store and (in Batch mode)
/// the background flusher thread.
class Store {
public:
    explicit Store(Options opts);
    ~Store();
    Store(const Store&) = delete;
    Store& operator=(const Store&) = delete;

    Journal& journal() { return journal_; }
    CheckpointStore& checkpoints() { return checkpoints_; }
    const Options& options() const { return opts_; }

    /// Recovery bookkeeping, published as sbd_durable_recovery_* metrics.
    void note_recovery(std::uint64_t replayed_records, std::uint64_t replayed_ticks,
                       std::uint64_t ns);

private:
    void flusher_main();

    Options opts_;
    Journal journal_;
    CheckpointStore checkpoints_;
    obs::Counter c_replayed_records_;
    obs::Counter c_replayed_ticks_;
    obs::Counter c_recovery_ns_;
    obs::Counter c_recoveries_;
    obs::Counter c_flush_failures_;

    std::mutex flush_m_;
    std::condition_variable flush_cv_;
    bool stop_ = false;
    std::thread flusher_;
};

} // namespace sbd::durable

#endif
