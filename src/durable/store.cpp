#include "durable/durable.hpp"

#include <chrono>

namespace sbd::durable {

std::optional<FsyncMode> parse_fsync_mode(const std::string& s) {
    if (s == "always") return FsyncMode::Always;
    if (s == "batch") return FsyncMode::Batch;
    if (s == "off") return FsyncMode::Off;
    return std::nullopt;
}

const char* to_string(FsyncMode m) {
    switch (m) {
    case FsyncMode::Always: return "always";
    case FsyncMode::Batch: return "batch";
    case FsyncMode::Off: return "off";
    }
    return "?";
}

const char* to_string(RecordKind k) {
    switch (k) {
    case RecordKind::Create: return "CREATE";
    case RecordKind::Destroy: return "DESTROY";
    case RecordKind::PostInputs: return "POST_INPUTS";
    case RecordKind::Tick: return "TICK";
    case RecordKind::Upgrade: return "UPGRADE_MODEL";
    }
    return "?";
}

Store::Store(Options opts)
    : opts_(std::move(opts)), journal_(opts_), checkpoints_(opts_) {
    c_replayed_records_ =
        obs::counter_in(opts_.metrics, "sbd_durable_recovery_replayed_records_total",
                        "journal records replayed during recovery");
    c_replayed_ticks_ =
        obs::counter_in(opts_.metrics, "sbd_durable_recovery_replayed_ticks_total",
                        "ticks replayed during recovery");
    c_recovery_ns_ = obs::counter_in(opts_.metrics, "sbd_durable_recovery_ns_total",
                                     "total wall time spent recovering (ns)");
    c_recoveries_ = obs::counter_in(opts_.metrics, "sbd_durable_recoveries_total",
                                    "recovery passes completed");
    c_flush_failures_ = obs::counter_in(opts_.metrics, "sbd_durable_flush_failures_total",
                                        "batch-flusher sync failures (absorbed)");
    if (opts_.fsync == FsyncMode::Batch)
        flusher_ = std::thread([this] { flusher_main(); });
}

Store::~Store() {
    if (flusher_.joinable()) {
        {
            std::lock_guard lock(flush_m_);
            stop_ = true;
        }
        flush_cv_.notify_all();
        flusher_.join();
    }
}

void Store::note_recovery(std::uint64_t replayed_records, std::uint64_t replayed_ticks,
                          std::uint64_t ns) {
    c_replayed_records_.inc(replayed_records);
    c_replayed_ticks_.inc(replayed_ticks);
    c_recovery_ns_.inc(ns);
    c_recoveries_.inc();
}

void Store::flusher_main() {
    std::unique_lock lock(flush_m_);
    while (!stop_) {
        flush_cv_.wait_for(lock, std::chrono::milliseconds(opts_.batch_flush_ms),
                           [this] { return stop_; });
        if (stop_) break;
        lock.unlock();
        try {
            journal_.sync();
        } catch (const DurableError&) {
            // Batch mode has no ack to fail: count it and keep flushing —
            // the acked-durability window stretches until a sync succeeds.
            c_flush_failures_.inc();
        }
        lock.lock();
    }
    // Final drain so a clean shutdown leaves nothing in the page cache.
    try {
        journal_.sync();
    } catch (const DurableError&) {
        c_flush_failures_.inc();
    }
}

} // namespace sbd::durable
