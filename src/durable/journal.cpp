#include "durable/durable.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/fsio.hpp"
#include "resilience/fault.hpp"

namespace sbd::durable {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes, std::uint64_t h) {
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'B', 'D', 'J'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kSegHeader = 4 + 4 + 8;
constexpr std::size_t kRecHeader = 4 + 4 + 8 + 8;
/// Sanity cap while scanning: a corrupt length field must not provoke a
/// multi-gigabyte allocation. Matches the protocol's payload ceiling.
constexpr std::uint64_t kMaxPayload = 64ull << 20;

void put_u32(std::uint8_t* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/// Checksum covers the whole record — length, kind and seq included — so a
/// corrupt header is as detectable as a corrupt payload.
std::uint64_t record_checksum(std::uint32_t len, std::uint32_t kind, std::uint64_t seq,
                              std::span<const std::uint8_t> payload) {
    std::uint8_t hdr[16];
    put_u32(hdr, len);
    put_u32(hdr + 4, kind);
    put_u64(hdr + 8, seq);
    return fnv1a64(payload, fnv1a64({hdr, sizeof hdr}));
}

std::string segment_name(std::uint64_t first_seq) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "wal-%016llx.sbdj",
                  static_cast<unsigned long long>(first_seq));
    return buf;
}

std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
    if (name.size() != 4 + 16 + 5 || name.rfind("wal-", 0) != 0 ||
        name.substr(4 + 16) != ".sbdj")
        return std::nullopt;
    std::uint64_t v = 0;
    for (std::size_t i = 4; i < 4 + 16; ++i) {
        const char c = name[i];
        int d = 0;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else return std::nullopt;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    return v;
}

bool write_full(int fd, const std::uint8_t* data, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// One segment's scan outcome. `valid_end` is the byte offset just past the
/// last structurally valid record whose seq continued the expected run.
struct SegmentScan {
    bool header_ok = false;
    std::uint64_t header_first_seq = 0;
    std::uint64_t valid_end = 0;
    std::uint64_t file_size = 0;
    std::uint64_t last_seq = 0; ///< 0 when the segment holds no valid record
    bool torn = false;          ///< bytes exist past valid_end
};

/// Scans one segment file. `expect_seq` == 0 means "trust the header";
/// records are collected into `out` (when non-null) if their seq > from_seq.
SegmentScan scan_segment(const fs::path& path, std::uint64_t expect_seq,
                         std::vector<Record>* out, std::uint64_t from_seq) {
    SegmentScan s;
    std::vector<std::uint8_t> raw;
    {
        std::ifstream f(path, std::ios::binary);
        if (!f) return s;
        raw.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
        if (f.bad()) return s;
    }
    s.file_size = raw.size();
    if (raw.size() < kSegHeader || std::memcmp(raw.data(), kMagic, 4) != 0 ||
        get_u32(raw.data() + 4) != kFormatVersion)
        return s;
    s.header_ok = true;
    s.header_first_seq = get_u64(raw.data() + 8);
    std::uint64_t expected = expect_seq != 0 ? expect_seq : s.header_first_seq;
    std::size_t off = kSegHeader;
    s.valid_end = off;
    while (off + kRecHeader <= raw.size()) {
        const std::uint32_t len = get_u32(raw.data() + off);
        const std::uint32_t kind = get_u32(raw.data() + off + 4);
        const std::uint64_t seq = get_u64(raw.data() + off + 8);
        const std::uint64_t check = get_u64(raw.data() + off + 16);
        if (len > kMaxPayload) break;
        if (off + kRecHeader + len > raw.size()) break;
        const std::span<const std::uint8_t> payload{raw.data() + off + kRecHeader, len};
        if (check != record_checksum(len, kind, seq, payload)) break;
        if (seq != expected) break;
        if (out != nullptr && seq > from_seq) {
            Record r;
            r.seq = seq;
            r.kind = static_cast<RecordKind>(kind);
            r.payload.assign(payload.begin(), payload.end());
            out->push_back(std::move(r));
        }
        s.last_seq = seq;
        ++expected;
        off += kRecHeader + len;
        s.valid_end = off;
    }
    s.torn = s.valid_end < raw.size();
    return s;
}

std::vector<std::pair<std::uint64_t, fs::path>> list_segments(const fs::path& dir) {
    std::vector<std::pair<std::uint64_t, fs::path>> v;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(dir, ec)) {
        if (!e.is_regular_file(ec)) continue;
        if (const auto seq = parse_segment_name(e.path().filename().string()))
            v.emplace_back(*seq, e.path());
    }
    std::sort(v.begin(), v.end());
    return v;
}

} // namespace

Journal::Journal(const Options& opts) : opts_(opts) {
    c_records_ = obs::counter_in(opts_.metrics, "sbd_durable_journal_records_total",
                                 "journal records appended");
    c_bytes_ = obs::counter_in(opts_.metrics, "sbd_durable_journal_bytes_total",
                               "journal bytes appended (headers included)");
    c_fsyncs_ = obs::counter_in(opts_.metrics, "sbd_durable_fsyncs_total",
                                "successful journal fsyncs");
    c_fsync_failures_ = obs::counter_in(opts_.metrics, "sbd_durable_fsync_failures_total",
                                        "failed or injected journal fsyncs");
    c_append_failures_ = obs::counter_in(opts_.metrics, "sbd_durable_append_failures_total",
                                         "failed or injected journal appends");
    c_rotations_ = obs::counter_in(opts_.metrics, "sbd_durable_segment_rotations_total",
                                   "journal segment rotations");
    h_fsync_ns_ = obs::histogram_in(opts_.metrics, "sbd_durable_fsync_ns",
                                    obs::exponential_bounds(1000, 4.0, 12),
                                    "journal fsync latency (ns)");

    std::error_code ec;
    fs::create_directories(opts_.journal_dir(), ec);
    if (ec)
        throw DurableError("durable: cannot create journal dir '" +
                           opts_.journal_dir().string() + "': " + ec.message());

    // Repair pass: walk segments in order, stop at the first torn or
    // discontinuous point, truncate there and drop everything beyond it.
    auto segs = list_segments(opts_.journal_dir());
    std::size_t keep = 0;
    bool stop = false;
    for (std::size_t i = 0; i < segs.size() && !stop; ++i) {
        const auto& [name_seq, path] = segs[i];
        const std::uint64_t expect = (i == 0 && next_seq_ == 1) ? 0 : next_seq_;
        const SegmentScan s = scan_segment(path, expect, nullptr, 0);
        const bool continuous =
            s.header_ok && s.header_first_seq == name_seq &&
            (i == 0 || s.header_first_seq == next_seq_);
        if (!continuous) {
            // This segment (and everything after it) is unusable; the valid
            // journal ends with the previous segment.
            stop = true;
            break;
        }
        if (i == 0) next_seq_ = s.header_first_seq;
        if (s.last_seq != 0) next_seq_ = s.last_seq + 1;
        if (s.torn) {
            std::error_code tec;
            fs::resize_file(path, s.valid_end, tec);
            if (tec)
                throw DurableError("durable: cannot truncate torn journal tail '" +
                                   path.string() + "': " + tec.message());
            keep = i + 1;
            stop = true;
            break;
        }
        keep = i + 1;
    }
    for (std::size_t i = keep; i < segs.size(); ++i) {
        std::error_code rec;
        fs::remove(segs[i].second, rec);
    }
    segs.resize(keep);
    for (const auto& [seq, path] : segs) segments_.push_back({path, seq});

    std::lock_guard lock(m_);
    if (segments_.empty()) {
        open_segment_locked(next_seq_);
    } else {
        fd_ = ::open(segments_.back().path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
        if (fd_ < 0)
            throw DurableError("durable: cannot open journal segment '" +
                               segments_.back().path.string() + "'");
        std::error_code sec;
        active_bytes_ = fs::file_size(segments_.back().path, sec);
        if (sec) active_bytes_ = kSegHeader;
    }
}

Journal::~Journal() {
    std::lock_guard lock(m_);
    if (fd_ >= 0) {
        if (dirty_ && opts_.fsync != FsyncMode::Off) fsio::fsync_fd(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

void Journal::open_segment_locked(std::uint64_t first_seq) {
    const fs::path path = opts_.journal_dir() / segment_name(first_seq);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0)
        throw DurableError("durable: cannot create journal segment '" + path.string() +
                           "'");
    std::uint8_t hdr[kSegHeader];
    std::memcpy(hdr, kMagic, 4);
    put_u32(hdr + 4, kFormatVersion);
    put_u64(hdr + 8, first_seq);
    if (!write_full(fd, hdr, sizeof hdr)) {
        ::close(fd);
        throw DurableError("durable: cannot write journal segment header '" +
                           path.string() + "'");
    }
    if (opts_.fsync == FsyncMode::Always) {
        fsio::fsync_fd(fd);
        fsio::fsync_parent_dir(path);
    }
    fd_ = fd;
    active_bytes_ = kSegHeader;
    dirty_ = false;
    segments_.push_back({path, first_seq});
}

void Journal::rotate_locked() {
    if (fd_ >= 0) {
        if (opts_.fsync != FsyncMode::Off) fsio::fsync_fd(fd_);
        ::close(fd_);
        fd_ = -1;
        dirty_ = false;
    }
    c_rotations_.inc();
    open_segment_locked(next_seq_);
}

std::uint64_t Journal::append(RecordKind kind, std::span<const std::uint8_t> payload) {
    std::lock_guard lock(m_);
    if (SBD_FAULT_HIT("durable.append")) {
        c_append_failures_.inc();
        throw DurableError("durable: journal append failed (injected)");
    }
    if (fd_ < 0) {
        c_append_failures_.inc();
        throw DurableError("durable: journal is not writable");
    }
    if (active_bytes_ > kSegHeader &&
        active_bytes_ + kRecHeader + payload.size() > opts_.segment_bytes)
        rotate_locked();

    const std::uint64_t seq = next_seq_;
    std::vector<std::uint8_t> buf(kRecHeader + payload.size());
    const auto len = static_cast<std::uint32_t>(payload.size());
    put_u32(buf.data(), len);
    put_u32(buf.data() + 4, static_cast<std::uint32_t>(kind));
    put_u64(buf.data() + 8, seq);
    put_u64(buf.data() + 16, record_checksum(len, static_cast<std::uint32_t>(kind), seq,
                                             payload));
    std::copy(payload.begin(), payload.end(), buf.begin() + kRecHeader);
    if (!write_full(fd_, buf.data(), buf.size())) {
        // A partial write leaves a torn tail the scanner would stop at —
        // but a *later* successful append would then be unreachable behind
        // it. Roll the file back to the last good record; if even that
        // fails the journal is declared unwritable.
        std::error_code ec;
        fs::resize_file(segments_.back().path, active_bytes_, ec);
        if (ec) {
            ::close(fd_);
            fd_ = -1;
        }
        c_append_failures_.inc();
        throw DurableError("durable: journal write failed");
    }
    active_bytes_ += buf.size();
    next_seq_ = seq + 1;
    dirty_ = true;
    c_records_.inc();
    c_bytes_.inc(buf.size());
    appended_bytes_.fetch_add(buf.size(), std::memory_order_relaxed);
    if (opts_.fsync == FsyncMode::Always) sync_locked();
    return seq;
}

void Journal::sync() {
    std::lock_guard lock(m_);
    sync_locked();
}

void Journal::sync_locked() {
    if (!dirty_ || fd_ < 0) return;
    if (SBD_FAULT_HIT("durable.fsync")) {
        c_fsync_failures_.inc();
        throw DurableError("durable: journal fsync failed (injected)");
    }
    obs::ScopedNsTimer timer(h_fsync_ns_);
    if (!fsio::fsync_fd(fd_)) {
        timer.cancel();
        c_fsync_failures_.inc();
        throw DurableError("durable: journal fsync failed");
    }
    dirty_ = false;
    c_fsyncs_.inc();
}

void Journal::truncate_until(std::uint64_t seq) {
    std::lock_guard lock(m_);
    std::size_t removed = 0;
    // A segment is disposable when the *next* segment starts at or before
    // seq+1 — then every record it holds is <= seq. The active (last)
    // segment always stays.
    while (segments_.size() - removed >= 2 &&
           segments_[removed + 1].first_seq <= seq + 1) {
        std::error_code ec;
        fs::remove(segments_[removed].path, ec);
        if (ec) break;
        ++removed;
    }
    if (removed > 0) {
        segments_.erase(segments_.begin(),
                        segments_.begin() + static_cast<std::ptrdiff_t>(removed));
        if (opts_.fsync != FsyncMode::Off)
            fsio::fsync_file(opts_.journal_dir());
    }
}

std::uint64_t Journal::next_seq() const {
    std::lock_guard lock(m_);
    return next_seq_;
}

ScanResult Journal::scan(const fs::path& journal_dir_or_segment, std::uint64_t from_seq) {
    ScanResult r;
    std::error_code ec;
    if (fs::is_regular_file(journal_dir_or_segment, ec)) {
        const SegmentScan s = scan_segment(journal_dir_or_segment, 0, &r.records, from_seq);
        r.segments = 1;
        r.last_seq = s.last_seq;
        r.torn = s.torn || !s.header_ok;
        r.torn_bytes = s.file_size - (s.header_ok ? s.valid_end : 0);
        return r;
    }
    const auto segs = list_segments(journal_dir_or_segment);
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
        const SegmentScan s = scan_segment(segs[i].second, expect, &r.records, from_seq);
        const bool continuous = s.header_ok && s.header_first_seq == segs[i].first &&
                                (expect == 0 || s.header_first_seq == expect);
        if (!continuous) {
            r.torn = true;
            r.dropped_segments = segs.size() - i;
            break;
        }
        ++r.segments;
        if (s.last_seq != 0) {
            r.last_seq = s.last_seq;
            expect = s.last_seq + 1;
        } else if (expect == 0) {
            expect = s.header_first_seq;
        }
        if (s.torn) {
            r.torn = true;
            r.torn_bytes = s.file_size - s.valid_end;
            r.dropped_segments = segs.size() - i - 1;
            break;
        }
    }
    return r;
}

} // namespace sbd::durable
