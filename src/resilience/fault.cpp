#include "resilience/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace sbd::resilience {

std::atomic<bool> g_fault_armed{false};

namespace {

/// splitmix64: the per-hit decision hash. Stateless, so the decision for
/// hit #i of a point depends only on (seed, point, i) — never on the order
/// threads interleave hits on *other* points.
std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
    return s.substr(b, e - b);
}

[[noreturn]] void bad_spec(const std::string& clause, const char* why) {
    throw std::invalid_argument("fault plan: bad clause '" + clause + "': " + why);
}

Schedule parse_schedule(const std::string& clause, const std::string& value) {
    Schedule sched;
    if (value == "off") return sched; // ScheduleKind::Never
    const auto colon = value.find(':');
    if (colon == std::string::npos) bad_spec(clause, "expected KIND:PARAM or 'off'");
    const std::string kind = value.substr(0, colon);
    const std::string param = value.substr(colon + 1);
    if (param.empty()) bad_spec(clause, "missing parameter");
    if (kind == "nth" || kind == "every") {
        std::uint64_t n = 0;
        for (const char c : param) {
            if (c < '0' || c > '9') bad_spec(clause, "parameter is not a positive integer");
            n = n * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (n == 0) bad_spec(clause, "parameter must be >= 1");
        sched.kind = kind == "nth" ? ScheduleKind::Nth : ScheduleKind::EveryK;
        sched.n = n;
    } else if (kind == "p") {
        double p = 0.0;
        try {
            std::size_t used = 0;
            p = std::stod(param, &used);
            if (used != param.size()) bad_spec(clause, "parameter is not a number");
        } catch (const std::logic_error&) {
            bad_spec(clause, "parameter is not a number");
        }
        if (p < 0.0 || p > 1.0) bad_spec(clause, "probability must be in [0, 1]");
        sched.kind = ScheduleKind::Prob;
        sched.p = p;
    } else {
        bad_spec(clause, "unknown schedule kind (want nth | every | p | off)");
    }
    return sched;
}

} // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const auto sep = spec.find(';', pos);
        const std::string clause =
            trim(spec.substr(pos, sep == std::string::npos ? sep : sep - pos));
        pos = sep == std::string::npos ? spec.size() + 1 : sep + 1;
        if (clause.empty()) continue;
        const auto eq = clause.find('=');
        if (eq == std::string::npos) bad_spec(clause, "expected NAME=VALUE");
        const std::string name = trim(clause.substr(0, eq));
        const std::string value = trim(clause.substr(eq + 1));
        if (name.empty()) bad_spec(clause, "empty point name");
        if (name == "seed") {
            std::uint64_t s = 0;
            if (value.empty()) bad_spec(clause, "empty seed");
            for (const char c : value) {
                if (c < '0' || c > '9') bad_spec(clause, "seed is not an integer");
                s = s * 10 + static_cast<std::uint64_t>(c - '0');
            }
            plan.seed = s;
            continue;
        }
        plan.points.emplace_back(name, parse_schedule(clause, value));
    }
    std::sort(plan.points.begin(), plan.points.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return plan;
}

std::string FaultPlan::to_spec() const {
    std::string out = "seed=" + std::to_string(seed);
    auto sorted = points;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [name, sched] : sorted) {
        out += ";" + name + "=";
        switch (sched.kind) {
        case ScheduleKind::Never: out += "off"; break;
        case ScheduleKind::Nth: out += "nth:" + std::to_string(sched.n); break;
        case ScheduleKind::EveryK: out += "every:" + std::to_string(sched.n); break;
        case ScheduleKind::Prob: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "p:%.6g", sched.p);
            out += buf;
            break;
        }
        }
    }
    return out;
}

FaultRegistry& FaultRegistry::instance() {
    static FaultRegistry reg;
    return reg;
}

void FaultRegistry::arm(FaultPlan plan) {
    std::lock_guard lock(m_);
    seed_ = plan.seed;
    points_.clear();
    index_.clear();
    for (auto& [name, sched] : plan.points) {
        Point& pt = find_or_create(name);
        pt.sched = sched;
        pt.scheduled = true;
    }
    g_fault_armed.store(true, std::memory_order_relaxed);
}

void FaultRegistry::disarm() { g_fault_armed.store(false, std::memory_order_relaxed); }

FaultRegistry::Point& FaultRegistry::find_or_create(const std::string& name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return *it->second;
    points_.emplace_back();
    Point& pt = points_.back();
    pt.name = name;
    index_.emplace(name, &pt);
    return pt;
}

bool FaultRegistry::should_fail(const char* point) {
    std::lock_guard lock(m_);
    Point& pt = find_or_create(point);
    const std::uint64_t hit = ++pt.hits;
    bool fail = false;
    switch (pt.sched.kind) {
    case ScheduleKind::Never: break;
    case ScheduleKind::Nth: fail = hit == pt.sched.n; break;
    case ScheduleKind::EveryK: fail = hit % pt.sched.n == 0; break;
    case ScheduleKind::Prob: {
        const std::uint64_t h = splitmix64(seed_ ^ fnv1a(pt.name) ^ (hit * 0x9e3779b9ULL));
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        fail = u < pt.sched.p;
        break;
    }
    }
    if (fail) ++pt.injected;
    return fail;
}

std::vector<PointStats> FaultRegistry::snapshot() const {
    std::lock_guard lock(m_);
    std::vector<PointStats> out;
    out.reserve(points_.size());
    for (const Point& pt : points_)
        out.push_back(PointStats{pt.name, pt.hits, pt.injected, pt.scheduled});
    std::sort(out.begin(), out.end(),
              [](const PointStats& a, const PointStats& b) { return a.name < b.name; });
    return out;
}

void FaultRegistry::export_metrics(obs::MetricsRegistry& reg) const {
    for (const PointStats& pt : snapshot()) {
        // Counters are idempotent per (name, labels); set-by-delta so a
        // repeated export does not double-count.
        auto hits = reg.counter("sbd_fault_hits_total",
                                "fault-point executions while a plan was armed",
                                {{"point", pt.name}});
        auto injected = reg.counter("sbd_fault_injected_total",
                                    "fault-point executions told to simulate a failure",
                                    {{"point", pt.name}});
        if (pt.hits > hits.value()) hits.inc(pt.hits - hits.value());
        if (pt.injected > injected.value()) injected.inc(pt.injected - injected.value());
    }
}

} // namespace sbd::resilience
