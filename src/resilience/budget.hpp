#ifndef SBD_RESILIENCE_BUDGET_HPP
#define SBD_RESILIENCE_BUDGET_HPP

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sbd::resilience {

/// Coded, recoverable outcomes. The contract: resource exhaustion and
/// injected faults surface as one of these three types, never as a bare
/// logic_error or a crash, so callers (and the CLI exit-code table) can
/// distinguish "input rejected" from "gave up under budget" from "the
/// environment failed".

/// A configured resource budget (SAT conflicts, memory) ran out before the
/// work completed. The result, if any, is degraded — never silently wrong.
class BudgetExhausted : public std::runtime_error {
public:
    explicit BudgetExhausted(const std::string& what) : std::runtime_error(what) {}
};

/// A wall-clock deadline expired at a cooperative cancellation point.
class DeadlineExceeded : public std::runtime_error {
public:
    explicit DeadlineExceeded(const std::string& what) : std::runtime_error(what) {}
};

/// An armed fault plan told this site to fail and no degradation absorbed
/// it. Only reachable in testing mode (a plan armed via --fault-plan).
class FaultInjected : public std::runtime_error {
public:
    explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

/// Wall-clock + memory budgets threaded through PipelineOptions and
/// EngineConfig. Zero means unlimited; a default Budgets imposes nothing.
struct Budgets {
    std::uint64_t deadline_ms = 0;   ///< wall-clock budget for the whole run
    std::uint64_t memory_bytes = 0;  ///< cache memory budget (ProfileCache)

    bool any() const { return deadline_ms != 0 || memory_bytes != 0; }
};

/// A cooperative wall-clock deadline. Disarmed by default (every check is a
/// single bool test). Checks accept an optional fault-point name so tests
/// can force a deterministic "expired" verdict without real waiting.
class Deadline {
public:
    Deadline() = default;

    /// Armed deadline `ms` from now (steady clock). ms == 0 stays disarmed.
    static Deadline after_ms(std::uint64_t ms);

    bool armed() const { return armed_; }

    /// True when the deadline has passed (or `fault_point`, if given, is
    /// told to inject). Never true when disarmed and no plan forces it.
    bool due(const char* fault_point = nullptr) const;

    /// Throws DeadlineExceeded naming `what` when due().
    void check(const char* what, const char* fault_point = nullptr) const;

private:
    bool armed_ = false;
    std::chrono::steady_clock::time_point at_{};
};

/// Bounded retry with exponential backoff for transient I/O. Callers loop
/// `attempts` times, sleeping `backoff_ns(attempt)` between tries and
/// accumulating the returned nanoseconds into their metrics.
struct RetryPolicy {
    int attempts = 3;                         ///< total tries (>= 1)
    std::uint64_t initial_backoff_ns = 100'000; ///< sleep after the first failure
    double factor = 2.0;                      ///< exponential growth per retry

    /// Backoff before retry number `attempt` (1-based count of failures so
    /// far): initial * factor^(attempt-1).
    std::uint64_t backoff_ns(int attempt) const;
};

/// Sleeps for `ns` and returns the requested duration (what metrics count;
/// the OS may round up).
std::uint64_t backoff_sleep(std::uint64_t ns);

} // namespace sbd::resilience

#endif
