#ifndef SBD_RESILIENCE_FAULT_HPP
#define SBD_RESILIENCE_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sbd::obs {
class MetricsRegistry;
}

namespace sbd::resilience {

/// Deterministic fault injection in the KEDR mold: code under test registers
/// named *fault points* (SBD_FAULT_HIT below); a seeded *fault plan* decides,
/// per point and per hit, whether the site must simulate a failure. When no
/// plan is armed the check is a single relaxed atomic load — the same
/// null-handle trick the obs counters use — so shipping the points costs
/// nothing in production. When a plan is armed every decision is a pure
/// function of (seed, point name, hit index), so a failing schedule replays
/// exactly from its text spec.

/// When a point injects relative to its own hit counter (1-based).
enum class ScheduleKind {
    Never, ///< count hits, never inject (default for unplanned points)
    Nth,   ///< inject exactly on hit #n
    EveryK,///< inject on every k-th hit (k, 2k, 3k, ...)
    Prob   ///< inject with probability p per hit (seeded, stateless)
};

struct Schedule {
    ScheduleKind kind = ScheduleKind::Never;
    std::uint64_t n = 0; ///< Nth / EveryK parameter
    double p = 0.0;      ///< Prob parameter, [0, 1]
};

/// A complete injection plan: a seed plus one schedule per point name.
/// Serializable to/from the text spec
///   seed=S;point=nth:N;point=every:K;point=p:F;point=off
/// (order-insensitive; to_spec() emits points sorted so specs round-trip).
struct FaultPlan {
    std::uint64_t seed = 0;
    std::vector<std::pair<std::string, Schedule>> points;

    /// Parses a spec; throws std::invalid_argument naming the bad clause.
    static FaultPlan parse(const std::string& spec);
    std::string to_spec() const;
};

/// Per-point observation: how often the site executed while a plan was
/// armed, and how often it was told to fail.
struct PointStats {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
    bool scheduled = false; ///< the armed plan named this point
};

extern std::atomic<bool> g_fault_armed;

/// The unarmed fast path: one relaxed load, no function call beyond this
/// inline, no allocation.
inline bool fault_armed() { return g_fault_armed.load(std::memory_order_relaxed); }

/// Process-global registry of fault points. Points are created lazily on
/// first hit (so the set of points is exactly the set of sites executed) and
/// reset on every arm(). Thread-safe; should_fail() takes the mutex, which
/// is fine because it only runs in testing mode.
class FaultRegistry {
public:
    static FaultRegistry& instance();

    /// Installs `plan` and resets all counters. Armed mode stays on until
    /// disarm(). Deterministic: re-arming the same plan replays the same
    /// injection sequence for the same sequence of hits.
    void arm(FaultPlan plan);
    void disarm(); ///< stops injecting; keeps counters for inspection

    /// Decides hit #N of `point` under the armed plan. Only meaningful when
    /// armed (SBD_FAULT_HIT short-circuits otherwise).
    bool should_fail(const char* point);

    /// Counters of every point seen since the last arm(), sorted by name.
    std::vector<PointStats> snapshot() const;
    /// Publishes sbd_fault_hits_total / sbd_fault_injected_total{point=...}
    /// counters into `reg` from the current snapshot.
    void export_metrics(obs::MetricsRegistry& reg) const;

private:
    FaultRegistry() = default;

    struct Point {
        std::string name;
        Schedule sched;
        std::uint64_t hits = 0;
        std::uint64_t injected = 0;
        bool scheduled = false;
    };

    Point& find_or_create(const std::string& name);

    mutable std::mutex m_;
    std::uint64_t seed_ = 0;
    std::deque<Point> points_; ///< deque: stable addresses for index_
    std::unordered_map<std::string, Point*> index_;
};

/// RAII arm/disarm for tests and tools.
class ScopedFaultPlan {
public:
    explicit ScopedFaultPlan(FaultPlan plan) { FaultRegistry::instance().arm(std::move(plan)); }
    ~ScopedFaultPlan() { FaultRegistry::instance().disarm(); }
    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// The documented fault points wired through the toolchain (DESIGN.md
/// "Resilience" has the catalog with the degradation each one exercises).
/// Sites may register further points; these are the stable, tested set.
inline constexpr const char* kFaultPointCatalog[] = {
    "cache.dir_create",   // ProfileCache ctor: cache directory creation fails
    "cache.disk_read",    // ProfileCache::disk_load: transient read failure
    "cache.disk_corrupt", // ProfileCache::disk_load: record bytes corrupted
    "cache.disk_write",   // ProfileCache::disk_store: transient write failure
    "cache.disk_rename",  // ProfileCache::disk_store: atomic rename fails
    "sat.budget",         // cluster_disjoint_sat: conflict budget exhausted
    "pipeline.task",      // Pipeline worker: task fails at its boundary
    "pipeline.deadline",  // Pipeline worker: deadline check reports expired
    "engine.tick",        // Engine::tick: tick fails before stepping
    "engine.deadline",    // Engine::tick: deadline check reports expired
    "serve.accept",       // Server accept loop: accepting a connection fails
    "serve.dispatch",     // Server dispatch: a request fails before touching
                          // any shard (client sees FAULT_INJECTED)
    "serve.tick",         // Server TICK: instant refused before any shard
                          // advances (atomic reject, never a torn instant)
    "serve.deadline",     // Server TICK: deadline check reports expired
                          // before an instant (coded DEADLINE_EXCEEDED)
    "serve.upgrade",      // Server UPGRADE_MODEL: request rejected before
                          // any compile work (state untouched, coded
                          // FAULT_INJECTED)
    "durable.append",     // Journal::append: write fails before any state
                          // change (mutation rejected coded DURABLE_FAILED)
    "durable.fsync",      // Journal::sync: fsync fails (always-mode acks
                          // reject coded; batch-mode counts and retries)
    "durable.checkpoint", // CheckpointStore::write: durable publish fails
                          // (kept serving; journal retained; retried next
                          // cadence)
    "durable.recover",    // CheckpointStore::load_latest: newest checkpoint
                          // unreadable/corrupt (falls back to the previous
                          // one + longer replay, never fatal)
};

} // namespace sbd::resilience

/// True iff this execution of the named point must simulate a failure.
/// Unarmed cost: one relaxed atomic load and a branch.
#define SBD_FAULT_HIT(point)                                                                   \
    (::sbd::resilience::fault_armed() &&                                                       \
     ::sbd::resilience::FaultRegistry::instance().should_fail(point))

#endif
