#include "resilience/budget.hpp"

#include <thread>

#include "resilience/fault.hpp"

namespace sbd::resilience {

Deadline Deadline::after_ms(std::uint64_t ms) {
    Deadline d;
    if (ms == 0) return d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
}

bool Deadline::due(const char* fault_point) const {
    if (fault_point != nullptr && SBD_FAULT_HIT(fault_point)) return true;
    return armed_ && std::chrono::steady_clock::now() >= at_;
}

void Deadline::check(const char* what, const char* fault_point) const {
    if (due(fault_point))
        throw DeadlineExceeded(std::string(what) + ": deadline exceeded");
}

std::uint64_t RetryPolicy::backoff_ns(int attempt) const {
    double ns = static_cast<double>(initial_backoff_ns);
    for (int i = 1; i < attempt; ++i) ns *= factor;
    if (ns > 1e12) ns = 1e12; // cap at 1s: a retry loop must stay bounded
    return static_cast<std::uint64_t>(ns);
}

std::uint64_t backoff_sleep(std::uint64_t ns) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return ns;
}

} // namespace sbd::resilience
