#include "upgrade/upgrade.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "analysis/absint.hpp"
#include "core/sdg.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "sbd/text_format.hpp"

namespace sbd::upgrade {

namespace {

using codegen::Fingerprint;
using codegen::FingerprintHash;

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string join_path(const std::string& prefix, const std::string& name) {
    return prefix.empty() ? name : prefix + "." + name;
}

/// Persistent state footprint (in doubles) of one instance of `b`, in the
/// documented cross-backend layout: atomic block state; for macros the
/// signal slots, then the guard counters, then sub-instances depth-first in
/// sub-index order. Memoized by block identity so shared types are walked
/// once and deep diagrams stay O(distinct blocks).
std::size_t state_size_of(const codegen::CompiledSystem& sys, const Block& b,
                          std::unordered_map<const Block*, std::size_t>& memo) {
    const auto it = memo.find(&b);
    if (it != memo.end()) return it->second;
    std::size_t n = 0;
    if (b.is_atomic()) {
        n = static_cast<const AtomicBlock&>(b).initial_state().size();
    } else if (!b.is_opaque()) {
        const auto& m = static_cast<const MacroBlock&>(b);
        const codegen::CompiledBlock& cb = sys.at(b);
        if (cb.code) n = cb.code->num_slots + cb.code->counter_mods.size();
        for (std::size_t i = 0; i < m.num_subs(); ++i)
            n += state_size_of(sys, *m.sub(i).type, memo);
    }
    memo.emplace(&b, n);
    return n;
}

/// Collects the distinct macro-unit fingerprints reachable from `b`.
void collect_macro_units(const Block& b, codegen::BlockFingerprinter& fp,
                         std::unordered_set<Fingerprint, FingerprintHash>& units,
                         std::unordered_set<const Block*>& seen) {
    if (b.is_atomic() || b.is_opaque() || !seen.insert(&b).second) return;
    const auto& m = static_cast<const MacroBlock&>(b);
    units.insert(fp.of(b));
    for (std::size_t i = 0; i < m.num_subs(); ++i)
        collect_macro_units(*m.sub(i).type, fp, units, seen);
}

struct DiffWalker {
    codegen::BlockFingerprinter& fp;
    std::vector<DiffEntry>& entries;

    void mark(const Block& b, const std::string& path, SubtreeChange change) {
        entries.push_back({path, b.type_name(), change});
    }

    void walk(const Block& oldb, const Block& newb, const std::string& path) {
        if (fp.of(oldb) == fp.of(newb)) {
            mark(newb, path, SubtreeChange::Unchanged);
            return; // the whole subtree is reused; stop at the frontier
        }
        mark(newb, path, SubtreeChange::Changed);
        if (oldb.is_atomic() || newb.is_atomic() || oldb.is_opaque() || newb.is_opaque())
            return; // a leaf-level change (or a kind change): nothing below to match
        const auto& om = static_cast<const MacroBlock&>(oldb);
        const auto& nm = static_cast<const MacroBlock&>(newb);
        std::unordered_map<std::string, std::size_t> old_subs;
        for (std::size_t i = 0; i < om.num_subs(); ++i) old_subs.emplace(om.sub(i).name, i);
        for (std::size_t i = 0; i < nm.num_subs(); ++i) {
            const MacroBlock::SubBlock& ns = nm.sub(i);
            const std::string sub_path = join_path(path, ns.name);
            const auto oit = old_subs.find(ns.name);
            if (oit == old_subs.end()) {
                mark(*ns.type, sub_path, SubtreeChange::Added);
            } else {
                walk(*om.sub(oit->second).type, *ns.type, sub_path);
                old_subs.erase(oit);
            }
        }
        // Removed subs, in the old model's sub order for determinism.
        std::vector<std::size_t> removed;
        removed.reserve(old_subs.size());
        for (const auto& [name, idx] : old_subs) removed.push_back(idx);
        std::sort(removed.begin(), removed.end());
        for (const std::size_t idx : removed)
            mark(*om.sub(idx).type, join_path(path, om.sub(idx).name), SubtreeChange::Removed);
    }
};

/// Builds the port map for one direction: new index -> old index by name.
std::vector<std::int32_t> port_map(const Block& oldb, const Block& newb, bool inputs) {
    const std::size_t n_new = inputs ? newb.num_inputs() : newb.num_outputs();
    const std::size_t n_old = inputs ? oldb.num_inputs() : oldb.num_outputs();
    std::unordered_map<std::string, std::int32_t> by_name;
    for (std::size_t i = 0; i < n_old; ++i)
        by_name.emplace(inputs ? oldb.input_name(i) : oldb.output_name(i),
                        static_cast<std::int32_t>(i));
    std::vector<std::int32_t> map(n_new, -1);
    for (std::size_t i = 0; i < n_new; ++i) {
        const auto it = by_name.find(inputs ? newb.input_name(i) : newb.output_name(i));
        if (it != by_name.end()) map[i] = it->second;
    }
    return map;
}

/// True when the two roots expose the same port interface: the same input
/// and output names in the same order (and therefore the same arities).
bool same_interface(const Block& a, const Block& b) {
    if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) return false;
    for (std::size_t i = 0; i < a.num_inputs(); ++i)
        if (a.input_name(i) != b.input_name(i)) return false;
    for (std::size_t i = 0; i < a.num_outputs(); ++i)
        if (a.output_name(i) != b.output_name(i)) return false;
    return true;
}

} // namespace

/// Recursive lockstep walk of the two instance trees, emitting migration
/// rules and offset bookkeeping into the plan (friend of MigrationPlan).
struct PlanBuilder {
    const codegen::CompiledSystem& old_sys;
    const codegen::CompiledSystem& new_sys;
    codegen::BlockFingerprinter& fp;
    std::unordered_map<const Block*, std::size_t>& old_sizes;
    std::unordered_map<const Block*, std::size_t>& new_sizes;
    MigrationPlan& plan;

    void rule(RuleKind kind, const std::string& path, std::size_t old_off, std::size_t new_off,
              std::size_t count) {
        if (count != 0) plan.rules_.push_back({kind, path, old_off, new_off, count});
    }

    void init_subtree(const Block& b, const std::string& path, std::size_t new_off) {
        const std::size_t n = state_size_of(new_sys, b, new_sizes);
        rule(RuleKind::InitSubtree, path, 0, new_off, n);
        plan.inited_ += n;
    }

    void drop_subtree(const Block& b, const std::string& path, std::size_t old_off) {
        const std::size_t n = state_size_of(old_sys, b, old_sizes);
        rule(RuleKind::DropSubtree, path, old_off, 0, n);
        plan.dropped_ += n;
    }

    void walk(const Block& oldb, const Block& newb, const std::string& path,
              std::size_t old_off, std::size_t new_off) {
        const std::size_t old_n = state_size_of(old_sys, oldb, old_sizes);
        const std::size_t new_n = state_size_of(new_sys, newb, new_sizes);
        if (fp.of(oldb) == fp.of(newb)) {
            // Bit-identical artifacts, hence bit-identical layouts: the
            // whole contiguous segment carries over verbatim.
            rule(RuleKind::CopySubtree, path, old_off, new_off, new_n);
            plan.copied_ += new_n;
            return;
        }
        if (oldb.is_atomic() && newb.is_atomic()) {
            if (old_n == new_n) {
                rule(RuleKind::CarryAtomic, path, old_off, new_off, new_n);
                plan.copied_ += new_n;
            } else {
                rule(RuleKind::InitSubtree, path, old_off, new_off, new_n);
                plan.inited_ += new_n;
                plan.dropped_ += old_n;
            }
            return;
        }
        if (oldb.is_atomic() || newb.is_atomic() || oldb.is_opaque() || newb.is_opaque()) {
            // Kind changed under the same path: nothing meaningful carries.
            rule(RuleKind::InitSubtree, path, old_off, new_off, new_n);
            plan.inited_ += new_n;
            plan.dropped_ += old_n;
            return;
        }
        const auto& om = static_cast<const MacroBlock&>(oldb);
        const auto& nm = static_cast<const MacroBlock&>(newb);
        const codegen::CompiledBlock& ocb = old_sys.at(oldb);
        const codegen::CompiledBlock& ncb = new_sys.at(newb);
        const std::size_t old_locals =
            ocb.code ? ocb.code->num_slots + ocb.code->counter_mods.size() : 0;
        const std::size_t new_locals =
            ncb.code ? ncb.code->num_slots + ncb.code->counter_mods.size() : 0;
        // The generated code changed, so slot/counter meanings may have
        // moved: the macro's own locals restart from init (zeros).
        rule(RuleKind::ResetLocal, path, old_off, new_off, new_locals);
        plan.inited_ += new_locals;
        plan.dropped_ += old_locals;
        // Sub-instance offsets: depth-first in sub-index order, after the
        // locals — the documented save_state layout on both sides.
        std::unordered_map<std::string, std::size_t> old_subs;
        std::vector<std::size_t> old_sub_off(om.num_subs(), 0);
        {
            std::size_t off = old_off + old_locals;
            for (std::size_t i = 0; i < om.num_subs(); ++i) {
                old_subs.emplace(om.sub(i).name, i);
                old_sub_off[i] = off;
                off += state_size_of(old_sys, *om.sub(i).type, old_sizes);
            }
        }
        std::size_t new_sub_off = new_off + new_locals;
        for (std::size_t i = 0; i < nm.num_subs(); ++i) {
            const MacroBlock::SubBlock& ns = nm.sub(i);
            const std::string sub_path = join_path(path, ns.name);
            const auto oit = old_subs.find(ns.name);
            if (oit == old_subs.end()) {
                init_subtree(*ns.type, sub_path, new_sub_off);
            } else {
                walk(*om.sub(oit->second).type, *ns.type, sub_path, old_sub_off[oit->second],
                     new_sub_off);
                old_subs.erase(oit);
            }
            new_sub_off += state_size_of(new_sys, *ns.type, new_sizes);
        }
        std::vector<std::size_t> removed;
        removed.reserve(old_subs.size());
        for (const auto& [name, idx] : old_subs) removed.push_back(idx);
        std::sort(removed.begin(), removed.end());
        for (const std::size_t idx : removed)
            drop_subtree(*om.sub(idx).type, join_path(path, om.sub(idx).name), old_sub_off[idx]);
    }
};

const char* to_string(SubtreeChange c) {
    switch (c) {
    case SubtreeChange::Unchanged: return "unchanged";
    case SubtreeChange::Changed: return "changed";
    case SubtreeChange::Added: return "added";
    case SubtreeChange::Removed: return "removed";
    }
    return "?";
}

const char* to_string(RuleKind k) {
    switch (k) {
    case RuleKind::CopySubtree: return "copy-subtree";
    case RuleKind::CarryAtomic: return "carry-atomic";
    case RuleKind::ResetLocal: return "reset-local";
    case RuleKind::InitSubtree: return "init-subtree";
    case RuleKind::DropSubtree: return "drop-subtree";
    }
    return "?";
}

const char* to_string(UpgradeError::Code c) {
    switch (c) {
    case UpgradeError::Code::Parse: return "parse";
    case UpgradeError::Code::Compile: return "compile";
    case UpgradeError::Code::Analysis: return "analysis";
    case UpgradeError::Code::Backend: return "backend";
    case UpgradeError::Code::Incompatible: return "incompatible";
    case UpgradeError::Code::Conflict: return "conflict";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// ModelDiff

std::string ModelDiff::summary() const {
    std::size_t changed = 0, added = 0, removed = 0;
    for (const DiffEntry& e : entries) {
        changed += e.change == SubtreeChange::Changed;
        added += e.change == SubtreeChange::Added;
        removed += e.change == SubtreeChange::Removed;
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%zu/%zu units reusable (%.0f%%); %zu changed, %zu added, %zu removed",
                  units_reused, units_total, reuse_ratio() * 100.0, changed, added, removed);
    return buf;
}

std::string ModelDiff::to_json() const {
    std::string j = "{\n  \"units_total\": " + std::to_string(units_total) +
                    ",\n  \"units_reused\": " + std::to_string(units_reused) +
                    ",\n  \"reuse_ratio\": " + std::to_string(reuse_ratio()) +
                    ",\n  \"entries\": [";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const DiffEntry& e = entries[i];
        j += i == 0 ? "\n" : ",\n";
        j += "    {\"path\": \"" + json_escape(e.path) + "\", \"type\": \"" +
             json_escape(e.type_name) + "\", \"change\": \"" + to_string(e.change) + "\"}";
    }
    j += "\n  ]\n}\n";
    return j;
}

ModelDiff diff_models(const BlockPtr& old_root, const BlockPtr& new_root) {
    ModelDiff d;
    codegen::BlockFingerprinter fp;
    std::unordered_set<Fingerprint, FingerprintHash> old_units, new_units;
    std::unordered_set<const Block*> seen_old, seen_new;
    collect_macro_units(*old_root, fp, old_units, seen_old);
    collect_macro_units(*new_root, fp, new_units, seen_new);
    d.units_total = new_units.size();
    for (const Fingerprint& u : new_units) d.units_reused += old_units.contains(u);
    DiffWalker{fp, d.entries}.walk(*old_root, *new_root, "");
    return d;
}

// ---------------------------------------------------------------------------
// MigrationPlan

void MigrationPlan::migrate(std::span<const double> old_state, std::span<const double> old_in,
                            std::span<const double> old_out, std::span<double> new_state,
                            std::span<double> new_in, std::span<double> new_out) const {
    if (old_state.size() != old_state_size_ || new_state.size() != new_state_size_)
        throw std::invalid_argument("MigrationPlan: state layout mismatch (old " +
                                    std::to_string(old_state.size()) + "/" +
                                    std::to_string(old_state_size_) + ", new " +
                                    std::to_string(new_state.size()) + "/" +
                                    std::to_string(new_state_size_) + ")");
    if (new_in.size() != input_map_.size() || new_out.size() != output_map_.size())
        throw std::invalid_argument("MigrationPlan: port layout mismatch");
    if (drain_) return; // every instance restarts from init values
    for (const MigrationRule& r : rules_) {
        if (r.kind != RuleKind::CopySubtree && r.kind != RuleKind::CarryAtomic) continue;
        std::copy_n(old_state.data() + r.old_offset, r.count, new_state.data() + r.new_offset);
    }
    for (std::size_t i = 0; i < input_map_.size(); ++i)
        if (input_map_[i] >= 0) new_in[i] = old_in[static_cast<std::size_t>(input_map_[i])];
    for (std::size_t i = 0; i < output_map_.size(); ++i)
        if (output_map_[i] >= 0) new_out[i] = old_out[static_cast<std::size_t>(output_map_[i])];
}

std::string MigrationPlan::summary() const {
    if (drain_) return "drain-and-replace: " + drain_reason_;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "carry %zu of %zu doubles into %zu; init %zu, drop %zu (%zu rules)", copied_,
                  old_state_size_, new_state_size_, inited_, dropped_, rules_.size());
    return buf;
}

std::string MigrationPlan::to_json() const {
    std::string j = std::string("{\n  \"drain_and_replace\": ") + (drain_ ? "true" : "false");
    if (drain_) j += ",\n  \"drain_reason\": \"" + json_escape(drain_reason_) + "\"";
    j += ",\n  \"old_state_size\": " + std::to_string(old_state_size_) +
         ",\n  \"new_state_size\": " + std::to_string(new_state_size_) +
         ",\n  \"copied\": " + std::to_string(copied_) +
         ",\n  \"initialized\": " + std::to_string(inited_) +
         ",\n  \"dropped\": " + std::to_string(dropped_) + ",\n  \"rules\": [";
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const MigrationRule& r = rules_[i];
        j += i == 0 ? "\n" : ",\n";
        j += "    {\"kind\": \"" + std::string(to_string(r.kind)) + "\", \"path\": \"" +
             json_escape(r.path) + "\", \"old_offset\": " + std::to_string(r.old_offset) +
             ", \"new_offset\": " + std::to_string(r.new_offset) +
             ", \"count\": " + std::to_string(r.count) + "}";
    }
    j += "\n  ]\n}\n";
    return j;
}

MigrationPlan plan_migration(const codegen::CompiledSystem& old_sys, const BlockPtr& old_root,
                             const codegen::CompiledSystem& new_sys, const BlockPtr& new_root) {
    MigrationPlan plan;
    std::unordered_map<const Block*, std::size_t> old_sizes, new_sizes;
    plan.old_state_size_ = state_size_of(old_sys, *old_root, old_sizes);
    plan.new_state_size_ = state_size_of(new_sys, *new_root, new_sizes);
    plan.input_map_ = port_map(*old_root, *new_root, /*inputs=*/true);
    plan.output_map_ = port_map(*old_root, *new_root, /*inputs=*/false);
    if (!same_interface(*old_root, *new_root)) {
        // The contract with clients changed, so state continuity is
        // meaningless: appliers must opt into a full drain-and-replace.
        plan.drain_ = true;
        plan.drain_reason_ = "root port interface changed";
        plan.rules_.push_back(
            {RuleKind::DropSubtree, "", 0, 0, plan.old_state_size_});
        plan.rules_.push_back(
            {RuleKind::InitSubtree, "", 0, 0, plan.new_state_size_});
        plan.dropped_ = plan.old_state_size_;
        plan.inited_ = plan.new_state_size_;
        return plan;
    }
    codegen::BlockFingerprinter fp;
    PlanBuilder{old_sys, new_sys, fp, old_sizes, new_sizes, plan}.walk(*old_root, *new_root, "",
                                                                      0, 0);
    return plan;
}

// ---------------------------------------------------------------------------
// compile_version

ModelVersion compile_version(const std::string& source_text, const CompileContext& ctx,
                             std::uint64_t version) {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    ModelVersion v;
    v.version = version;

    text::ParsedFile file;
    try {
        file = text::parse_sbd_string(source_text);
    } catch (const std::exception& e) {
        throw UpgradeError(UpgradeError::Code::Parse, e.what());
    }
    if (file.root == nullptr)
        throw UpgradeError(UpgradeError::Code::Parse, "model source defines no block");
    v.root = file.root;

    codegen::PipelineOptions popts;
    popts.method = ctx.method;
    popts.cluster = ctx.cluster;
    popts.threads = std::max<std::size_t>(1, ctx.jobs);
    // metrics stays null: the pipeline creates a private registry, so the
    // reuse counters below measure exactly this compile (registry counters
    // are name-keyed and cumulative — a shared registry would blend runs).
    try {
        codegen::Pipeline pipeline = ctx.cache != nullptr
                                         ? codegen::Pipeline(popts, ctx.cache)
                                         : codegen::Pipeline(popts);
        v.sys = std::make_shared<const codegen::CompiledSystem>(pipeline.compile(v.root));
        const codegen::PipelineStats st = pipeline.stats();
        v.macro_compiles = st.macro_compiles;
        v.macro_reuses = st.macro_reuses;
    } catch (const resilience::DeadlineExceeded&) {
        throw; // keeps its own coded status at every call site
    } catch (const resilience::FaultInjected&) {
        throw; // chaos schedules must observe the injection, not a wrap
    } catch (const resilience::BudgetExhausted& e) {
        throw UpgradeError(UpgradeError::Code::Compile, e.what());
    } catch (const std::exception& e) {
        throw UpgradeError(UpgradeError::Code::Compile, e.what());
    }

    // The same deep-analysis load gate sbd-serve applies at boot: refuse a
    // version whose outputs are provably broken on every instant.
    for (const analysis::Diagnostic& d : analysis::deep_diagnostics(*v.sys, v.root)) {
        if (d.code != "SBD022" && d.code != "SBD024") continue;
        throw UpgradeError(UpgradeError::Code::Analysis, "[" + d.code + "] " + d.message);
    }

    try {
        v.exec = codegen::make_executable(*v.sys, v.root, ctx.backend);
    } catch (const codegen::BackendError& e) {
        throw UpgradeError(UpgradeError::Code::Backend, e.what());
    }

    v.compile_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
    return v;
}

} // namespace sbd::upgrade
