// Live model upgrades: structural diff, state migration planning and
// incremental recompilation of a new model version against an old one.
//
// The paper's modular profiles make this possible: a macro block compiles
// from its sub-blocks' profiles only, keyed by structural fingerprint, so
// two versions of a diagram share every compiled artifact whose subtree
// fingerprint is unchanged. diff_models() reports exactly that sharing;
// compile_version() realizes it by compiling the new version through a
// Pipeline that shares the old version's ProfileCache (only the changed
// frontier recompiles); plan_migration() maps the persistent instance state
// old -> new by stable block path using the documented cross-backend state
// layout (atomic state, then signal slots, then guard counters widened to
// double, then sub-instances depth-first), producing a runtime::StateMigrator
// the InstancePool rebind machinery applies at an instant boundary.
//
// Migration rules, by node, walking both instance trees in lockstep:
//   - equal subtree fingerprint  -> the whole contiguous state segment is
//     copied verbatim (equal fingerprints compile to bit-identical
//     artifacts under equal (method, options), hence equal layouts);
//   - both atomic, same state arity -> state carried (a retuned parameter
//     keeps its memory); different arity -> reinitialized;
//   - both macro -> local slots/counters reset to init (the generated code
//     changed, so slot meanings may have moved), sub-instances matched by
//     instance name and recursed; unmatched old subs are dropped, unmatched
//     new subs start from init;
//   - anything else (atomic vs macro) -> reinitialized.
// When the root port interface itself changes (names, order or arity of
// inputs/outputs), state continuity is meaningless to clients and the plan
// is marked drain-and-replace: appliers must opt in, and every instance
// restarts from init values.
#ifndef SBD_UPGRADE_UPGRADE_HPP
#define SBD_UPGRADE_UPGRADE_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "core/pipeline.hpp"
#include "runtime/pool.hpp"

namespace sbd::upgrade {

// ---------------------------------------------------------------------------
// Structural diff

enum class SubtreeChange { Unchanged, Changed, Added, Removed };

const char* to_string(SubtreeChange c);

/// One entry of a model diff, addressed by stable instance path ("" is the
/// root, "ctrl.pid" is sub `pid` of sub `ctrl`). The walk stops at the
/// change frontier: an Unchanged entry covers its entire subtree (which is
/// reused wholesale), and Added/Removed entries are subtree roots.
struct DiffEntry {
    std::string path;
    std::string type_name;
    SubtreeChange change = SubtreeChange::Unchanged;
};

/// Structural diff of two model versions. `units_*` count *distinct macro
/// compilation units* of the new model (the pipeline compiles each distinct
/// structure once): a reused unit's fingerprint already occurs in the old
/// model, so compiling the new version against the old version's profile
/// cache serves it without work.
struct ModelDiff {
    std::vector<DiffEntry> entries;
    std::size_t units_total = 0;  ///< distinct macro units in the new model
    std::size_t units_reused = 0; ///< of those, fingerprint-identical to old

    double reuse_ratio() const {
        return units_total == 0 ? 0.0
                                : static_cast<double>(units_reused) /
                                      static_cast<double>(units_total);
    }
    std::string summary() const;
    std::string to_json() const;
};

ModelDiff diff_models(const BlockPtr& old_root, const BlockPtr& new_root);

// ---------------------------------------------------------------------------
// State migration plan

enum class RuleKind {
    CopySubtree, ///< contiguous verbatim copy (fingerprint-equal subtree)
    CarryAtomic, ///< atomic changed but state arity matches: state carried
    ResetLocal,  ///< changed macro: its own slots/counters restart from init
    InitSubtree, ///< added or irreconcilable: new subtree starts from init
    DropSubtree, ///< removed: old subtree's state is discarded
};

const char* to_string(RuleKind k);

struct MigrationRule {
    RuleKind kind = RuleKind::CopySubtree;
    std::string path;
    std::size_t old_offset = 0; ///< into the old flat state blob (copy/carry/drop)
    std::size_t new_offset = 0; ///< into the new flat state blob (copy/carry/init)
    std::size_t count = 0;      ///< doubles governed by this rule
};

/// A complete old->new state mapping for one (old, new) compiled version
/// pair. Implements runtime::StateMigrator, so it plugs directly into
/// InstancePool::prepare_rebind. Immutable once planned; safe to apply to
/// any number of instances concurrently.
class MigrationPlan final : public runtime::StateMigrator {
public:
    bool drain_and_replace() const { return drain_; }
    const std::string& drain_reason() const { return drain_reason_; }

    std::size_t old_state_size() const { return old_state_size_; }
    std::size_t new_state_size() const { return new_state_size_; }
    std::size_t copied() const { return copied_; }      ///< doubles carried over
    std::size_t initialized() const { return inited_; } ///< doubles from init values
    std::size_t dropped() const { return dropped_; }    ///< old doubles discarded

    const std::vector<MigrationRule>& rules() const { return rules_; }
    /// New port index -> old port index, -1 where no old port of that name
    /// exists (the new port starts from 0.0). Identity for unchanged roots.
    const std::vector<std::int32_t>& input_map() const { return input_map_; }
    const std::vector<std::int32_t>& output_map() const { return output_map_; }

    /// StateMigrator: applies the plan to one instance snapshot. The new
    /// spans arrive pre-filled with init values / zeros (the pool contract),
    /// so only the copy rules and port maps execute. Drain-and-replace plans
    /// intentionally migrate nothing. Throws std::invalid_argument when the
    /// span sizes do not match the planned layouts — the irreconcilable-
    /// divergence safety net that turns a torn swap into a coded rejection.
    void migrate(std::span<const double> old_state, std::span<const double> old_in,
                 std::span<const double> old_out, std::span<double> new_state,
                 std::span<double> new_in, std::span<double> new_out) const override;

    std::string summary() const;
    std::string to_json() const;

private:
    friend MigrationPlan plan_migration(const codegen::CompiledSystem&, const BlockPtr&,
                                        const codegen::CompiledSystem&, const BlockPtr&);
    friend struct PlanBuilder; ///< the recursive walker behind plan_migration

    bool drain_ = false;
    std::string drain_reason_;
    std::size_t old_state_size_ = 0;
    std::size_t new_state_size_ = 0;
    std::size_t copied_ = 0;
    std::size_t inited_ = 0;
    std::size_t dropped_ = 0;
    std::vector<MigrationRule> rules_;
    std::vector<std::int32_t> input_map_;
    std::vector<std::int32_t> output_map_;
};

/// Plans the migration between two compiled versions. Both systems must be
/// compiled with the same (method, options) — the serve layer guarantees
/// this by recompiling new versions with its boot-time options — because
/// the fingerprint-equal => layout-equal step relies on it.
MigrationPlan plan_migration(const codegen::CompiledSystem& old_sys, const BlockPtr& old_root,
                             const codegen::CompiledSystem& new_sys, const BlockPtr& new_root);

// ---------------------------------------------------------------------------
// Incremental recompilation of a new version

/// Everything needed to compile a new model version the same way the
/// running one was compiled. `cache` shared with the old version's pipeline
/// is what makes the recompile incremental (unchanged subtrees hit).
struct CompileContext {
    codegen::Method method = codegen::Method::Dynamic;
    codegen::ClusterOptions cluster;
    std::size_t jobs = 1;
    std::shared_ptr<codegen::ProfileCache> cache; ///< shared across versions
    codegen::BackendConfig backend;               ///< interp unless configured
};

/// An owned, executable compiled model version: the compiled system, its
/// root and the backend executable, plus the compile-side reuse accounting.
/// Shared-pointer ownership is the point — a server retires the old version
/// only after every shard has rebound to the new one.
struct ModelVersion {
    std::uint64_t version = 0;
    BlockPtr root;
    std::shared_ptr<const codegen::CompiledSystem> sys;
    std::shared_ptr<const codegen::Executable> exec;
    std::uint64_t compile_ns = 0;
    std::uint64_t macro_compiles = 0; ///< units actually recompiled
    std::uint64_t macro_reuses = 0;   ///< units served from the shared cache
};

/// Coded upgrade failures; the serve layer maps every code to the
/// UPGRADE_REJECTED protocol status, the CLIs to exit 10 (kExitUpgrade).
class UpgradeError : public std::runtime_error {
public:
    enum class Code {
        Parse,        ///< new model source does not parse
        Compile,      ///< pipeline rejected it (cycle, budget, ...)
        Analysis,     ///< deep-analysis load gate (SBD022/SBD024)
        Backend,      ///< native backend could not build the new version
        Incompatible, ///< drain-and-replace required but not allowed
        Conflict,     ///< a concurrent upgrade won the race
    };

    UpgradeError(Code code, const std::string& what)
        : std::runtime_error(what), code_(code) {}
    Code code() const { return code_; }

private:
    Code code_;
};

const char* to_string(UpgradeError::Code c);

/// Parses, pipeline-compiles (through ctx.cache when set — the incremental
/// path), deep-gates (SBD022/SBD024, the same load gate sbd-serve applies
/// at boot) and backend-builds one new model version. Per-version reuse
/// counters come from a private pipeline registry, so they measure exactly
/// this compile. Throws UpgradeError for every coded failure mode;
/// resilience::FaultInjected and DeadlineExceeded propagate unchanged so
/// chaos schedules keep their own coded statuses.
ModelVersion compile_version(const std::string& source_text, const CompileContext& ctx,
                             std::uint64_t version);

} // namespace sbd::upgrade

#endif
