#include "graph/digraph.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stack>

namespace sbd::graph {

Digraph::Digraph(std::size_t num_nodes) : succ_(num_nodes), pred_(num_nodes) {}

NodeId Digraph::add_node() {
    succ_.emplace_back();
    pred_.emplace_back();
    return static_cast<NodeId>(succ_.size() - 1);
}

void Digraph::add_edge(NodeId u, NodeId v) {
    assert(u < num_nodes() && v < num_nodes());
    if (has_edge(u, v)) return;
    succ_[u].push_back(v);
    pred_[v].push_back(u);
    ++num_edges_;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
    const auto& s = succ_[u];
    return std::find(s.begin(), s.end(), v) != s.end();
}

std::optional<std::vector<NodeId>> Digraph::topological_order() const {
    const std::size_t n = num_nodes();
    std::vector<std::size_t> indeg(n);
    for (NodeId u = 0; u < n; ++u) indeg[u] = in_degree(u);
    std::vector<NodeId> order;
    order.reserve(n);
    std::vector<NodeId> ready;
    for (NodeId u = 0; u < n; ++u)
        if (indeg[u] == 0) ready.push_back(u);
    while (!ready.empty()) {
        const NodeId u = ready.back();
        ready.pop_back();
        order.push_back(u);
        for (NodeId v : succ_[u])
            if (--indeg[v] == 0) ready.push_back(v);
    }
    if (order.size() != n) return std::nullopt;
    return order;
}

std::optional<std::vector<NodeId>> Digraph::find_cycle() const {
    const std::size_t n = num_nodes();
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(n, White);
    // Iterative DFS; `path` holds the grey chain so a back edge u -> v can
    // be expanded into the explicit node sequence v .. u.
    struct Frame {
        NodeId node;
        std::size_t child;
    };
    std::vector<Frame> frames;
    std::vector<NodeId> path;
    for (NodeId root = 0; root < n; ++root) {
        if (color[root] != White) continue;
        frames.push_back({root, 0});
        while (!frames.empty()) {
            Frame& f = frames.back();
            const NodeId u = f.node;
            if (f.child == 0) {
                color[u] = Grey;
                path.push_back(u);
            }
            bool descended = false;
            while (f.child < succ_[u].size()) {
                const NodeId v = succ_[u][f.child++];
                if (color[v] == Grey) {
                    const auto it = std::find(path.begin(), path.end(), v);
                    assert(it != path.end());
                    return std::vector<NodeId>(it, path.end());
                }
                if (color[v] == White) {
                    frames.push_back({v, 0});
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                color[u] = Black;
                path.pop_back();
                frames.pop_back();
            }
        }
    }
    return std::nullopt;
}

std::vector<NodeId> Digraph::scc_ids(std::size_t* num_components) const {
    const std::size_t n = num_nodes();
    constexpr NodeId kUnvisited = static_cast<NodeId>(-1);
    std::vector<NodeId> index(n, kUnvisited), lowlink(n, 0), comp(n, kUnvisited);
    std::vector<bool> on_stack(n, false);
    std::vector<NodeId> stack;
    NodeId next_index = 0, next_comp = 0;

    // Iterative Tarjan to avoid stack overflow on long chains.
    struct Frame {
        NodeId node;
        std::size_t child;
    };
    std::vector<Frame> frames;
    for (NodeId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited) continue;
        frames.push_back({root, 0});
        while (!frames.empty()) {
            Frame& f = frames.back();
            const NodeId u = f.node;
            if (f.child == 0) {
                index[u] = lowlink[u] = next_index++;
                stack.push_back(u);
                on_stack[u] = true;
            }
            bool descended = false;
            while (f.child < succ_[u].size()) {
                const NodeId v = succ_[u][f.child++];
                if (index[v] == kUnvisited) {
                    frames.push_back({v, 0});
                    descended = true;
                    break;
                }
                if (on_stack[v]) lowlink[u] = std::min(lowlink[u], index[v]);
            }
            if (descended) continue;
            if (lowlink[u] == index[u]) {
                NodeId w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    comp[w] = next_comp;
                } while (w != u);
                ++next_comp;
            }
            frames.pop_back();
            if (!frames.empty()) {
                const NodeId parent = frames.back().node;
                lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
            }
        }
    }
    if (num_components != nullptr) *num_components = next_comp;
    return comp;
}

std::vector<Bitset> Digraph::transitive_closure() const {
    const std::size_t n = num_nodes();
    std::vector<Bitset> reach(n, Bitset(n));
    const auto order = topological_order();
    if (order) {
        // DAG: process in reverse topological order; reach(u) = union of
        // ({v} | reach(v)) over successors v.
        for (auto it = order->rbegin(); it != order->rend(); ++it) {
            const NodeId u = *it;
            for (NodeId v : succ_[u]) {
                reach[u].set(v);
                reach[u] |= reach[v];
            }
        }
        return reach;
    }
    // General case: per-node BFS (used only in tests on cyclic graphs).
    for (NodeId u = 0; u < n; ++u) reach[u] = reachable_from(u);
    return reach;
}

Bitset Digraph::reachable_from(NodeId start) const {
    Bitset seen(num_nodes());
    std::vector<NodeId> work;
    for (NodeId v : succ_[start])
        if (!seen.test(v)) {
            seen.set(v);
            work.push_back(v);
        }
    while (!work.empty()) {
        const NodeId u = work.back();
        work.pop_back();
        for (NodeId v : succ_[u])
            if (!seen.test(v)) {
                seen.set(v);
                work.push_back(v);
            }
    }
    return seen;
}

Bitset Digraph::reaching_to(NodeId target) const {
    Bitset seen(num_nodes());
    std::vector<NodeId> work;
    for (NodeId v : pred_[target])
        if (!seen.test(v)) {
            seen.set(v);
            work.push_back(v);
        }
    while (!work.empty()) {
        const NodeId u = work.back();
        work.pop_back();
        for (NodeId v : pred_[u])
            if (!seen.test(v)) {
                seen.set(v);
                work.push_back(v);
            }
    }
    return seen;
}

Digraph Digraph::quotient(const std::vector<NodeId>& cls, std::size_t num_classes) const {
    assert(cls.size() == num_nodes());
    Digraph q(num_classes);
    for (NodeId u = 0; u < num_nodes(); ++u)
        for (NodeId v : succ_[u])
            if (cls[u] != cls[v]) q.add_edge(cls[u], cls[v]);
    return q;
}

Digraph Digraph::transpose() const {
    Digraph t(num_nodes());
    for (NodeId u = 0; u < num_nodes(); ++u)
        for (NodeId v : succ_[u]) t.add_edge(v, u);
    return t;
}

std::string Digraph::to_dot(const std::vector<std::string>& labels) const {
    std::ostringstream os;
    os << "digraph G {\n";
    for (NodeId u = 0; u < num_nodes(); ++u) {
        os << "  n" << u;
        if (u < labels.size() && !labels[u].empty()) os << " [label=\"" << labels[u] << "\"]";
        os << ";\n";
    }
    for (NodeId u = 0; u < num_nodes(); ++u)
        for (NodeId v : succ_[u]) os << "  n" << u << " -> n" << v << ";\n";
    os << "}\n";
    return os.str();
}

} // namespace sbd::graph
