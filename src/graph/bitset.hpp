#ifndef SBD_GRAPH_BITSET_HPP
#define SBD_GRAPH_BITSET_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbd::graph {

/// Dynamically sized bit set used for dense reachability computations.
///
/// The transitive-closure algorithms in this library (Proposition 1 of the
/// paper requires comparing closures of a graph and of its quotient) operate
/// on row bitsets so that closure of an n-node graph costs O(n^2 * n/64)
/// word operations.
class Bitset {
public:
    Bitset() = default;
    explicit Bitset(std::size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

    std::size_t size() const { return nbits_; }

    void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
    void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
    bool test(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

    void clear();

    /// Bitwise or-assign; both sets must have the same size.
    Bitset& operator|=(const Bitset& other);
    /// Bitwise and-assign; both sets must have the same size.
    Bitset& operator&=(const Bitset& other);

    bool operator==(const Bitset& other) const = default;

    /// True if no bit is set.
    bool none() const;
    /// True if any bit is set.
    bool any() const { return !none(); }
    /// Number of set bits.
    std::size_t count() const;
    /// True if every bit set here is also set in `other`.
    bool is_subset_of(const Bitset& other) const;
    /// True if at least one bit is set in both.
    bool intersects(const Bitset& other) const;

    /// Indices of all set bits, ascending.
    std::vector<std::size_t> to_indices() const;

private:
    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace sbd::graph

#endif
