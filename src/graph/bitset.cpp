#include "graph/bitset.hpp"

#include <algorithm>
#include <bit>

namespace sbd::graph {

void Bitset::clear() {
    std::fill(words_.begin(), words_.end(), 0);
}

Bitset& Bitset::operator|=(const Bitset& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
}

bool Bitset::none() const {
    for (auto w : words_)
        if (w != 0) return false;
    return true;
}

std::size_t Bitset::count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool Bitset::is_subset_of(const Bitset& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w)
        if ((words_[w] & ~other.words_[w]) != 0) return false;
    return true;
}

bool Bitset::intersects(const Bitset& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w)
        if ((words_[w] & other.words_[w]) != 0) return true;
    return false;
}

std::vector<std::size_t> Bitset::to_indices() const {
    std::vector<std::size_t> out;
    for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t word = words_[w];
        while (word != 0) {
            const int bit = std::countr_zero(word);
            out.push_back(w * 64 + static_cast<std::size_t>(bit));
            word &= word - 1;
        }
    }
    return out;
}

} // namespace sbd::graph
