#ifndef SBD_GRAPH_UNDIRECTED_HPP
#define SBD_GRAPH_UNDIRECTED_HPP

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace sbd::graph {

/// Undirected simple graph, used for the paper's *mergeability graph* M(G)
/// (Definition 2) and for the partition-into-cliques side of the NP-hardness
/// reduction (Proposition 2).
class Undirected {
public:
    Undirected() = default;
    explicit Undirected(std::size_t num_nodes) : adj_(num_nodes, std::vector<bool>(num_nodes, false)) {}

    std::size_t num_nodes() const { return adj_.size(); }
    std::size_t num_edges() const { return num_edges_; }

    void add_edge(std::size_t u, std::size_t v);
    bool has_edge(std::size_t u, std::size_t v) const { return adj_[u][v]; }

    std::vector<std::pair<std::size_t, std::size_t>> edges() const;

    /// True if `nodes` is a clique.
    bool is_clique(const std::vector<std::size_t>& nodes) const;

    /// Exact minimum number of cliques covering all nodes as a partition
    /// (NP-hard; branch and bound, intended for graphs of <= ~16 nodes in
    /// tests of the reduction). Returns the partition as node -> clique id.
    std::vector<std::size_t> min_clique_partition(std::size_t* num_cliques) const;

    /// Greedy clique partition (sequential, first-fit). Upper bound used as
    /// a polynomial heuristic baseline.
    std::vector<std::size_t> greedy_clique_partition(std::size_t* num_cliques) const;

private:
    std::vector<std::vector<bool>> adj_;
    std::size_t num_edges_ = 0;
};

} // namespace sbd::graph

#endif
