#include "graph/undirected.hpp"

#include <cassert>

namespace sbd::graph {

void Undirected::add_edge(std::size_t u, std::size_t v) {
    assert(u != v && u < num_nodes() && v < num_nodes());
    if (adj_[u][v]) return;
    adj_[u][v] = adj_[v][u] = true;
    ++num_edges_;
}

std::vector<std::pair<std::size_t, std::size_t>> Undirected::edges() const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (std::size_t u = 0; u < num_nodes(); ++u)
        for (std::size_t v = u + 1; v < num_nodes(); ++v)
            if (adj_[u][v]) out.emplace_back(u, v);
    return out;
}

bool Undirected::is_clique(const std::vector<std::size_t>& nodes) const {
    for (std::size_t i = 0; i < nodes.size(); ++i)
        for (std::size_t j = i + 1; j < nodes.size(); ++j)
            if (!adj_[nodes[i]][nodes[j]]) return false;
    return true;
}

namespace {

/// Backtracking search: can the nodes be partitioned into at most k cliques?
/// Nodes are assigned in index order; node i may open clique min(i, used)
/// at most (canonical ordering kills clique-permutation symmetry).
bool partition_with(const Undirected& g, std::size_t k, std::vector<std::size_t>& assign,
                    std::vector<std::vector<std::size_t>>& cliques, std::size_t node) {
    if (node == g.num_nodes()) return true;
    for (std::size_t c = 0; c < cliques.size(); ++c) {
        bool ok = true;
        for (std::size_t member : cliques[c])
            if (!g.has_edge(member, node)) {
                ok = false;
                break;
            }
        if (!ok) continue;
        cliques[c].push_back(node);
        assign[node] = c;
        if (partition_with(g, k, assign, cliques, node + 1)) return true;
        cliques[c].pop_back();
    }
    if (cliques.size() < k) {
        cliques.emplace_back(1, node);
        assign[node] = cliques.size() - 1;
        if (partition_with(g, k, assign, cliques, node + 1)) return true;
        cliques.pop_back();
    }
    return false;
}

} // namespace

std::vector<std::size_t> Undirected::min_clique_partition(std::size_t* num_cliques) const {
    std::vector<std::size_t> assign(num_nodes(), 0);
    if (num_nodes() == 0) {
        if (num_cliques != nullptr) *num_cliques = 0;
        return assign;
    }
    for (std::size_t k = 1; k <= num_nodes(); ++k) {
        std::vector<std::vector<std::size_t>> cliques;
        if (partition_with(*this, k, assign, cliques, 0)) {
            if (num_cliques != nullptr) *num_cliques = cliques.size();
            return assign;
        }
    }
    // Unreachable: k = num_nodes() (all singletons) always succeeds.
    assert(false);
    return assign;
}

std::vector<std::size_t> Undirected::greedy_clique_partition(std::size_t* num_cliques) const {
    std::vector<std::size_t> assign(num_nodes(), 0);
    std::vector<std::vector<std::size_t>> cliques;
    for (std::size_t node = 0; node < num_nodes(); ++node) {
        bool placed = false;
        for (std::size_t c = 0; c < cliques.size() && !placed; ++c) {
            bool ok = true;
            for (std::size_t member : cliques[c])
                if (!adj_[member][node]) {
                    ok = false;
                    break;
                }
            if (ok) {
                cliques[c].push_back(node);
                assign[node] = c;
                placed = true;
            }
        }
        if (!placed) {
            cliques.emplace_back(1, node);
            assign[node] = cliques.size() - 1;
        }
    }
    if (num_cliques != nullptr) *num_cliques = cliques.size();
    return assign;
}

} // namespace sbd::graph
