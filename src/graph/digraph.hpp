#ifndef SBD_GRAPH_DIGRAPH_HPP
#define SBD_GRAPH_DIGRAPH_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/bitset.hpp"

namespace sbd::graph {

/// Node index within a Digraph.
using NodeId = std::uint32_t;

/// Simple directed graph over nodes 0..n-1 with adjacency lists in both
/// directions. Parallel edges are collapsed (add_edge is idempotent); self
/// loops are permitted but rejected by the topological-sort and acyclicity
/// helpers, matching the paper's SDGs which are DAGs.
class Digraph {
public:
    Digraph() = default;
    explicit Digraph(std::size_t num_nodes);

    std::size_t num_nodes() const { return succ_.size(); }
    std::size_t num_edges() const { return num_edges_; }

    /// Appends a fresh node and returns its id.
    NodeId add_node();

    /// Adds edge u -> v (no-op if already present).
    void add_edge(NodeId u, NodeId v);

    bool has_edge(NodeId u, NodeId v) const;

    const std::vector<NodeId>& successors(NodeId u) const { return succ_[u]; }
    const std::vector<NodeId>& predecessors(NodeId u) const { return pred_[u]; }

    std::size_t out_degree(NodeId u) const { return succ_[u].size(); }
    std::size_t in_degree(NodeId u) const { return pred_[u].size(); }

    /// A topological order of all nodes, or nullopt if the graph is cyclic.
    std::optional<std::vector<NodeId>> topological_order() const;

    /// Some directed cycle as the node sequence v0 -> v1 -> ... -> vk-1
    /// (with the closing edge vk-1 -> v0 implied), or nullopt if the graph
    /// is acyclic. A self loop yields a single-node cycle. Used by the
    /// diagnostics layer to print concrete cycle witnesses.
    std::optional<std::vector<NodeId>> find_cycle() const;

    bool is_acyclic() const { return topological_order().has_value(); }

    /// Strongly connected components (Tarjan). Returns, for each node, its
    /// component id; component ids are numbered in reverse topological order
    /// of the condensation (i.e. component 0 has no outgoing inter-component
    /// edges ... actually Tarjan emits sinks first).
    std::vector<NodeId> scc_ids(std::size_t* num_components = nullptr) const;

    /// Row `u` of the result has bit `v` set iff there is a nonempty path
    /// u ->+ v. (Transitive closure, *not* reflexive.)
    std::vector<Bitset> transitive_closure() const;

    /// Set of nodes reachable from `start` via nonempty paths.
    Bitset reachable_from(NodeId start) const;

    /// Set of nodes that reach `target` via nonempty paths.
    Bitset reaching_to(NodeId target) const;

    /// Quotient graph under the node->class map `cls` (classes must be
    /// 0..num_classes-1). Self loops in the quotient are dropped, matching
    /// Definition 1's acyclicity condition "after dropping all self-loops".
    Digraph quotient(const std::vector<NodeId>& cls, std::size_t num_classes) const;

    Digraph transpose() const;

    /// GraphViz text form; `label(u)` supplies node labels (may be empty).
    std::string to_dot(const std::vector<std::string>& labels = {}) const;

private:
    std::vector<std::vector<NodeId>> succ_;
    std::vector<std::vector<NodeId>> pred_;
    std::size_t num_edges_ = 0;
};

} // namespace sbd::graph

#endif
