#ifndef SBD_SBD_FLATTEN_HPP
#define SBD_SBD_FLATTEN_HPP

#include <memory>

#include "graph/digraph.hpp"
#include "sbd/block.hpp"

namespace sbd {

/// Flattens a hierarchical macro block into an equivalent macro block whose
/// sub-blocks are all atomic (Section 3's flattening procedure). Instance
/// names of nested blocks are joined with '/'. Pass-through wires (macro
/// input connected directly to a macro output at any level) are spliced
/// away; a cycle of pure pass-through wires raises ModelError.
std::shared_ptr<const MacroBlock> flatten(const MacroBlock& root);

/// Block-based dependency graph of a *flat* diagram (Section 3): one node
/// per sub-block; an edge A -> B whenever A is not Moore-sequential and some
/// output of A is connected to an input of B. Used to define acyclicity and
/// hence whether the diagram has well-defined synchronous semantics.
graph::Digraph block_dependency_graph(const MacroBlock& flat);

/// True iff the flattened diagram's block-based dependency graph is acyclic.
bool is_acyclic_diagram(const MacroBlock& root);

} // namespace sbd

#endif
