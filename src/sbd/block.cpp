#include "sbd/block.hpp"

#include <sstream>

namespace sbd {

const char* to_string(BlockClass c) {
    switch (c) {
    case BlockClass::Combinational: return "combinational";
    case BlockClass::Sequential: return "sequential";
    case BlockClass::MooreSequential: return "Moore-sequential";
    }
    return "?";
}

Block::Block(std::string type_name, std::vector<std::string> inputs,
             std::vector<std::string> outputs)
    : type_name_(std::move(type_name)), inputs_(std::move(inputs)), outputs_(std::move(outputs)) {}

std::size_t Block::input_index(const std::string& name) const {
    for (std::size_t i = 0; i < inputs_.size(); ++i)
        if (inputs_[i] == name) return i;
    throw ModelError("block '" + type_name_ + "' has no input port '" + name + "'");
}

std::size_t Block::output_index(const std::string& name) const {
    for (std::size_t i = 0; i < outputs_.size(); ++i)
        if (outputs_[i] == name) return i;
    throw ModelError("block '" + type_name_ + "' has no output port '" + name + "'");
}

AtomicBlock::AtomicBlock(std::string type_name, std::vector<std::string> inputs,
                         std::vector<std::string> outputs, BlockClass cls,
                         std::vector<double> init_state, OutputFn output_fn, UpdateFn update_fn)
    : Block(std::move(type_name), std::move(inputs), std::move(outputs)),
      class_(cls),
      init_state_(std::move(init_state)),
      output_fn_(std::move(output_fn)),
      update_fn_(std::move(update_fn)) {
    if (class_ == BlockClass::Combinational) {
        if (!init_state_.empty())
            throw ModelError("combinational block '" + this->type_name() + "' must be stateless");
        if (update_fn_)
            throw ModelError("combinational block '" + this->type_name() + "' has an update function");
    } else if (!update_fn_) {
        throw ModelError("sequential block '" + this->type_name() + "' needs an update function");
    }
    if (!output_fn_ && num_outputs() > 0)
        throw ModelError("block '" + this->type_name() + "' with outputs needs an output function");
}

void AtomicBlock::compute_outputs(std::span<const double> state, std::span<const double> inputs,
                                  std::span<double> outputs) const {
    if (output_fn_) output_fn_(state, inputs, outputs);
}

void AtomicBlock::update_state(std::span<double> state, std::span<const double> inputs) const {
    if (update_fn_) update_fn_(state, inputs);
}

std::string to_string(const Endpoint& e) {
    std::ostringstream os;
    switch (e.kind) {
    case Endpoint::Kind::MacroInput: os << "in:" << e.port; break;
    case Endpoint::Kind::MacroOutput: os << "out:" << e.port; break;
    case Endpoint::Kind::SubInput: os << "sub" << e.sub << ".in:" << e.port; break;
    case Endpoint::Kind::SubOutput: os << "sub" << e.sub << ".out:" << e.port; break;
    }
    return os.str();
}

MacroBlock::MacroBlock(std::string type_name, std::vector<std::string> inputs,
                       std::vector<std::string> outputs)
    : Block(std::move(type_name), std::move(inputs), std::move(outputs)) {}

std::int32_t MacroBlock::add_sub(std::string instance_name, BlockPtr type, SourceLoc loc) {
    if (!type) throw ModelError("null sub-block type in macro '" + type_name() + "'");
    if (sub_names_.contains(instance_name))
        throw ModelError("duplicate sub-block name '" + instance_name + "' in macro '" +
                         type_name() + "'");
    const auto idx = static_cast<std::int32_t>(subs_.size());
    sub_names_.emplace(instance_name, idx);
    subs_.push_back(SubBlock{std::move(instance_name), std::move(type), std::nullopt, loc, {}});
    class_cache_.reset();
    return idx;
}

std::uint64_t MacroBlock::dst_key(const Endpoint& e) {
    return (static_cast<std::uint64_t>(e.kind) << 62) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.sub)) << 30) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.port));
}

void MacroBlock::connect(Endpoint src, Endpoint dst, SourceLoc loc) {
    auto check = [this](const Endpoint& e, bool want_source) {
        if (e.is_source() != want_source)
            throw ModelError("endpoint " + to_string(e) + " used on the wrong side in macro '" +
                             type_name() + "'");
        switch (e.kind) {
        case Endpoint::Kind::MacroInput:
            if (e.port < 0 || static_cast<std::size_t>(e.port) >= num_inputs())
                throw ModelError("bad macro input port in '" + type_name() + "'");
            break;
        case Endpoint::Kind::MacroOutput:
            if (e.port < 0 || static_cast<std::size_t>(e.port) >= num_outputs())
                throw ModelError("bad macro output port in '" + type_name() + "'");
            break;
        case Endpoint::Kind::SubInput:
        case Endpoint::Kind::SubOutput: {
            if (e.sub < 0 || static_cast<std::size_t>(e.sub) >= subs_.size())
                throw ModelError("bad sub-block index in '" + type_name() + "'");
            const Block& b = *subs_[e.sub].type;
            const std::size_t n =
                e.kind == Endpoint::Kind::SubInput ? b.num_inputs() : b.num_outputs();
            if (e.port < 0 || static_cast<std::size_t>(e.port) >= n)
                throw ModelError("bad port " + to_string(e) + " in macro '" + type_name() + "'");
            break;
        }
        }
    };
    check(src, true);
    check(dst, false);
    const std::uint64_t key = dst_key(dst);
    if (writer_index_.contains(key))
        throw ModelError("destination " + to_string(dst) + " already has a writer in macro '" +
                         type_name() + "'");
    writer_index_.emplace(key, static_cast<std::int32_t>(conns_.size()));
    conns_.push_back(Connection{src, dst, loc});
    class_cache_.reset();
}

Endpoint MacroBlock::parse_endpoint(const std::string& text, bool as_source) const {
    const auto dot = text.find('.');
    Endpoint e;
    if (dot == std::string::npos) {
        // A port of this macro block: an input when used as a source, an
        // output when used as a destination.
        if (as_source) {
            e.kind = Endpoint::Kind::MacroInput;
            e.port = static_cast<std::int32_t>(input_index(text));
        } else {
            e.kind = Endpoint::Kind::MacroOutput;
            e.port = static_cast<std::int32_t>(output_index(text));
        }
        return e;
    }
    const std::string inst = text.substr(0, dot);
    const std::string port = text.substr(dot + 1);
    e.sub = sub_index(inst);
    const Block& b = *subs_[e.sub].type;
    if (as_source) {
        e.kind = Endpoint::Kind::SubOutput;
        e.port = static_cast<std::int32_t>(b.output_index(port));
    } else {
        e.kind = Endpoint::Kind::SubInput;
        e.port = static_cast<std::int32_t>(b.input_index(port));
    }
    return e;
}

void MacroBlock::connect(const std::string& from, const std::string& to, SourceLoc loc) {
    connect(parse_endpoint(from, true), parse_endpoint(to, false), loc);
}

void MacroBlock::set_trigger(std::int32_t sub, Endpoint src, SourceLoc loc) {
    if (sub < 0 || static_cast<std::size_t>(sub) >= subs_.size())
        throw ModelError("set_trigger: bad sub-block index in '" + type_name() + "'");
    if (!src.is_source())
        throw ModelError("set_trigger: " + to_string(src) + " is not a source endpoint");
    if (src.kind == Endpoint::Kind::MacroInput) {
        if (src.port < 0 || static_cast<std::size_t>(src.port) >= num_inputs())
            throw ModelError("set_trigger: bad macro input port in '" + type_name() + "'");
    } else {
        if (src.sub < 0 || static_cast<std::size_t>(src.sub) >= subs_.size() || src.port < 0 ||
            static_cast<std::size_t>(src.port) >= subs_[src.sub].type->num_outputs())
            throw ModelError("set_trigger: bad source port in '" + type_name() + "'");
    }
    if (subs_[sub].trigger)
        throw ModelError("sub-block '" + subs_[sub].name + "' already has a trigger");
    subs_[sub].trigger = src;
    subs_[sub].trigger_loc = loc;
    class_cache_.reset();
}

void MacroBlock::set_trigger(const std::string& instance, const std::string& src, SourceLoc loc) {
    set_trigger(sub_index(instance), parse_endpoint(src, true), loc);
}

std::int32_t MacroBlock::sub_index(const std::string& instance_name) const {
    const auto it = sub_names_.find(instance_name);
    if (it == sub_names_.end())
        throw ModelError("macro '" + type_name() + "' has no sub-block '" + instance_name + "'");
    return it->second;
}

const Connection* MacroBlock::writer_of(const Endpoint& dst) const {
    const auto it = writer_index_.find(dst_key(dst));
    if (it == writer_index_.end()) return nullptr;
    return &conns_[it->second];
}

void MacroBlock::validate() const {
    for (std::size_t s = 0; s < subs_.size(); ++s) {
        const Block& b = *subs_[s].type;
        for (std::size_t i = 0; i < b.num_inputs(); ++i) {
            const Endpoint dst{Endpoint::Kind::SubInput, static_cast<std::int32_t>(s),
                               static_cast<std::int32_t>(i)};
            if (writer_of(dst) == nullptr)
                throw ModelError("macro '" + type_name() + "': input '" + b.input_name(i) +
                                 "' of sub-block '" + subs_[s].name + "' is unconnected");
        }
    }
    for (std::size_t o = 0; o < num_outputs(); ++o) {
        const Endpoint dst{Endpoint::Kind::MacroOutput, -1, static_cast<std::int32_t>(o)};
        if (writer_of(dst) == nullptr)
            throw ModelError("macro '" + type_name() + "': output '" + output_name(o) +
                             "' is unconnected");
    }
}

} // namespace sbd
