#ifndef SBD_SBD_TEXT_FORMAT_HPP
#define SBD_SBD_TEXT_FORMAT_HPP

#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "sbd/block.hpp"

namespace sbd::text {

/// Parsing discipline. Strict aborts on the first problem by throwing
/// ModelError (the compiler path). Lenient records every problem as a
/// ParseIssue with a stable diagnostic code, recovers, and keeps going —
/// the static-analysis (sbd-lint) path, which wants all problems at once.
enum class ParseMode { Strict, Lenient };

/// One problem found during lenient parsing. `code` is a stable diagnostic
/// code from the sbd-lint catalog (see src/analysis/diagnostics.hpp):
/// SBD001 syntax, SBD002 bad block instantiation, SBD003 bad port
/// reference, SBD004 multiply-driven signal, SBD005 self-connection,
/// SBD006 malformed trigger, SBD014..SBD017 extern-declaration problems.
struct ParseIssue {
    std::string code;
    std::string message;
    SourceLoc loc;
};

/// Result of parsing an .sbd file: every block definition by name, in
/// definition order, plus the designated root (the last block defined).
/// In lenient mode `issues` holds every recovered problem and `root` may be
/// null; block definitions that failed to build are absent from `blocks`.
struct ParsedFile {
    std::map<std::string, BlockPtr> blocks;
    std::vector<std::string> order;
    std::shared_ptr<const MacroBlock> root;
    std::vector<ParseIssue> issues;
};

/// Parses the textual block-diagram format:
///
///   # comment
///   block P {
///     inputs  x1 x2
///     outputs y1 y2
///     sub A  Gain 2.0
///     sub U  UnitDelay 0
///     sub S  Inner            # a block defined earlier in the file
///     connect x1 A.u
///     connect A.y U.u
///     connect U.y y1
///     trigger U x2            # optional: U fires only when x2 >= 0.5
///   }
///
/// Atomic types: Constant c | Gain k | Sum signs | Product n |
/// UnitDelay init | Integrator ts init | Fir2 a b | Saturation lo hi |
/// Abs | Div | Min | Max | Relational op | Switch thresh | Logic op n |
/// DeadZone lo hi | Lookup1D x.. / y.. | MovingAvg n | Filter1 b0 b1 a1 |
/// Counter | Fanout m | SampleHold init
///
/// Throws ModelError with a line:column position on malformed input
/// (strict mode); in lenient mode problems land in ParsedFile::issues
/// instead and only I/O failures throw.
ParsedFile parse_sbd(std::istream& in, ParseMode mode = ParseMode::Strict);
ParsedFile parse_sbd_string(const std::string& text, ParseMode mode = ParseMode::Strict);
ParsedFile parse_sbd_file(const std::string& path, ParseMode mode = ParseMode::Strict);

/// Serializes a macro-block hierarchy back to the textual format (inner
/// block definitions first). Atomic blocks must come from the standard
/// library (their parameters are recovered from the type name); custom
/// atomics raise ModelError.
std::string to_sbd(const MacroBlock& root);

} // namespace sbd::text

#endif
