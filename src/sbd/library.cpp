#include "sbd/library.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace sbd::lib {

namespace {

std::vector<std::string> numbered(const std::string& prefix, std::size_t n) {
    std::vector<std::string> v;
    v.reserve(n);
    for (std::size_t i = 1; i <= n; ++i) v.push_back(prefix + std::to_string(i));
    return v;
}

/// Round-trip-exact C++ literal for a double.
std::string lit(double x) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    std::string s(buf);
    if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
    return s;
}

} // namespace

AtomicPtr make_combinational(std::string name, std::vector<std::string> inputs,
                             std::vector<std::string> outputs, AtomicBlock::OutputFn fn,
                             CppSemantics cpp, std::string text_spec) {
    auto b = std::make_shared<AtomicBlock>(std::move(name), std::move(inputs), std::move(outputs),
                                           BlockClass::Combinational, std::vector<double>{},
                                           std::move(fn), AtomicBlock::UpdateFn{});
    if (!cpp.output_body.empty()) b->set_cpp_semantics(std::move(cpp));
    b->set_text_spec(std::move(text_spec));
    return b;
}

AtomicPtr make_moore(std::string name, std::vector<std::string> inputs,
                     std::vector<std::string> outputs, std::vector<double> init_state,
                     AtomicBlock::OutputFn output_fn, AtomicBlock::UpdateFn update_fn,
                     CppSemantics cpp, std::string text_spec) {
    auto b = std::make_shared<AtomicBlock>(std::move(name), std::move(inputs), std::move(outputs),
                                           BlockClass::MooreSequential, std::move(init_state),
                                           std::move(output_fn), std::move(update_fn));
    if (!cpp.output_body.empty() || !cpp.update_body.empty())
        b->set_cpp_semantics(std::move(cpp));
    b->set_text_spec(std::move(text_spec));
    return b;
}

AtomicPtr make_sequential(std::string name, std::vector<std::string> inputs,
                          std::vector<std::string> outputs, std::vector<double> init_state,
                          AtomicBlock::OutputFn output_fn, AtomicBlock::UpdateFn update_fn,
                          CppSemantics cpp, std::string text_spec) {
    auto b = std::make_shared<AtomicBlock>(std::move(name), std::move(inputs), std::move(outputs),
                                           BlockClass::Sequential, std::move(init_state),
                                           std::move(output_fn), std::move(update_fn));
    if (!cpp.output_body.empty() || !cpp.update_body.empty())
        b->set_cpp_semantics(std::move(cpp));
    b->set_text_spec(std::move(text_spec));
    return b;
}

AtomicPtr constant(double c) {
    return make_combinational(
        "Constant(" + lit(c) + ")", {}, {"y"},
        [c](auto, auto, std::span<double> y) { y[0] = c; },
        CppSemantics{"y0 = " + lit(c) + ";", ""}, "Constant " + lit(c));
}

AtomicPtr gain(double k) {
    return make_combinational(
        "Gain(" + lit(k) + ")", {"u"}, {"y"},
        [k](auto, std::span<const double> u, std::span<double> y) { y[0] = k * u[0]; },
        CppSemantics{"y0 = " + lit(k) + " * u0;", ""}, "Gain " + lit(k));
}

AtomicPtr sum(const std::string& signs) {
    std::vector<double> coef;
    for (const char s : signs) coef.push_back(s == '-' ? -1.0 : 1.0);
    std::string body = "y0 = 0.0";
    for (std::size_t i = 0; i < coef.size(); ++i)
        body += (coef[i] < 0 ? " - u" : " + u") + std::to_string(i);
    body += ";";
    return make_combinational(
        "Sum(" + signs + ")", numbered("u", coef.size()), {"y"},
        [coef](auto, std::span<const double> u, std::span<double> y) {
            double acc = 0.0;
            for (std::size_t i = 0; i < coef.size(); ++i) acc += coef[i] * u[i];
            y[0] = acc;
        },
        CppSemantics{body, ""}, "Sum " + signs);
}

AtomicPtr product(std::size_t n) {
    std::string body = "y0 = 1.0";
    for (std::size_t i = 0; i < n; ++i) body += " * u" + std::to_string(i);
    body += ";";
    return make_combinational(
        "Product" + std::to_string(n), numbered("u", n), {"y"},
        [](auto, std::span<const double> u, std::span<double> y) {
            y[0] = std::accumulate(u.begin(), u.end(), 1.0, std::multiplies<>());
        },
        CppSemantics{body, ""}, "Product " + std::to_string(n));
}

AtomicPtr unit_delay(double init) {
    auto b = make_moore(
        "UnitDelay(" + lit(init) + ")", {"u"}, {"y"}, {init},
        [](std::span<const double> s, auto, std::span<double> y) { y[0] = s[0]; },
        [](std::span<double> s, std::span<const double> u) { s[0] = u[0]; },
        CppSemantics{"y0 = s0;", "s0 = u0;"}, "UnitDelay " + lit(init));
    return b;
}

AtomicPtr integrator(double ts, double init) {
    return make_moore(
        "Integrator(" + lit(ts) + "," + lit(init) + ")", {"u"}, {"y"}, {init},
        [](std::span<const double> s, auto, std::span<double> y) { y[0] = s[0]; },
        [ts](std::span<double> s, std::span<const double> u) { s[0] += ts * u[0]; },
        CppSemantics{"y0 = s0;", "s0 = s0 + " + lit(ts) + " * u0;"}, "Integrator " + lit(ts) + " " + lit(init));
}

AtomicPtr fir2(double a, double b) {
    // State holds x(k-1).
    return make_sequential(
        "Fir2(" + lit(a) + "," + lit(b) + ")", {"x"}, {"y"}, {0.0},
        [a, b](std::span<const double> s, std::span<const double> x, std::span<double> y) {
            y[0] = a * x[0] + b * s[0];
        },
        [](std::span<double> s, std::span<const double> x) { s[0] = x[0]; },
        CppSemantics{"y0 = " + lit(a) + " * u0 + " + lit(b) + " * s0;", "s0 = u0;"}, "Fir2 " + lit(a) + " " + lit(b));
}

AtomicPtr saturation(double lo, double hi) {
    return make_combinational(
        "Saturation(" + lit(lo) + "," + lit(hi) + ")", {"u"}, {"y"},
        [lo, hi](auto, std::span<const double> u, std::span<double> y) {
            y[0] = std::clamp(u[0], lo, hi);
        },
        CppSemantics{"y0 = std::clamp(u0, " + lit(lo) + ", " + lit(hi) + ");", ""}, "Saturation " + lit(lo) + " " + lit(hi));
}

AtomicPtr divide() {
    return make_combinational(
        "Div", {"u1", "u2"}, {"y"},
        [](auto, std::span<const double> u, std::span<double> y) { y[0] = u[0] / u[1]; },
        CppSemantics{"y0 = u0 / u1;", ""}, "Div");
}

AtomicPtr abs_block() {
    return make_combinational(
        "Abs", {"u"}, {"y"},
        [](auto, std::span<const double> u, std::span<double> y) { y[0] = std::fabs(u[0]); },
        CppSemantics{"y0 = std::fabs(u0);", ""}, "Abs");
}

AtomicPtr min_block() {
    return make_combinational(
        "Min", {"u1", "u2"}, {"y"},
        [](auto, std::span<const double> u, std::span<double> y) { y[0] = std::min(u[0], u[1]); },
        CppSemantics{"y0 = std::min(u0, u1);", ""}, "Min");
}

AtomicPtr max_block() {
    return make_combinational(
        "Max", {"u1", "u2"}, {"y"},
        [](auto, std::span<const double> u, std::span<double> y) { y[0] = std::max(u[0], u[1]); },
        CppSemantics{"y0 = std::max(u0, u1);", ""}, "Max");
}

AtomicPtr relational(const std::string& op) {
    std::function<bool(double, double)> cmp;
    if (op == "<") cmp = [](double a, double b) { return a < b; };
    else if (op == "<=") cmp = [](double a, double b) { return a <= b; };
    else if (op == ">") cmp = [](double a, double b) { return a > b; };
    else if (op == ">=") cmp = [](double a, double b) { return a >= b; };
    else if (op == "==") cmp = [](double a, double b) { return a == b; };
    else if (op == "!=") cmp = [](double a, double b) { return a != b; };
    else throw ModelError("relational: unknown op '" + op + "'");
    return make_combinational(
        "Relational(" + op + ")", {"u1", "u2"}, {"y"},
        [cmp](auto, std::span<const double> u, std::span<double> y) {
            y[0] = cmp(u[0], u[1]) ? 1.0 : 0.0;
        },
        CppSemantics{"y0 = (u0 " + op + " u1) ? 1.0 : 0.0;", ""}, "Relational " + op);
}

AtomicPtr switch_block(double threshold) {
    return make_combinational(
        "Switch(" + lit(threshold) + ")", {"u1", "ctrl", "u2"}, {"y"},
        [threshold](auto, std::span<const double> u, std::span<double> y) {
            y[0] = u[1] >= threshold ? u[0] : u[2];
        },
        CppSemantics{"y0 = (u1 >= " + lit(threshold) + ") ? u0 : u2;", ""}, "Switch " + lit(threshold));
}

AtomicPtr logic(const std::string& op, std::size_t n) {
    if (op == "NOT") {
        return make_combinational(
            "Logic(NOT)", {"u1"}, {"y"},
            [](auto, std::span<const double> u, std::span<double> y) {
                y[0] = u[0] >= 0.5 ? 0.0 : 1.0;
            },
            CppSemantics{"y0 = (u0 >= 0.5) ? 0.0 : 1.0;", ""}, "Logic NOT 1");
    }
    std::function<bool(bool, bool)> join;
    std::string cxx_op;
    bool unit = true;
    if (op == "AND") { join = [](bool a, bool b) { return a && b; }; cxx_op = "&&"; }
    else if (op == "OR") { join = [](bool a, bool b) { return a || b; }; unit = false; cxx_op = "||"; }
    else if (op == "XOR") { join = [](bool a, bool b) { return a != b; }; unit = false; cxx_op = "!="; }
    else throw ModelError("logic: unknown op '" + op + "'");
    std::string expr = unit ? "true" : "false";
    for (std::size_t i = 0; i < n; ++i)
        expr = "(" + expr + " " + cxx_op + " (u" + std::to_string(i) + " >= 0.5))";
    return make_combinational(
        "Logic(" + op + std::to_string(n) + ")", numbered("u", n), {"y"},
        [join, unit](auto, std::span<const double> u, std::span<double> y) {
            bool acc = unit;
            for (const double v : u) acc = join(acc, v >= 0.5);
            y[0] = acc ? 1.0 : 0.0;
        },
        CppSemantics{"y0 = " + expr + " ? 1.0 : 0.0;", ""}, "Logic " + op + " " + std::to_string(n));
}

AtomicPtr dead_zone(double lo, double hi) {
    return make_combinational(
        "DeadZone(" + lit(lo) + "," + lit(hi) + ")", {"u"}, {"y"},
        [lo, hi](auto, std::span<const double> u, std::span<double> y) {
            if (u[0] < lo) y[0] = u[0] - lo;
            else if (u[0] > hi) y[0] = u[0] - hi;
            else y[0] = 0.0;
        },
        CppSemantics{"y0 = (u0 < " + lit(lo) + ") ? (u0 - " + lit(lo) + ") : (u0 > " + lit(hi) +
                         ") ? (u0 - " + lit(hi) + ") : 0.0;",
                     ""},
        "DeadZone " + lit(lo) + " " + lit(hi));
}

AtomicPtr lookup1d(std::vector<double> xs, std::vector<double> ys) {
    if (xs.size() != ys.size() || xs.size() < 2)
        throw ModelError("lookup1d: need >= 2 matching breakpoints");
    std::ostringstream body;
    body << "static const double xs[] = {";
    for (std::size_t i = 0; i < xs.size(); ++i) body << (i ? "," : "") << lit(xs[i]);
    body << "}; static const double ys[] = {";
    for (std::size_t i = 0; i < ys.size(); ++i) body << (i ? "," : "") << lit(ys[i]);
    body << "};\n";
    body << "    if (u0 <= xs[0]) { y0 = ys[0]; } else if (u0 >= xs[" << xs.size() - 1
         << "]) { y0 = ys[" << xs.size() - 1 << "]; } else {\n"
         << "      std::size_t hi = 1; while (xs[hi] <= u0) ++hi;\n"
         << "      const double t = (u0 - xs[hi-1]) / (xs[hi] - xs[hi-1]);\n"
         << "      y0 = ys[hi-1] + t * (ys[hi] - ys[hi-1]); }";
    std::string lut_spec = "Lookup1D";
    for (const double x : xs) lut_spec += " " + lit(x);
    lut_spec += " /";
    for (const double y : ys) lut_spec += " " + lit(y);
    return make_combinational(
        "Lookup1D" + std::to_string(xs.size()), {"u"}, {"y"},
        [xs = std::move(xs), ys = std::move(ys)](auto, std::span<const double> u,
                                                 std::span<double> y) {
            const double x = u[0];
            if (x <= xs.front()) { y[0] = ys.front(); return; }
            if (x >= xs.back()) { y[0] = ys.back(); return; }
            const auto it = std::upper_bound(xs.begin(), xs.end(), x);
            const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
            const std::size_t lo = hi - 1;
            const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
            y[0] = ys[lo] + t * (ys[hi] - ys[lo]);
        },
        CppSemantics{body.str(), ""}, lut_spec);
}

AtomicPtr moving_average(std::size_t n) {
    if (n < 2) throw ModelError("moving_average: need n >= 2");
    std::string out_body = "y0 = (u0";
    for (std::size_t i = 0; i + 1 < n; ++i) out_body += " + s" + std::to_string(i);
    out_body += ") / " + lit(static_cast<double>(n)) + ";";
    std::string upd_body;
    for (std::size_t i = 0; i + 2 < n; ++i)
        upd_body += "s" + std::to_string(i) + " = s" + std::to_string(i + 1) + "; ";
    upd_body += "s" + std::to_string(n - 2) + " = u0;";
    // State: ring of the previous n-1 samples (slot 0 = oldest).
    return make_sequential(
        "MovingAvg(" + std::to_string(n) + ")", {"u"}, {"y"},
        std::vector<double>(n - 1, 0.0),
        [n](std::span<const double> s, std::span<const double> u, std::span<double> y) {
            double acc = u[0];
            for (const double v : s) acc += v;
            y[0] = acc / static_cast<double>(n);
        },
        [](std::span<double> s, std::span<const double> u) {
            for (std::size_t i = 0; i + 1 < s.size(); ++i) s[i] = s[i + 1];
            s[s.size() - 1] = u[0];
        },
        CppSemantics{out_body, upd_body}, "MovingAvg " + std::to_string(n));
}

AtomicPtr first_order_filter(double b0, double b1, double a1) {
    // Direct form II: w(k) = u(k) - a1*w(k-1); y = b0*w(k) + b1*w(k-1).
    const std::string upd = "s0 = u0 - " + lit(a1) + " * s0;";
    if (b0 != 0.0) {
        return make_sequential(
            "Filter1(" + lit(b0) + "," + lit(b1) + "," + lit(a1) + ")", {"u"}, {"y"}, {0.0},
            [b0, b1, a1](std::span<const double> s, std::span<const double> u,
                         std::span<double> y) {
                const double w = u[0] - a1 * s[0];
                y[0] = b0 * w + b1 * s[0];
            },
            [a1](std::span<double> s, std::span<const double> u) { s[0] = u[0] - a1 * s[0]; },
            CppSemantics{"y0 = " + lit(b0) + " * (u0 - " + lit(a1) + " * s0) + " + lit(b1) +
                             " * s0;",
                         upd},
            "Filter1 " + lit(b0) + " " + lit(b1) + " " + lit(a1));
    }
    return make_moore(
        "Filter1(0," + lit(b1) + "," + lit(a1) + ")", {"u"}, {"y"}, {0.0},
        [b1](std::span<const double> s, std::span<const double>, std::span<double> y) {
            y[0] = b1 * s[0];
        },
        [a1](std::span<double> s, std::span<const double> u) { s[0] = u[0] - a1 * s[0]; },
        CppSemantics{"y0 = " + lit(b1) + " * s0;", upd}, "Filter1 0 " + lit(b1) + " " + lit(a1));
}

AtomicPtr counter() {
    return make_moore(
        "Counter", {"enable"}, {"y"}, {0.0},
        [](std::span<const double> s, auto, std::span<double> y) { y[0] = s[0]; },
        [](std::span<double> s, std::span<const double> u) {
            if (u[0] >= 0.5) s[0] += 1.0;
        },
        CppSemantics{"y0 = s0;", "if (u0 >= 0.5) s0 = s0 + 1.0;"}, "Counter");
}

AtomicPtr fanout(std::size_t m) {
    std::string body;
    for (std::size_t i = 0; i < m; ++i) body += "y" + std::to_string(i) + " = u0; ";
    return make_combinational(
        "Fanout" + std::to_string(m), {"u"}, numbered("y", m),
        [](auto, std::span<const double> u, std::span<double> y) {
            for (double& v : y) v = u[0];
        },
        CppSemantics{body, ""}, "Fanout " + std::to_string(m));
}

AtomicPtr sample_hold(double init) {
    return make_moore(
        "SampleHold(" + lit(init) + ")", {"u", "trigger"}, {"y"}, {init},
        [](std::span<const double> s, auto, std::span<double> y) { y[0] = s[0]; },
        [](std::span<double> s, std::span<const double> u) {
            if (u[1] >= 0.5) s[0] = u[0];
        },
        CppSemantics{"y0 = s0;", "if (u1 >= 0.5) s0 = u0;"}, "SampleHold " + lit(init));
}

AtomicPtr splitter2(double a1, double b1, double a2, double b2) {
    return make_combinational(
        "Split2(" + lit(a1) + "," + lit(b1) + "," + lit(a2) + "," + lit(b2) + ")", {"x"},
        {"z1", "z2"},
        [a1, b1, a2, b2](auto, std::span<const double> u, std::span<double> y) {
            y[0] = a1 * u[0] + b1;
            y[1] = a2 * u[0] + b2;
        },
        CppSemantics{"y0 = " + lit(a1) + " * u0 + " + lit(b1) + "; y1 = " + lit(a2) +
                         " * u0 + " + lit(b2) + ";",
                     ""},
        "Split2 " + lit(a1) + " " + lit(b1) + " " + lit(a2) + " " + lit(b2));
}

AtomicPtr clock_divider(std::size_t period, std::size_t phase) {
    if (period == 0) throw ModelError("clock_divider: period must be positive");
    phase %= period;
    // State: instant counter modulo period.
    const double p = static_cast<double>(period);
    const double ph = static_cast<double>(phase);
    return make_moore(
        "Clock(" + std::to_string(period) + "," + std::to_string(phase) + ")", {}, {"y"},
        {0.0},
        [ph](std::span<const double> s, auto, std::span<double> y) {
            y[0] = s[0] == ph ? 1.0 : 0.0;
        },
        [p](std::span<double> s, std::span<const double>) {
            s[0] = s[0] + 1.0 >= p ? 0.0 : s[0] + 1.0;
        },
        CppSemantics{"y0 = (s0 == " + lit(ph) + ") ? 1.0 : 0.0;",
                     "s0 = (s0 + 1.0 >= " + lit(p) + ") ? 0.0 : s0 + 1.0;"},
        "Clock " + std::to_string(period) + " " + std::to_string(phase));
}

} // namespace sbd::lib
