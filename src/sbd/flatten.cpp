#include "sbd/flatten.hpp"

#include <cassert>
#include <set>
#include <unordered_map>
#include <utility>

#include "sbd/library.hpp"

namespace sbd {

/// Performs one level of splicing at a time, recursively; memoizes flattened
/// sub-blocks so shared block types are flattened once.
class FlattenContext {
public:
    std::shared_ptr<const MacroBlock> flatten_block(const MacroBlock& m) {
        const auto it = memo_.find(&m);
        if (it != memo_.end()) return it->second;
        auto flat = splice(m);
        memo_.emplace(&m, flat);
        return flat;
    }

private:
    /// Flattens `m` assuming nothing; recursively flattens macro sub-blocks
    /// first, then splices them into a single-level diagram.
    std::shared_ptr<const MacroBlock> splice(const MacroBlock& m) {
        m.validate();

        // Flattened version of each sub-block type (atomic subs stay as is).
        std::vector<std::shared_ptr<const MacroBlock>> flat_sub(m.num_subs());
        for (std::size_t s = 0; s < m.num_subs(); ++s)
            if (!m.sub(s).type->is_atomic())
                flat_sub[s] = flatten_block(static_cast<const MacroBlock&>(*m.sub(s).type));

        auto result = std::make_shared<MacroBlock>(
            m.type_name(), input_names(m), output_names(m));

        // new_atomic[s] maps: for an atomic sub s, inner index 0 -> new idx;
        // for a macro sub s, inner atomic index j -> new idx.
        std::vector<std::vector<std::int32_t>> new_atomic(m.num_subs());
        for (std::size_t s = 0; s < m.num_subs(); ++s) {
            if (m.sub(s).type->is_atomic()) {
                new_atomic[s].push_back(result->add_sub(m.sub(s).name, m.sub(s).type));
            } else {
                const MacroBlock& f = *flat_sub[s];
                new_atomic[s].resize(f.num_subs());
                for (std::size_t j = 0; j < f.num_subs(); ++j)
                    new_atomic[s][j] =
                        result->add_sub(m.sub(s).name + "/" + f.sub(j).name, f.sub(j).type);
            }
        }

        // Resolves a source endpoint of `m` to a source endpoint of the
        // result (macro input, or output of a new atomic sub), following
        // pass-through wires of flattened macro subs.
        auto resolve = [&](Endpoint src) -> Endpoint {
            std::set<std::pair<std::int32_t, std::int32_t>> visited;
            for (;;) {
                if (src.kind == Endpoint::Kind::MacroInput) return src;
                assert(src.kind == Endpoint::Kind::SubOutput);
                const std::size_t s = static_cast<std::size_t>(src.sub);
                if (m.sub(s).type->is_atomic())
                    return Endpoint{Endpoint::Kind::SubOutput, new_atomic[s][0], src.port};
                const MacroBlock& f = *flat_sub[s];
                const Connection* inner =
                    f.writer_of(Endpoint{Endpoint::Kind::MacroOutput, -1, src.port});
                assert(inner != nullptr); // f validated
                if (inner->src.kind == Endpoint::Kind::SubOutput)
                    return Endpoint{Endpoint::Kind::SubOutput,
                                    new_atomic[s][inner->src.sub], inner->src.port};
                // Pass-through: f's output comes straight from f's input
                // `inner->src.port`; chase the wire feeding that input of s.
                if (!visited.insert({src.sub, inner->src.port}).second)
                    throw ModelError("cycle of pass-through wires in macro '" + m.type_name() +
                                     "'");
                const Connection* outer = m.writer_of(Endpoint{
                    Endpoint::Kind::SubInput, src.sub, inner->src.port});
                assert(outer != nullptr); // m validated
                src = outer->src;
            }
        };

        // 1. Splice connections of m itself.
        for (const Connection& c : m.connections()) {
            switch (c.dst.kind) {
            case Endpoint::Kind::MacroOutput:
                result->connect(resolve(c.src), c.dst);
                break;
            case Endpoint::Kind::SubInput: {
                const std::size_t s = static_cast<std::size_t>(c.dst.sub);
                if (m.sub(s).type->is_atomic()) {
                    result->connect(resolve(c.src), Endpoint{Endpoint::Kind::SubInput,
                                                             new_atomic[s][0], c.dst.port});
                } else {
                    // Fan the wire out to every inner consumer of this input
                    // of the flattened sub-block.
                    const MacroBlock& f = *flat_sub[s];
                    for (const Connection& ic : f.connections()) {
                        if (ic.src.kind != Endpoint::Kind::MacroInput ||
                            ic.src.port != c.dst.port)
                            continue;
                        if (ic.dst.kind == Endpoint::Kind::SubInput)
                            result->connect(resolve(c.src),
                                            Endpoint{Endpoint::Kind::SubInput,
                                                     new_atomic[s][ic.dst.sub], ic.dst.port});
                        // MacroOutput dst: a pass-through, handled by
                        // resolve() at its consumers.
                    }
                }
                break;
            }
            default:
                assert(false);
            }
        }

        // 2. Lift internal atomic-to-atomic connections of macro subs.
        for (std::size_t s = 0; s < m.num_subs(); ++s) {
            if (m.sub(s).type->is_atomic()) continue;
            const MacroBlock& f = *flat_sub[s];
            for (const Connection& ic : f.connections()) {
                if (ic.src.kind != Endpoint::Kind::SubOutput ||
                    ic.dst.kind != Endpoint::Kind::SubInput)
                    continue;
                result->connect(
                    Endpoint{Endpoint::Kind::SubOutput, new_atomic[s][ic.src.sub], ic.src.port},
                    Endpoint{Endpoint::Kind::SubInput, new_atomic[s][ic.dst.sub], ic.dst.port});
            }
        }

        // 3. Distribute triggers (triggered-diagram extension). An atomic
        // sub keeps its (resolved) trigger. For a triggered macro sub, the
        // trigger reaches every inner block; where an inner block has its
        // own trigger, the two are conjoined through a synthesized AND.
        std::size_t and_serial = 0;
        const auto conjoin = [&](const std::optional<Endpoint>& outer,
                                 const std::optional<Endpoint>& inner) -> std::optional<Endpoint> {
            if (!outer) return inner;
            if (!inner) return outer;
            const auto and_idx = result->add_sub(
                "trigand/" + std::to_string(and_serial++), lib::logic("AND", 2));
            result->connect(*outer, Endpoint{Endpoint::Kind::SubInput, and_idx, 0});
            result->connect(*inner, Endpoint{Endpoint::Kind::SubInput, and_idx, 1});
            return Endpoint{Endpoint::Kind::SubOutput, and_idx, 0};
        };
        for (std::size_t s = 0; s < m.num_subs(); ++s) {
            std::optional<Endpoint> outer;
            if (m.sub(s).trigger) outer = resolve(*m.sub(s).trigger);
            if (m.sub(s).type->is_atomic()) {
                if (outer) result->set_trigger(new_atomic[s][0], *outer);
                continue;
            }
            const MacroBlock& f = *flat_sub[s];
            for (std::size_t j = 0; j < f.num_subs(); ++j) {
                std::optional<Endpoint> inner;
                if (f.sub(j).trigger) {
                    const Endpoint t = *f.sub(j).trigger;
                    if (t.kind == Endpoint::Kind::SubOutput) {
                        inner = Endpoint{Endpoint::Kind::SubOutput, new_atomic[s][t.sub], t.port};
                    } else {
                        // Inner trigger wired to f's input: chase the outer wire.
                        const Connection* outer_conn =
                            m.writer_of(Endpoint{Endpoint::Kind::SubInput,
                                                 static_cast<std::int32_t>(s), t.port});
                        assert(outer_conn != nullptr);
                        inner = resolve(outer_conn->src);
                    }
                }
                const auto effective = conjoin(outer, inner);
                if (effective) result->set_trigger(new_atomic[s][j], *effective);
            }
        }

        result->validate();
        return result;
    }

    static std::vector<std::string> input_names(const Block& b) {
        std::vector<std::string> v;
        for (std::size_t i = 0; i < b.num_inputs(); ++i) v.push_back(b.input_name(i));
        return v;
    }
    static std::vector<std::string> output_names(const Block& b) {
        std::vector<std::string> v;
        for (std::size_t i = 0; i < b.num_outputs(); ++i) v.push_back(b.output_name(i));
        return v;
    }

    std::unordered_map<const MacroBlock*, std::shared_ptr<const MacroBlock>> memo_;
};

std::shared_ptr<const MacroBlock> flatten(const MacroBlock& root) {
    FlattenContext ctx;
    return ctx.flatten_block(root);
}

graph::Digraph block_dependency_graph(const MacroBlock& flat) {
    graph::Digraph g(flat.num_subs());
    // Data wire A -> B constrains the instant iff B's outputs read
    // same-instant inputs, i.e. B is not Moore-sequential. (On untriggered
    // diagrams this consumer-side rule admits exactly the same cycles as
    // Section 3's producer-side rule — a cycle contains only non-Moore
    // blocks either way — and additionally provides the firing order the
    // simulator executes.) A trigger wire always constrains: even a Moore
    // block's outputs depend on the *current* trigger value (fire vs hold).
    for (const Connection& c : flat.connections()) {
        if (c.src.kind != Endpoint::Kind::SubOutput || c.dst.kind != Endpoint::Kind::SubInput)
            continue;
        const Block& consumer = *flat.sub(c.dst.sub).type;
        if (consumer.block_class() == BlockClass::MooreSequential) continue;
        g.add_edge(static_cast<graph::NodeId>(c.src.sub), static_cast<graph::NodeId>(c.dst.sub));
    }
    for (std::size_t s = 0; s < flat.num_subs(); ++s) {
        const auto& trig = flat.sub(s).trigger;
        if (trig && trig->kind == Endpoint::Kind::SubOutput)
            g.add_edge(static_cast<graph::NodeId>(trig->sub), static_cast<graph::NodeId>(s));
    }
    return g;
}

bool is_acyclic_diagram(const MacroBlock& root) {
    const auto flat = flatten(root);
    return block_dependency_graph(*flat).is_acyclic();
}

BlockClass MacroBlock::block_class() const {
    if (class_cache_) return *class_cache_;
    const auto flat = flatten(*this);
    bool sequential = false;
    for (std::size_t s = 0; s < flat->num_subs(); ++s)
        if (flat->sub(s).type->block_class() != BlockClass::Combinational ||
            flat->sub(s).trigger)
            sequential = true; // held outputs of a triggered block are state
    if (!sequential) {
        class_cache_ = BlockClass::Combinational;
        return *class_cache_;
    }
    // Moore-sequential iff no same-instant path from any input to any
    // output of the flattened diagram. Nodes: inputs, blocks, outputs.
    // Same-instant propagation *into* a block: through data wires iff the
    // block is non-Moore, through trigger wires always (fire-vs-hold is
    // decided by the current trigger value).
    const std::size_t nin = num_inputs();
    const std::size_t nblocks = flat->num_subs();
    const std::size_t nout = num_outputs();
    graph::Digraph g(nin + nblocks + nout);
    auto in_node = [&](std::int32_t p) { return static_cast<graph::NodeId>(p); };
    auto blk_node = [&](std::int32_t s) { return static_cast<graph::NodeId>(nin + s); };
    auto out_node = [&](std::int32_t p) { return static_cast<graph::NodeId>(nin + nblocks + p); };
    const auto src_node = [&](const Endpoint& e) {
        return e.kind == Endpoint::Kind::MacroInput ? in_node(e.port) : blk_node(e.sub);
    };
    for (const Connection& c : flat->connections()) {
        if (c.dst.kind == Endpoint::Kind::MacroOutput) {
            g.add_edge(src_node(c.src), out_node(c.dst.port));
            continue;
        }
        const Block& consumer = *flat->sub(c.dst.sub).type;
        if (consumer.block_class() == BlockClass::MooreSequential)
            continue; // same-instant data never crosses a Moore block
        g.add_edge(src_node(c.src), blk_node(c.dst.sub));
    }
    for (std::size_t s = 0; s < flat->num_subs(); ++s)
        if (flat->sub(s).trigger)
            g.add_edge(src_node(*flat->sub(s).trigger), blk_node(static_cast<std::int32_t>(s)));
    bool moore = true;
    for (std::size_t i = 0; i < nin && moore; ++i) {
        const auto reach = g.reachable_from(in_node(static_cast<std::int32_t>(i)));
        for (std::size_t o = 0; o < nout && moore; ++o)
            if (reach.test(out_node(static_cast<std::int32_t>(o)))) moore = false;
    }
    class_cache_ = moore ? BlockClass::MooreSequential : BlockClass::Sequential;
    return *class_cache_;
}

} // namespace sbd
