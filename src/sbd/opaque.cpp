#include "sbd/opaque.hpp"

#include <algorithm>

#include "graph/digraph.hpp"

namespace sbd {

OpaqueBlock::OpaqueBlock(std::string type_name, std::vector<std::string> inputs,
                         std::vector<std::string> outputs, BlockClass block_class,
                         std::vector<Function> functions,
                         std::vector<std::pair<std::size_t, std::size_t>> order)
    : Block(std::move(type_name), std::move(inputs), std::move(outputs)),
      class_(block_class),
      functions_(std::move(functions)),
      order_(std::move(order)) {
    std::vector<int> writers(num_outputs(), 0);
    for (auto& fn : functions_) {
        std::sort(fn.reads.begin(), fn.reads.end());
        std::sort(fn.writes.begin(), fn.writes.end());
        for (const std::size_t r : fn.reads)
            if (r >= num_inputs())
                throw ModelError("opaque block '" + this->type_name() +
                                 "': function reads a nonexistent input port");
        for (const std::size_t w : fn.writes) {
            if (w >= num_outputs())
                throw ModelError("opaque block '" + this->type_name() +
                                 "': function writes a nonexistent output port");
            ++writers[w];
        }
    }
    for (std::size_t o = 0; o < num_outputs(); ++o)
        if (writers[o] != 1)
            throw ModelError("opaque block '" + this->type_name() + "': output '" +
                             output_name(o) + "' must be written by exactly one function");
    graph::Digraph pdg(functions_.size());
    for (const auto& [a, b] : order_) {
        if (a >= functions_.size() || b >= functions_.size())
            throw ModelError("opaque block '" + this->type_name() +
                             "': order constraint names a nonexistent function");
        pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    }
    if (!pdg.is_acyclic())
        throw ModelError("opaque block '" + this->type_name() +
                         "': the declared call-order relation is cyclic");
}

} // namespace sbd
