#ifndef SBD_SBD_LIBRARY_HPP
#define SBD_SBD_LIBRARY_HPP

#include <memory>
#include <string>
#include <vector>

#include "sbd/block.hpp"

namespace sbd::lib {

using AtomicPtr = std::shared_ptr<const AtomicBlock>;

/// y = c, no inputs.
AtomicPtr constant(double c);
/// y = k * u.
AtomicPtr gain(double k);
/// y = sum(signs[i] * u_i); signs like "++-" (Simulink style).
AtomicPtr sum(const std::string& signs);
/// y = product of n inputs.
AtomicPtr product(std::size_t n);
/// Unit delay, Moore-sequential: y(k) = x(k-1), y(0) = init.
AtomicPtr unit_delay(double init = 0.0);
/// Discrete-time integrator (forward Euler), Moore-sequential:
/// y(k) = s(k); s(k+1) = s(k) + ts * u(k).
AtomicPtr integrator(double ts = 1.0, double init = 0.0);
/// First-order FIR, sequential but NOT Moore (the paper's Section 3
/// example): y(k) = a*x(k) + b*x(k-1).
AtomicPtr fir2(double a, double b);
/// y = clamp(u, lo, hi).
AtomicPtr saturation(double lo, double hi);
/// y = |u|.
AtomicPtr abs_block();
/// y = u1 / u2 (IEEE-754 semantics: x/0 = +-inf, 0/0 = NaN). The deep
/// analyzer (sbd-lint --deep) proves or refutes division-by-zero per use.
AtomicPtr divide();
/// y = min(u1, u2) or max(u1, u2).
AtomicPtr min_block();
AtomicPtr max_block();
/// y = (u1 <op> u2) ? 1 : 0 with op in {"<", "<=", ">", ">=", "==", "!="}.
AtomicPtr relational(const std::string& op);
/// y = (ctrl >= threshold) ? u1 : u2; 3 inputs (u1, ctrl, u2).
AtomicPtr switch_block(double threshold = 0.5);
/// Logical ops over {0,1}-valued doubles: "AND", "OR", "NOT", "XOR".
AtomicPtr logic(const std::string& op, std::size_t n = 2);
/// Dead zone: y = 0 inside [lo,hi], else distance to the zone.
AtomicPtr dead_zone(double lo, double hi);
/// 1-D lookup table with linear interpolation and clamped ends.
AtomicPtr lookup1d(std::vector<double> xs, std::vector<double> ys);
/// Moving average of the last n samples (sequential, non-Moore: includes
/// the current sample).
AtomicPtr moving_average(std::size_t n);
/// Discrete transfer function b0 + b1 z^-1 / (1 + a1 z^-1) realized in
/// direct form II; sequential, non-Moore when b0 != 0.
AtomicPtr first_order_filter(double b0, double b1, double a1);
/// Moore counter: y(k) = s(k); s(k+1) = s(k) + 1 if enable else s(k).
AtomicPtr counter();
/// Fan-out helper with m outputs all equal to the input (combinational).
AtomicPtr fanout(std::size_t m);
/// Sample-and-hold, Moore: y = held value; update: if trigger>=0.5 hold u.
AtomicPtr sample_hold(double init = 0.0);
/// Affine splitter, combinational: y1 = a1*u + b1; y2 = a2*u + b2.
AtomicPtr splitter2(double a1, double b1, double a2, double b2);
/// Clock divider, Moore: emits 1 every `period` instants (at instants k
/// with k mod period == phase), else 0. No inputs. Together with triggers
/// this realizes the timed/multi-rate diagrams of Lublinerman-Tripakis
/// 2008a: a block triggered by clock_divider(n) runs at 1/n rate.
AtomicPtr clock_divider(std::size_t period, std::size_t phase = 0);

/// Generic stateless block with custom arity and semantics. `cpp`
/// optionally supplies emit-time C++ bodies (see CppSemantics).
AtomicPtr make_combinational(
    std::string name, std::vector<std::string> inputs, std::vector<std::string> outputs,
    AtomicBlock::OutputFn fn, CppSemantics cpp = {}, std::string text_spec = {});

/// Generic Moore-sequential block (outputs read state only).
AtomicPtr make_moore(std::string name, std::vector<std::string> inputs,
                     std::vector<std::string> outputs, std::vector<double> init_state,
                     AtomicBlock::OutputFn output_fn, AtomicBlock::UpdateFn update_fn,
                     CppSemantics cpp = {}, std::string text_spec = {});

/// Generic non-Moore sequential block.
AtomicPtr make_sequential(std::string name, std::vector<std::string> inputs,
                          std::vector<std::string> outputs, std::vector<double> init_state,
                          AtomicBlock::OutputFn output_fn, AtomicBlock::UpdateFn update_fn,
                          CppSemantics cpp = {}, std::string text_spec = {});

} // namespace sbd::lib

#endif
