#ifndef SBD_SBD_OPAQUE_HPP
#define SBD_SBD_OPAQUE_HPP

#include <utility>
#include <vector>

#include "sbd/block.hpp"

namespace sbd {

/// A black-box block known only by its exported interface — the paper's IP
/// scenario taken literally: "sub-blocks should be seen as black boxes
/// supplied with some interface information". An opaque block carries the
/// same information a generated profile exports (interface functions with
/// their read/written ports, the profile dependency graph, the block
/// class) and nothing else. Diagrams containing opaque blocks can be
/// analyzed and modularly compiled, but not simulated or executed.
class OpaqueBlock final : public Block {
public:
    struct Function {
        std::string name;
        std::vector<std::size_t> reads;  ///< input ports, sorted
        std::vector<std::size_t> writes; ///< output ports, sorted
        SourceLoc loc = {};              ///< the `function` statement, if parsed
    };

    /// `order` edges (a, b) mean function a must be called before b within
    /// each synchronous instant. Throws ModelError if a port index is out
    /// of range, an output has zero or several writers, or the order
    /// relation is cyclic.
    OpaqueBlock(std::string type_name, std::vector<std::string> inputs,
                std::vector<std::string> outputs, BlockClass block_class,
                std::vector<Function> functions,
                std::vector<std::pair<std::size_t, std::size_t>> order);

    bool is_atomic() const override { return true; }
    bool is_opaque() const override { return true; }
    BlockClass block_class() const override { return class_; }

    const std::vector<Function>& functions() const { return functions_; }
    const std::vector<std::pair<std::size_t, std::size_t>>& order() const { return order_; }

private:
    BlockClass class_;
    std::vector<Function> functions_;
    std::vector<std::pair<std::size_t, std::size_t>> order_;
};

} // namespace sbd

#endif
