#ifndef SBD_SBD_BLOCK_HPP
#define SBD_SBD_BLOCK_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbd {

/// Raised for structurally invalid diagrams (unconnected inputs, duplicate
/// writers, bad port references, ...).
class ModelError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A position in a textual .sbd source: 1-based line and column, (0, 0) when
/// the element was built programmatically. Carried from the parser into
/// blocks, sub-block instances and connections so that the static-analysis
/// layer (src/analysis) can point diagnostics at the offending source line.
struct SourceLoc {
    std::int32_t line = 0;
    std::int32_t col = 0;

    bool valid() const { return line > 0; }
    bool operator==(const SourceLoc&) const = default;
};

/// The paper's three-way classification of blocks (Section 3): combinational
/// blocks are stateless; sequential blocks have internal state; a
/// Moore-sequential block's outputs depend only on its current state, never
/// on its current inputs (e.g. a unit delay).
enum class BlockClass { Combinational, Sequential, MooreSequential };

const char* to_string(BlockClass c);

class Block;
using BlockPtr = std::shared_ptr<const Block>;

/// Common interface of atomic and macro blocks: a named type with ordered,
/// named input and output ports.
class Block {
public:
    Block(std::string type_name, std::vector<std::string> inputs, std::vector<std::string> outputs);
    virtual ~Block() = default;

    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;

    const std::string& type_name() const { return type_name_; }
    std::size_t num_inputs() const { return inputs_.size(); }
    std::size_t num_outputs() const { return outputs_.size(); }
    const std::string& input_name(std::size_t i) const { return inputs_.at(i); }
    const std::string& output_name(std::size_t i) const { return outputs_.at(i); }

    /// Index of the named port; throws ModelError if absent.
    std::size_t input_index(const std::string& name) const;
    std::size_t output_index(const std::string& name) const;

    virtual bool is_atomic() const = 0;
    /// True for interface-only black boxes (see OpaqueBlock): they can be
    /// analyzed and compiled against, but carry no executable semantics.
    virtual bool is_opaque() const { return false; }
    virtual BlockClass block_class() const = 0;

    /// Where this block's definition starts in its .sbd source, if any
    /// (set by the parser before the block is shared).
    void set_def_loc(SourceLoc loc) { def_loc_ = loc; }
    const SourceLoc& def_loc() const { return def_loc_; }

private:
    std::string type_name_;
    std::vector<std::string> inputs_;
    std::vector<std::string> outputs_;
    SourceLoc def_loc_;
};

/// C++ source form of an atomic block's semantics, used by the C++ emitter
/// so that generated code is compilable stand-alone. Bodies are statement
/// lists over variables u0,u1,... (inputs), s0,s1,... (state) and
/// y0,y1,... (outputs); <cmath> and <algorithm> are in scope.
struct CppSemantics {
    std::string output_body; ///< assigns y*; reads u*, s*
    std::string update_body; ///< assigns s*; reads u*, s* (sequential only)
};

/// An atomic block with executable synchronous semantics:
///   outputs(k) = output_fn(state(k), inputs(k))   (inputs ignored if Moore)
///   state(k+1) = update_fn(state(k), inputs(k))   (sequential only)
class AtomicBlock final : public Block {
public:
    /// Computes outputs from state and current inputs. For Moore-sequential
    /// blocks the simulator passes an *empty* input span, so semantics that
    /// illegally peek at inputs fault loudly in tests.
    using OutputFn =
        std::function<void(std::span<const double> state, std::span<const double> inputs,
                           std::span<double> outputs)>;
    /// Advances the state at the end of the synchronous instant.
    using UpdateFn = std::function<void(std::span<double> state, std::span<const double> inputs)>;

    AtomicBlock(std::string type_name, std::vector<std::string> inputs,
                std::vector<std::string> outputs, BlockClass cls, std::vector<double> init_state,
                OutputFn output_fn, UpdateFn update_fn);

    bool is_atomic() const override { return true; }
    BlockClass block_class() const override { return class_; }

    const std::vector<double>& initial_state() const { return init_state_; }

    void compute_outputs(std::span<const double> state, std::span<const double> inputs,
                         std::span<double> outputs) const;
    void update_state(std::span<double> state, std::span<const double> inputs) const;

    /// Attaches emit-time C++ semantics (call before sharing the block).
    void set_cpp_semantics(CppSemantics cpp) { cpp_ = std::move(cpp); }
    const std::optional<CppSemantics>& cpp_semantics() const { return cpp_; }

    /// The block's .sbd type spec ("Gain 2"), set by the standard library
    /// factories and used by the textual serializer; empty for custom blocks.
    void set_text_spec(std::string spec) { text_spec_ = std::move(spec); }
    const std::string& text_spec() const { return text_spec_; }

private:
    BlockClass class_;
    std::vector<double> init_state_;
    OutputFn output_fn_;
    UpdateFn update_fn_;
    std::optional<CppSemantics> cpp_;
    std::string text_spec_;
};

/// A reference to a port in the internal diagram of a macro block.
struct Endpoint {
    enum class Kind : std::uint8_t { MacroInput, MacroOutput, SubInput, SubOutput };
    Kind kind = Kind::MacroInput;
    std::int32_t sub = -1; ///< sub-block index for Sub* kinds, -1 otherwise
    std::int32_t port = 0;

    bool operator==(const Endpoint&) const = default;
    bool is_source() const { return kind == Kind::MacroInput || kind == Kind::SubOutput; }
};

std::string to_string(const Endpoint& e);

/// A wire from a source (macro input or sub output) to a destination (sub
/// input or macro output). A source may fan out to many destinations; each
/// destination has exactly one source.
struct Connection {
    Endpoint src;
    Endpoint dst;
    SourceLoc loc; ///< the `connect` statement's position, if parsed
};

/// A macro (composite) block: an encapsulated diagram of sub-block
/// instances.
///
/// Macro blocks are built with add_sub()/connect() and then frozen by
/// sharing them as `BlockPtr` (`shared_ptr<const Block>`); all analysis
/// entry points take const references.
class MacroBlock final : public Block {
public:
    struct SubBlock {
        std::string name; ///< instance name, unique within the macro
        BlockPtr type;
        /// Triggered-diagram extension (Lublinerman & Tripakis 2008a): when
        /// set, the instance fires only at instants where this source signal
        /// is >= 0.5; otherwise its outputs hold their previous values
        /// (initially 0) and its state does not advance.
        std::optional<Endpoint> trigger;
        SourceLoc loc;         ///< the `sub` statement's position, if parsed
        SourceLoc trigger_loc; ///< the `trigger` statement's position, if parsed
    };

    MacroBlock(std::string type_name, std::vector<std::string> inputs,
               std::vector<std::string> outputs);

    /// Adds a sub-block instance; returns its index.
    std::int32_t add_sub(std::string instance_name, BlockPtr type, SourceLoc loc = {});

    /// Wires src -> dst. Throws ModelError on malformed endpoints or if dst
    /// already has a writer.
    void connect(Endpoint src, Endpoint dst, SourceLoc loc = {});

    /// Name-based convenience: "inst.port" addresses a sub-block port,
    /// a bare "port" addresses a port of this macro block.
    void connect(const std::string& from, const std::string& to, SourceLoc loc = {});

    /// Resolves textual endpoint syntax ("inst.port" or a bare macro port)
    /// without connecting; as_source selects input vs output orientation.
    /// Throws ModelError on unknown instances or ports. Public so that the
    /// diagnostics layer can classify connection problems precisely.
    Endpoint resolve_endpoint(const std::string& text, bool as_source) const {
        return parse_endpoint(text, as_source);
    }

    /// Makes sub-block `instance` triggered by the source `src` (a macro
    /// input or a sub-block output). A sub-block has at most one trigger.
    void set_trigger(std::int32_t sub, Endpoint src, SourceLoc loc = {});
    void set_trigger(const std::string& instance, const std::string& src, SourceLoc loc = {});

    std::size_t num_subs() const { return subs_.size(); }
    const SubBlock& sub(std::size_t i) const { return subs_.at(i); }
    /// Index of the named instance; throws if absent.
    std::int32_t sub_index(const std::string& instance_name) const;

    const std::vector<Connection>& connections() const { return conns_; }

    /// The unique connection writing `dst`, or nullptr if unconnected.
    const Connection* writer_of(const Endpoint& dst) const;

    /// Checks structural well-formedness: every sub input and every macro
    /// output has exactly one writer; endpoints in range. Throws ModelError
    /// describing the first problem found.
    void validate() const;

    bool is_atomic() const override { return false; }

    /// Derived per Section 3 "the definitions extend to macro blocks": the
    /// class is computed on the flattened diagram (combinational if no
    /// sequential sub; Moore-sequential if additionally no combinational
    /// path from any input to any output). Cached after first call.
    BlockClass block_class() const override;

private:
    friend class FlattenContext;
    static std::uint64_t dst_key(const Endpoint& e);
    Endpoint parse_endpoint(const std::string& text, bool as_source) const;

    std::vector<SubBlock> subs_;
    std::vector<Connection> conns_;
    std::unordered_map<std::string, std::int32_t> sub_names_;
    std::unordered_map<std::uint64_t, std::int32_t> writer_index_;
    mutable std::optional<BlockClass> class_cache_;
};

} // namespace sbd

#endif
