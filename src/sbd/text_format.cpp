#include "sbd/text_format.hpp"

#include <fstream>
#include <functional>
#include <sstream>

#include "graph/digraph.hpp"
#include "sbd/library.hpp"
#include "sbd/opaque.hpp"

namespace sbd::text {

namespace {

struct Token {
    std::string text;
    int line;
    int col;
};

SourceLoc loc_of(const Token& t) { return SourceLoc{t.line, t.col}; }

std::vector<Token> tokenize(std::istream& in) {
    std::vector<Token> out;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        std::size_t j = 0;
        while (j < line.size()) {
            const char c = line[j];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++j;
                continue;
            }
            // Allow '{' and '}' to stick to neighbours.
            if (c == '{' || c == '}') {
                out.push_back({std::string(1, c), lineno, static_cast<int>(j + 1)});
                ++j;
                continue;
            }
            const std::size_t start = j;
            while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j])) &&
                   line[j] != '{' && line[j] != '}')
                ++j;
            out.push_back({line.substr(start, j - start), lineno, static_cast<int>(start + 1)});
        }
    }
    return out;
}

/// Internal parse-abort signal; converted to ModelError (strict mode) or a
/// recorded ParseIssue (lenient mode) by parse_sbd. An empty code means a
/// structural problem rethrown from the model layer.
struct ParseFail {
    std::string code;
    SourceLoc loc;
    std::string message;
};

[[noreturn]] void fail(const Token& t, const char* code, const std::string& msg) {
    throw ParseFail{code, loc_of(t), msg};
}

double num(const Token& t) {
    std::size_t pos = 0;
    double v = 0;
    try {
        v = std::stod(t.text, &pos);
    } catch (const std::exception&) {
        fail(t, "SBD002", "expected a number, got '" + t.text + "'");
    }
    if (pos != t.text.size()) fail(t, "SBD002", "trailing junk in number '" + t.text + "'");
    return v;
}

std::size_t natural(const Token& t) {
    const double v = num(t);
    if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v)))
        fail(t, "SBD002", "expected a non-negative integer, got '" + t.text + "'");
    return static_cast<std::size_t>(v);
}

/// Builds an atomic block from its type token and parameter tokens.
BlockPtr make_atomic(const Token& type, std::span<const Token> params) {
    const auto want = [&](std::size_t n) {
        if (params.size() != n)
            fail(type, "SBD002", type.text + " expects " + std::to_string(n) +
                                     " parameter(s), got " + std::to_string(params.size()));
    };
    const std::string& t = type.text;
    if (t == "Constant") { want(1); return lib::constant(num(params[0])); }
    if (t == "Gain") { want(1); return lib::gain(num(params[0])); }
    if (t == "Sum") { want(1); return lib::sum(params[0].text); }
    if (t == "Product") { want(1); return lib::product(natural(params[0])); }
    if (t == "UnitDelay") { want(1); return lib::unit_delay(num(params[0])); }
    if (t == "Integrator") { want(2); return lib::integrator(num(params[0]), num(params[1])); }
    if (t == "Fir2") { want(2); return lib::fir2(num(params[0]), num(params[1])); }
    if (t == "Saturation") { want(2); return lib::saturation(num(params[0]), num(params[1])); }
    if (t == "Abs") { want(0); return lib::abs_block(); }
    if (t == "Div") { want(0); return lib::divide(); }
    if (t == "Min") { want(0); return lib::min_block(); }
    if (t == "Max") { want(0); return lib::max_block(); }
    if (t == "Relational") { want(1); return lib::relational(params[0].text); }
    if (t == "Switch") { want(1); return lib::switch_block(num(params[0])); }
    if (t == "Logic") { want(2); return lib::logic(params[0].text, natural(params[1])); }
    if (t == "DeadZone") { want(2); return lib::dead_zone(num(params[0]), num(params[1])); }
    if (t == "MovingAvg") { want(1); return lib::moving_average(natural(params[0])); }
    if (t == "Filter1") {
        want(3);
        return lib::first_order_filter(num(params[0]), num(params[1]), num(params[2]));
    }
    if (t == "Counter") { want(0); return lib::counter(); }
    if (t == "Fanout") { want(1); return lib::fanout(natural(params[0])); }
    if (t == "SampleHold") { want(1); return lib::sample_hold(num(params[0])); }
    if (t == "Clock") {
        want(2);
        return lib::clock_divider(natural(params[0]), natural(params[1]));
    }
    if (t == "Split2") {
        want(4);
        return lib::splitter2(num(params[0]), num(params[1]), num(params[2]), num(params[3]));
    }
    if (t == "Lookup1D") {
        std::vector<double> xs, ys;
        bool after_slash = false;
        for (const Token& p : params) {
            if (p.text == "/") { after_slash = true; continue; }
            (after_slash ? ys : xs).push_back(num(p));
        }
        if (!after_slash) fail(type, "SBD002", "Lookup1D needs 'x.. / y..'");
        return lib::lookup1d(std::move(xs), std::move(ys));
    }
    fail(type, "SBD002", "unknown block type '" + t + "'");
}

/// Index of `name` in `names`, or nullopt (used for extern port lookups
/// where a miss must not abort the whole lenient parse).
std::optional<std::size_t> find_name(const std::vector<std::string>& names,
                                     const std::string& name) {
    for (std::size_t p = 0; p < names.size(); ++p)
        if (names[p] == name) return p;
    return std::nullopt;
}

ParsedFile parse_sbd_impl(std::istream& in, ParseMode mode) {
    const auto toks = tokenize(in);
    const bool lenient = mode == ParseMode::Lenient;
    std::size_t i = 0;
    const auto eof_loc = [&]() -> SourceLoc {
        return toks.empty() ? SourceLoc{1, 1} : loc_of(toks.back());
    };
    const auto peek = [&]() -> const Token& {
        if (i >= toks.size()) throw ParseFail{"SBD001", eof_loc(), "unexpected end of file"};
        return toks[i];
    };
    const auto next = [&]() -> const Token& {
        const Token& t = peek();
        ++i;
        return t;
    };
    const auto expect = [&](const std::string& what) -> const Token& {
        const Token& t = next();
        if (t.text != what) fail(t, "SBD001", "expected '" + what + "', got '" + t.text + "'");
        return t;
    };

    ParsedFile file;
    // Records a problem (lenient) or aborts the parse with it (strict).
    const auto problem = [&](const char* code, const Token& t, const std::string& msg) {
        if (!lenient) throw ParseFail{code, loc_of(t), msg};
        file.issues.push_back(ParseIssue{code, msg, loc_of(t)});
    };
    const std::vector<std::string> stmt_keywords = {"inputs", "outputs", "sub",    "connect",
                                                    "trigger", "class",  "function", "order",
                                                    "}"};
    const auto is_keyword = [&](const std::string& s) {
        for (const auto& k : stmt_keywords)
            if (k == s) return true;
        return s == "block" || s == "extern";
    };
    // Lenient-mode recovery: skip to the start of the next statement.
    const auto resync_statement = [&] {
        while (i < toks.size() && !is_keyword(toks[i].text)) ++i;
    };

    while (i < toks.size()) {
        try {
        bool is_extern = false;
        if (peek().text == "extern") {
            next();
            is_extern = true;
        }
        expect("block");
        const Token name = next();
        const bool duplicate = file.blocks.contains(name.text);
        if (duplicate)
            problem("SBD001", name, "duplicate block '" + name.text + "'");
        expect("{");

        std::vector<std::string> inputs, outputs;
        struct SubDecl {
            Token inst;
            Token type;
            std::vector<Token> params;
        };
        std::vector<SubDecl> subs;
        std::vector<std::pair<Token, Token>> wires;    // (src, dst)
        std::vector<std::pair<Token, Token>> triggers; // (inst, src)
        // extern-block declarations
        struct FnDecl {
            Token name;
            std::vector<Token> reads;
            std::vector<Token> writes;
        };
        std::vector<FnDecl> fn_decls;
        std::vector<std::pair<Token, Token>> order_decls; // (before, after)
        std::optional<Token> class_decl;

        for (;;) {
            if (lenient && i >= toks.size()) {
                problem("SBD001", toks.back(), "unclosed block '" + name.text + "'");
                break;
            }
            const Token kw = next();
            if (kw.text == "}") break;
            try {
            if (kw.text == "inputs" || kw.text == "outputs") {
                auto& dst = kw.text == "inputs" ? inputs : outputs;
                while (i < toks.size() && !is_keyword(peek().text)) dst.push_back(next().text);
            } else if (kw.text == "sub") {
                SubDecl d{next(), next(), {}};
                while (i < toks.size() && !is_keyword(peek().text)) d.params.push_back(next());
                subs.push_back(std::move(d));
            } else if (kw.text == "connect") {
                const Token src = next();
                const Token dst = next();
                wires.emplace_back(src, dst);
            } else if (kw.text == "trigger") {
                const Token inst = next();
                const Token src = next();
                triggers.emplace_back(inst, src);
            } else if (kw.text == "class" && is_extern) {
                class_decl = next();
            } else if (kw.text == "function" && is_extern) {
                FnDecl d{next(), {}, {}};
                while (i < toks.size() &&
                       (peek().text == "reads" || peek().text == "writes")) {
                    const bool into_reads = next().text == "reads";
                    auto& dst = into_reads ? d.reads : d.writes;
                    while (i < toks.size() && !is_keyword(peek().text) &&
                           peek().text != "reads" && peek().text != "writes")
                        dst.push_back(next());
                }
                fn_decls.push_back(std::move(d));
            } else if (kw.text == "order" && is_extern) {
                const Token before = next();
                const Token after = next();
                order_decls.emplace_back(before, after);
            } else {
                fail(kw, "SBD001", "unexpected token '" + kw.text + "' in block body");
            }
            } catch (const ParseFail& f) {
                if (!lenient) throw;
                file.issues.push_back(ParseIssue{f.code, f.message, f.loc});
                resync_statement();
            }
        }

        if (is_extern) {
            bool bad = duplicate;
            const auto oops = [&](const char* code, const Token& t, const std::string& msg) {
                bad = true;
                problem(code, t, msg);
            };
            if (!subs.empty() || !wires.empty() || !triggers.empty())
                oops("SBD001", name, "extern blocks declare an interface only (no sub/connect)");
            BlockClass cls = BlockClass::Combinational;
            if (class_decl) {
                if (class_decl->text == "combinational") cls = BlockClass::Combinational;
                else if (class_decl->text == "sequential") cls = BlockClass::Sequential;
                else if (class_decl->text == "moore") cls = BlockClass::MooreSequential;
                else oops("SBD001", *class_decl, "class must be combinational|sequential|moore");
            }
            std::vector<OpaqueBlock::Function> fns;
            std::vector<std::vector<const Token*>> writers(outputs.size());
            for (const auto& d : fn_decls) {
                OpaqueBlock::Function fn;
                fn.name = d.name.text;
                fn.loc = loc_of(d.name);
                for (const Token& t : d.reads) {
                    if (const auto p = find_name(inputs, t.text)) fn.reads.push_back(*p);
                    else
                        oops("SBD014", t, "extern block '" + name.text + "': unknown input port '" +
                                              t.text + "' read by function '" + fn.name + "'");
                }
                for (const Token& t : d.writes) {
                    if (const auto p = find_name(outputs, t.text)) {
                        fn.writes.push_back(*p);
                        writers[*p].push_back(&d.name);
                    } else {
                        oops("SBD014", t, "extern block '" + name.text +
                                              "': unknown output port '" + t.text +
                                              "' written by function '" + fn.name + "'");
                    }
                }
                fns.push_back(std::move(fn));
            }
            for (std::size_t o = 0; o < outputs.size(); ++o) {
                if (writers[o].size() == 1) continue;
                if (writers[o].empty())
                    oops("SBD015", name, "extern block '" + name.text + "': output '" +
                                             outputs[o] + "' is written by no function");
                else
                    oops("SBD015", *writers[o][1],
                         "extern block '" + name.text + "': output '" + outputs[o] +
                             "' is written by " + std::to_string(writers[o].size()) +
                             " functions (expected exactly one)");
            }
            std::vector<std::pair<std::size_t, std::size_t>> order_edges;
            for (const auto& [a, b] : order_decls) {
                const auto fa = [&](const Token& t) -> std::optional<std::size_t> {
                    for (std::size_t f = 0; f < fns.size(); ++f)
                        if (fns[f].name == t.text) return f;
                    oops("SBD017", t, "extern block '" + name.text + "': order constraint names "
                                      "unknown function '" + t.text + "'");
                    return std::nullopt;
                };
                const auto ia = fa(a), ib = fa(b);
                if (ia && ib) order_edges.emplace_back(*ia, *ib);
            }
            {
                graph::Digraph pdg(fns.size());
                for (const auto& [a, b] : order_edges)
                    pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
                if (const auto cyc = pdg.find_cycle()) {
                    std::string path;
                    for (const auto v : *cyc) path += fns[v].name + " -> ";
                    path += fns[cyc->front()].name;
                    const Token& at = order_decls.empty() ? name : order_decls.front().first;
                    oops("SBD016", at, "extern block '" + name.text +
                                           "': declared call-order relation is cyclic: " + path);
                }
            }
            if (!bad) {
                try {
                    auto opaque = std::make_shared<OpaqueBlock>(name.text, inputs, outputs, cls,
                                                                std::move(fns),
                                                                std::move(order_edges));
                    opaque->set_def_loc(loc_of(name));
                    file.blocks.emplace(name.text, std::move(opaque));
                    file.order.push_back(name.text);
                } catch (const ModelError& e) {
                    problem("SBD001", name, e.what());
                }
            }
            continue; // an extern block cannot be the root
        }

        auto macro = std::make_shared<MacroBlock>(name.text, inputs, outputs);
        macro->set_def_loc(loc_of(name));
        for (const auto& d : subs) {
            BlockPtr type;
            const auto it = file.blocks.find(d.type.text);
            try {
                if (it != file.blocks.end()) {
                    if (!d.params.empty())
                        fail(d.type, "SBD002",
                             "block reference '" + d.type.text + "' takes no parameters");
                    type = it->second;
                } else {
                    type = make_atomic(d.type, d.params);
                }
                macro->add_sub(d.inst.text, std::move(type), loc_of(d.inst));
            } catch (const ParseFail& f) {
                if (!lenient) throw;
                file.issues.push_back(ParseIssue{f.code, f.message, f.loc});
            } catch (const ModelError& e) {
                problem("SBD002", d.inst, e.what());
            }
        }
        for (const auto& [src, dst] : wires) {
            // A bare name on both sides is a legal input->output pass-through
            // (distinct namespaces); identical dotted endpoints can never be.
            if (src.text == dst.text && src.text.find('.') != std::string::npos) {
                problem("SBD005", src,
                        "self-connection: source and destination are both '" + src.text + "'");
                continue;
            }
            Endpoint se, de;
            try {
                se = macro->resolve_endpoint(src.text, true);
            } catch (const ModelError& e) {
                problem("SBD003", src, e.what());
                continue;
            }
            try {
                de = macro->resolve_endpoint(dst.text, false);
            } catch (const ModelError& e) {
                problem("SBD003", dst, e.what());
                continue;
            }
            if (se.kind == Endpoint::Kind::SubOutput && de.kind == Endpoint::Kind::SubInput &&
                se.sub == de.sub) {
                // An output wired straight back into an input of the same
                // instance is an instantaneous self-loop unless the block is
                // Moore-sequential (whose outputs lag its inputs).
                BlockClass cls = BlockClass::MooreSequential;
                try {
                    cls = macro->sub(se.sub).type->block_class();
                } catch (const ModelError&) {
                    // Undeterminable class (e.g. nested flattening failure):
                    // give the wire the benefit of the doubt here.
                }
                if (cls != BlockClass::MooreSequential) {
                    problem("SBD005", src,
                            "self-connection: output '" + src.text + "' of non-Moore sub-block '" +
                                macro->sub(se.sub).name + "' feeds its own input '" + dst.text +
                                "'");
                    continue;
                }
            }
            if (macro->writer_of(de) != nullptr) {
                problem("SBD004", dst,
                        "multiply-driven: '" + dst.text + "' already has a writer");
                continue;
            }
            try {
                macro->connect(se, de, loc_of(src));
            } catch (const ModelError& e) {
                problem("SBD003", src, e.what());
            }
        }
        for (const auto& [inst, src] : triggers) {
            std::int32_t s = -1;
            try {
                s = macro->sub_index(inst.text);
            } catch (const ModelError& e) {
                problem("SBD006", inst, std::string("malformed trigger: ") + e.what());
                continue;
            }
            Endpoint se;
            try {
                se = macro->resolve_endpoint(src.text, true);
            } catch (const ModelError& e) {
                problem("SBD006", src, std::string("malformed trigger: bad source: ") + e.what());
                continue;
            }
            if (macro->sub(s).trigger) {
                problem("SBD006", inst,
                        "malformed trigger: sub-block '" + inst.text + "' already has a trigger");
                continue;
            }
            try {
                macro->set_trigger(s, se, loc_of(inst));
            } catch (const ModelError& e) {
                problem("SBD006", inst, std::string("malformed trigger: ") + e.what());
            }
        }
        if (!lenient) {
            // Strict mode keeps the historical contract: a structurally
            // incomplete block aborts the parse. Lenient mode leaves the
            // checks to the analysis passes, which report precise per-port
            // diagnostics (SBD007/SBD008).
            try {
                macro->validate();
            } catch (const ModelError& e) {
                throw ParseFail{"", loc_of(name), e.what()};
            }
        }
        if (!duplicate) {
            file.blocks.emplace(name.text, macro);
            file.order.push_back(name.text);
            file.root = macro;
        }
        } catch (const ParseFail& f) {
            if (!lenient) throw;
            file.issues.push_back(ParseIssue{f.code, f.message, f.loc});
            // Resync to the next top-level definition.
            while (i < toks.size() && toks[i].text != "block" && toks[i].text != "extern") ++i;
        }
    }
    if (!file.root && !lenient) throw ModelError("sbd: no block definitions found");
    if (!file.root && lenient && file.issues.empty())
        file.issues.push_back(ParseIssue{"SBD001", "no block definitions found", {1, 1}});
    return file;
}

} // namespace

ParsedFile parse_sbd(std::istream& in, ParseMode mode) {
    try {
        return parse_sbd_impl(in, mode);
    } catch (const ParseFail& f) {
        std::string msg = "sbd:" + std::to_string(f.loc.line) + ":" + std::to_string(f.loc.col) +
                          ": ";
        if (!f.code.empty()) msg += "[" + f.code + "] ";
        throw ModelError(msg + f.message);
    }
}

ParsedFile parse_sbd_string(const std::string& text, ParseMode mode) {
    std::istringstream is(text);
    return parse_sbd(is, mode);
}

ParsedFile parse_sbd_file(const std::string& path, ParseMode mode) {
    std::ifstream f(path);
    if (!f) throw ModelError("sbd: cannot open '" + path + "'");
    return parse_sbd(f, mode);
}

namespace {

std::string endpoint_name(const MacroBlock& m, const Endpoint& e) {
    switch (e.kind) {
    case Endpoint::Kind::MacroInput: return m.input_name(e.port);
    case Endpoint::Kind::MacroOutput: return m.output_name(e.port);
    case Endpoint::Kind::SubInput:
        return m.sub(e.sub).name + "." + m.sub(e.sub).type->input_name(e.port);
    case Endpoint::Kind::SubOutput:
        return m.sub(e.sub).name + "." + m.sub(e.sub).type->output_name(e.port);
    }
    return "?";
}

void check_token(const std::string& s) {
    if (s.empty() || s.find_first_of(" \t#{}") != std::string::npos ||
        (s.find('.') != std::string::npos))
        throw ModelError("sbd writer: name '" + s + "' is not representable");
}

void write_block(const MacroBlock& m, std::ostream& os,
                 std::map<const Block*, std::string>& emitted, int& serial);

std::string fresh_name(const Block& b, std::map<const Block*, std::string>& emitted,
                       int& serial) {
    std::string name = b.type_name();
    for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    for (const auto& [blk, nm] : emitted)
        if (nm == name) name += "_" + std::to_string(++serial);
    emitted.emplace(&b, name);
    return name;
}

void write_opaque(const OpaqueBlock& b, std::ostream& os,
                  std::map<const Block*, std::string>& emitted, int& serial) {
    if (emitted.contains(&b)) return;
    const std::string name = fresh_name(b, emitted, serial);
    os << "extern block " << name << " {\n  inputs";
    for (std::size_t p = 0; p < b.num_inputs(); ++p) {
        check_token(b.input_name(p));
        os << " " << b.input_name(p);
    }
    os << "\n  outputs";
    for (std::size_t p = 0; p < b.num_outputs(); ++p) {
        check_token(b.output_name(p));
        os << " " << b.output_name(p);
    }
    const char* cls = "combinational";
    if (b.block_class() == BlockClass::Sequential) cls = "sequential";
    if (b.block_class() == BlockClass::MooreSequential) cls = "moore";
    os << "\n  class " << cls << "\n";
    for (const auto& fn : b.functions()) {
        check_token(fn.name);
        os << "  function " << fn.name;
        if (!fn.reads.empty()) {
            os << " reads";
            for (const std::size_t p : fn.reads) os << " " << b.input_name(p);
        }
        if (!fn.writes.empty()) {
            os << " writes";
            for (const std::size_t p : fn.writes) os << " " << b.output_name(p);
        }
        os << "\n";
    }
    for (const auto& [a, c] : b.order())
        os << "  order " << b.functions()[a].name << " " << b.functions()[c].name << "\n";
    os << "}\n\n";
}

void write_block(const MacroBlock& m, std::ostream& os,
                 std::map<const Block*, std::string>& emitted, int& serial) {
    if (emitted.contains(&m)) return;
    // Inner macro and extern definitions first.
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const Block& t = *m.sub(s).type;
        if (t.is_opaque())
            write_opaque(static_cast<const OpaqueBlock&>(t), os, emitted, serial);
        else if (!t.is_atomic())
            write_block(static_cast<const MacroBlock&>(t), os, emitted, serial);
    }

    const std::string name = fresh_name(m, emitted, serial);

    os << "block " << name << " {\n";
    os << "  inputs";
    for (std::size_t p = 0; p < m.num_inputs(); ++p) {
        check_token(m.input_name(p));
        os << " " << m.input_name(p);
    }
    os << "\n  outputs";
    for (std::size_t p = 0; p < m.num_outputs(); ++p) {
        check_token(m.output_name(p));
        os << " " << m.output_name(p);
    }
    os << "\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        check_token(m.sub(s).name);
        os << "  sub " << m.sub(s).name << " ";
        if (m.sub(s).type->is_opaque() || !m.sub(s).type->is_atomic()) {
            os << emitted.at(m.sub(s).type.get());
        } else {
            const auto& a = static_cast<const AtomicBlock&>(*m.sub(s).type);
            if (a.text_spec().empty())
                throw ModelError("sbd writer: custom atomic block '" + a.type_name() +
                                 "' has no textual spec");
            os << a.text_spec();
        }
        os << "\n";
    }
    for (const Connection& c : m.connections())
        os << "  connect " << endpoint_name(m, c.src) << " " << endpoint_name(m, c.dst) << "\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        if (m.sub(s).trigger)
            os << "  trigger " << m.sub(s).name << " " << endpoint_name(m, *m.sub(s).trigger)
               << "\n";
    os << "}\n\n";
}

} // namespace

std::string to_sbd(const MacroBlock& root) {
    std::ostringstream os;
    std::map<const Block*, std::string> emitted;
    int serial = 0;
    write_block(root, os, emitted, serial);
    return os.str();
}

} // namespace sbd::text
