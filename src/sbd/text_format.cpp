#include "sbd/text_format.hpp"

#include <fstream>
#include <functional>
#include <sstream>

#include "sbd/library.hpp"
#include "sbd/opaque.hpp"

namespace sbd::text {

namespace {

struct Token {
    std::string text;
    int line;
};

std::vector<Token> tokenize(std::istream& in) {
    std::vector<Token> out;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        std::istringstream ls(line);
        std::string tok;
        while (ls >> tok) {
            // Allow '{' and '}' to stick to neighbours.
            std::string cur;
            for (const char c : tok) {
                if (c == '{' || c == '}') {
                    if (!cur.empty()) out.push_back({cur, lineno});
                    out.push_back({std::string(1, c), lineno});
                    cur.clear();
                } else {
                    cur += c;
                }
            }
            if (!cur.empty()) out.push_back({cur, lineno});
        }
    }
    return out;
}

[[noreturn]] void fail(int line, const std::string& msg) {
    throw ModelError("sbd:" + std::to_string(line) + ": " + msg);
}

double num(const Token& t) {
    std::size_t pos = 0;
    double v = 0;
    try {
        v = std::stod(t.text, &pos);
    } catch (const std::exception&) {
        fail(t.line, "expected a number, got '" + t.text + "'");
    }
    if (pos != t.text.size()) fail(t.line, "trailing junk in number '" + t.text + "'");
    return v;
}

std::size_t natural(const Token& t) {
    const double v = num(t);
    if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v)))
        fail(t.line, "expected a non-negative integer, got '" + t.text + "'");
    return static_cast<std::size_t>(v);
}

/// Builds an atomic block from its type token and parameter tokens.
BlockPtr make_atomic(const Token& type, std::span<const Token> params) {
    const auto want = [&](std::size_t n) {
        if (params.size() != n)
            fail(type.line, type.text + " expects " + std::to_string(n) + " parameter(s), got " +
                                std::to_string(params.size()));
    };
    const std::string& t = type.text;
    if (t == "Constant") { want(1); return lib::constant(num(params[0])); }
    if (t == "Gain") { want(1); return lib::gain(num(params[0])); }
    if (t == "Sum") { want(1); return lib::sum(params[0].text); }
    if (t == "Product") { want(1); return lib::product(natural(params[0])); }
    if (t == "UnitDelay") { want(1); return lib::unit_delay(num(params[0])); }
    if (t == "Integrator") { want(2); return lib::integrator(num(params[0]), num(params[1])); }
    if (t == "Fir2") { want(2); return lib::fir2(num(params[0]), num(params[1])); }
    if (t == "Saturation") { want(2); return lib::saturation(num(params[0]), num(params[1])); }
    if (t == "Abs") { want(0); return lib::abs_block(); }
    if (t == "Min") { want(0); return lib::min_block(); }
    if (t == "Max") { want(0); return lib::max_block(); }
    if (t == "Relational") { want(1); return lib::relational(params[0].text); }
    if (t == "Switch") { want(1); return lib::switch_block(num(params[0])); }
    if (t == "Logic") { want(2); return lib::logic(params[0].text, natural(params[1])); }
    if (t == "DeadZone") { want(2); return lib::dead_zone(num(params[0]), num(params[1])); }
    if (t == "MovingAvg") { want(1); return lib::moving_average(natural(params[0])); }
    if (t == "Filter1") {
        want(3);
        return lib::first_order_filter(num(params[0]), num(params[1]), num(params[2]));
    }
    if (t == "Counter") { want(0); return lib::counter(); }
    if (t == "Fanout") { want(1); return lib::fanout(natural(params[0])); }
    if (t == "SampleHold") { want(1); return lib::sample_hold(num(params[0])); }
    if (t == "Clock") {
        want(2);
        return lib::clock_divider(natural(params[0]), natural(params[1]));
    }
    if (t == "Split2") {
        want(4);
        return lib::splitter2(num(params[0]), num(params[1]), num(params[2]), num(params[3]));
    }
    if (t == "Lookup1D") {
        std::vector<double> xs, ys;
        bool after_slash = false;
        for (const Token& p : params) {
            if (p.text == "/") { after_slash = true; continue; }
            (after_slash ? ys : xs).push_back(num(p));
        }
        if (!after_slash) fail(type.line, "Lookup1D needs 'x.. / y..'");
        return lib::lookup1d(std::move(xs), std::move(ys));
    }
    fail(type.line, "unknown block type '" + t + "'");
}

} // namespace

ParsedFile parse_sbd(std::istream& in) {
    const auto toks = tokenize(in);
    std::size_t i = 0;
    const auto peek = [&]() -> const Token& {
        if (i >= toks.size()) throw ModelError("sbd: unexpected end of file");
        return toks[i];
    };
    const auto next = [&]() -> const Token& {
        const Token& t = peek();
        ++i;
        return t;
    };
    const auto expect = [&](const std::string& what) -> const Token& {
        const Token& t = next();
        if (t.text != what) fail(t.line, "expected '" + what + "', got '" + t.text + "'");
        return t;
    };

    ParsedFile file;
    const std::vector<std::string> stmt_keywords = {"inputs", "outputs", "sub",    "connect",
                                                    "trigger", "class",  "function", "order",
                                                    "}"};
    const auto is_keyword = [&](const std::string& s) {
        for (const auto& k : stmt_keywords)
            if (k == s) return true;
        return s == "block" || s == "extern";
    };

    while (i < toks.size()) {
        bool is_extern = false;
        if (peek().text == "extern") {
            next();
            is_extern = true;
        }
        expect("block");
        const Token name = next();
        if (file.blocks.contains(name.text)) fail(name.line, "duplicate block '" + name.text + "'");
        expect("{");

        std::vector<std::string> inputs, outputs;
        struct SubDecl {
            Token inst;
            Token type;
            std::vector<Token> params;
        };
        std::vector<SubDecl> subs;
        std::vector<std::pair<Token, Token>> wires;    // (src, dst)
        std::vector<std::pair<Token, Token>> triggers; // (inst, src)
        // extern-block declarations
        struct FnDecl {
            Token name;
            std::vector<Token> reads;
            std::vector<Token> writes;
        };
        std::vector<FnDecl> fn_decls;
        std::vector<std::pair<Token, Token>> order_decls; // (before, after)
        std::optional<Token> class_decl;

        for (;;) {
            const Token kw = next();
            if (kw.text == "}") break;
            if (kw.text == "inputs" || kw.text == "outputs") {
                auto& dst = kw.text == "inputs" ? inputs : outputs;
                while (i < toks.size() && !is_keyword(peek().text)) dst.push_back(next().text);
            } else if (kw.text == "sub") {
                SubDecl d{next(), next(), {}};
                while (i < toks.size() && !is_keyword(peek().text)) d.params.push_back(next());
                subs.push_back(std::move(d));
            } else if (kw.text == "connect") {
                const Token src = next();
                const Token dst = next();
                wires.emplace_back(src, dst);
            } else if (kw.text == "trigger") {
                const Token inst = next();
                const Token src = next();
                triggers.emplace_back(inst, src);
            } else if (kw.text == "class" && is_extern) {
                class_decl = next();
            } else if (kw.text == "function" && is_extern) {
                FnDecl d{next(), {}, {}};
                while (i < toks.size() &&
                       (peek().text == "reads" || peek().text == "writes")) {
                    const bool into_reads = next().text == "reads";
                    auto& dst = into_reads ? d.reads : d.writes;
                    while (i < toks.size() && !is_keyword(peek().text) &&
                           peek().text != "reads" && peek().text != "writes")
                        dst.push_back(next());
                }
                fn_decls.push_back(std::move(d));
            } else if (kw.text == "order" && is_extern) {
                const Token before = next();
                const Token after = next();
                order_decls.emplace_back(before, after);
            } else {
                fail(kw.line, "unexpected token '" + kw.text + "' in block body");
            }
        }

        if (is_extern) {
            if (!subs.empty() || !wires.empty() || !triggers.empty())
                fail(name.line, "extern blocks declare an interface only (no sub/connect)");
            BlockClass cls = BlockClass::Combinational;
            if (class_decl) {
                if (class_decl->text == "combinational") cls = BlockClass::Combinational;
                else if (class_decl->text == "sequential") cls = BlockClass::Sequential;
                else if (class_decl->text == "moore") cls = BlockClass::MooreSequential;
                else fail(class_decl->line, "class must be combinational|sequential|moore");
            }
            const auto port_index = [&](const std::vector<std::string>& names, const Token& t) {
                for (std::size_t p = 0; p < names.size(); ++p)
                    if (names[p] == t.text) return p;
                fail(t.line, "unknown port '" + t.text + "' in extern block");
            };
            std::vector<OpaqueBlock::Function> fns;
            for (const auto& d : fn_decls) {
                OpaqueBlock::Function fn;
                fn.name = d.name.text;
                for (const Token& t : d.reads) fn.reads.push_back(port_index(inputs, t));
                for (const Token& t : d.writes) fn.writes.push_back(port_index(outputs, t));
                fns.push_back(std::move(fn));
            }
            const auto fn_index = [&](const Token& t) {
                for (std::size_t f = 0; f < fns.size(); ++f)
                    if (fns[f].name == t.text) return f;
                fail(t.line, "unknown function '" + t.text + "' in order constraint");
            };
            std::vector<std::pair<std::size_t, std::size_t>> order_edges;
            for (const auto& [a, b] : order_decls)
                order_edges.emplace_back(fn_index(a), fn_index(b));
            try {
                file.blocks.emplace(name.text,
                                    std::make_shared<OpaqueBlock>(name.text, inputs, outputs,
                                                                  cls, std::move(fns),
                                                                  std::move(order_edges)));
            } catch (const ModelError& e) {
                fail(name.line, e.what());
            }
            file.order.push_back(name.text);
            continue; // an extern block cannot be the root
        }

        auto macro = std::make_shared<MacroBlock>(name.text, inputs, outputs);
        for (const auto& d : subs) {
            BlockPtr type;
            const auto it = file.blocks.find(d.type.text);
            if (it != file.blocks.end()) {
                if (!d.params.empty())
                    fail(d.type.line, "block reference '" + d.type.text + "' takes no parameters");
                type = it->second;
            } else {
                type = make_atomic(d.type, d.params);
            }
            try {
                macro->add_sub(d.inst.text, std::move(type));
            } catch (const ModelError& e) {
                fail(d.inst.line, e.what());
            }
        }
        for (const auto& [src, dst] : wires) {
            try {
                macro->connect(src.text, dst.text);
            } catch (const ModelError& e) {
                fail(src.line, e.what());
            }
        }
        for (const auto& [inst, src] : triggers) {
            try {
                macro->set_trigger(inst.text, src.text);
            } catch (const ModelError& e) {
                fail(inst.line, e.what());
            }
        }
        try {
            macro->validate();
        } catch (const ModelError& e) {
            fail(name.line, e.what());
        }
        file.blocks.emplace(name.text, macro);
        file.order.push_back(name.text);
        file.root = macro;
    }
    if (!file.root) throw ModelError("sbd: no block definitions found");
    return file;
}

ParsedFile parse_sbd_string(const std::string& text) {
    std::istringstream is(text);
    return parse_sbd(is);
}

ParsedFile parse_sbd_file(const std::string& path) {
    std::ifstream f(path);
    if (!f) throw ModelError("sbd: cannot open '" + path + "'");
    return parse_sbd(f);
}

namespace {

std::string endpoint_name(const MacroBlock& m, const Endpoint& e) {
    switch (e.kind) {
    case Endpoint::Kind::MacroInput: return m.input_name(e.port);
    case Endpoint::Kind::MacroOutput: return m.output_name(e.port);
    case Endpoint::Kind::SubInput:
        return m.sub(e.sub).name + "." + m.sub(e.sub).type->input_name(e.port);
    case Endpoint::Kind::SubOutput:
        return m.sub(e.sub).name + "." + m.sub(e.sub).type->output_name(e.port);
    }
    return "?";
}

void check_token(const std::string& s) {
    if (s.empty() || s.find_first_of(" \t#{}") != std::string::npos ||
        (s.find('.') != std::string::npos))
        throw ModelError("sbd writer: name '" + s + "' is not representable");
}

void write_block(const MacroBlock& m, std::ostream& os,
                 std::map<const Block*, std::string>& emitted, int& serial);

std::string fresh_name(const Block& b, std::map<const Block*, std::string>& emitted,
                       int& serial) {
    std::string name = b.type_name();
    for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    for (const auto& [blk, nm] : emitted)
        if (nm == name) name += "_" + std::to_string(++serial);
    emitted.emplace(&b, name);
    return name;
}

void write_opaque(const OpaqueBlock& b, std::ostream& os,
                  std::map<const Block*, std::string>& emitted, int& serial) {
    if (emitted.contains(&b)) return;
    const std::string name = fresh_name(b, emitted, serial);
    os << "extern block " << name << " {\n  inputs";
    for (std::size_t p = 0; p < b.num_inputs(); ++p) {
        check_token(b.input_name(p));
        os << " " << b.input_name(p);
    }
    os << "\n  outputs";
    for (std::size_t p = 0; p < b.num_outputs(); ++p) {
        check_token(b.output_name(p));
        os << " " << b.output_name(p);
    }
    const char* cls = "combinational";
    if (b.block_class() == BlockClass::Sequential) cls = "sequential";
    if (b.block_class() == BlockClass::MooreSequential) cls = "moore";
    os << "\n  class " << cls << "\n";
    for (const auto& fn : b.functions()) {
        check_token(fn.name);
        os << "  function " << fn.name;
        if (!fn.reads.empty()) {
            os << " reads";
            for (const std::size_t p : fn.reads) os << " " << b.input_name(p);
        }
        if (!fn.writes.empty()) {
            os << " writes";
            for (const std::size_t p : fn.writes) os << " " << b.output_name(p);
        }
        os << "\n";
    }
    for (const auto& [a, c] : b.order())
        os << "  order " << b.functions()[a].name << " " << b.functions()[c].name << "\n";
    os << "}\n\n";
}

void write_block(const MacroBlock& m, std::ostream& os,
                 std::map<const Block*, std::string>& emitted, int& serial) {
    if (emitted.contains(&m)) return;
    // Inner macro and extern definitions first.
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const Block& t = *m.sub(s).type;
        if (t.is_opaque())
            write_opaque(static_cast<const OpaqueBlock&>(t), os, emitted, serial);
        else if (!t.is_atomic())
            write_block(static_cast<const MacroBlock&>(t), os, emitted, serial);
    }

    const std::string name = fresh_name(m, emitted, serial);

    os << "block " << name << " {\n";
    os << "  inputs";
    for (std::size_t p = 0; p < m.num_inputs(); ++p) {
        check_token(m.input_name(p));
        os << " " << m.input_name(p);
    }
    os << "\n  outputs";
    for (std::size_t p = 0; p < m.num_outputs(); ++p) {
        check_token(m.output_name(p));
        os << " " << m.output_name(p);
    }
    os << "\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        check_token(m.sub(s).name);
        os << "  sub " << m.sub(s).name << " ";
        if (m.sub(s).type->is_opaque() || !m.sub(s).type->is_atomic()) {
            os << emitted.at(m.sub(s).type.get());
        } else {
            const auto& a = static_cast<const AtomicBlock&>(*m.sub(s).type);
            if (a.text_spec().empty())
                throw ModelError("sbd writer: custom atomic block '" + a.type_name() +
                                 "' has no textual spec");
            os << a.text_spec();
        }
        os << "\n";
    }
    for (const Connection& c : m.connections())
        os << "  connect " << endpoint_name(m, c.src) << " " << endpoint_name(m, c.dst) << "\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        if (m.sub(s).trigger)
            os << "  trigger " << m.sub(s).name << " " << endpoint_name(m, *m.sub(s).trigger)
               << "\n";
    os << "}\n\n";
}

} // namespace

std::string to_sbd(const MacroBlock& root) {
    std::ostringstream os;
    std::map<const Block*, std::string> emitted;
    int serial = 0;
    write_block(root, os, emitted, serial);
    return os.str();
}

} // namespace sbd::text
