// Interval-domain abstract interpretation over the compiled interface-
// function IR — the deep half of sbd-lint (--deep, SBD022..SBD028).
//
// The analyzer runs over exactly the code core/exec interprets: per macro
// block it abstractly executes the generated interface functions (calls,
// assigns, guards, bumps, trigger predicates) on intervals instead of
// doubles, iterating synchronous instants to a fixpoint with widening for
// stateful blocks. Analysis composes the same way compilation does: a
// macro consumes only its sub-blocks' input->output interval summaries,
// and summaries are memoized content-addressed (structural fingerprint x
// input intervals), mirroring the profile cache.
#ifndef SBD_ANALYSIS_ABSINT_HPP
#define SBD_ANALYSIS_ABSINT_HPP

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/compiler.hpp"
#include "core/fingerprint.hpp"

namespace sbd::analysis {

/// An abstract signal value: the attainable non-NaN values form the
/// interval [lo, hi] over the extended reals (an infinite endpoint is
/// itself attainable — IEEE division by zero produces real infinities),
/// plus a flag for whether NaN is additionally attainable. lo > hi means
/// no non-NaN value is attainable; with `nan` set that is "always NaN".
struct Interval {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool nan = false;

    static Interval top() { return {}; }
    static Interval bottom() {
        return {std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity(), false};
    }
    static Interval point(double v) { return {v, v, false}; }
    static Interval make(double lo, double hi) { return {lo, hi, false}; }

    bool empty_real() const { return lo > hi; }
    bool is_bottom() const { return empty_real() && !nan; }
    /// Exactly one attainable value, and it is a finite real.
    bool is_finite_singleton() const { return lo == hi && std::isfinite(lo) && !nan; }
    /// NaN on every instant, or a single infinite value on every instant.
    bool definitely_nonfinite() const {
        if (empty_real()) return nan;
        return lo == hi && std::isinf(lo) && !nan;
    }
    bool contains(double v) const; ///< NaN values test the nan flag
    /// to_string(*this), or `if_bottom` when no value is attainable.
    std::string str_or(const char* if_bottom) const;
    bool operator==(const Interval&) const = default;
};

std::string to_string(const Interval& iv); ///< "[lo, hi]", "[0, inf]?nan", ...

// Domain operations. Arithmetic mirrors the concrete kernels' IEEE double
// operations corner-by-corner, so bounds are attained exactly (rounding in
// double is monotone); indeterminate corner forms (inf-inf, 0*inf,
// inf/inf) set the nan flag. All operations are sound: the result covers
// every value the concrete operation can produce from operand values.
Interval iv_join(const Interval& a, const Interval& b);
Interval iv_add(const Interval& a, const Interval& b);
Interval iv_sub(const Interval& a, const Interval& b);
Interval iv_mul(const Interval& a, const Interval& b);
Interval iv_neg(const Interval& a);
Interval iv_abs(const Interval& a);
Interval iv_min(const Interval& a, const Interval& b);
Interval iv_max(const Interval& a, const Interval& b);
Interval iv_clamp(const Interval& a, double lo, double hi);

/// Division result plus the two division-by-zero verdicts the SBD022 and
/// SBD023 diagnostics are built from.
struct DivResult {
    Interval value;
    bool definite_zero_den = false; ///< denominator is exactly 0 always
    bool possible_zero_den = false; ///< denominator range contains 0
};
DivResult iv_div(const Interval& a, const Interval& b);

/// Widening: accelerates an unstable bound outward to the next rung of a
/// fixed threshold ladder (ending at +-inf), guaranteeing fixpoint
/// termination for stateful blocks whose state grows every instant.
/// `prev` is the previous iterate, `next` the joined new iterate.
Interval iv_widen(const Interval& prev, const Interval& next);

/// The input->output interval summary of one block under given per-input-
/// port intervals. `first_outputs` is the block's very first firing (from
/// initial state — exact for instant 0); `outputs` covers every firing.
/// `hazards` carries the SBD022..SBD028 site diagnostics found while
/// computing this summary, including those of nested sub-summaries (so a
/// memo hit still surfaces them), deduplicated.
struct BlockSummary {
    std::vector<Interval> first_outputs;
    std::vector<Interval> outputs;
    std::vector<Diagnostic> hazards;
    std::size_t instants = 0; ///< abstract instants until the fixpoint
    bool widened = false;     ///< some state dimension needed widening
};

/// Content-addressed summary store, shareable across Analyzer instances
/// (and thus across the files of one sbd-lint batch) the same way the
/// ProfileCache is shared across method probes: the key is the block's
/// structural fingerprint plus the exact input intervals, so clones of a
/// block hit the same entry.
struct SummaryMemo {
    std::unordered_map<std::string, std::unique_ptr<BlockSummary>> map;
    std::uint64_t computed = 0;
    std::uint64_t hits = 0;
};

/// Analysis knobs.
struct AbsOptions {
    /// Value range assumed for every free (diagram) input. The default
    /// matches the LCG input traces used by the differential tests and the
    /// emitted C++ drivers (values in [-8, 8)).
    Interval assumed_inputs = Interval::make(-8.0, 8.0);
    std::size_t widen_after = 4;    ///< plain joins before widening starts
    std::size_t max_instants = 256; ///< hard cap per summary fixpoint
    /// Optional shared summary store; when null the analyzer owns one.
    std::shared_ptr<SummaryMemo> memo;
};

/// The abstract interpreter. Bound to one CompiledSystem (any clustering
/// method: the summaries are semantic, so every method yields the same
/// concrete behavior and any compiled form can be analyzed).
class Analyzer {
public:
    explicit Analyzer(const codegen::CompiledSystem& sys, AbsOptions opts = {});

    /// Summary of `block` with the given per-input-port intervals for the
    /// first firing and for all firings (all is widened to include first).
    /// The reference stays valid for the life of the memo.
    const BlockSummary& analyze(const BlockPtr& block, std::span<const Interval> first_inputs,
                                std::span<const Interval> all_inputs);

    /// Summary of `root` with every input assumed in opts.assumed_inputs.
    const BlockSummary& analyze_root(const BlockPtr& root);

    std::uint64_t summaries_computed() const { return memo_->computed; }
    std::uint64_t memo_hits() const { return memo_->hits; }
    const SummaryMemo& memo() const { return *memo_; }

private:
    struct Impl;
    const codegen::CompiledSystem* sys_;
    AbsOptions opts_;
    std::shared_ptr<SummaryMemo> memo_;
    codegen::BlockFingerprinter fp_;

    BlockSummary compute(const BlockPtr& block, std::span<const Interval> first_in,
                         std::span<const Interval> all_in);
    BlockSummary compute_atomic(const AtomicBlock& a, std::span<const Interval> first_in,
                                std::span<const Interval> all_in);
    BlockSummary compute_macro(const MacroBlock& m, std::span<const Interval> first_in,
                               std::span<const Interval> all_in);
};

/// The full deep-analysis entry point used by sbd-lint --deep, sbdc --lint
/// and the sbd-serve load gate: analyzes `root` (compiled in `sys`) under
/// `opts` and returns every SBD022..SBD028 diagnostic — the site hazards
/// collected through the summaries plus the root-output checks (SBD024
/// guaranteed-NaN, SBD025 possible-NaN, SBD026 always-constant output).
std::vector<Diagnostic> deep_diagnostics(const codegen::CompiledSystem& sys,
                                         const BlockPtr& root, const AbsOptions& opts = {});

} // namespace sbd::analysis

#endif
