#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace sbd::analysis {

const char* to_string(Severity s) {
    switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "?";
}

std::size_t LintReport::count(Severity s) const {
    std::size_t n = 0;
    for (const auto& d : diagnostics)
        if (d.severity == s) ++n;
    return n;
}

void LintReport::sort() {
    std::stable_sort(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         // Positioned diagnostics first, in source order.
                         if (a.loc.valid() != b.loc.valid()) return a.loc.valid();
                         if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                         if (a.loc.col != b.loc.col) return a.loc.col < b.loc.col;
                         return a.code < b.code;
                     });
}

std::string render_text(const LintReport& report) {
    std::ostringstream os;
    for (const auto& d : report.diagnostics) {
        os << report.file;
        if (d.loc.valid()) os << ":" << d.loc.line << ":" << d.loc.col;
        os << ": " << to_string(d.severity) << ": [" << d.code << "] " << d.message << "\n";
        for (const auto& n : d.notes) os << "    note: " << n << "\n";
    }
    const std::size_t errors = report.count(Severity::Error);
    const std::size_t warnings = report.count(Severity::Warning);
    if (errors + warnings > 0) {
        os << errors << " error(s), " << warnings << " warning(s)\n";
    }
    return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string render_json(const LintReport& report) {
    std::ostringstream os;
    os << "{\n  \"file\": \"" << json_escape(report.file) << "\",\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic& d = report.diagnostics[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"code\": \"" << d.code << "\", \"severity\": \"" << to_string(d.severity)
           << "\", \"line\": " << d.loc.line << ", \"col\": " << d.loc.col
           << ", \"message\": \"" << json_escape(d.message) << "\", \"notes\": [";
        for (std::size_t n = 0; n < d.notes.size(); ++n)
            os << (n == 0 ? "" : ", ") << "\"" << json_escape(d.notes[n]) << "\"";
        os << "]}";
    }
    if (!report.diagnostics.empty()) os << "\n  ";
    os << "],\n  \"errors\": " << report.count(Severity::Error)
       << ",\n  \"warnings\": " << report.count(Severity::Warning) << "\n}\n";
    return os.str();
}

std::span<const CatalogEntry> catalog() {
    static constexpr CatalogEntry kCatalog[] = {
        {"SBD001", Severity::Error, "syntax error"},
        {"SBD002", Severity::Error, "unknown block type or bad instantiation"},
        {"SBD003", Severity::Error, "unknown port or instance reference"},
        {"SBD004", Severity::Error, "multiply-driven signal"},
        {"SBD005", Severity::Error, "self-connection (instantaneous self-loop)"},
        {"SBD006", Severity::Error, "malformed trigger"},
        {"SBD007", Severity::Error, "unconnected sub-block input"},
        {"SBD008", Severity::Error, "unconnected diagram output"},
        {"SBD009", Severity::Warning, "dangling sub-block output"},
        {"SBD010", Severity::Warning, "unused diagram input"},
        {"SBD011", Severity::Warning, "dead sub-block (reaches no output)"},
        {"SBD012", Severity::Error, "dependency cycle"},
        {"SBD013", Severity::Error, "false cycle: flat diagram acyclic, method still rejects"},
        {"SBD014", Severity::Error, "extern: unknown port in function declaration"},
        {"SBD015", Severity::Error, "extern: output not written by exactly one function"},
        {"SBD016", Severity::Error, "extern: cyclic call-order relation"},
        {"SBD017", Severity::Error, "extern: order names an unknown function"},
        {"SBD018", Severity::Warning, "extern: inert function"},
        {"SBD019", Severity::Error, "generated profile violates the modular compilation contract"},
        {"SBD020", Severity::Warning, "generated PDG edge unjustified by any dataflow"},
        {"SBD021", Severity::Warning, "SAT conflict budget exhausted: clustering degraded"},
        {"SBD022", Severity::Error, "division by zero: denominator is always 0"},
        {"SBD023", Severity::Warning, "possible division by zero: denominator range contains 0"},
        {"SBD024", Severity::Error, "diagram output is NaN or infinite on every instant"},
        {"SBD025", Severity::Warning, "diagram output may be NaN"},
        {"SBD026", Severity::Warning, "diagram output is a compile-time constant"},
        {"SBD027", Severity::Warning, "dead code: Switch arm never selected or trigger never fires"},
        {"SBD028", Severity::Warning, "triggered sub-block cannot fire at instant 0"},
    };
    return kCatalog;
}

std::string render_sarif(std::span<const LintReport> reports, const SarifOptions& opts) {
    // SARIF maps our severities onto its three result levels directly.
    const auto level_of = [](Severity s) {
        switch (s) {
        case Severity::Error: return "error";
        case Severity::Warning: return "warning";
        case Severity::Note: return "note";
        }
        return "none";
    };
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
          "Schemata/sarif-schema-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\n"
       << "      \"name\": \"" << json_escape(opts.tool_name) << "\",\n";
    if (!opts.tool_version.empty())
        os << "      \"version\": \"" << json_escape(opts.tool_version) << "\",\n";
    os << "      \"informationUri\": \"" << json_escape(opts.info_uri) << "\",\n"
       << "      \"rules\": [";
    const auto cat = catalog();
    for (std::size_t i = 0; i < cat.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        os << "        {\"id\": \"" << cat[i].code << "\", \"shortDescription\": {\"text\": \""
           << json_escape(cat[i].summary) << "\"}, \"defaultConfiguration\": {\"level\": \""
           << level_of(cat[i].severity) << "\"}}";
    }
    os << "\n      ]\n    }},\n"
       << "    \"results\": [";
    bool first = true;
    for (const LintReport& rep : reports) {
        for (const Diagnostic& d : rep.diagnostics) {
            os << (first ? "\n" : ",\n");
            first = false;
            std::string text = d.message;
            for (const std::string& n : d.notes) text += "\nnote: " + n;
            os << "      {\"ruleId\": \"" << json_escape(d.code) << "\", \"level\": \""
               << level_of(d.severity) << "\", \"message\": {\"text\": \"" << json_escape(text)
               << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
                  "\""
               << json_escape(rep.file) << "\"}";
            if (d.loc.valid())
                os << ", \"region\": {\"startLine\": " << d.loc.line
                   << ", \"startColumn\": " << d.loc.col << "}";
            os << "}}]}";
        }
    }
    if (!first) os << "\n    ";
    os << "]\n  }]\n}\n";
    return os.str();
}

} // namespace sbd::analysis
