#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace sbd::analysis {

const char* to_string(Severity s) {
    switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "?";
}

std::size_t LintReport::count(Severity s) const {
    std::size_t n = 0;
    for (const auto& d : diagnostics)
        if (d.severity == s) ++n;
    return n;
}

void LintReport::sort() {
    std::stable_sort(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         // Positioned diagnostics first, in source order.
                         if (a.loc.valid() != b.loc.valid()) return a.loc.valid();
                         if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                         if (a.loc.col != b.loc.col) return a.loc.col < b.loc.col;
                         return a.code < b.code;
                     });
}

std::string render_text(const LintReport& report) {
    std::ostringstream os;
    for (const auto& d : report.diagnostics) {
        os << report.file;
        if (d.loc.valid()) os << ":" << d.loc.line << ":" << d.loc.col;
        os << ": " << to_string(d.severity) << ": [" << d.code << "] " << d.message << "\n";
        for (const auto& n : d.notes) os << "    note: " << n << "\n";
    }
    const std::size_t errors = report.count(Severity::Error);
    const std::size_t warnings = report.count(Severity::Warning);
    if (errors + warnings > 0) {
        os << errors << " error(s), " << warnings << " warning(s)\n";
    }
    return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string render_json(const LintReport& report) {
    std::ostringstream os;
    os << "{\n  \"file\": \"" << json_escape(report.file) << "\",\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic& d = report.diagnostics[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"code\": \"" << d.code << "\", \"severity\": \"" << to_string(d.severity)
           << "\", \"line\": " << d.loc.line << ", \"col\": " << d.loc.col
           << ", \"message\": \"" << json_escape(d.message) << "\", \"notes\": [";
        for (std::size_t n = 0; n < d.notes.size(); ++n)
            os << (n == 0 ? "" : ", ") << "\"" << json_escape(d.notes[n]) << "\"";
        os << "]}";
    }
    if (!report.diagnostics.empty()) os << "\n  ";
    os << "],\n  \"errors\": " << report.count(Severity::Error)
       << ",\n  \"warnings\": " << report.count(Severity::Warning) << "\n}\n";
    return os.str();
}

} // namespace sbd::analysis
